//! Offline stand-in for the `proptest` crate.
//!
//! Supplies the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`strategy::Strategy`] with `prop_map`/`boxed`, range and tuple
//! strategies, [`prop::collection::vec`], [`prop::option::of`],
//! [`arbitrary::any`], [`prop_oneof!`], and `prop_assert*` macros.
//!
//! Differences from the real crate, deliberate for an offline shim:
//!
//! * sampling is deterministic (fixed-seed splitmix64 per test), so runs
//!   are reproducible without a persistence file;
//! * failing cases are **not shrunk** — the assert fires with the sampled
//!   values via the ordinary panic message;
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`/`assert_eq!`.

pub mod strategy {
    //! Sampling strategies.

    use crate::test_runner::TestRng;

    /// A recipe for producing values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adaptor.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies (the [`crate::prop_oneof!`] backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; sampling picks one uniformly.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u128() % width) as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u128() % width) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            // Rounding can land exactly on `end`; keep the bound exclusive.
            if v >= self.end {
                self.end.next_down()
            } else {
                v
            }
        }
    }

    impl Strategy for ::std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let v = (self.start as f64 + (self.end - self.start) as f64 * rng.unit_f64()) as f32;
            if v >= self.end {
                self.end.next_down()
            } else {
                v
            }
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, spread over a wide range.
            (rng.unit_f64() - 0.5) * 2.0e12
        }
    }

    /// See [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prop {
    //! The `prop::` namespace re-exported by the prelude.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Acceptable length specifications for [`vec()`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<::std::ops::Range<usize>> for SizeRange {
            fn from(r: ::std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end - 1 }
            }
        }

        impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi: *r.end() }
            }
        }

        /// A strategy for vectors whose elements come from `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `vec(element, len)` — vectors of `len` elements (a count or range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let width = (self.size.hi - self.size.lo + 1) as u64;
                let len = self.size.lo + (rng.next_u64() % width) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// See [`of`].
        pub struct OptionStrategy<S>(S);

        /// Produces `None` about a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.0.sample(rng))
                }
            }
        }
    }
}

pub mod test_runner {
    //! Test configuration and the deterministic RNG.

    /// Per-test configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_shrink_iters: 0 }
        }
    }

    /// Deterministic splitmix64 generator used for all sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator with a fixed seed (reproducible runs).
        pub fn deterministic() -> Self {
            TestRng { state: 0x9E37_79B9_0000_0001 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next 128 random bits.
        pub fn next_u128(&mut self) -> u128 {
            (self.next_u64() as u128) << 64 | self.next_u64() as u128
        }

        /// A uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! The customary `use proptest::prelude::*;` import surface.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each body runs `config.cases` times with freshly
/// sampled inputs; failures panic immediately (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])+
       fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert within a property (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Assert equality within a property (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Assert inequality within a property (plain `assert_ne!` in this shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            x in 3u8..9,
            (neg, mag) in (any::<bool>(), 0u16..(1 << 14)),
            v in prop::collection::vec((0u64..10, 1u32..=4), 1..5),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(mag < (1 << 14));
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (a, b) in v {
                prop_assert!(a < 10 && (1..=4).contains(&b));
            }
            let _ = neg;
        }

        #[test]
        fn oneof_map_option_compose(
            sel in prop_oneof![Just(0u8), (1u8..4).prop_map(|x| x), ],
            maybe in prop::option::of(arb_even()),
            signed in i64::MIN..i64::MAX,
        ) {
            prop_assert!(sel < 4);
            if let Some(e) = maybe {
                prop_assert_eq!(e % 2, 0);
            }
            prop_assert_ne!(signed, i64::MAX);
        }
    }
}
