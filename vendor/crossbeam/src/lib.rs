//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63). The API shape matches
//! crossbeam's: the spawn closure receives the scope again (so threads can
//! spawn siblings), and `scope` returns a `Result` whose error carries a
//! child-thread panic payload. Because std's scope re-raises child panics
//! while joining, the `Err` branch is in practice unreachable here — a
//! child panic propagates as a panic, which is an acceptable strengthening
//! for this workspace's "run one program per node" use.

pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// A scope handle mirroring `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives the
        /// scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> stdthread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Create a scope in which borrowed-data threads can be spawned; all
    /// threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_borrowed_slots() {
        let mut slots = vec![0u32; 4];
        crate::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i as u32 + 1;
                });
            }
        })
        .expect("no panics");
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }
}
