//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for the Value-tree model of the
//! vendored `serde` shim. Because the image has no crates.io access, this is
//! written against the raw `proc_macro` API — no `syn`/`quote`. The parser
//! therefore recognizes exactly the shapes this workspace uses:
//!
//! * non-generic structs (named, tuple, unit) and enums (unit, tuple and
//!   struct variants);
//! * the `#[serde(transparent)]` container attribute;
//! * doc comments and other attributes (skipped).
//!
//! Generic containers are rejected with a compile error naming the type, so
//! an unsupported use fails loudly rather than mis-serializing.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Input {
    name: String,
    transparent: bool,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

/// Derive `serde::Serialize` (Value-tree shim edition).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item).parse().expect("serde shim: generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (Value-tree shim edition).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item).parse().expect("serde shim: generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Skip `#[...]` attribute pairs starting at `i`; returns the new index and
/// whether a `#[serde(transparent)]` was seen.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut transparent = false;
    while i + 1 < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let TokenTree::Group(g) = &toks[i + 1] {
                    let body = g.stream().to_string();
                    let compact: String = body.chars().filter(|c| !c.is_whitespace()).collect();
                    if compact.starts_with("serde(") && compact.contains("transparent") {
                        transparent = true;
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, transparent)
}

/// Skip a `pub` / `pub(...)` visibility marker starting at `i`.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let (mut i, transparent) = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let kw = ident_of(&toks[i]).expect("serde shim: expected `struct` or `enum`");
    i += 1;
    let name = ident_of(&toks[i]).expect("serde shim: expected type name");
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic type `{name}`");
        }
    }
    let kind = match kw.as_str() {
        "struct" => Kind::Struct(match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(split_top_level(g).len())
            }
            _ => Fields::Unit,
        }),
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g))
            }
            _ => panic!("serde shim: enum `{name}` has no body"),
        },
        other => panic!("serde shim: cannot derive for `{other}` items"),
    };
    Input { name, transparent, kind }
}

/// Split a group's tokens on top-level commas, tracking `<...>` nesting so
/// commas inside generic arguments do not split (groups are already atomic).
fn split_top_level(g: &Group) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    // A joint '-' immediately before '>' makes it an `->` arrow (e.g. in a
    // `fn(u8) -> u8` field type), not a closing angle bracket.
    let mut prev_joint_minus = false;
    for t in g.stream() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' if !prev_joint_minus => angle -= 1,
                ',' if angle == 0 => {
                    prev_joint_minus = false;
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
            prev_joint_minus = p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint;
        } else {
            prev_joint_minus = false;
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(g: &Group) -> Vec<String> {
    split_top_level(g)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let (mut i, _) = skip_attrs(&seg, 0);
            i = skip_vis(&seg, i);
            ident_of(&seg[i]).expect("serde shim: expected field name")
        })
        .collect()
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    split_top_level(g)
        .into_iter()
        .filter(|seg| !seg.is_empty())
        .map(|seg| {
            let (i, _) = skip_attrs(&seg, 0);
            let name = ident_of(&seg[i]).expect("serde shim: expected variant name");
            let fields = match seg.get(i + 1) {
                Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_top_level(vg).len())
                }
                Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(vg))
                }
                _ => Fields::Unit,
            };
            Variant { name, fields }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation (rendered as source text, then re-parsed)
// ---------------------------------------------------------------------------

const S: &str = "::serde::Serialize::to_value";
const D: &str = "::serde::Deserialize::from_value";

fn named_object_expr(fields: &[String], accessor: impl Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(::std::string::String::from(\"{f}\"), {S}(&{a}))", a = accessor(f)))
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            if item.transparent && fields.len() == 1 {
                format!("{S}(&self.{})", fields[0])
            } else {
                named_object_expr(fields, |f| format!("self.{f}"))
            }
        }
        Kind::Struct(Fields::Tuple(1)) => format!("{S}(&self.0)"),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n).map(|i| format!("{S}(&self.{i})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    let tag = format!("::std::string::String::from(\"{vn}\")");
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str({tag}),")
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![({tag}, \
                             {S}(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> =
                                binds.iter().map(|b| format!("{S}({b})")).collect();
                            format!(
                                "{name}::{vn}({bl}) => ::serde::Value::Object(::std::vec![({tag}, \
                                 ::serde::Value::Array(::std::vec![{il}]))]),",
                                bl = binds.join(", "),
                                il = items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let obj = named_object_expr(fields, |f| format!("(*{f})"));
                            format!(
                                "{name}::{vn} {{ {fl} }} => ::serde::Value::Object(::std::vec![\
                                 ({tag}, {obj})]),",
                                fl = fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all, unused_variables)] \
         impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn named_construct_expr(ty_label: &str, path: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: {D}(::serde::get_field({src}, \"{f}\", \"{ty_label}\")?)?"))
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn tuple_construct_expr(ty_label: &str, path: &str, n: usize, src: &str) -> String {
    let elems: Vec<String> = (0..n)
        .map(|i| {
            format!(
                "{D}(__a.get({i}).ok_or_else(|| ::serde::Error::expected(\
                 \"array of {n} elements\", \"{ty_label}\", {src}))?)?"
            )
        })
        .collect();
    format!(
        "{{ let __a = {src}.as_array().ok_or_else(|| \
         ::serde::Error::expected(\"array\", \"{ty_label}\", {src}))?; \
         {path}({el}) }}",
        el = elems.join(", ")
    )
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Named(fields)) => {
            if item.transparent && fields.len() == 1 {
                format!("::std::result::Result::Ok({name} {{ {f}: {D}(__v)? }})", f = fields[0])
            } else {
                format!(
                    "::std::result::Result::Ok({e})",
                    e = named_construct_expr(name, name, fields, "__v")
                )
            }
        }
        Kind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}({D}(__v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            format!(
                "::std::result::Result::Ok({e})",
                e = tuple_construct_expr(name, name, *n, "__v")
            )
        }
        Kind::Struct(Fields::Unit) => format!(
            "match __v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             __other => ::std::result::Result::Err(::serde::Error::expected(\
             \"null\", \"{name}\", __other)) }}"
        ),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),", vn = v.name)
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    let label = format!("{name}::{vn}");
                    let expr = match &v.fields {
                        Fields::Tuple(1) => format!("{name}::{vn}({D}(__inner)?)"),
                        Fields::Tuple(n) => {
                            tuple_construct_expr(&label, &format!("{name}::{vn}"), *n, "__inner")
                        }
                        Fields::Named(fields) => named_construct_expr(
                            &label,
                            &format!("{name}::{vn}"),
                            fields,
                            "__inner",
                        ),
                        Fields::Unit => unreachable!(),
                    };
                    format!("\"{vn}\" => ::std::result::Result::Ok({expr}),")
                })
                .collect();
            format!(
                "match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ \
                 {unit} \
                 __other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                 \"unknown unit variant `{{}}` of {name}\", __other))) }}, \
                 __tagged => {{ \
                 let (__tag, __inner) = ::serde::enum_parts(__tagged, \"{name}\")?; \
                 match __tag {{ \
                 {data} \
                 __other => ::std::result::Result::Err(::serde::Error::msg(::std::format!(\
                 \"unknown variant `{{}}` of {name}\", __other))) }} }} }}",
                unit = unit_arms.join(" "),
                data = data_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] #[allow(clippy::all, unused_variables)] \
         impl ::serde::Deserialize for {name} {{ \
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
         {body} }} }}"
    )
}
