//! Offline stand-in for the `bytes` crate.
//!
//! The container image has no network access to crates.io, so this vendored
//! crate provides exactly the surface the workspace uses: a growable byte
//! buffer ([`BytesMut`]) and the [`BufMut`] write trait. It is not a
//! re-implementation of the real crate's zero-copy machinery — just enough
//! for `nsc-microcode`'s MSB-first bit packer.

use std::ops::{Deref, DerefMut};

/// A growable, uniquely-owned byte buffer backed by a `Vec<u8>`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with space for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copy the contents out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Clear the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.inner.clear()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.inner
    }
}

/// Append-style writes, as in the real `bytes::BufMut`.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_index_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(0xA0);
        b.put_u8(0x00);
        let last = b.len() - 1;
        b[last] |= 0x0F;
        assert_eq!(b.to_vec(), vec![0xA0, 0x0F]);
    }
}
