//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace's `harness = false` benches use —
//! [`Criterion::bench_function`], [`Criterion::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with plain wall-clock
//! timing instead of criterion's statistical machinery. Each benchmark runs
//! a short warm-up, then `sample_size` timed samples, and prints the mean,
//! min and max time per iteration.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: function name plus an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as in the real crate.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }
}

/// Per-iteration timing collector handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Nanoseconds per iteration, one entry per sample.
    ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Time `f`, running one warm-up plus `sample_size` measured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        hint::black_box(f());
        self.ns_per_iter.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            hint::black_box(f());
            self.ns_per_iter.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { samples: self.sample_size, ns_per_iter: Vec::new() };
        f(&mut b);
        report(label, &b.ns_per_iter);
    }

    /// Run one benchmark closure under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        self.run(&label, f);
        self
    }

    /// Run one benchmark closure with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.label.clone();
        self.run(&label, |b| f(b, input));
        self
    }
}

fn report(label: &str, ns: &[f64]) {
    if ns.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    let min = ns.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ns.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{label:<40} mean {:>12} min {:>12} max {:>12} ({} samples)",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        ns.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Define a group of benchmark targets, optionally with a configured
/// [`Criterion`] (`name = ..; config = ..; targets = ..` form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("square_sum", |b| b.iter(|| (0..100u64).map(|x| x * x).sum::<u64>()));
        c.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn groups_run() {
        smoke();
    }
}
