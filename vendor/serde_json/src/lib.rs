//! Offline stand-in for `serde_json`.
//!
//! Converts between JSON text and the vendored `serde` shim's [`Value`]
//! tree: [`to_string`], [`to_string_pretty`], [`from_str`] and
//! [`from_value`]/[`to_value`]. Floats are written with Rust's shortest
//! round-trip formatting, so `parse(format(x)) == x` bit-for-bit for all
//! finite values; non-finite floats serialize as `null`, as in the real
//! crate.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Serialize any value into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize out of a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |out, item, ind, d| {
                write_value(out, item, ind, d)
            })
        }
        Value::Object(entries) => {
            write_seq(out, entries.iter(), indent, depth, ('{', '}'), |out, (k, v), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, d);
            })
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!("unexpected `{}` at byte {}", c as char, self.pos))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::msg("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the next escape must be a
                                // low surrogate, or the text is malformed.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&5u8).unwrap(), "5");
        assert_eq!(from_str::<u8>("5").unwrap(), 5);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\u0041\\ud83d\\ude00\"").unwrap(), "aA\u{1F600}");
        // Malformed surrogate pairs must error, not panic or mis-decode.
        assert!(from_str::<String>("\"\\ud800\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\ud800\\ue000\"").is_err());
        assert!(from_str::<String>("\"\\ud800x\"").is_err());
    }

    #[test]
    fn float_round_trips_bit_for_bit() {
        for f in [0.1, 1.0, -2.5e-300, 1e300, std::f64::consts::PI] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&s).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(7u32, vec![1u8, 2]);
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"7\":[1,2]}");
        assert_eq!(from_str::<std::collections::BTreeMap<u32, Vec<u8>>>(&s).unwrap(), m);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u8> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
