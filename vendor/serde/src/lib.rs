//! Offline stand-in for `serde` + `serde_derive`.
//!
//! The container image cannot reach crates.io, so this vendored crate
//! supplies the (much smaller) serialization model the workspace actually
//! uses: derived `Serialize`/`Deserialize` on plain structs and enums, with
//! JSON as the only wire format (see the sibling `serde_json` shim).
//!
//! Instead of real serde's visitor architecture, both traits go through an
//! owned [`Value`] tree:
//!
//! * `Serialize` renders a type into a [`Value`];
//! * `Deserialize` rebuilds the type from a `&Value`.
//!
//! Representation choices mirror serde's JSON defaults so documents look
//! conventional: structs are objects keyed by field name, newtype structs
//! and `#[serde(transparent)]` wrappers are their inner value, unit enum
//! variants are strings, data-carrying variants are single-entry
//! `{"Variant": ...}` objects, and map keys are stringified.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An owned, ordered tree of serialized data (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short name for the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X while deserializing Y, found Z".
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        Error::msg(format!("expected {what} while deserializing {ty}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// The serialized form.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse a value, with shape errors reported via [`Error`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetch a required struct field from an object value.
pub fn get_field<'a>(v: &'a Value, key: &str, ty: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Object(_) => v
            .get(key)
            .ok_or_else(|| Error::msg(format!("missing field `{key}` while deserializing {ty}"))),
        other => Err(Error::expected("object", ty, other)),
    }
}

/// Split an externally-tagged enum value `{ "Variant": data }` into its tag
/// and payload.
pub fn enum_parts<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, &'a Value), Error> {
    match v {
        Value::Object(m) if m.len() == 1 => Ok((m[0].0.as_str(), &m[0].1)),
        other => Err(Error::expected("single-variant object", ty, other)),
    }
}

/// Render a map key: strings pass through, integers stringify (as in JSON).
pub fn key_to_string(v: Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::msg(format!("map key must be string-like, found {}", other.kind()))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            Value::Str(s) => s.parse().map_err(|_| Error::expected("bool", "bool", v)),
            other => Err(Error::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match v {
                    Value::Int(i) => <$t>::try_from(*i).ok(),
                    Value::UInt(u) => <$t>::try_from(*u).ok(),
                    // Map keys arrive as strings; accept numeric strings.
                    Value::Str(s) => s.parse::<$t>().ok(),
                    _ => None,
                };
                out.ok_or_else(|| Error::expected(stringify!($t), stringify!($t), v))
            }
        }
    )*};
}

impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self as u64) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Str(s) => {
                        s.parse::<$t>().map_err(|_| Error::expected("number", "float", v))
                    }
                    other => Err(Error::expected("number", "float", other)),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("single-char string", "char", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) if a.len() == N => {
                let items: Result<Vec<T>, Error> = a.iter().map(T::from_value).collect();
                items?.try_into().map_err(|_| Error::msg("array length changed"))
            }
            other => Err(Error::expected("fixed-size array", "[T; N]", other)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(a) => Ok(($(
                        $t::from_value(
                            a.get($n).ok_or_else(|| Error::msg("tuple too short"))?,
                        )?,
                    )+)),
                    other => Err(Error::expected("array", "tuple", other)),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_value()).expect("map key"), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", "BTreeMap", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.to_value()).expect("map key"), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", "HashMap", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
