//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! The workspace uses random values only for test/bench problem setup, so
//! this vendored crate provides a small deterministic generator rather than
//! the full rand ecosystem: [`Rng::random_range`] over half-open ranges,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] (splitmix64 — not
//! cryptographic, statistically fine for filling grids with test data).

use std::ops::Range;

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draw one value in `[range.start, range.end)`.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let width = (range.end as i128 - range.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % width;
                (range.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = range.start + (range.end - range.start) * unit;
        // Rounding can land exactly on `end`; keep the bound exclusive.
        if v >= range.end {
            range.end.next_down()
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let v = f64::sample_from(rng, range.start as f64..range.end as f64) as f32;
        if v >= range.end {
            range.end.next_down()
        } else {
            v
        }
    }
}

/// The random-value interface (the subset of `rand::Rng` this workspace uses).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[range.start, range.end)`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_from(self, range)
    }

    /// A random value of a simple type (`bool`, integers, `f64` in `[0,1)`).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::random`] can produce.
pub trait Random: Sized {
    /// Draw one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// Deterministic splitmix64 generator, stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds_and_are_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.random_range(-4.0..4.0);
            assert!((-4.0..4.0).contains(&x));
            assert_eq!(x, b.random_range(-4.0..4.0));
            let n: i64 = a.random_range(-5..7);
            assert!((-5..7).contains(&n));
            b.next_u64();
            b.next_u64();
        }
    }

    #[test]
    fn full_i64_range_does_not_overflow() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let _: i64 = rng.random_range(i64::MIN..i64::MAX);
        }
    }
}
