//! The machine park: one simulated NSC serving a multi-tenant job
//! stream — the repo's "shared facility" story.
//!
//! Three tenants submit a mixed stream of whole workloads (Jacobi, SOR,
//! multigrid, lid-driven cavity) to an 8-node machine. The park queues
//! them, buddy-allocates each job an aligned sub-cube, runs admitted
//! jobs concurrently on scoped threads sharing one compile-once session,
//! and advances a deterministic virtual clock between completions. The
//! same stream runs under all three scheduling policies; backfill and
//! fair-share look past a blocked queue head, so they finish the stream
//! sooner and keep more of the machine busy — while every job's solution
//! stays bit-identical across policies (asserted below).
//!
//! Run with: `cargo run --release --example machine_park`

use nsc::cfd::{
    grid::manufactured_problem, CavityWorkload, DistributedJacobiWorkload,
    DistributedMultigridWorkload, DistributedSorWorkload, MgOptions, PartitionSpec,
};
use nsc::env::Session;
use nsc::park::{Job, MachinePark, ParkReport, SchedPolicy};

fn submit_stream(park: &mut MachinePark) -> Vec<nsc::park::JobId> {
    let jacobi = |n: usize, pairs: u32| {
        let (u0, f, _) = manufactured_problem(n);
        DistributedJacobiWorkload {
            u0,
            f,
            tol: 0.0,
            max_pairs: pairs,
            partition: PartitionSpec::Auto,
            overlap: false,
        }
    };
    let (u0, f, _) = manufactured_problem(6);
    let sor = DistributedSorWorkload {
        u0,
        f,
        omega: 1.5,
        tol: 1e-3,
        max_sweeps: 200,
        partition: PartitionSpec::Auto,
        overlap: false,
    };
    let (u0, f, _) = manufactured_problem(17);
    let multigrid = DistributedMultigridWorkload {
        u0,
        f,
        tol: 1e-8,
        max_cycles: 25,
        opts: MgOptions::default(),
        overlap: false,
    };
    let mut cavity = CavityWorkload::new(9, 10.0, 5);
    cavity.psi_tol = 1e-6;

    // A 4-node job first, then a whole-machine job that must wait for
    // it — everything behind the head is backfill's opportunity.
    let mut ids = vec![
        park.submit(Job::new("ada", 2, jacobi(8, 40))).expect("fits"),
        park.submit(Job::new("mary", 3, multigrid)).expect("fits"),
        park.submit(Job::new("grace", 1, sor)).expect("fits"),
        park.submit(Job::new("grace", 1, cavity)).expect("fits"),
    ];
    for _ in 0..4 {
        ids.push(park.submit(Job::new("ada", 0, jacobi(6, 10))).expect("fits"));
    }
    ids
}

fn print_report(report: &ParkReport) {
    println!(
        "  {:<11} {:>4} jobs   makespan {:>8.5}s   utilization {:>5.1}%   {:>6.1} jobs/s   \
         fairness {:.3}",
        report.policy,
        report.jobs.len(),
        report.makespan,
        100.0 * report.utilization,
        report.jobs_per_second,
        report.fairness,
    );
    for t in &report.per_tenant {
        println!(
            "      tenant {:<6} {:>2} jobs   {:>9.5} node-seconds",
            t.tenant, t.jobs, t.node_seconds
        );
    }
}

fn main() {
    println!("machine park: 8-node NSC, 3 tenants, 8 queued workloads\n");
    println!("job stream (submission order):");
    {
        let mut preview = MachinePark::new(Session::nsc_1988(), 3);
        let ids = submit_stream(&mut preview);
        let report = preview.run(SchedPolicy::Fifo).expect("park runs");
        for id in &ids {
            let j = report.job(*id).expect("reported");
            println!(
                "  #{:<2} {:<10} {:>2} nodes   {:<28} wait {:>8.5}s   ran {:>8.5}s",
                j.id, j.tenant, j.nodes, j.name, j.queue_wait, j.simulated_seconds
            );
        }
    }

    println!("\nthe same stream under each scheduling policy:");
    let mut outcomes: Vec<Vec<Vec<u64>>> = Vec::new();
    for policy in [SchedPolicy::Fifo, SchedPolicy::Backfill, SchedPolicy::FairShare] {
        let mut park = MachinePark::new(Session::nsc_1988(), 3);
        let ids = submit_stream(&mut park);
        let report = park.run(policy).expect("park runs");
        print_report(&report);
        assert_eq!(report.failed, 0, "every job must succeed");
        outcomes.push(
            ids.iter()
                .map(|id| {
                    park.outcome(*id).expect("completed").grid.iter().map(|x| x.to_bits()).collect()
                })
                .collect(),
        );
    }

    // Scheduling moves jobs in time, never in value: every job's solution
    // bits are identical under all three policies (and each lease is
    // bit-identical to a standalone machine of its sub-cube's size — the
    // park integration tests assert that half).
    let (fifo, rest) = outcomes.split_first().expect("three runs");
    for other in rest {
        assert_eq!(fifo, other, "a scheduling policy changed a job's results");
    }
    println!("\nall jobs bit-identical across policies: scheduling moves time, not values");
}
