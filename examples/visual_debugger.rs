//! Experiment T7 — the §6 visual-debugging extension: "each new
//! instruction would display the corresponding pipeline diagram, annotated
//! to show data values flowing through the pipeline."
//!
//! Runs a two-instruction program with tracing and prints each executed
//! instruction's diagram with its live pad values.
//!
//! Run with: `cargo run --example visual_debugger`

use nsc::arch::{AlsKind, FuOp, InPort, PlaneId};
use nsc::diagram::{DmaAttrs, FuAssign, IconKind, PadLoc, PadRef, Point};
use nsc::env::{NscError, VisualEnvironment};

fn main() -> Result<(), NscError> {
    let env = VisualEnvironment::nsc_1988();

    // Pipeline 1: t = x^2 ; pipeline 2: y = sqrt(t) + 1
    let mut ed = env.editor("debug demo");
    ed.set_stream_len(8);
    let mem_x = ed.place_icon(IconKind::Memory { plane: Some(PlaneId(0)) }, Point::new(20, 6));
    let sq = ed.place_icon(IconKind::als(AlsKind::Singlet), Point::new(42, 6));
    let mem_t = ed.place_icon(IconKind::Memory { plane: Some(PlaneId(1)) }, Point::new(66, 6));
    let c = ed
        .connect(
            PadLoc::new(mem_x, PadRef::Io),
            PadLoc::new(sq, PadRef::FuIn { pos: 0, port: InPort::A }),
        )
        .unwrap();
    ed.set_dma(c, DmaAttrs::at_address(0));
    // x^2 as x*x: both operands the same stream (one plane, fanned out).
    let c2 = ed
        .connect(
            PadLoc::new(mem_x, PadRef::Io),
            PadLoc::new(sq, PadRef::FuIn { pos: 0, port: InPort::B }),
        )
        .unwrap();
    ed.set_dma(c2, DmaAttrs::at_address(0));
    ed.assign_fu(sq, 0, FuAssign::binary(FuOp::Mul));
    let c3 = ed
        .connect(PadLoc::new(sq, PadRef::FuOut { pos: 0 }), PadLoc::new(mem_t, PadRef::Io))
        .unwrap();
    ed.set_dma(c3, DmaAttrs::at_address(0));

    // Second pipeline through the editor's pipeline controls.
    let mut doc = ed.doc.clone();
    let p2 = doc.add_pipeline("sqrt plus one");
    {
        let d = doc.pipeline_mut(p2).unwrap();
        d.stream_len = 8;
        let mem_t2 = d.add_icon(IconKind::Memory { plane: Some(PlaneId(1)) });
        let unit = d.add_icon(IconKind::als(AlsKind::Doublet));
        let mem_y = d.add_icon(IconKind::Memory { plane: Some(PlaneId(2)) });
        d.connect(
            PadLoc::new(mem_t2, PadRef::Io),
            PadLoc::new(unit, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.assign_fu(unit, 0, FuAssign::unary(FuOp::Sqrt)).unwrap();
        d.connect(
            PadLoc::new(unit, PadRef::FuOut { pos: 0 }),
            PadLoc::new(unit, PadRef::FuIn { pos: 1, port: InPort::A }),
            None,
        )
        .unwrap();
        d.assign_fu(unit, 1, FuAssign::with_const(FuOp::Add, 1.0)).unwrap();
        d.connect(
            PadLoc::new(unit, PadRef::FuOut { pos: 1 }),
            PadLoc::new(mem_y, PadRef::Io),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
    }

    let mut node = env.node();
    node.mem.plane_mut(PlaneId(0)).write_slice(0, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 3.0]);
    let report = env.debug_run(&mut doc, &mut node, 8)?;
    println!("{}", report.render());
    println!("final y: {:?}", node.mem.plane(PlaneId(2)).read_vec(0, 8));
    println!(
        "{} instruction(s) executed, {} frame(s) captured",
        report.executed,
        report.frames.len()
    );
    // Last observed unit value in pipeline 2: sqrt(3^2)+1 = 4.
    let last = report.frames.last().unwrap();
    assert!(last.values.iter().any(|(_, v)| *v == 4.0), "{:?}", last.values);
    Ok(())
}
