//! A parameter-sweep ensemble over the machine park: the compile-once
//! story at study scale.
//!
//! One scenario — a lid-driven cavity plus an SOR Poisson solve — fans
//! across a 6×4 grid of (Reynolds number, relaxation factor ω): 24
//! members. Every member shares its document *shapes* with the others;
//! only constant icons (FTCS coefficients per Re, ω) differ, so after
//! the first member pays for check + codegen the rest are served by the
//! session cache — full digest hits where the constants match, preload
//! rebinds where they don't. The ω axis deliberately brushes and then
//! crosses the SOR stability boundary at ω = 2: ω = 1.99 stalls on the
//! sweep cap, ω = 2.05 is rejected outright, and the ensemble's
//! stability map is where that boundary becomes legible.
//!
//! The same 24 members run under all three park scheduling policies.
//! Schedules differ; member results may not — the example asserts every
//! member's residual, trace and verdict is bit-identical across
//! policies, which is also an end-to-end audit of the rebind fast path
//! feeding concurrent jobs.
//!
//! Every park runs with the spot-audit policy at fraction 1.0: the
//! independent `nsc_cert` verifier re-checks every job's sealed compile
//! certificates at retire time, and a single rejected certificate would
//! fail the whole study. The audit table lands in the summary next to
//! the stability map.
//!
//! Run with: `cargo run --release --example ensemble_sweep`
//! (in CI the markdown below lands in the job's step summary).

use nsc::cfd::{CavityWorkload, DistributedSorWorkload};
use nsc::ensemble::{EnsembleReport, Sweep};
use nsc::env::{Session, Workload};
use nsc::park::{Job, JobOutcome, MachinePark, SchedPolicy};

/// The swept scenario: 6 Reynolds numbers × 4 relaxation factors.
fn sweep() -> Sweep {
    Sweep::new("cavity + SOR study")
        .axis("re", [1.0, 10.0, 50.0, 100.0, 400.0, 1000.0])
        .axis("omega", [0.9, 1.5, 1.99, 2.05])
}

/// Run the 24-member ensemble under one policy on a fresh 4-node park,
/// with every job's certificates audited at retire time.
fn run_policy(policy: SchedPolicy) -> EnsembleReport {
    let mut park = MachinePark::new(Session::nsc_1988(), 2).with_audit_fraction(1.0);
    sweep()
        .run(&mut park, policy, |point| {
            let re = point.value("re");
            let omega = point.value("omega");
            // Alternate 1- and 2-node members so the policies have a
            // packing problem worth solving.
            let dim = (point.index % 2) as u32;
            let payload = move |session: &Session, system: &mut nsc::sim::NscSystem| {
                // The ω half first: out-of-range relaxation is rejected
                // immediately and marks the member failed.
                let sor = DistributedSorWorkload::manufactured(6, omega, 1e-4, 60)
                    .execute(session, system)?;
                // The Re half: FTCS coefficients are document constants,
                // so each new Re rebinds the cached transport program.
                let cavity = CavityWorkload::new(9, re, 2).execute(session, system)?;
                let mut grid = sor.u.data;
                grid.extend_from_slice(&cavity.psi.data);
                grid.extend_from_slice(&cavity.omega.data);
                Ok(JobOutcome::new(sor.residual, grid)
                    .with_history(sor.residual_history)
                    .with_converged(sor.converged))
            };
            Ok(Job::new(if point.index % 2 == 0 { "ada" } else { "grace" }, dim, payload))
        })
        .expect("ensemble runs")
}

fn main() {
    let fifo = run_policy(SchedPolicy::Fifo);
    let backfill = run_policy(SchedPolicy::Backfill);
    let fair = run_policy(SchedPolicy::FairShare);

    // The correctness spine: schedules may differ, results may not.
    for other in [&backfill, &fair] {
        for (a, b) in fifo.members.iter().zip(&other.members) {
            assert_eq!(
                a.error.is_some(),
                b.error.is_some(),
                "member {} verdict differs under {}",
                a.index,
                other.policy
            );
            if a.error.is_none() {
                assert_eq!(
                    a.residual.to_bits(),
                    b.residual.to_bits(),
                    "member {} residual differs under {}",
                    a.index,
                    other.policy
                );
                let bits = |h: &[f64]| h.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(&a.residual_history),
                    bits(&b.residual_history),
                    "member {} trace differs under {}",
                    a.index,
                    other.policy
                );
                assert_eq!(a.converged, b.converged);
            }
        }
    }

    // The ω = 2.05 row is rejected at every Re, the ω = 1.99 row runs
    // but stalls on the sweep cap, everything else converges — all
    // three stability verdicts appear on the map.
    assert_eq!(fifo.diverged, 12);
    for m in &fifo.members {
        let omega = m.point[1].value;
        assert_eq!(m.error.is_some(), omega > 2.0, "member {}", m.index);
        assert_eq!(m.converged, omega < 1.99, "member {}", m.index);
    }

    // The compile-once story: after the first member, compiles are
    // served from the cache (full hits or preload rebinds).
    for report in [&fifo, &backfill, &fair] {
        let cache = &report.cache;
        assert!(
            cache.hit_rate() >= 0.8,
            "policy {}: compile cache underused: {cache:?}",
            report.policy
        );
    }
    // The audit trail: with the spot-audit fraction at 1.0, every
    // member that ran to completion had its sealed certificates
    // re-verified by the independent verifier (the 6 rejected-ω members
    // never produced an outcome to audit). A forged certificate
    // anywhere would have failed the run instead of reporting.
    for report in [&fifo, &backfill, &fair] {
        assert_eq!(
            report.audited_jobs, 18,
            "policy {}: every completed job audited",
            report.policy
        );
        assert!(report.audited_certs > 0, "policy {}: certificates verified", report.policy);
    }

    // And on a park whose session already served the study once, a
    // rerun recompiles nothing at all: every program is cached under
    // its full digest — and the cache-hit-path certificates pass the
    // same 100% audit the full compiles did.
    let mut park = MachinePark::new(Session::nsc_1988(), 2).with_audit_fraction(1.0);
    let warm = |park: &mut MachinePark| {
        sweep()
            .run(park, SchedPolicy::Backfill, |p| {
                let omega = p.value("omega");
                Ok(Job::new("ada", 0, DistributedSorWorkload::manufactured(6, omega, 1e-4, 60)))
            })
            .expect("sweep runs")
    };
    warm(&mut park);
    let rerun = warm(&mut park);
    assert_eq!(rerun.cache.misses, 0, "a warm rerun recompiles nothing");
    assert_eq!(rerun.cache.rebinds, 0, "a warm rerun repatches nothing");

    let mut summary = String::new();
    for report in [&fifo, &backfill, &fair] {
        summary.push_str(&report.summary_markdown());
        summary.push('\n');
    }
    print!("{summary}");
    println!(
        "ensemble ok: 24 members x 3 policies, bit-identical across schedules, \
         cache hit rate {:.3}/{:.3}/{:.3}, {} certs audited per policy",
        fifo.cache.hit_rate(),
        backfill.cache.hit_rate(),
        fair.cache.hit_rate(),
        fifo.audited_certs,
    );

    // In CI, the stability maps and cache tables land in the job's
    // step summary page.
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new().append(true).create(true).open(path) {
            let _ = writeln!(f, "{summary}");
        }
    }
}
