//! Experiment E1 (paper Figure 1): the simplified datapath architecture
//! diagram, regenerated from the live machine description — every number
//! in the block diagram is queried from the knowledge base, not drawn by
//! hand.
//!
//! Run with: `cargo run --example architecture_tour`

use nsc::arch::{AlsKind, KnowledgeBase};
use nsc::microcode::Census;

fn main() {
    let kb = KnowledgeBase::nsc_1988();
    let cfg = kb.config();
    let mem_mb = cfg.memory.bytes_per_plane() / (1024 * 1024);
    let cache_kb = cfg.cache.words_per_buffer * 8 / 1024;
    let t = kb.layout().alss_of_kind(AlsKind::Triplet).len();
    let d = kb.layout().alss_of_kind(AlsKind::Doublet).len();
    let s = kb.layout().alss_of_kind(AlsKind::Singlet).len();

    std::fs::create_dir_all("out").ok();
    let fig = format!(
        r#"            Figure 1 (regenerated): NSC datapath architecture
            ================================================

                          +------------------+
                          | Hyperspace Router|
                          +---------+--------+
                                    |
      +-------------------+  +------+-------+  +----------------------+
      | Double-Buffered   |  |              |  |  Memory Planes       |
      | Data Caches       +--+    Switch    +--+  {mem_mb} MB x {planes}        |
      | {cache_kb} KB x {caches} x {bufs}     |  |   Network    |  |  ({total_gb} GB per node)    |
      +-------------------+  |   (FLONET)   |  +----------------------+
                             |  {srcs} sources  |
                             |  {sinks} sinks    |
                             +--+--------+--+
                                |        |
        +-----------------------+--+  +--+--------------------+
        | Functional Units          |  | Shift/Delay Units    |
        | {fus} total: {t} triplets,      |  | {sdus} x {taps} taps           |
        | {d} doublets, {s} singlets    |  | {sduw}-word buffers   |
        +---------------------------+  +----------------------+

        clock {mhz} MHz  =>  peak {peak} MFLOPS/node; 64 nodes => {gfl:.2} GFLOPS, {sysgb} GB
"#,
        mem_mb = mem_mb,
        planes = cfg.memory.planes,
        total_gb = cfg.memory.total_gigabytes(),
        cache_kb = cache_kb,
        caches = cfg.cache.caches,
        bufs = cfg.cache.buffers,
        srcs = kb.sources().len(),
        sinks = kb.sinks().len(),
        fus = cfg.fu_count(),
        t = t,
        d = d,
        s = s,
        sdus = cfg.sdu.units,
        taps = cfg.sdu.taps_per_unit,
        sduw = cfg.sdu.buffer_words,
        mhz = cfg.clock_hz / 1_000_000,
        peak = cfg.peak_mflops(),
        gfl = cfg.system_peak_gflops(64),
        sysgb = cfg.system_memory_gb(64),
    );
    println!("{fig}");
    std::fs::write("out/fig1_datapath.txt", &fig).ok();

    println!("--- capability asymmetry (paper section 3) ---");
    for als in kb.layout().alss().iter().take(6) {
        let caps: Vec<String> =
            (0..als.kind.unit_count()).map(|p| als.kind.unit_caps(p).to_string()).collect();
        println!("  {} ({}): units [{}]", als.id, als.kind, caps.join(", "));
    }
    println!("  ... ({} ALSs total)\n", kb.layout().alss().len());

    println!("--- the microinstruction word (paper section 3, experiment T2) ---");
    println!("{}", Census::of_machine(&kb).render_table());
    println!("wrote out/fig1_datapath.txt");
}
