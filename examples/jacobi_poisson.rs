//! The paper's running example (Equation 1, Figures 2 and 11): point
//! Jacobi for the 3-D Poisson equation with a residual convergence check,
//! built as pipeline diagrams, compiled to microcode and executed on the
//! simulated NSC — then verified bit-for-bit against the host mirror.
//!
//! Writes the Figure 11 diagram render and the pseudo-code to `out/`.
//!
//! Run with: `cargo run --release --example jacobi_poisson`

use nsc::cfd::{
    build_jacobi_document, grid::manufactured_problem, host::jacobi_sweep_host,
    host::JacobiHostState, nsc_run::run_jacobi_on_node, JacobiVariant,
};
use nsc::codegen::emit_pseudocode;
use nsc::env::{NscError, VisualEnvironment};

fn main() -> Result<(), NscError> {
    let n = 16;
    let tol = 1e-7;
    let env = VisualEnvironment::nsc_1988();
    println!("solving -lap(u) = f on a {n}^3 grid, tolerance {tol:e}\n");

    // Figure 11: the completed pipeline diagram.
    let mut doc = build_jacobi_document(n, tol, 5000, JacobiVariant::Full);
    let compiled = env.session().compile(&mut doc)?;
    std::fs::create_dir_all("out").ok();
    for (name, art) in env.display_document(&doc) {
        if name.contains("even") {
            std::fs::write("out/fig11_jacobi_pipeline.txt", &art).ok();
            println!("--- Figure 11: completed Jacobi pipeline diagram ---");
            println!("{art}");
        }
    }
    std::fs::write("out/fig2_semantic_pseudocode.txt", emit_pseudocode(&doc)).ok();
    println!(
        "program: {} instruction(s), {} bits of microcode each",
        compiled.program().len(),
        nsc::microcode::MicroInstruction::encoded_bits(env.kb())
    );

    // Execute to convergence on the simulated node.
    let (u0, f, exact) = manufactured_problem(n);
    let mut node = env.node();
    let run = run_jacobi_on_node(&mut node, &u0, &f, tol, 5000, JacobiVariant::Full)?;
    println!(
        "\nconverged: {} after {} sweeps, residual {:.3e}",
        run.converged, run.sweeps, run.residual
    );
    println!(
        "simulated: {} cycles = {:.3} ms at 20 MHz, {:.1} MFLOPS achieved (peak 640)",
        run.counters.cycles,
        run.counters.seconds(20_000_000) * 1e3,
        run.mflops
    );
    println!("error vs exact solution: {:.3e} (discretization level)", run.u.linf_diff(&exact));

    // Bit-exact agreement with the host mirror.
    let mut host = JacobiHostState::new(&u0, &f);
    for _ in 0..run.sweeps {
        jacobi_sweep_host(&mut host);
    }
    let host_u = host.current();
    let identical = run.u.data.iter().zip(&host_u.data).all(|(a, b)| a.to_bits() == b.to_bits());
    println!("bit-for-bit match with host mirror over {} points: {identical}", host_u.len());
    assert!(identical);
    Ok(())
}
