//! Experiment T1 — the published system sizing: 640 MFLOPS per node,
//! 40 GFLOPS and 128 GB at 64 nodes.
//!
//! Sweeps the hypercube dimension 0..6 (1..64 nodes), runs the same
//! saturated-pipeline workload on every node concurrently, performs a
//! Gray-embedded ring halo exchange, and reports aggregate achieved
//! MFLOPS against the configured peak.
//!
//! Run with: `cargo run --release --example hypercube_scaling`

use nsc::arch::{
    FuId, FuOp, HypercubeConfig, InPort, KnowledgeBase, NodeId, PlaneId, SinkRef, SourceRef,
};
use nsc::microcode::{FuField, FuInputSel, MicroInstruction, ProgramBuilder};
use nsc::sim::{NscSystem, RunOptions};

/// A saturated instruction: four chains of eight multiply-accumulate-style
/// units each, keeping all 32 functional units busy every cycle.
fn saturated_program(kb: &KnowledgeBase, count: u32) -> nsc::microcode::MicroProgram {
    let mut ins = MicroInstruction::empty(kb);
    for chain in 0..4u8 {
        let read = PlaneId(chain);
        let write = PlaneId(4 + chain);
        *ins.plane_rd_mut(read) = nsc::microcode::PlaneDmaField::contiguous(0, count);
        *ins.plane_wr_mut(write) = nsc::microcode::PlaneDmaField::contiguous(0, count);
        let fus: Vec<FuId> = (0..8).map(|i| FuId(chain * 8 + i)).collect();
        for (i, &fu) in fus.iter().enumerate() {
            *ins.fu_mut(fu) = FuField {
                enabled: true,
                op: FuOp::MulAddConst,
                in_a: FuInputSel::Switch,
                in_b: FuInputSel::Constant(0),
                const_slot: 0,
                preload: Some(1.000001),
            };
            let src = if i == 0 { SourceRef::PlaneRead(read) } else { SourceRef::Fu(fus[i - 1]) };
            ins.switch.route(kb, src, SinkRef::FuIn(fu, InPort::A));
        }
        ins.switch.route(kb, SourceRef::Fu(fus[7]), SinkRef::PlaneWrite(write));
    }
    ins.seq = nsc::microcode::SequencerField::halt();
    let mut b = ProgramBuilder::new(kb, "saturate");
    b.push(ins);
    b.finish()
}

fn main() {
    let kb = KnowledgeBase::nsc_1988();
    let cfg = kb.config().clone();
    println!(
        "node peak: {} MFLOPS ({} FUs x {} MHz); paper claims 640",
        cfg.peak_mflops(),
        cfg.fu_count(),
        cfg.clock_hz / 1_000_000
    );
    println!(
        "64-node system: {:.2} GFLOPS peak, {} GB memory (paper: 40 GFLOPS, 128 GB)\n",
        cfg.system_peak_gflops(64),
        cfg.system_memory_gb(64)
    );

    let count = 65_536u32;
    let prog = saturated_program(&kb, count);
    println!("nodes   aggregate MFLOPS   % of peak   halo exchange");
    for dim in 0..=6u32 {
        let cube = HypercubeConfig::new(dim);
        let mut sys = NscSystem::new(cube, &kb);
        // Seed every node's input planes.
        for i in 0..sys.node_count() {
            for p in 0..4u8 {
                let data: Vec<f64> = (0..64).map(|x| (x + i) as f64 * 0.5).collect();
                sys.node_mut(NodeId(i as u16)).mem.plane_mut(PlaneId(p)).write_slice(0, &data);
            }
        }
        sys.run_on_all(&prog, &RunOptions::default()).expect("all nodes run");
        // Gray-embedded ring halo exchange: each subdomain sends one
        // xy-plane (4096 words) to its ring successor.
        let nodes = sys.node_count();
        // All ring exchanges proceed concurrently (Gray-embedded
        // neighbours use disjoint links): the halo cost is the slowest
        // single exchange, not the sum.
        let mut slowest_ns = 0u64;
        for i in 0..nodes {
            let a = sys.cube.ring_node(i);
            let b = sys.cube.ring_node((i + 1) % nodes);
            if a != b {
                slowest_ns = slowest_ns.max(sys.exchange(a, PlaneId(4), 0, b, PlaneId(5), 0, 4096));
            }
        }
        let clock = cfg.clock_hz;
        let compute_s =
            (0..nodes).map(|i| sys.node(NodeId(i as u16)).counters.cycles).max().unwrap_or(0)
                as f64
                / clock as f64;
        let total_s = compute_s + slowest_ns as f64 * 1e-9;
        let flops: u64 = (0..nodes).map(|i| sys.node(NodeId(i as u16)).counters.flops).sum();
        let mflops = flops as f64 / total_s / 1e6;
        let peak = cfg.peak_mflops() * nodes as f64;
        println!(
            "{nodes:>5}   {mflops:>16.1}   {:>8.1}%   {:.3} ms",
            100.0 * mflops / peak,
            slowest_ns as f64 * 1e-6
        );
    }
    println!("\nnote: efficiency reflects instruction setup and pipeline fill/drain;");
    println!("the streaming body runs at one result per unit per clock, as published.");
}
