//! A scripted interactive session reproducing the paper's Figures 4-10:
//! the empty window (Fig 5), selecting and positioning icons via palette
//! drags (Figs 6-7), rubber-banding a connection with the checker-filtered
//! menu (Fig 8), the DMA pop-up sub-window (Fig 9), and programming a
//! functional unit from the capability-filtered menu (Fig 10).
//!
//! Every snapshot is written to `out/figures/` as .txt and .svg.
//!
//! Run with: `cargo run --example editor_session`

use nsc::editor::{Event, Session, DRAW_X0, WIN_W};
use nsc::env::VisualEnvironment;
use std::path::Path;

fn main() {
    let env = VisualEnvironment::nsc_1988();
    let mut s = Session::new(env.editor("figure session"));
    let panel_x = WIN_W - 8;
    let row = |i: i32| 2 + 1 + 2 * i; // control-panel rows

    // Figure 5: the basic display window.
    s.snap("fig5 the basic display window");

    // Figure 6: selecting an icon and dragging its outline.
    s.feed([
        Event::MouseDown { x: panel_x, y: row(3) }, // TRIPLET
        Event::MouseMove { x: DRAW_X0 + 26, y: 6 },
    ])
    .snap("fig6 selecting and positioning an icon (drag in progress)")
    .feed([Event::MouseUp { x: DRAW_X0 + 26, y: 6 }]);

    // Figure 7: display after all ALSs (and storage) are positioned.
    s.feed([
        Event::MouseDown { x: panel_x, y: row(4) }, // MEMORY
        Event::MouseUp { x: DRAW_X0 + 3, y: 6 },
        Event::MouseDown { x: panel_x, y: row(4) }, // MEMORY (output)
        Event::MouseUp { x: DRAW_X0 + 52, y: 6 },
        Event::MouseDown { x: panel_x, y: row(5) }, // CACHE
        Event::MouseUp { x: DRAW_X0 + 52, y: 20 },
    ])
    .snap("fig7 display after all icons have been positioned");

    // Figure 8: establishing a connection (rubber band from the memory
    // icon's I/O pad to the triplet's first input).
    s.feed([
        Event::MouseDown { x: DRAW_X0 + 3, y: 7 }, // memory Io pad
        Event::MouseMove { x: DRAW_X0 + 16, y: 6 },
    ])
    .snap("fig8a rubber-band line during connection")
    .feed([Event::MouseUp { x: DRAW_X0 + 26, y: 6 }]); // triplet u0.inA pad

    // Figure 9: the DMA pop-up sub-window appears for storage wires.
    s.snap("fig9 popup subwindow for specifying the memory connection").feed([
        Event::Text("0".into()), // plane number
        Event::NextField,
        Event::NextField,
        Event::Text("10000".into()), // offset, as in the paper's figure
        Event::NextField,
        Event::Text("1".into()), // stride
        Event::SubmitForm,
    ]);

    // Figure 10: programming a functional unit from the pop-up menu.
    s.feed([Event::MouseDown { x: DRAW_X0 + 29, y: 6 }]) // unit 0 box
        .snap("fig10 operation menu for a functional unit")
        .feed([Event::MenuPick(0)]); // ADD

    s.snap("final state after the scripted walkthrough");

    let dir = Path::new("out/figures");
    let stems = s.save_all(dir).expect("snapshots written");
    println!("wrote {} snapshots to {}:", stems.len(), dir.display());
    for stem in &stems {
        println!("  {stem}.txt / {stem}.svg");
    }
    println!("\nlast frame:\n{}", s.snapshots.last().unwrap().ascii);
    println!(
        "interaction effort: {} mouse actions, {} menu picks, {} typed characters",
        s.editor.effort.mouse_actions, s.editor.effort.menu_picks, s.editor.effort.text_chars
    );
    // The session must have produced real semantic content.
    let d = s.editor.doc.pipeline(s.editor.current).unwrap();
    assert!(d.icon_count() >= 4, "icons placed");
    assert!(d.connection_count() >= 1, "wire established");
    assert!(d.fu_assigns().count() >= 1, "unit programmed");
}
