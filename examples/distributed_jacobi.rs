//! The paper's running example, scaled out: the 3-D Poisson Jacobi solver
//! strip-decomposed across the hypercube with halo exchange.
//!
//! Each node compiles the sweep pipeline on its own slab, the sweeps run
//! concurrently on real threads, ghost planes move through the hyperspace
//! router between sweeps (full-duplex sendrecv per strip boundary), and
//! the convergence test is a butterfly max-reduction of the per-node
//! residuals. The `overlap` rows run the overlapped sweep engine: each
//! sweep splits into interior and boundary-shell pipelines and the halo
//! exchange hides under the interior phase, so only its non-overlapped
//! remainder shows up as communication time. The distributed iterate is
//! bit-identical to the serial one in every row.
//!
//! Run with: `cargo run --release --example distributed_jacobi`

use nsc::arch::HypercubeConfig;
use nsc::cfd::{grid::manufactured_problem, DistributedJacobiWorkload, PartitionSpec};
use nsc::env::{Session, Workload};
use nsc::sim::NscSystem;

fn main() {
    let n = 16;
    let (u0, f, exact) = manufactured_problem(n);
    let session = Session::nsc_1988();
    let clock = session.kb().config().clock_hz;

    println!("distributed Jacobi, {n}^3 Poisson, tol 1e-9:\n");
    println!(
        "nodes   part    overlap   sweeps   aggregate MFLOPS   simulated s   comm share   error"
    );
    let mut serial_u: Option<Vec<u64>> = None;
    for (dim, spec, overlap) in [
        (0, PartitionSpec::Strip, false),
        (1, PartitionSpec::Strip, false),
        (2, PartitionSpec::Strip, false),
        (2, PartitionSpec::Block, false),
        (3, PartitionSpec::Strip, false),
        (3, PartitionSpec::Strip, true),
        (3, PartitionSpec::Block, false),
        (3, PartitionSpec::Block, true),
    ] {
        let mut sys = NscSystem::new(HypercubeConfig::new(dim), session.kb());
        let w = DistributedJacobiWorkload {
            u0: u0.clone(),
            f: f.clone(),
            tol: 1e-9,
            max_pairs: 2000,
            partition: spec,
            overlap,
        };
        let run = w.execute(&session, &mut sys).expect("distributed solve");
        assert!(run.converged, "did not converge at {} nodes", sys.node_count());
        let comm_s: f64 = run
            .per_node
            .iter()
            .map(|c| c.seconds_with_comm(clock) - c.seconds(clock))
            .fold(0.0, f64::max);
        println!(
            "{:>5}   {:<5}   {:>7}   {:>6}   {:>16.1}   {:>11.4}   {:>9.1}%   {:.3e}",
            sys.node_count(),
            format!("{spec:?}").to_lowercase(),
            if overlap { "on" } else { "off" },
            run.sweeps,
            run.aggregate_mflops,
            run.simulated_seconds,
            100.0 * comm_s / run.simulated_seconds,
            run.u.linf_diff(&exact)
        );

        // The decomposition must not change the arithmetic: every cube
        // size and every partition shape produces the same bits.
        let bits: Vec<u64> = run.u.data.iter().map(|v| v.to_bits()).collect();
        match &serial_u {
            None => serial_u = Some(bits),
            Some(reference) => {
                assert_eq!(reference, &bits, "distributed solution diverged from the serial bits")
            }
        }
    }
    println!("\nall cube sizes and partitions agree bit-for-bit with the single-node solve.");
}
