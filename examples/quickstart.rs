//! Quickstart: the complete Figure 3 flow in fifty lines.
//!
//! Builds a one-instruction program (`y = |x| * 2` over a 16-element
//! vector) through the editor API, checks it, generates microcode, prints
//! the disassembly and the 1988-prototype-style pseudo-code, and executes
//! it on the simulated NSC node.
//!
//! Run with: `cargo run --example quickstart`

use nsc::arch::{AlsKind, FuOp, InPort, PlaneId};
use nsc::codegen::emit_pseudocode;
use nsc::diagram::{DmaAttrs, FuAssign, IconKind, PadLoc, PadRef, Point};
use nsc::env::{NscError, VisualEnvironment};
use nsc::sim::RunOptions;

fn main() -> Result<(), NscError> {
    let env = VisualEnvironment::nsc_1988();
    println!(
        "machine: {} — {} FUs, peak {} MFLOPS",
        env.kb().config().name,
        env.kb().config().fu_count(),
        env.kb().config().peak_mflops()
    );

    // --- edit (paper §5) ---
    let mut ed = env.editor("quickstart");
    ed.set_stream_len(16);
    let src = ed.place_icon(IconKind::Memory { plane: Some(PlaneId(0)) }, Point::new(22, 6));
    let als = ed.place_icon(IconKind::als(AlsKind::Doublet), Point::new(45, 5));
    let dst = ed.place_icon(IconKind::Memory { plane: Some(PlaneId(1)) }, Point::new(72, 6));
    let c1 = ed
        .connect(
            PadLoc::new(src, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
        )
        .expect("legal wire");
    ed.set_dma(c1, DmaAttrs::at_address(0));
    ed.assign_fu(als, 0, FuAssign::unary(FuOp::Abs));
    ed.connect(
        PadLoc::new(als, PadRef::FuOut { pos: 0 }),
        PadLoc::new(als, PadRef::FuIn { pos: 1, port: InPort::A }),
    );
    ed.assign_fu(als, 1, FuAssign::with_const(FuOp::Mul, 2.0));
    let c3 = ed
        .connect(PadLoc::new(als, PadRef::FuOut { pos: 1 }), PadLoc::new(dst, PadRef::Io))
        .expect("legal wire");
    ed.set_dma(c3, DmaAttrs::at_address(0));
    println!("\n--- the diagram (what the user sees) ---");
    println!("{}", nsc::editor::render_ascii(&ed));

    // --- compile: bind + check + generate, as one fallible stage (§4) ---
    let session = env.session();
    let mut doc = ed.doc.clone();
    let compiled = session.compile(&mut doc)?;
    println!("--- pseudo-code (the 1988 prototype's output) ---");
    println!("{}", emit_pseudocode(&doc));
    println!("--- microcode disassembly (what the prototype could not yet emit) ---");
    println!("{}", compiled.program().disassemble(session.kb()));

    // --- execute on the simulated NSC ---
    let mut node = session.node();
    let input: Vec<f64> = (0..16).map(|i| (i as f64) - 8.0).collect();
    node.mem.plane_mut(PlaneId(0)).write_slice(0, &input);
    let report = compiled.run(&mut node, &RunOptions::default())?;
    let result = node.mem.plane(PlaneId(1)).read_vec(0, 16);
    println!("input : {input:?}");
    println!("output: {result:?}");
    println!(
        "executed {} instruction(s) in {} cycles ({:.1} us simulated) at {:.1} MFLOPS",
        report.stats.executed,
        report.counters.cycles,
        report.counters.seconds(session.kb().config().clock_hz) * 1e6,
        report.mflops
    );
    assert!(result.iter().zip(&input).all(|(y, x)| *y == 2.0 * x.abs()));
    println!("verified: y = 2*|x| on every element");
    Ok(())
}
