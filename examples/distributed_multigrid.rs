//! The multigrid V-cycle running machine-resident across the hypercube —
//! the solver family the Navier-Stokes Computer was built for (paper ref.
//! [6]), distributed at last.
//!
//! Strips could never carry multigrid: the coarse grids go thinner than
//! one plane per node long before the fine grid does. On the 2-D block
//! decomposition (Gray-embedded torus) the two split axes shrink
//! together, each coarse level's partition is derived from the finer
//! one, and only the sub-`5^3` tail agglomerates to the host. Damped
//! Jacobi smoothing runs as compiled pipelines on the nodes with face
//! exchanges through the hyperspace router; restriction and prolongation
//! cross block boundaries through one ghost layer.
//!
//! The distributed solve is **bit-identical** to the serial
//! `MultigridWorkload` — iterate and residual history — at every cube
//! size and in both execution modes, which this example asserts: the
//! `overlap` column runs the smoother through the overlapped sweep
//! engine, hiding each face exchange under the interior pipelines.
//!
//! Run with: `cargo run --release --example distributed_multigrid`

use nsc::arch::HypercubeConfig;
use nsc::cfd::{
    grid::manufactured_problem, DistributedMultigridWorkload, MgOptions, MultigridWorkload,
};
use nsc::env::{Session, Workload};
use nsc::sim::NscSystem;

fn main() {
    let n = 17;
    let tol = 1e-8;
    let session = Session::nsc_1988();

    // The serial reference: host V-cycles, NSC-priced smoothing.
    let (u0, f, exact) = manufactured_problem(n);
    let serial = MultigridWorkload {
        u0: u0.clone(),
        f: f.clone(),
        tol,
        max_cycles: 25,
        opts: MgOptions::default(),
    };
    let mut node = session.node();
    let sref = serial.execute(&session, &mut node).expect("serial multigrid");
    assert!(sref.converged);
    println!(
        "serial multigrid V(2,2), {n}^3 Poisson, tol {tol:e}: {} cycles, \
         {:.1} fine-grid-equivalent sweeps, err {:.3e}\n",
        sref.stats.cycles,
        sref.stats.fine_equivalent_sweeps,
        sref.u.linf_diff(&exact)
    );

    println!("nodes   torus   overlap   dist levels   cycles   aggregate MFLOPS   simulated ms");
    for dim in 0..=3u32 {
        let mut sync_ms = f64::INFINITY;
        for overlap in [false, true] {
            let mut sys = NscSystem::new(HypercubeConfig::new(dim), session.kb());
            let torus = sys.cube.torus2d_near_square();
            let w = DistributedMultigridWorkload {
                u0: u0.clone(),
                f: f.clone(),
                tol,
                max_cycles: 25,
                opts: MgOptions::default(),
                overlap,
            };
            let run = w.execute(&session, &mut sys).expect("distributed multigrid");
            assert!(run.converged, "did not converge at {} nodes", sys.node_count());
            println!(
                "{:>5}   {:>2}x{:<2}   {:>7}   {:>11}   {:>6}   {:>16.1}   {:>12.3}",
                sys.node_count(),
                torus.rows(),
                torus.cols(),
                if overlap { "on" } else { "off" },
                run.distributed_levels,
                run.stats.cycles,
                run.aggregate_mflops,
                run.simulated_seconds * 1e3,
            );
            if overlap {
                assert!(
                    dim == 0 || run.simulated_seconds * 1e3 < sync_ms,
                    "overlap must beat the synchronized time on a real cube"
                );
            } else {
                sync_ms = run.simulated_seconds * 1e3;
            }

            // The acceptance bar: bit-identical to the serial workload,
            // down to the residual history, in both modes.
            assert_eq!(run.stats.cycles, sref.stats.cycles);
            for (a, b) in run.u.data.iter().zip(&sref.u.data) {
                assert_eq!(a.to_bits(), b.to_bits(), "iterate diverged from serial");
            }
            for (a, b) in run.stats.residual_history.iter().zip(&sref.stats.residual_history) {
                assert_eq!(a.to_bits(), b.to_bits(), "residual history diverged");
            }
        }
    }
    println!("\nall cube sizes and both modes agree bit-for-bit with the serial V-cycle.");
}
