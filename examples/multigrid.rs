//! Experiment T6 — the ref-[6] context: multigrid vs point Jacobi.
//!
//! The paper's Jacobi example comes from Nosenchuck, Krist & Zang's
//! multigrid work for the NSC. This example measures both methods on the
//! same manufactured Poisson problem: the host-level work comparison
//! (fine-grid-equivalent sweeps) and the simulated-NSC time for the Jacobi
//! smoothing that dominates multigrid's cost.
//!
//! Run with: `cargo run --release --example multigrid`

use nsc::cfd::{
    grid::manufactured_problem, host::jacobi_sweep_host, host::JacobiHostState, MgOptions,
    MultigridWorkload,
};
use nsc::env::{NscError, Session, Workload};

fn main() -> Result<(), NscError> {
    let n = 17; // 2^4 + 1 for clean coarsening
    let tol = 1e-7;
    println!("-lap(u) = f on a {n}^3 grid, residual tolerance {tol:e}\n");

    // Host: plain Jacobi sweep count.
    let (u0, f, _) = manufactured_problem(n);
    let mut host = JacobiHostState::new(&u0, &f);
    let mut jacobi_sweeps = 0usize;
    for _ in 0..100_000 {
        jacobi_sweeps += 1;
        if jacobi_sweep_host(&mut host) < tol {
            break;
        }
    }

    // Multigrid as a Workload: host V-cycles plus the NSC-simulated
    // smoothing kernel, driven through the typed Session pipeline.
    let (u0, f2, _) = manufactured_problem(n);
    let session = Session::nsc_1988();
    let mut node = session.node();
    let workload = MultigridWorkload { u0, f: f2, tol, max_cycles: 50, opts: MgOptions::default() };
    println!("workload: {}", workload.name());
    let run = workload.execute(&session, &mut node)?;
    let stats = &run.stats;

    println!("method                    iterations   fine-grid-equivalent sweeps");
    println!("point Jacobi              {jacobi_sweeps:>10}   {jacobi_sweeps:>10}");
    println!(
        "multigrid V(2,2)          {:>10}   {:>10.1}",
        stats.cycles, stats.fine_equivalent_sweeps
    );
    let speedup = jacobi_sweeps as f64 / stats.fine_equivalent_sweeps;
    println!("multigrid work advantage: {speedup:.0}x fewer fine-grid sweeps\n");

    // NSC-simulated: time per Jacobi sweep pair of the smoothing kernel
    // multigrid would run on the machine (measured by the workload).
    let per_sweep = run.smoothing.counters.seconds(20_000_000) / run.smoothing.sweeps.max(1) as f64;
    println!(
        "simulated NSC smoothing cost ({n}^3): {:.3} ms/sweep at {:.0} MFLOPS",
        per_sweep * 1e3,
        run.smoothing.mflops
    );
    println!(
        "=> estimated time to tolerance: Jacobi {:.1} ms vs multigrid ~{:.1} ms",
        jacobi_sweeps as f64 * per_sweep * 1e3,
        run.est_seconds * 1e3
    );
    assert!(speedup > 5.0, "multigrid must win decisively");
    assert!(run.converged, "V-cycles reach the tolerance");
    Ok(())
}
