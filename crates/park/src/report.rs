//! What the park hands back: per-job reports and the aggregate
//! machine-level figures an operator watches (utilization, throughput,
//! fairness across tenants).

use nsc_arch::SubCube;
use nsc_sim::PerfCounters;
use serde::Serialize;
use std::collections::HashMap;

use crate::job::JobId;

/// The full record of one job's pass through the park.
///
/// All counters and timings are *measured by the park* — it snapshots
/// the leased nodes' counters around the run — so a payload cannot
/// mis-report its own usage.
#[derive(Debug, Clone, Serialize)]
pub struct JobReport {
    /// The job's queue id.
    pub id: JobId,
    /// Submitting tenant.
    pub tenant: String,
    /// Workload name.
    pub name: String,
    /// The sub-cube the job ran on.
    pub subcube: SubCube,
    /// Nodes leased (`subcube.nodes()`).
    pub nodes: usize,
    /// Arrival time on the park clock, seconds.
    pub submitted_at: f64,
    /// When the job started on the machine, seconds.
    pub started_at: f64,
    /// When the job finished, seconds.
    pub finished_at: f64,
    /// Seconds spent waiting in the queue (`started_at - submitted_at`).
    pub queue_wait: f64,
    /// Simulated machine time the job ran for (critical-path node,
    /// compute plus non-overlapped communication).
    pub simulated_seconds: f64,
    /// System-level counter deltas across the leased nodes (parallel
    /// merge: elapsed time is the critical path, work sums).
    pub counters: PerfCounters,
    /// Achieved MFLOPS over the lease.
    pub mflops: f64,
    /// The payload's reported convergence figure.
    pub residual: f64,
    /// The payload's error, when it failed. Failed jobs still release
    /// their sub-cube and appear in the aggregate's `failed` count.
    pub error: Option<String>,
}

/// One tenant's accumulated consumption.
#[derive(Debug, Clone, Serialize)]
pub struct TenantUsage {
    /// Tenant name.
    pub tenant: String,
    /// Jobs completed (including failed ones — they held nodes too).
    pub jobs: usize,
    /// Node-seconds consumed: `Σ nodes × simulated_seconds`.
    pub node_seconds: f64,
}

/// Aggregate figures for one park run — the operator's dashboard.
#[derive(Debug, Clone, Serialize)]
pub struct ParkReport {
    /// Scheduling policy label ([`crate::SchedPolicy::label`]).
    pub policy: String,
    /// Nodes in the whole machine.
    pub capacity_nodes: usize,
    /// Per-job records, in completion order.
    pub jobs: Vec<JobReport>,
    /// Park-clock time from zero to the last completion, seconds.
    pub makespan: f64,
    /// `Σ nodes × simulated_seconds` over all jobs.
    pub busy_node_seconds: f64,
    /// Fraction of the machine's node-seconds spent running jobs:
    /// `busy_node_seconds / (capacity_nodes × makespan)`.
    pub utilization: f64,
    /// Completed jobs per park-clock second (`jobs / makespan`).
    pub jobs_per_second: f64,
    /// Per-tenant consumption, sorted by tenant name.
    pub per_tenant: Vec<TenantUsage>,
    /// Jain's fairness index over per-tenant node-seconds:
    /// `(Σx)² / (n · Σx²)` — 1.0 is perfectly even, `1/n` is one tenant
    /// taking everything.
    pub fairness: f64,
    /// Jobs whose payload returned an error.
    pub failed: usize,
    /// Jobs whose certificates the spot-audit policy re-verified. Every
    /// audited job passed — a rejected certificate fails the run instead
    /// of appearing here.
    pub audited_jobs: usize,
    /// Total certificates verified across the audited jobs.
    pub audited_certs: usize,
}

impl ParkReport {
    /// Assemble the aggregate from completed job reports.
    pub(crate) fn assemble(
        policy: &str,
        capacity_nodes: usize,
        jobs: Vec<JobReport>,
        usage: &HashMap<String, (usize, f64)>,
        audited: (usize, usize),
    ) -> ParkReport {
        let makespan = jobs.iter().map(|j| j.finished_at).fold(0.0, f64::max);
        let busy_node_seconds =
            jobs.iter().map(|j| j.nodes as f64 * j.simulated_seconds).sum::<f64>();
        let utilization = if makespan > 0.0 {
            busy_node_seconds / (capacity_nodes as f64 * makespan)
        } else {
            0.0
        };
        let jobs_per_second = if makespan > 0.0 { jobs.len() as f64 / makespan } else { 0.0 };
        let mut per_tenant: Vec<TenantUsage> = usage
            .iter()
            .map(|(tenant, &(jobs, node_seconds))| TenantUsage {
                tenant: tenant.clone(),
                jobs,
                node_seconds,
            })
            .collect();
        per_tenant.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let fairness = jain_index(per_tenant.iter().map(|t| t.node_seconds));
        let failed = jobs.iter().filter(|j| j.error.is_some()).count();
        ParkReport {
            policy: policy.to_string(),
            capacity_nodes,
            jobs,
            makespan,
            busy_node_seconds,
            utilization,
            jobs_per_second,
            per_tenant,
            fairness,
            failed,
            audited_jobs: audited.0,
            audited_certs: audited.1,
        }
    }

    /// The report for one job by queue id.
    pub fn job(&self, id: JobId) -> Option<&JobReport> {
        self.jobs.iter().find(|j| j.id == id)
    }
}

/// Jain's fairness index `(Σx)² / (n · Σx²)` over a set of shares.
/// Empty or all-zero shares count as perfectly fair (1.0).
fn jain_index(shares: impl Iterator<Item = f64>) -> f64 {
    let (n, sum, sum_sq) =
        shares.fold((0usize, 0.0f64, 0.0f64), |(n, s, q), x| (n + 1, s + x, q + x * x));
    if n == 0 || sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_brackets() {
        assert_eq!(jain_index([].into_iter()), 1.0);
        assert!((jain_index([3.0, 3.0, 3.0].into_iter()) - 1.0).abs() < 1e-12);
        let skew = jain_index([9.0, 0.0, 0.0].into_iter());
        assert!((skew - 1.0 / 3.0).abs() < 1e-12, "one tenant hogging = 1/n");
    }

    #[test]
    fn aggregate_math() {
        let mk = |id: usize, nodes: usize, fin: f64, dur: f64| JobReport {
            id,
            tenant: "t".into(),
            name: "j".into(),
            subcube: SubCube { base: nsc_arch::NodeId(0), dimension: 0 },
            nodes,
            submitted_at: 0.0,
            started_at: fin - dur,
            finished_at: fin,
            queue_wait: 0.0,
            simulated_seconds: dur,
            counters: PerfCounters::default(),
            mflops: 0.0,
            residual: 0.0,
            error: None,
        };
        let mut usage = HashMap::new();
        usage.insert("t".to_string(), (2usize, 6.0f64));
        let r = ParkReport::assemble(
            "fifo",
            4,
            vec![mk(0, 2, 2.0, 2.0), mk(1, 1, 2.0, 2.0)],
            &usage,
            (1, 3),
        );
        assert_eq!(r.makespan, 2.0);
        assert_eq!((r.audited_jobs, r.audited_certs), (1, 3));
        assert_eq!(r.busy_node_seconds, 6.0);
        assert!((r.utilization - 6.0 / 8.0).abs() < 1e-12);
        assert!((r.jobs_per_second - 1.0).abs() < 1e-12);
        assert_eq!(r.failed, 0);
        assert_eq!(r.fairness, 1.0, "single tenant is trivially fair");
    }
}
