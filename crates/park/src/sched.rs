//! Scheduling policies: which arrived jobs start on the free capacity.
//!
//! Every policy answers the same question — given the arrival-ordered
//! waiting list, the allocator's current free map, and per-tenant usage
//! so far, which jobs start *now*? Admission is probed against a clone
//! of the real buddy allocator, so a policy can never admit a set the
//! machine cannot actually host (fragmentation included).

use crate::job::JobId;
use nsc_arch::SubCubeAllocator;
use std::collections::HashMap;

/// One waiting job as the scheduler sees it.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The job's queue id (also its submission rank).
    pub id: JobId,
    /// Requested sub-cube dimension.
    pub dim: u32,
    /// Submitting tenant.
    pub tenant: String,
}

/// How the park picks the next jobs to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Strict arrival order: jobs start in submission order and the
    /// whole queue waits whenever its head does not fit. Simple,
    /// starvation-free, and the baseline the smarter policies must beat.
    #[default]
    Fifo,
    /// FIFO with backfill: when the head does not fit, later jobs that
    /// *do* fit start anyway — small jobs stream through the gaps while
    /// a big allocation drains. Higher utilization and throughput on
    /// mixed job sizes; a permanently full machine could in principle
    /// starve a big job, which the draining-lease event loop prevents
    /// (capacity is only ever returned, never grown, between decisions).
    Backfill,
    /// Backfill ordered by tenant usage: among arrived jobs, tenants
    /// with the least node-seconds consumed go first (ties in submission
    /// order), then admission greedily fills as backfill does.
    FairShare,
}

impl SchedPolicy {
    /// Decide which of `waiting` (arrival-ordered) start now. `usage`
    /// maps tenants to node-seconds consumed so far. The returned ids
    /// are in admission order and are guaranteed — via a dry run against
    /// a clone of `alloc` — to all fit simultaneously.
    pub fn admit(
        &self,
        waiting: &[Candidate],
        alloc: &SubCubeAllocator,
        usage: &HashMap<String, f64>,
    ) -> Vec<JobId> {
        let mut probe = alloc.clone();
        let mut admitted = Vec::new();
        match self {
            SchedPolicy::Fifo => {
                for c in waiting {
                    if probe.allocate(c.dim).is_some() {
                        admitted.push(c.id);
                    } else {
                        break; // the head blocks the queue
                    }
                }
            }
            SchedPolicy::Backfill => {
                for c in waiting {
                    if probe.allocate(c.dim).is_some() {
                        admitted.push(c.id);
                    }
                }
            }
            SchedPolicy::FairShare => {
                let mut order: Vec<&Candidate> = waiting.iter().collect();
                // Stable sort: ties (same usage) stay in submission order.
                order.sort_by(|a, b| {
                    let ua = usage.get(&a.tenant).copied().unwrap_or(0.0);
                    let ub = usage.get(&b.tenant).copied().unwrap_or(0.0);
                    ua.partial_cmp(&ub).expect("usage is finite")
                });
                for c in order {
                    if probe.allocate(c.dim).is_some() {
                        admitted.push(c.id);
                    }
                }
            }
        }
        admitted
    }

    /// The policy's report label.
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Backfill => "backfill",
            SchedPolicy::FairShare => "fair-share",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::HypercubeConfig;

    fn cands(dims: &[(u32, &str)]) -> Vec<Candidate> {
        dims.iter()
            .enumerate()
            .map(|(id, &(dim, tenant))| Candidate { id, dim, tenant: tenant.into() })
            .collect()
    }

    #[test]
    fn fifo_blocks_behind_a_head_that_does_not_fit() {
        let alloc = SubCubeAllocator::new(&HypercubeConfig::new(2)); // 4 nodes
        let waiting = cands(&[(3, "a"), (0, "b"), (0, "b")]); // head wants 8
        let usage = HashMap::new();
        assert!(SchedPolicy::Fifo.admit(&waiting, &alloc, &usage).is_empty());
        // Backfill lets the small jobs through the gap.
        assert_eq!(SchedPolicy::Backfill.admit(&waiting, &alloc, &usage), vec![1, 2]);
    }

    #[test]
    fn admission_never_oversubscribes() {
        let alloc = SubCubeAllocator::new(&HypercubeConfig::new(2)); // 4 nodes
        let waiting = cands(&[(1, "a"), (1, "a"), (1, "a")]); // 3 x 2 nodes
        let usage = HashMap::new();
        for policy in [SchedPolicy::Fifo, SchedPolicy::Backfill, SchedPolicy::FairShare] {
            let ids = policy.admit(&waiting, &alloc, &usage);
            assert_eq!(ids.len(), 2, "{policy:?}: only two 2-node jobs fit");
        }
    }

    #[test]
    fn fair_share_prefers_the_lightest_tenant() {
        let alloc = SubCubeAllocator::new(&HypercubeConfig::new(1)); // 2 nodes
        let waiting = cands(&[(1, "heavy"), (1, "light")]);
        let mut usage = HashMap::new();
        usage.insert("heavy".to_string(), 10.0);
        usage.insert("light".to_string(), 1.0);
        assert_eq!(SchedPolicy::FairShare.admit(&waiting, &alloc, &usage), vec![1]);
        // FIFO ignores usage and serves submission order.
        assert_eq!(SchedPolicy::Fifo.admit(&waiting, &alloc, &usage), vec![0]);
    }
}
