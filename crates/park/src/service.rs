//! The machine park itself: one simulated NSC shared by many jobs.
//!
//! [`MachinePark`] owns the physical machine as a pool of node slots plus
//! a buddy [`SubCubeAllocator`] over them. [`MachinePark::run`] drives a
//! deterministic event loop on a simulated park clock:
//!
//! 1. **Admit** — the [`SchedPolicy`] picks which arrived jobs start on
//!    the free capacity (probed against a clone of the allocator).
//! 2. **Lease** — each admitted job gets its sub-cube: the matching node
//!    slots are taken from the pool and rebuilt as a fresh
//!    [`NscSystem`] of the job's dimension. Leased nodes are *wiped*
//!    (fresh planes and caches — tenant isolation, like any shared
//!    facility) but keep their cumulative counters, so machine-lifetime
//!    accounting survives across tenants.
//! 3. **Execute** — the admitted batch runs concurrently on host scoped
//!    threads, all sharing one [`Session`] (and thus one compiled-kernel
//!    cache: the same sweep document compiles once no matter how many
//!    tenants submit it). The park snapshots each leased node's counters
//!    around the run and takes the *delta* as the job's usage — payloads
//!    cannot mis-report.
//! 4. **Advance** — each job's simulated duration is its critical-path
//!    node's compute-plus-unhidden-communication time; the park clock
//!    jumps to the next completion or arrival, completed leases return
//!    their nodes and free their sub-cubes, and admission runs again.
//!
//! Because an aligned sub-cube of a hypercube is itself a hypercube
//! (local address `i` is physical node `base | i`, and XOR distances
//! never touch the shared high bits), a job's sweep schedule, hop
//! counts, and router charges inside its lease are exactly those of a
//! standalone machine of the same size — park results are bit-identical
//! to standalone runs by construction, which the integration tests
//! assert workload by workload.

use nsc_arch::{HypercubeConfig, SubCube, SubCubeAllocator};
use nsc_cert::{verify, Expected, LeaseCert};
use nsc_core::{certify::machine_limits, NscError, Session};
use nsc_sim::{NodeSim, NscSystem, PerfCounters};
use std::collections::HashMap;
use std::sync::Arc;

use crate::job::{Job, JobId, JobOutcome, JobPayload};

/// What one leased thread hands back: the advanced nodes plus the
/// payload's result.
type LeaseResult = (Vec<NodeSim>, Result<JobOutcome, NscError>);
use crate::queue::JobQueue;
use crate::report::{JobReport, ParkReport};
use crate::sched::{Candidate, SchedPolicy};

/// One job currently holding a lease, waiting for its simulated
/// completion time. The host execution already happened at admission;
/// what remains is returning the nodes when the park clock catches up.
struct RunningJob {
    id: JobId,
    subcube: SubCube,
    started_at: f64,
    end: f64,
    /// The leased nodes, counters advanced by the run, to put back.
    nodes: Vec<NodeSim>,
    /// Merged counter delta across the lease (parallel `absorb`).
    counters: PerfCounters,
    simulated_seconds: f64,
    outcome: Result<JobOutcome, NscError>,
}

/// A multi-tenant job service over one simulated NSC.
///
/// # Example
///
/// Two tenants share a 2-node machine; each job runs on a leased 1-node
/// sub-cube and the park reports per-job and aggregate figures:
///
/// ```
/// use nsc_core::Session;
/// use nsc_park::{Job, MachinePark, SchedPolicy};
///
/// let (u0, f, _) = nsc_cfd::grid::manufactured_problem(5);
/// let jacobi = nsc_cfd::DistributedJacobiWorkload {
///     u0,
///     f,
///     tol: 1e-3,
///     max_pairs: 50,
///     partition: nsc_cfd::PartitionSpec::Auto,
///     overlap: false,
/// };
///
/// let mut park = MachinePark::new(Session::nsc_1988(), 1); // 2 nodes
/// park.submit(Job::new("ada", 0, jacobi.clone()))?;
/// park.submit(Job::new("grace", 0, jacobi))?;
///
/// let report = park.run(SchedPolicy::Fifo)?;
/// assert_eq!(report.jobs.len(), 2);
/// assert_eq!(report.failed, 0);
/// // Both 1-node jobs fit at once, so neither waited in the queue.
/// assert!(report.jobs.iter().all(|j| j.queue_wait == 0.0));
/// assert!(report.utilization > 0.0 && report.utilization <= 1.0);
/// # Ok::<(), nsc_core::NscError>(())
/// ```
pub struct MachinePark {
    session: Session,
    cube: HypercubeConfig,
    /// Physical node slots; `None` while a lease holds the node.
    slots: Vec<Option<NodeSim>>,
    alloc: SubCubeAllocator,
    queue: JobQueue,
    clock_hz: u64,
    /// Completed jobs' solution bits, kept for identity audits.
    outcomes: HashMap<JobId, JobOutcome>,
    /// Fraction of retiring jobs whose certificates get re-verified.
    audit_fraction: f64,
}

impl MachinePark {
    /// A park over a fresh dimension-`dim` machine (`2^dim` nodes) for
    /// the session's machine description.
    pub fn new(session: Session, dim: u32) -> Self {
        let cube = HypercubeConfig::new(dim);
        let slots = (0..cube.nodes()).map(|_| Some(session.node())).collect();
        let alloc = SubCubeAllocator::new(&cube);
        let clock_hz = session.kb().config().clock_hz;
        MachinePark {
            session,
            cube,
            slots,
            alloc,
            queue: JobQueue::new(),
            clock_hz,
            outcomes: HashMap::new(),
            audit_fraction: 0.0,
        }
    }

    /// Spot-audit policy: re-verify the compile certificates of (roughly)
    /// this fraction of retiring jobs through `nsc_cert::verify`, pinned
    /// to this park's machine limits. `0.0` (the default) audits nothing,
    /// `1.0` audits every job. Selection is deterministic — job ids at a
    /// fixed stride of `round(1 / fraction)` — so the same submissions
    /// audit the same jobs on every run. Any rejected certificate fails
    /// the whole [`MachinePark::run`] with the verifier's violation: a
    /// bad certificate in a shared facility is an integrity event, not a
    /// per-job footnote.
    pub fn with_audit_fraction(mut self, fraction: f64) -> Self {
        self.set_audit_fraction(fraction);
        self
    }

    /// Set the spot-audit fraction (see [`MachinePark::with_audit_fraction`]).
    pub fn set_audit_fraction(&mut self, fraction: f64) {
        self.audit_fraction = fraction.clamp(0.0, 1.0);
    }

    /// The configured spot-audit fraction.
    pub fn audit_fraction(&self) -> f64 {
        self.audit_fraction
    }

    /// Whether the deterministic spot-audit policy selects this job.
    fn audits(&self, id: JobId) -> bool {
        if self.audit_fraction <= 0.0 {
            return false;
        }
        let stride = (1.0 / self.audit_fraction).round().max(1.0) as usize;
        id.is_multiple_of(stride)
    }

    /// The machine's node count.
    pub fn capacity_nodes(&self) -> usize {
        self.cube.nodes()
    }

    /// The session every job compiles through (shared kernel cache).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Queue a job. Fails when the job asks for a bigger cube than the
    /// machine has.
    pub fn submit(&mut self, job: Job) -> Result<JobId, NscError> {
        if job.dim > self.cube.dimension {
            return Err(NscError::Workload(format!(
                "job wants a dimension-{} sub-cube but the park machine is dimension {}",
                job.dim, self.cube.dimension
            )));
        }
        Ok(self.queue.submit(job))
    }

    /// Queue a whole batch, in order, returning the ids in submission
    /// order. All-or-nothing: the first oversized job rejects the batch
    /// and nothing is queued — the batched path sweep engines use to
    /// place an ensemble's members atomically.
    pub fn submit_batch(
        &mut self,
        jobs: impl IntoIterator<Item = Job>,
    ) -> Result<Vec<JobId>, NscError> {
        let jobs: Vec<Job> = jobs.into_iter().collect();
        if let Some(bad) = jobs.iter().find(|j| j.dim > self.cube.dimension) {
            return Err(NscError::Workload(format!(
                "batch job '{}' wants a dimension-{} sub-cube but the park machine is \
                 dimension {}; nothing was queued",
                bad.name(),
                bad.dim,
                self.cube.dimension
            )));
        }
        Ok(jobs.into_iter().map(|j| self.queue.submit(j)).collect())
    }

    /// Run every queued job to completion under `policy` and report.
    ///
    /// Deterministic: the same submissions under the same policy produce
    /// bit-identical job results and figures, which is what lets the
    /// perf gate commit scheduler throughput and utilization baselines.
    pub fn run(&mut self, policy: SchedPolicy) -> Result<ParkReport, NscError> {
        let mut now = 0.0f64;
        let mut running: Vec<RunningJob> = Vec::new();
        // tenant -> node-seconds (the fair-share key).
        let mut share: HashMap<String, f64> = HashMap::new();
        // tenant -> (jobs completed, node-seconds) for the report.
        let mut usage: HashMap<String, (usize, f64)> = HashMap::new();
        let mut reports: Vec<JobReport> = Vec::new();
        // Spot-audit tally: (jobs audited, certificates verified).
        let mut audited = (0usize, 0usize);

        while !self.queue.all_done() {
            // 1. Admit: what starts on the free capacity right now?
            let candidates: Vec<Candidate> = self
                .queue
                .arrived_waiting(now)
                .into_iter()
                .map(|id| {
                    let job = self.queue.job(id);
                    Candidate { id, dim: job.dim, tenant: job.tenant.clone() }
                })
                .collect();
            let admitted = policy.admit(&candidates, &self.alloc, &share);

            if !admitted.is_empty() {
                // 2. Lease + 3. execute the admitted batch concurrently.
                for done in self.start_batch(&admitted, now) {
                    running.push(done);
                }
                // Re-enter admission: the policy saw the full waiting
                // list, so the next pass admits nothing further at this
                // instant and falls through to the clock advance.
                continue;
            }

            // 4. Advance the park clock to the next event.
            let next_end = running.iter().map(|r| r.end).fold(f64::INFINITY, f64::min);
            let next_arrival = self.queue.next_arrival_after(now).unwrap_or(f64::INFINITY);
            let next = next_end.min(next_arrival);
            if !next.is_finite() {
                // Arrived jobs that no policy can ever start (should be
                // unreachable: `submit` bounds every job by the machine).
                return Err(NscError::Workload(
                    "park wedged: jobs waiting, nothing running, no arrivals".into(),
                ));
            }
            now = next;

            // Retire every lease whose simulated end has been reached.
            let mut i = 0;
            while i < running.len() {
                if running[i].end <= now {
                    let done = running.swap_remove(i);
                    reports.push(self.finish(done, &mut share, &mut usage, &mut audited)?);
                } else {
                    i += 1;
                }
            }
        }

        Ok(ParkReport::assemble(policy.label(), self.cube.nodes(), reports, &usage, audited))
    }

    /// Lease sub-cubes for an admitted batch and host-execute all of its
    /// jobs concurrently on scoped threads sharing the park session.
    fn start_batch(&mut self, admitted: &[JobId], now: f64) -> Vec<RunningJob> {
        struct Lease {
            id: JobId,
            subcube: SubCube,
            cube: HypercubeConfig,
            payload: Arc<dyn JobPayload>,
            nodes: Vec<NodeSim>,
            before: Vec<PerfCounters>,
            /// The session clone this lease compiles through (shared
            /// kernel cache, private certificate log) and the log it
            /// records into — so certificates attribute to jobs even
            /// though the whole batch shares one compile cache.
            session: Session,
            certs: nsc_core::CertificateLog,
        }

        let mut leases: Vec<Lease> = admitted
            .iter()
            .map(|&id| {
                let job: &Job = self.queue.job(id);
                let subcube = self
                    .alloc
                    .allocate(job.dim)
                    .expect("the admission probe guaranteed this allocation fits");
                // The lease is a hypercube of the job's dimension with the
                // machine's router model. Nodes are wiped (fresh planes —
                // tenant isolation) but keep their lifetime counters.
                let cube = HypercubeConfig { dimension: job.dim, router: self.cube.router };
                let (nodes, before): (Vec<NodeSim>, Vec<PerfCounters>) = subcube
                    .members()
                    .map(|nid| {
                        let old = self.slots[nid.index()]
                            .take()
                            .expect("disjoint sub-cubes never share a slot");
                        let mut fresh = self.session.node();
                        fresh.counters = old.counters;
                        (fresh, old.counters)
                    })
                    .unzip();
                let payload = Arc::clone(job.payload());
                let (session, certs) = self.session.with_certificate_log();
                Lease { id, subcube, cube, payload, nodes, before, session, certs }
            })
            .collect();
        for lease in &leases {
            self.queue.mark_running(lease.id);
        }

        // Host-execute the whole batch concurrently; each thread owns its
        // leased nodes and compiles through its lease's session clone —
        // one shared kernel cache, one certificate log per job.
        let mut results: Vec<Option<LeaseResult>> = (0..leases.len()).map(|_| None).collect();
        // The vendored scope is std-backed: a child panic re-panics out of
        // scope() itself, so every slot is filled on the Ok path.
        let _ = crossbeam::thread::scope(|scope| {
            for (lease, slot) in leases.iter_mut().zip(results.iter_mut()) {
                let payload = Arc::clone(&lease.payload);
                let session = lease.session.clone();
                let cube = lease.cube;
                let nodes = std::mem::take(&mut lease.nodes);
                scope.spawn(move |_| {
                    let mut system = NscSystem::from_nodes(cube, nodes);
                    let outcome = payload.run(&session, &mut system);
                    let (nodes, _comm_ns) = system.into_nodes();
                    *slot = Some((nodes, outcome));
                });
            }
        });

        leases
            .into_iter()
            .zip(results)
            .map(|(lease, result)| {
                let (nodes, mut outcome) = result.expect("every spawned lease fills its slot");
                // Stamp every certificate the lease's compiles emitted
                // with the sub-cube it ran inside, so the verifier can
                // check route containment against the lease.
                if let Ok(o) = &mut outcome {
                    let stamp = LeaseCert {
                        base: lease.subcube.base.0 as u64,
                        dimension: lease.subcube.dimension,
                    };
                    o.certificates = lease
                        .certs
                        .drain()
                        .into_iter()
                        .map(|c| Arc::new(c.with_lease(stamp.clone())))
                        .collect();
                }
                // The job's usage is the counter delta the park measured on
                // its leased nodes; its simulated duration is the
                // critical-path node (compute + unhidden communication).
                let mut counters = PerfCounters::default();
                let mut simulated_seconds = 0.0f64;
                for (node, before) in nodes.iter().zip(&lease.before) {
                    let delta = node.counters.since(before);
                    counters.absorb(&delta);
                    simulated_seconds =
                        simulated_seconds.max(delta.seconds_with_comm(self.clock_hz));
                }
                RunningJob {
                    id: lease.id,
                    subcube: lease.subcube,
                    started_at: now,
                    end: now + simulated_seconds,
                    nodes,
                    counters,
                    simulated_seconds,
                    outcome,
                }
            })
            .collect()
    }

    /// Return a completed lease's nodes and sub-cube, spot-audit its
    /// certificates when the policy selects it, and write its report.
    /// A rejected certificate fails the whole run.
    fn finish(
        &mut self,
        done: RunningJob,
        share: &mut HashMap<String, f64>,
        usage: &mut HashMap<String, (usize, f64)>,
        audited: &mut (usize, usize),
    ) -> Result<JobReport, NscError> {
        for (nid, node) in done.subcube.members().zip(done.nodes) {
            debug_assert!(self.slots[nid.index()].is_none());
            self.slots[nid.index()] = Some(node);
        }
        self.alloc.free(done.subcube);
        self.queue.mark_done(done.id);

        let job = self.queue.job(done.id);
        let node_seconds = done.subcube.nodes() as f64 * done.simulated_seconds;
        *share.entry(job.tenant.clone()).or_insert(0.0) += node_seconds;
        let entry = usage.entry(job.tenant.clone()).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += node_seconds;

        let (residual, error) = match done.outcome {
            Ok(outcome) => {
                if self.audits(done.id) {
                    // Independent re-check: only the certificate bytes and
                    // this park's machine limits go in — the engine's
                    // checker and codegen are never consulted.
                    let expected = Expected {
                        machine: Some(machine_limits(self.session.kb().config())),
                        ..Expected::default()
                    };
                    for cert in &outcome.certificates {
                        verify(cert, &expected).map_err(|v| {
                            NscError::Workload(format!(
                                "certificate audit failed for job {} ('{}', tenant {}): {v}",
                                done.id,
                                job.name(),
                                job.tenant,
                            ))
                        })?;
                        audited.1 += 1;
                    }
                    audited.0 += 1;
                }
                let residual = outcome.residual;
                self.outcomes.insert(done.id, outcome);
                (residual, None)
            }
            Err(e) => (f64::NAN, Some(e.to_string())),
        };
        Ok(JobReport {
            id: done.id,
            tenant: job.tenant.clone(),
            name: job.name(),
            subcube: done.subcube,
            nodes: done.subcube.nodes(),
            submitted_at: job.submit_at,
            started_at: done.started_at,
            finished_at: done.end,
            queue_wait: done.started_at - job.submit_at,
            simulated_seconds: done.simulated_seconds,
            counters: done.counters,
            mflops: done.counters.mflops(self.clock_hz),
            residual,
            error,
        })
    }

    /// The solution a completed job produced — the bits the identity
    /// audits compare against a standalone run of the same workload.
    /// `None` before the job completes, and for jobs that failed.
    pub fn outcome(&self, id: JobId) -> Option<&JobOutcome> {
        self.outcomes.get(&id)
    }
}
