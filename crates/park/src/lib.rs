//! Machine-park job service: queue, schedule, and serve many workloads
//! on one simulated Navier-Stokes Computer.
//!
//! The other crates build and run *one* workload well; this crate is the
//! serving layer that turns the simulated machine into a shared
//! facility. Tenants submit whole workloads as [`Job`]s; the park queues
//! them, carves the machine into disjoint sub-cubes, and runs admitted
//! jobs concurrently, each on a lease that is indistinguishable from a
//! standalone machine of the same size.
//!
//! The flow, layer by layer:
//!
//! * **queue** ([`JobQueue`]) — submission-ordered jobs with arrival
//!   times on the park's simulated clock; policy-free lifecycle
//!   (waiting → running → done).
//! * **scheduler** ([`SchedPolicy`]) — decides which arrived jobs start
//!   on the free capacity: strict [`SchedPolicy::Fifo`], gap-filling
//!   [`SchedPolicy::Backfill`], or usage-balancing
//!   [`SchedPolicy::FairShare`]. Admission is probed against a clone of
//!   the allocator so a policy can never oversubscribe the machine.
//! * **allocator** ([`nsc_arch::SubCubeAllocator`]) — buddy-allocates
//!   aligned sub-cubes and re-coalesces them on free; an aligned
//!   sub-cube of a hypercube is itself a hypercube, which is what makes
//!   leases exact.
//! * **pool driver** ([`MachinePark`]) — leases node slots to admitted
//!   jobs (wiped memory, preserved counters), host-executes each batch
//!   concurrently on scoped threads sharing one compile-once
//!   [`nsc_core::Session`], measures every job's usage from counter
//!   deltas, and advances a deterministic virtual clock between
//!   completions and arrivals.
//!
//! Every job gets a [`JobReport`] (sub-cube, queue wait, simulated
//! duration, counters, MFLOPS); the run aggregates into a [`ParkReport`]
//! (utilization, throughput, per-tenant usage, Jain fairness). The
//! figures are deterministic, so the perf gate commits scheduler
//! baselines against them.

#![warn(missing_docs)]

mod job;
mod queue;
mod report;
mod sched;
mod service;

pub use self::job::{Job, JobId, JobOutcome, JobPayload};
pub use self::queue::JobQueue;
pub use self::report::{JobReport, ParkReport, TenantUsage};
pub use self::sched::{Candidate, SchedPolicy};
pub use self::service::MachinePark;
