//! Jobs: whole workloads packaged for the park's queue.
//!
//! A [`Job`] is what a tenant submits: a name, a requested sub-cube
//! dimension, an arrival time on the park's simulated clock, and a
//! [`JobPayload`] — the workload itself, expressed against the leased
//! sub-system exactly as it would run standalone. The four distributed
//! CFD workloads implement [`JobPayload`] directly, so a Jacobi, SOR,
//! multigrid or cavity problem drops into the queue unchanged; any
//! `Fn(&Session, &mut NscSystem)` closure works too.

use nsc_cert::CompileCertificate;
use nsc_core::{NscError, Session};
use nsc_sim::NscSystem;
use std::sync::Arc;

/// Identifies a submitted job within its park (dense, submission-ordered).
pub type JobId = usize;

/// What a payload hands back when it finishes: the solution bits for
/// audits, plus its own convergence figure. Timing and counters are the
/// *park's* job — it snapshots the leased nodes around the run, so
/// payloads cannot mis-report their usage.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Final residual (or other convergence figure) of the solve.
    pub residual: f64,
    /// The result field, flattened — bit-compared against a standalone
    /// run of the same workload in the park's identity audits.
    pub grid: Vec<f64>,
    /// The residual after each iteration (sweep pair, sweep, V-cycle or
    /// time step), in order — the convergence trace ensemble reports
    /// aggregate. Empty when the payload keeps no trace.
    pub history: Vec<f64>,
    /// Whether the payload's own convergence criterion (not an iteration
    /// cap) ended the run. Payloads without a criterion report `true` —
    /// their failures surface as errors instead.
    pub converged: bool,
    /// The sealed compile certificates the job's compiles emitted,
    /// stamped with the job's sub-cube lease. Filled in by the *park*
    /// from the lease's certificate log — payloads never touch this, so
    /// a payload cannot launder its own certificates.
    pub certificates: Vec<Arc<CompileCertificate>>,
}

impl JobOutcome {
    /// A converged outcome with no iteration trace; attach one with
    /// [`JobOutcome::with_history`] / [`JobOutcome::with_converged`].
    pub fn new(residual: f64, grid: Vec<f64>) -> Self {
        JobOutcome {
            residual,
            grid,
            history: Vec::new(),
            converged: true,
            certificates: Vec::new(),
        }
    }

    /// Attach the per-iteration residual trace (builder style).
    pub fn with_history(mut self, history: Vec<f64>) -> Self {
        self.history = history;
        self
    }

    /// Record whether the run actually converged (builder style).
    pub fn with_converged(mut self, converged: bool) -> Self {
        self.converged = converged;
        self
    }
}

/// A workload the park can run on a leased sub-system.
///
/// The payload sees a plain [`NscSystem`] of its requested dimension —
/// freshly wiped nodes, standard topology — and cannot tell it is a
/// carve-out of a bigger machine; that is what makes park results
/// bit-identical to standalone runs.
pub trait JobPayload: Send + Sync {
    /// Human-readable workload name for queue listings and reports.
    fn name(&self) -> String;

    /// Execute on the leased sub-system.
    fn run(&self, session: &Session, system: &mut NscSystem) -> Result<JobOutcome, NscError>;
}

impl JobPayload for nsc_cfd::DistributedJacobiWorkload {
    fn name(&self) -> String {
        nsc_core::Workload::<NscSystem>::name(self)
    }

    fn run(&self, session: &Session, system: &mut NscSystem) -> Result<JobOutcome, NscError> {
        let r = nsc_core::Workload::execute(self, session, system)?;
        Ok(JobOutcome::new(r.residual, r.u.data)
            .with_history(r.residual_history)
            .with_converged(r.converged))
    }
}

impl JobPayload for nsc_cfd::DistributedSorWorkload {
    fn name(&self) -> String {
        nsc_core::Workload::<NscSystem>::name(self)
    }

    fn run(&self, session: &Session, system: &mut NscSystem) -> Result<JobOutcome, NscError> {
        let r = nsc_core::Workload::execute(self, session, system)?;
        Ok(JobOutcome::new(r.residual, r.u.data)
            .with_history(r.residual_history)
            .with_converged(r.converged))
    }
}

impl JobPayload for nsc_cfd::DistributedMultigridWorkload {
    fn name(&self) -> String {
        nsc_core::Workload::<NscSystem>::name(self)
    }

    fn run(&self, session: &Session, system: &mut NscSystem) -> Result<JobOutcome, NscError> {
        let r = nsc_core::Workload::execute(self, session, system)?;
        Ok(JobOutcome::new(r.residual, r.u.data)
            .with_history(r.stats.residual_history.clone())
            .with_converged(r.converged))
    }
}

impl JobPayload for nsc_cfd::CavityWorkload {
    fn name(&self) -> String {
        nsc_core::Workload::<NscSystem>::name(self)
    }

    fn run(&self, session: &Session, system: &mut NscSystem) -> Result<JobOutcome, NscError> {
        let r = nsc_core::Workload::execute(self, session, system)?;
        // Both fields matter for identity: ψ drives the velocities, ω the
        // transport.
        let mut grid = r.psi.data;
        grid.extend_from_slice(&r.omega.data);
        // A cavity run that returns at all converged every ψ-solve and
        // kept the vorticity finite; divergence surfaces as an error.
        Ok(JobOutcome::new(r.last_residual, grid).with_history(r.residual_history))
    }
}

impl<F> JobPayload for F
where
    F: Fn(&Session, &mut NscSystem) -> Result<JobOutcome, NscError> + Send + Sync,
{
    fn name(&self) -> String {
        "custom".into()
    }

    fn run(&self, session: &Session, system: &mut NscSystem) -> Result<JobOutcome, NscError> {
        self(session, system)
    }
}

/// One queue entry: who wants what run, on how many nodes, from when.
#[derive(Clone)]
pub struct Job {
    /// The submitting tenant (fair-share and usage accounting key).
    pub tenant: String,
    /// Requested sub-cube dimension: the job runs on `2^dim` nodes.
    pub dim: u32,
    /// Arrival time on the park's simulated clock, in seconds.
    pub submit_at: f64,
    payload: Arc<dyn JobPayload>,
}

impl Job {
    /// A job arriving at time zero.
    pub fn new(tenant: impl Into<String>, dim: u32, payload: impl JobPayload + 'static) -> Self {
        Job { tenant: tenant.into(), dim, submit_at: 0.0, payload: Arc::new(payload) }
    }

    /// A job over an already-shared payload — for heterogeneous job
    /// lists (`Vec<Arc<dyn JobPayload>>`) where `impl JobPayload` won't
    /// unify.
    pub fn from_shared(tenant: impl Into<String>, dim: u32, payload: Arc<dyn JobPayload>) -> Self {
        Job { tenant: tenant.into(), dim, submit_at: 0.0, payload }
    }

    /// Set the arrival time on the park's simulated clock.
    pub fn arriving_at(mut self, t: f64) -> Self {
        self.submit_at = t;
        self
    }

    /// Nodes the job asks for.
    pub fn nodes(&self) -> usize {
        1usize << self.dim
    }

    /// The payload's workload name.
    pub fn name(&self) -> String {
        self.payload.name()
    }

    pub(crate) fn payload(&self) -> &Arc<dyn JobPayload> {
        &self.payload
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("tenant", &self.tenant)
            .field("dim", &self.dim)
            .field("submit_at", &self.submit_at)
            .field("name", &self.name())
            .finish()
    }
}
