//! The admission queue: submitted jobs, their arrival times, and their
//! lifecycle from waiting through running to done.
//!
//! The queue is deliberately policy-free — it only knows submission
//! order and arrival times. Which waiting job starts next is the
//! scheduler's call ([`crate::SchedPolicy`]); when capacity frees up is
//! the allocator's ([`nsc_arch::SubCubeAllocator`]).

use crate::job::{Job, JobId};

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Submitted; not started (may not have arrived yet).
    Waiting,
    /// On the machine, holding a sub-cube.
    Running,
    /// Finished (successfully or not) and its sub-cube returned.
    Done,
}

/// The park's submission-ordered job queue.
#[derive(Debug, Default)]
pub struct JobQueue {
    entries: Vec<(Job, State)>,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a job; its [`JobId`] is its submission index.
    pub fn submit(&mut self, job: Job) -> JobId {
        self.entries.push((job, State::Waiting));
        self.entries.len() - 1
    }

    /// Jobs submitted so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been submitted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// One job by id.
    pub fn job(&self, id: JobId) -> &Job {
        &self.entries[id].0
    }

    /// Ids of jobs that have arrived by `now` and are still waiting, in
    /// submission order — the scheduler's candidate list.
    pub fn arrived_waiting(&self, now: f64) -> Vec<JobId> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, (job, state))| *state == State::Waiting && job.submit_at <= now)
            .map(|(id, _)| id)
            .collect()
    }

    /// The earliest arrival strictly after `now`, if any job is still
    /// waiting to arrive — the event the park clock may jump to when
    /// nothing is running.
    pub fn next_arrival_after(&self, now: f64) -> Option<f64> {
        self.entries
            .iter()
            .filter(|(job, state)| *state == State::Waiting && job.submit_at > now)
            .map(|(job, _)| job.submit_at)
            .fold(None, |best, t| Some(best.map_or(t, |b: f64| b.min(t))))
    }

    /// Move a waiting job onto the machine.
    pub fn mark_running(&mut self, id: JobId) {
        debug_assert_eq!(self.entries[id].1, State::Waiting);
        self.entries[id].1 = State::Running;
    }

    /// Retire a running job.
    pub fn mark_done(&mut self, id: JobId) {
        debug_assert_eq!(self.entries[id].1, State::Running);
        self.entries[id].1 = State::Done;
    }

    /// Whether every submitted job has retired.
    pub fn all_done(&self) -> bool {
        self.entries.iter().all(|(_, state)| *state == State::Done)
    }
}
