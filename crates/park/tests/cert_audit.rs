//! The spot-audit policy end to end: honest jobs sail through a 100%
//! audit, a forged certificate slipped into a lease's log fails the
//! whole batch, and the deterministic stride honors the configured
//! fraction.

use nsc_cert::{digest_hex, CompileCertificate, CompilePath, KernelWindow};
use nsc_cfd::grid::manufactured_problem;
use nsc_cfd::{DistributedJacobiWorkload, PartitionSpec};
use nsc_core::{certify::machine_limits, NscError, Session};
use nsc_park::{Job, JobOutcome, MachinePark, SchedPolicy};
use std::sync::Arc;

fn jacobi(n: usize) -> DistributedJacobiWorkload {
    let (u0, f, _) = manufactured_problem(n);
    DistributedJacobiWorkload {
        u0,
        f,
        tol: 1e-3,
        max_pairs: 50,
        partition: PartitionSpec::Auto,
        overlap: false,
    }
}

#[test]
fn honest_jobs_pass_a_full_audit() {
    let mut park = MachinePark::new(Session::nsc_1988(), 2).with_audit_fraction(1.0);
    assert_eq!(park.audit_fraction(), 1.0);
    for _ in 0..3 {
        park.submit(Job::new("ada", 1, jacobi(6))).expect("submit");
    }
    let report = park.run(SchedPolicy::Fifo).expect("honest batch passes the audit");
    assert_eq!(report.audited_jobs, 3, "every job audited at fraction 1.0");
    assert!(report.audited_certs > 0, "each job emitted certificates to audit");
    for job in &report.jobs {
        let certs = &park.outcome(job.id).expect("outcome kept").certificates;
        assert!(!certs.is_empty(), "park attached the lease's certificates");
        for c in certs {
            let lease = c.lease.as_ref().expect("park stamped the lease");
            assert_eq!(lease.dimension, 1);
            assert_eq!(c.seal, c.compute_seal(), "restamping resealed");
        }
    }
}

#[test]
fn forged_certificate_fails_the_batch() {
    // A payload that compiles nothing but records a forged certificate —
    // the moral equivalent of a buggy engine overclaiming a window.
    let forger = |session: &Session, _system: &mut nsc_sim::NscSystem| {
        let machine = machine_limits(session.kb().config());
        let fus = machine.fu_count;
        let cert = CompileCertificate {
            doc_digest: digest_hex(0xbad),
            shape_digest: digest_hex(0xbad),
            compile_path: CompilePath::Full,
            machine,
            census: nsc_cert::ResourceCensus {
                instructions: vec![nsc_cert::InstrCensus {
                    index: 0,
                    active_fus: fus,
                    sdu: vec![],
                    planes: vec![],
                    caches: vec![],
                }],
                active_fus: fus as u64,
                sdu_taps: 0,
                plane_words: 0,
                cache_words: 0,
            },
            // More flops than the whole machine can retire in the
            // claimed cycles — sealed, so only the verifier catches it.
            windows: vec![KernelWindow {
                index: 0,
                executed_cycles: 10,
                flops: fus as u64 * 10 + 1,
                streamed: 0,
                stored: 0,
            }],
            routes: vec![],
            coverage: vec![],
            lease: None,
            seal: String::new(),
        }
        .sealed();
        session.record_certificate(Arc::new(cert));
        Ok(JobOutcome::new(0.0, vec![]))
    };

    let mut park = MachinePark::new(Session::nsc_1988(), 2).with_audit_fraction(1.0);
    park.submit(Job::new("mallory", 0, forger)).expect("submit");
    let err = park.run(SchedPolicy::Fifo).expect_err("forged certificate must fail the run");
    match err {
        NscError::Workload(msg) => {
            assert!(msg.contains("certificate audit failed"), "audit failure surfaced: {msg}");
            assert!(msg.contains("mallory"), "tenant named in the rejection: {msg}");
            assert!(msg.contains("V011"), "the forged obligation is named: {msg}");
        }
        other => panic!("expected a workload error, got {other:?}"),
    }
}

#[test]
fn audit_fraction_zero_audits_nothing() {
    let mut park = MachinePark::new(Session::nsc_1988(), 1);
    assert_eq!(park.audit_fraction(), 0.0, "auditing is opt-in");
    park.submit(Job::new("ada", 0, jacobi(5))).expect("submit");
    let report = park.run(SchedPolicy::Fifo).expect("runs");
    assert_eq!((report.audited_jobs, report.audited_certs), (0, 0));
    // Certificates are still collected — auditing them is the knob, not
    // emitting them.
    assert!(!park.outcome(0).expect("outcome").certificates.is_empty());
}

#[test]
fn audit_stride_follows_the_fraction() {
    let mut park = MachinePark::new(Session::nsc_1988(), 2).with_audit_fraction(0.5);
    for _ in 0..4 {
        park.submit(Job::new("ada", 1, jacobi(5))).expect("submit");
    }
    let report = park.run(SchedPolicy::Fifo).expect("runs");
    assert_eq!(report.audited_jobs, 2, "every other job audited at fraction 0.5");
}
