//! The park's contract, end to end: a mixed multi-tenant job stream on
//! one machine, every job bit-identical to a standalone run at the same
//! sub-cube size; deterministic reports; backfill demonstrably ahead of
//! FIFO on a mix it can exploit.

use nsc_cfd::grid::manufactured_problem;
use nsc_cfd::{
    CavityWorkload, DistributedJacobiWorkload, DistributedMultigridWorkload,
    DistributedSorWorkload, MgOptions, PartitionSpec,
};
use nsc_core::Session;
use nsc_park::{Job, JobPayload, MachinePark, SchedPolicy};
use nsc_sim::NscSystem;

fn jacobi(n: usize) -> DistributedJacobiWorkload {
    let (u0, f, _) = manufactured_problem(n);
    DistributedJacobiWorkload {
        u0,
        f,
        tol: 1e-3,
        max_pairs: 200,
        partition: PartitionSpec::Auto,
        overlap: false,
    }
}

fn sor(n: usize) -> DistributedSorWorkload {
    let (u0, f, _) = manufactured_problem(n);
    DistributedSorWorkload {
        u0,
        f,
        omega: 1.5,
        tol: 1e-3,
        max_sweeps: 200,
        partition: PartitionSpec::Auto,
        overlap: false,
    }
}

fn multigrid(n: usize) -> DistributedMultigridWorkload {
    let (u0, f, _) = manufactured_problem(n);
    DistributedMultigridWorkload {
        u0,
        f,
        tol: 1e-8,
        max_cycles: 25,
        opts: MgOptions::default(),
        overlap: false,
    }
}

fn cavity(n: usize) -> CavityWorkload {
    let mut w = CavityWorkload::new(n, 10.0, 5);
    w.psi_tol = 1e-6;
    w
}

/// Run a payload standalone — its own session, its own machine of
/// exactly `2^dim` nodes — the reference the park must reproduce.
fn standalone(payload: &dyn JobPayload, dim: u32) -> nsc_park::JobOutcome {
    let session = Session::nsc_1988();
    let mut system = NscSystem::new(nsc_arch::HypercubeConfig::new(dim), session.kb());
    payload.run(&session, &mut system).expect("standalone run succeeds")
}

/// The tentpole audit: a mixed jacobi/SOR/multigrid/cavity stream from
/// three tenants shares one 8-node machine, jobs running concurrently on
/// disjoint sub-cubes — and every job's solution is bit-identical to a
/// standalone run of the same workload on a dedicated machine of its
/// sub-cube's size.
#[test]
fn mixed_job_stream_is_bit_identical_to_standalone_runs() {
    let mut park = MachinePark::new(Session::nsc_1988(), 3); // 8 nodes
    let jobs: Vec<(&str, u32, std::sync::Arc<dyn JobPayload>)> = vec![
        ("ada", 1, std::sync::Arc::new(jacobi(6))),
        ("grace", 1, std::sync::Arc::new(sor(6))),
        ("mary", 2, std::sync::Arc::new(multigrid(17))),
        ("ada", 1, std::sync::Arc::new(cavity(9))),
        ("grace", 0, std::sync::Arc::new(jacobi(5))),
    ];
    // Standalone references first (each on its own fresh session and
    // dedicated machine), then the same payloads through the park.
    let references: Vec<nsc_park::JobOutcome> =
        jobs.iter().map(|(_, dim, payload)| standalone(payload.as_ref(), *dim)).collect();
    let ids: Vec<_> = jobs
        .into_iter()
        .map(|(tenant, dim, payload)| {
            park.submit(Job::from_shared(tenant, dim, payload)).expect("fits")
        })
        .collect();

    let report = park.run(SchedPolicy::Backfill).expect("park run succeeds");

    assert_eq!(report.jobs.len(), ids.len());
    assert_eq!(report.failed, 0);
    for (id, reference) in ids.iter().zip(&references) {
        let got = park.outcome(*id).expect("job completed");
        assert_eq!(got.residual.to_bits(), reference.residual.to_bits(), "job {id}: residual");
        assert_eq!(got.grid.len(), reference.grid.len(), "job {id}: grid shape");
        for (a, b) in got.grid.iter().zip(&reference.grid) {
            assert_eq!(a.to_bits(), b.to_bits(), "job {id}: solution diverged from standalone");
        }
        let jr = report.job(*id).expect("reported");
        // Distributed SOR relaxes on the host and charges only router
        // time, so "real usage" is flops or communication.
        assert!(
            jr.counters.flops > 0 || jr.counters.comm_ns > 0,
            "job {id}: the park measured real usage"
        );
        assert!(jr.simulated_seconds > 0.0, "job {id}: the run took simulated time");
    }

    // Accounting closes: per-tenant node-seconds sum to the machine's
    // busy time, utilization is a proper fraction, fairness is in range.
    let tenant_sum: f64 = report.per_tenant.iter().map(|t| t.node_seconds).sum();
    assert!((tenant_sum - report.busy_node_seconds).abs() < 1e-9 * report.busy_node_seconds);
    assert_eq!(report.per_tenant.iter().map(|t| t.jobs).sum::<usize>(), report.jobs.len());
    assert!(report.utilization > 0.0 && report.utilization <= 1.0);
    assert!(report.fairness > 0.0 && report.fairness <= 1.0 + 1e-12);
    // 2+2+4+2+1 = 11 node leases on an 8-node machine: some jobs *must*
    // have queued behind others, so the schedule really was concurrent.
    assert!(report.makespan > 0.0);
}

/// Same submissions, same policy ⇒ bit-identical reports: the figures
/// the perf gate commits as baselines are reproducible.
#[test]
fn park_reports_are_deterministic() {
    let build = || {
        let mut park = MachinePark::new(Session::nsc_1988(), 2);
        park.submit(Job::new("ada", 1, jacobi(6))).unwrap();
        park.submit(Job::new("grace", 2, sor(6))).unwrap();
        park.submit(Job::new("ada", 0, jacobi(5))).unwrap();
        park.submit(Job::new("mary", 0, cavity(9)).arriving_at(0.001)).unwrap();
        park
    };
    let a = build().run(SchedPolicy::FairShare).expect("first run");
    let b = build().run(SchedPolicy::FairShare).expect("second run");
    let a_json = serde_json::to_string(&a).expect("serializes");
    let b_json = serde_json::to_string(&b).expect("serializes");
    assert_eq!(a_json, b_json, "identical submissions must reproduce the report bit for bit");
}

/// Backfill beats FIFO on a mix it can exploit — a whole-machine job
/// blocks the queue head while small jobs behind it could run — and
/// scheduling never changes any job's results.
#[test]
fn backfill_beats_fifo_and_scheduling_never_changes_results() {
    let submit_mix = |park: &mut MachinePark| -> Vec<nsc_park::JobId> {
        let mut ids = Vec::new();
        ids.push(park.submit(Job::new("ada", 1, jacobi(6))).unwrap()); // starts at 0
        ids.push(park.submit(Job::new("mary", 2, multigrid(17))).unwrap()); // whole machine: blocks
        for _ in 0..3 {
            ids.push(park.submit(Job::new("grace", 0, jacobi(5))).unwrap()); // backfillable
        }
        ids
    };

    let mut fifo_park = MachinePark::new(Session::nsc_1988(), 2); // 4 nodes
    let fifo_ids = submit_mix(&mut fifo_park);
    let fifo = fifo_park.run(SchedPolicy::Fifo).expect("fifo run");

    let mut bf_park = MachinePark::new(Session::nsc_1988(), 2);
    let bf_ids = submit_mix(&mut bf_park);
    let bf = bf_park.run(SchedPolicy::Backfill).expect("backfill run");

    // Under FIFO the small jobs wait behind the whole-machine job;
    // backfill starts them at t = 0 on the nodes FIFO leaves idle.
    let fifo_small_wait: f64 =
        fifo_ids[2..].iter().map(|id| fifo.job(*id).unwrap().queue_wait).sum();
    let bf_small_wait: f64 = bf_ids[2..].iter().map(|id| bf.job(*id).unwrap().queue_wait).sum();
    assert!(
        bf_small_wait < fifo_small_wait,
        "backfill must cut small-job queueing ({bf_small_wait} vs {fifo_small_wait})"
    );
    assert!(
        bf.utilization > fifo.utilization,
        "backfill must raise utilization ({} vs {})",
        bf.utilization,
        fifo.utilization
    );
    assert!(
        bf.jobs_per_second > fifo.jobs_per_second,
        "backfill must raise throughput ({} vs {})",
        bf.jobs_per_second,
        fifo.jobs_per_second
    );

    // The policy moves jobs in time, never in value.
    for (f_id, b_id) in fifo_ids.iter().zip(&bf_ids) {
        let f = fifo_park.outcome(*f_id).expect("fifo job completed");
        let b = bf_park.outcome(*b_id).expect("backfill job completed");
        assert_eq!(f.residual.to_bits(), b.residual.to_bits());
        for (x, y) in f.grid.iter().zip(&b.grid) {
            assert_eq!(x.to_bits(), y.to_bits(), "scheduling changed a result");
        }
    }
}

/// Failed jobs release their capacity and report their error; the rest
/// of the stream is untouched.
#[test]
fn failed_jobs_release_capacity_and_report_errors() {
    let mut park = MachinePark::new(Session::nsc_1988(), 1);
    let bad = park
        .submit(Job::new(
            "eve",
            1,
            |_: &Session, _: &mut NscSystem| -> Result<nsc_park::JobOutcome, nsc_core::NscError> {
                Err(nsc_core::NscError::Workload("synthetic failure".into()))
            },
        ))
        .unwrap();
    let good = park.submit(Job::new("ada", 1, jacobi(6))).unwrap();
    // A job bigger than the machine is refused at submission.
    assert!(park.submit(Job::new("eve", 5, jacobi(6))).is_err());

    let report = park.run(SchedPolicy::Fifo).expect("park run succeeds");
    assert_eq!(report.failed, 1);
    let bad_report = report.job(bad).expect("failed job still reported");
    assert!(bad_report.error.as_deref().unwrap().contains("synthetic failure"));
    assert!(park.outcome(bad).is_none(), "failed jobs have no outcome");
    // The failed job's whole-machine lease was released: the good job ran.
    let good_report = report.job(good).expect("good job reported");
    assert!(good_report.error.is_none());
    assert!(park.outcome(good).is_some());
}
