//! Property tests for the buddy [`SubCubeAllocator`] the machine park's
//! admission layer leans on: arbitrary alloc/free interleavings must
//! never leak capacity, never hand out overlapping sub-cubes, and must
//! re-coalesce to the whole cube once everything is freed.

use nsc_arch::{HypercubeConfig, SubCubeAllocator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn prop_alloc_free_never_leaks_and_recoalesces(
        dim in 0u32..=6,
        // Each step either allocates (Some(request dim), taken modulo
        // dim + 2 so oversized requests are exercised too) or frees the
        // oldest/newest live allocation.
        steps in prop::collection::vec((prop::option::of(0u32..8), any::<bool>()), 1..64),
    ) {
        let cube = HypercubeConfig::new(dim);
        let mut alloc = SubCubeAllocator::new(&cube);
        let mut live = Vec::new();
        for (req, oldest) in steps {
            match req {
                Some(d) => {
                    let d = d % (dim + 2); // sometimes > dim: must refuse
                    if let Some(sc) = alloc.allocate(d) {
                        prop_assert!(d <= dim);
                        prop_assert_eq!(sc.dimension, d, "exact size served");
                        prop_assert_eq!(
                            sc.base.0 & ((1u16 << d) - 1), 0,
                            "aligned base"
                        );
                        live.push(sc);
                    } else {
                        // A refusal must be honest: either the request
                        // exceeds the cube or no aligned block is free.
                        prop_assert!(d > dim || !alloc.can_allocate(d));
                    }
                }
                None if !live.is_empty() => {
                    let sc = if oldest { live.remove(0) } else { live.pop().unwrap() };
                    alloc.free(sc);
                }
                None => {}
            }
            // Capacity conservation at every step: free + allocated
            // nodes always account for the whole cube.
            prop_assert_eq!(
                alloc.free_nodes() + alloc.allocated_nodes(),
                alloc.capacity_nodes(),
                "no capacity leaked or invented"
            );
            prop_assert_eq!(alloc.outstanding().len(), live.len());
            // Live sub-cubes stay pairwise disjoint.
            let mut seen = std::collections::HashSet::new();
            for sc in &live {
                for n in sc.members() {
                    prop_assert!(seen.insert(n), "overlapping allocations");
                }
            }
        }
        // Drain everything: the allocator must re-coalesce to one block
        // of the full dimension, allocatable as the whole cube.
        for sc in live.drain(..) {
            alloc.free(sc);
        }
        prop_assert_eq!(alloc.free_nodes(), alloc.capacity_nodes());
        prop_assert_eq!(alloc.largest_free_dim(), Some(dim), "fully re-coalesced");
        let whole = alloc.allocate(dim).expect("whole cube allocatable again");
        prop_assert_eq!(whole.nodes(), cube.nodes());
        prop_assert_eq!(whole.base.0, 0);
    }
}

#[test]
#[should_panic(expected = "not an outstanding allocation")]
fn double_free_panics_instead_of_inflating_capacity() {
    let cube = HypercubeConfig::new(3);
    let mut alloc = SubCubeAllocator::new(&cube);
    let sc = alloc.allocate(2).expect("4 nodes");
    alloc.free(sc);
    alloc.free(sc);
}
