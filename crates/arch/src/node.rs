//! The physical layout of one node: which FU lives in which ALS.
//!
//! [`NodeLayout`] is derived deterministically from a
//! [`MachineConfig`]: ALSs are numbered with triplets
//! first, then doublets, then singlets, and functional units are numbered
//! densely in chain order within each ALS. The editor, checker, codegen and
//! simulator all resolve FU/ALS relationships through this one table.

use crate::als::{AlsKind, AlsStructure};
use crate::config::MachineConfig;
use crate::fu::FuCaps;
use crate::ids::{AlsId, FuId};
use serde::{Deserialize, Serialize};

/// Resolved physical layout of a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeLayout {
    alss: Vec<AlsStructure>,
    /// Capability of every FU, indexed by `FuId`.
    fu_caps: Vec<FuCaps>,
    /// Owning ALS of every FU, indexed by `FuId`.
    als_of_fu: Vec<AlsId>,
}

impl NodeLayout {
    /// Derive the layout from a configuration.
    pub fn build(cfg: &MachineConfig) -> Self {
        let mut alss = Vec::with_capacity(cfg.als_count());
        let mut fu_caps = Vec::with_capacity(cfg.fu_count());
        let mut als_of_fu = Vec::with_capacity(cfg.fu_count());
        let mut next_fu = 0u8;
        for (i, kind) in cfg.als_kinds().enumerate() {
            let id = AlsId(i as u8);
            let als = AlsStructure::new(id, kind, FuId(next_fu));
            for pos in 0..kind.unit_count() {
                fu_caps.push(kind.unit_caps(pos));
                als_of_fu.push(id);
            }
            next_fu += kind.unit_count() as u8;
            alss.push(als);
        }
        NodeLayout { alss, fu_caps, als_of_fu }
    }

    /// All ALS structures in id order.
    pub fn alss(&self) -> &[AlsStructure] {
        &self.alss
    }

    /// The ALS with the given id.
    pub fn als(&self, id: AlsId) -> &AlsStructure {
        &self.alss[id.index()]
    }

    /// Total functional units.
    pub fn fu_count(&self) -> usize {
        self.fu_caps.len()
    }

    /// Capability of a functional unit.
    pub fn fu_caps(&self, fu: FuId) -> FuCaps {
        self.fu_caps[fu.index()]
    }

    /// The ALS a functional unit is hardwired into.
    pub fn als_of(&self, fu: FuId) -> AlsId {
        self.als_of_fu[fu.index()]
    }

    /// Chain position of a functional unit within its ALS.
    pub fn position_of(&self, fu: FuId) -> usize {
        self.als(self.als_of(fu)).position_of(fu).expect("fu belongs to its als")
    }

    /// Whether `from` feeds `to` through the hardwired intra-ALS chain.
    pub fn chains_to(&self, from: FuId, to: FuId) -> bool {
        self.als_of(from) == self.als_of(to) && self.als(self.als_of(from)).chains_to(from, to)
    }

    /// ALS ids of a given kind, in id order (used by the binder to allocate
    /// physical ALSs to diagram icons).
    pub fn alss_of_kind(&self, kind: AlsKind) -> Vec<AlsId> {
        self.alss.iter().filter(|a| a.kind == kind).map(|a| a.id).collect()
    }

    /// Every FU id, in order.
    pub fn fus(&self) -> impl Iterator<Item = FuId> {
        (0..self.fu_count() as u8).map(FuId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_of_1988_machine() {
        let layout = NodeLayout::build(&MachineConfig::nsc_1988());
        assert_eq!(layout.fu_count(), 32);
        assert_eq!(layout.alss().len(), 16);
        // Triplets occupy FUs 0..12.
        assert_eq!(layout.als_of(FuId(0)), AlsId(0));
        assert_eq!(layout.als_of(FuId(11)), AlsId(3));
        // Doublets occupy FUs 12..28.
        assert_eq!(layout.als_of(FuId(12)), AlsId(4));
        assert_eq!(layout.als_of(FuId(27)), AlsId(11));
        // Singlets occupy FUs 28..32.
        assert_eq!(layout.als_of(FuId(28)), AlsId(12));
        assert_eq!(layout.als_of(FuId(31)), AlsId(15));
    }

    #[test]
    fn capability_census_matches_the_paper_asymmetry() {
        let layout = NodeLayout::build(&MachineConfig::nsc_1988());
        // 4 triplets + 8 doublets + 4 singlets each contribute one
        // integer-capable unit.
        let int_units = layout.fus().filter(|&f| layout.fu_caps(f).int_logic).count();
        assert_eq!(int_units, 16);
        let mm_units = layout.fus().filter(|&f| layout.fu_caps(f).min_max).count();
        assert_eq!(mm_units, 16);
        // Triplet middles are plain float: exactly 4 of them.
        let plain = layout
            .fus()
            .filter(|&f| {
                let c = layout.fu_caps(f);
                !c.int_logic && !c.min_max
            })
            .count();
        assert_eq!(plain, 4);
    }

    #[test]
    fn chain_relation_respects_als_boundaries() {
        let layout = NodeLayout::build(&MachineConfig::nsc_1988());
        assert!(layout.chains_to(FuId(0), FuId(1)));
        assert!(layout.chains_to(FuId(1), FuId(2)));
        assert!(!layout.chains_to(FuId(2), FuId(3)), "FU2 ends ALS0; FU3 starts ALS1");
        assert!(layout.chains_to(FuId(12), FuId(13)), "doublet chain");
        assert!(!layout.chains_to(FuId(28), FuId(29)), "singlets have no chain");
    }

    #[test]
    fn alss_of_kind_partitions_the_node() {
        let layout = NodeLayout::build(&MachineConfig::nsc_1988());
        let t = layout.alss_of_kind(AlsKind::Triplet);
        let d = layout.alss_of_kind(AlsKind::Doublet);
        let s = layout.alss_of_kind(AlsKind::Singlet);
        assert_eq!((t.len(), d.len(), s.len()), (4, 8, 4));
        let all: Vec<_> = t.into_iter().chain(d).chain(s).collect();
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn position_of_is_consistent() {
        let layout = NodeLayout::build(&MachineConfig::nsc_1988());
        for fu in layout.fus() {
            let als = layout.als(layout.als_of(fu));
            assert_eq!(als.fus[layout.position_of(fu)], fu);
        }
    }

    #[test]
    fn small_config_layout() {
        let layout = NodeLayout::build(&MachineConfig::test_small());
        assert_eq!(layout.fu_count(), 8);
        assert_eq!(layout.alss().len(), 4);
    }
}
