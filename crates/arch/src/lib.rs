//! # nsc-arch — architecture model of the Navier-Stokes Computer
//!
//! This crate is the *knowledge base* of the visual programming environment:
//! a complete, queryable description of one node of the Navier-Stokes
//! Computer (NSC) as presented in ICASE Report 88-6, plus the hypercube
//! system that nodes are arranged into.
//!
//! The paper (§2) describes each node as:
//!
//! * **32 functional units**, every one capable of floating-point work, with
//!   asymmetric extras: within each arithmetic-logic structure only one unit
//!   can perform integer/logical operations and another has min/max
//!   circuitry;
//! * functional units hardwired into **arithmetic-logic structures (ALSs)**
//!   of three kinds — *singlets*, *doublets* and *triplets* — containing 1, 2
//!   or 3 floating-point units respectively;
//! * a **register file** attached to every functional unit, used for
//!   constants, intermediate values, and circular queues that implement the
//!   timing delays needed to align vector streams;
//! * **16 memory planes of 128 MB** each (2 GB per node) and **16
//!   double-buffered data caches**;
//! * **two shift/delay units** that reformat a memory stream into multiple
//!   delayed vector streams;
//! * a **programmable switch network** (called FLONET in the paper's
//!   Figure 2) routing data among ALSs, memory planes, caches and
//!   shift/delay units;
//! * per-plane **DMA controllers**, a central **sequencer**, and an
//!   **interrupt scheme** for pipeline completion, conditional evaluation and
//!   exception traps;
//! * a **hyperspace router** connecting nodes in a hypercube.
//!
//! The final NSC hardware design was not complete when the paper was written
//! ("so some adjustments to the following may be needed"); the free
//! parameters are pinned in [`MachineConfig::nsc_1988`] so that every
//! headline number in the paper reproduces exactly: 32 FUs at 20 MHz give the
//! published 640 MFLOPS peak per node, and a 64-node machine reaches
//! 40 GFLOPS with 128 GB of memory.
//!
//! Everything downstream — the diagram editor, the checker, the microcode
//! generator and the simulator — consults this crate rather than hard-coding
//! machine facts, which is what lets experiment T9 (knowledge-base evolution)
//! absorb a machine-design change without touching the editor.

pub mod als;
pub mod config;
pub mod fu;
pub mod hypercube;
pub mod ids;
pub mod kb;
pub mod memory;
pub mod node;
pub mod switch;
pub mod timing;

pub use self::als::{AlsKind, AlsStructure, DoubletMode};
pub use self::config::{MachineConfig, SubsetModel};
pub use self::fu::{FuCaps, FuOp, OpClass};
pub use self::hypercube::{
    HypercubeConfig, RouterModel, SubCube, SubCubeAllocator, TorusEmbedding,
};
pub use self::ids::{AlsId, CacheId, FuId, NodeId, PlaneId, SduId};
pub use self::kb::KnowledgeBase;
pub use self::memory::{CacheSpec, MemorySpec, SduSpec};
pub use self::node::NodeLayout;
pub use self::switch::{InPort, SinkRef, SourceRef, SwitchSpec};
pub use self::timing::LatencyTable;
