//! Strongly-typed identifiers for the physical resources of an NSC node.
//!
//! Raw `u8`/`u16` indices invite exactly the kind of cross-wiring bug the
//! checker exists to prevent, so every resource class gets its own newtype.
//! All ids are dense indices, valid against a particular
//! [`MachineConfig`](crate::MachineConfig) (the checker validates range).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $repr);

        impl $name {
            /// Dense index of this resource within its node (or system).
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(v: $repr) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// A functional unit, numbered densely across the node (0..32 in the
    /// 1988 configuration). Every FU performs floating-point operations;
    /// capability extras are described by [`FuCaps`](crate::FuCaps).
    FuId,
    "FU",
    u8
);

id_type!(
    /// An arithmetic-logic structure (singlet, doublet or triplet). FUs are
    /// hardwired into ALSs; the mapping is part of [`NodeLayout`](crate::NodeLayout).
    AlsId,
    "ALS",
    u8
);

id_type!(
    /// A memory plane (16 planes of 128 MB each in the 1988 configuration).
    PlaneId,
    "MP",
    u8
);

id_type!(
    /// A double-buffered data cache (16 in the 1988 configuration).
    CacheId,
    "DC",
    u8
);

id_type!(
    /// A shift/delay unit (2 in the 1988 configuration); reformats one
    /// memory stream into several delayed vector streams.
    SduId,
    "SDU",
    u8
);

id_type!(
    /// A node of the hypercube system (up to 64 in the published sizing).
    NodeId,
    "N",
    u16
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(FuId(3).to_string(), "FU3");
        assert_eq!(AlsId(0).to_string(), "ALS0");
        assert_eq!(PlaneId(15).to_string(), "MP15");
        assert_eq!(CacheId(7).to_string(), "DC7");
        assert_eq!(SduId(1).to_string(), "SDU1");
        assert_eq!(NodeId(63).to_string(), "N63");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut v = vec![FuId(3), FuId(1), FuId(2)];
        v.sort();
        assert_eq!(v, vec![FuId(1), FuId(2), FuId(3)]);
        let set: std::collections::HashSet<_> = v.into_iter().collect();
        assert!(set.contains(&FuId(2)));
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(FuId::from(9).index(), 9);
        assert_eq!(NodeId::from(512).index(), 512);
    }

    #[test]
    fn serde_is_transparent() {
        let s = serde_json::to_string(&PlaneId(5)).unwrap();
        assert_eq!(s, "5");
        let p: PlaneId = serde_json::from_str("5").unwrap();
        assert_eq!(p, PlaneId(5));
    }
}
