//! Pipeline latencies of the functional units.
//!
//! Paper §2 notes that register files "buffer data to adjust for pipeline
//! timing delays" and §5 that "timing delays, needed for proper alignment of
//! vector streams, may be introduced by routing input data into a circular
//! queue in a register file". For that machinery to be exercised, units must
//! actually have depth: the latency table gives each operation class a
//! pipeline depth in clocks. One element enters and one leaves per clock
//! once the pipe is full.

use crate::fu::FuOp;
use serde::{Deserialize, Serialize};

/// Per-operation pipeline depths, in clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyTable {
    /// Add/subtract/negate/absolute/copy/compare/min/max: short pipeline.
    pub short_ops: u32,
    /// Multiply and fused multiply-add.
    pub multiply: u32,
    /// Divide, square root, reciprocal: long pipeline.
    pub long_ops: u32,
    /// Integer/logical operations.
    pub integer: u32,
    /// Transit latency of a shift/delay unit (in addition to its
    /// programmed tap delays, which are semantic rather than transport).
    pub sdu_transit: u32,
}

impl LatencyTable {
    /// The pinned 1988 table (DESIGN.md §5): short ops 3, multiply 3,
    /// long ops 6, integer 2, SDU transit 2.
    pub const NSC_1988: LatencyTable =
        LatencyTable { short_ops: 3, multiply: 3, long_ops: 6, integer: 2, sdu_transit: 2 };

    /// Pipeline depth of `op` in clocks.
    pub fn latency(&self, op: FuOp) -> u32 {
        use FuOp::*;
        match op {
            Add | Sub | Neg | Abs | Copy | Max | Min | MaxAbs | CmpLt | CmpEq => self.short_ops,
            Mul | MulAddConst => self.multiply,
            Div | Sqrt | Recip => self.long_ops,
            IAdd | ISub | IMul | And | Or | Xor | Shl | Shr => self.integer,
        }
    }

    /// The deepest pipeline in the table; bounds fill time of any pipeline.
    pub fn max_latency(&self) -> u32 {
        self.short_ops.max(self.multiply).max(self.long_ops).max(self.integer)
    }
}

impl Default for LatencyTable {
    fn default() -> Self {
        Self::NSC_1988
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_by_class() {
        let t = LatencyTable::NSC_1988;
        assert_eq!(t.latency(FuOp::Add), 3);
        assert_eq!(t.latency(FuOp::Mul), 3);
        assert_eq!(t.latency(FuOp::Div), 6);
        assert_eq!(t.latency(FuOp::Sqrt), 6);
        assert_eq!(t.latency(FuOp::IAdd), 2);
        assert_eq!(t.latency(FuOp::Max), 3);
        assert_eq!(t.latency(FuOp::Copy), 3);
    }

    #[test]
    fn max_latency_covers_all_ops() {
        let t = LatencyTable::NSC_1988;
        for op in FuOp::ALL {
            assert!(t.latency(op) <= t.max_latency());
        }
        assert_eq!(t.max_latency(), 6);
    }

    #[test]
    fn every_op_has_nonzero_latency() {
        let t = LatencyTable::default();
        for op in FuOp::ALL {
            assert!(t.latency(op) >= 1, "{op} must take at least one clock");
        }
    }
}
