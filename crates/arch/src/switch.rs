//! The programmable switch network (FLONET) port model.
//!
//! Paper §2: "A complex programmable switching network routes data among
//! ALSs, memory planes, caches, and shift-delay units." Figure 2 labels the
//! switch portions "FLONET". We model it as a single-stage full crossbar
//! over *typed ports*: every data producer in the node is a [`SourceRef`],
//! every data consumer a [`SinkRef`]. Routing rules (single driver per sink,
//! fan-out cap per source) live in [`SwitchSpec`] and are enforced by the
//! checker at edit time and by the microcode generator at emit time.

use crate::ids::{CacheId, FuId, PlaneId, SduId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of a functional unit's two operand inputs a wire lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InPort {
    /// First operand.
    A,
    /// Second operand.
    B,
}

impl InPort {
    /// Both input ports in canonical order.
    pub const BOTH: [InPort; 2] = [InPort::A, InPort::B];

    /// Dense index (A=0, B=1) used in port enumeration and microcode fields.
    pub fn index(self) -> usize {
        match self {
            InPort::A => 0,
            InPort::B => 1,
        }
    }
}

impl fmt::Display for InPort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InPort::A => f.write_str("a"),
            InPort::B => f.write_str("b"),
        }
    }
}

/// A data producer attached to the switch network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SourceRef {
    /// A functional unit's result stream.
    Fu(FuId),
    /// A cache's read stream (from the buffer currently facing the pipes).
    CacheRead(CacheId),
    /// A memory plane's DMA read stream.
    PlaneRead(PlaneId),
    /// One tap of a shift/delay unit.
    SduTap(SduId, u8),
}

impl fmt::Display for SourceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceRef::Fu(id) => write!(f, "{id}.out"),
            SourceRef::CacheRead(id) => write!(f, "{id}.rd"),
            SourceRef::PlaneRead(id) => write!(f, "{id}.rd"),
            SourceRef::SduTap(id, t) => write!(f, "{id}.tap{t}"),
        }
    }
}

/// A data consumer attached to the switch network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SinkRef {
    /// One operand input of a functional unit.
    FuIn(FuId, InPort),
    /// A cache's DMA write stream.
    CacheWrite(CacheId),
    /// A memory plane's DMA write stream.
    PlaneWrite(PlaneId),
    /// The single input stream of a shift/delay unit.
    SduIn(SduId),
}

impl SinkRef {
    /// The functional unit this sink belongs to, if any.
    pub fn fu(&self) -> Option<FuId> {
        match self {
            SinkRef::FuIn(id, _) => Some(*id),
            _ => None,
        }
    }
}

impl fmt::Display for SinkRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkRef::FuIn(id, p) => write!(f, "{id}.in{p}"),
            SinkRef::CacheWrite(id) => write!(f, "{id}.wr"),
            SinkRef::PlaneWrite(id) => write!(f, "{id}.wr"),
            SinkRef::SduIn(id) => write!(f, "{id}.in"),
        }
    }
}

/// Crossbar sizing and routing limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchSpec {
    /// Maximum number of sinks one source may drive simultaneously.
    /// Physical fan-out of the FLONET drivers; pinned to 4 in DESIGN.md.
    pub max_fanout: usize,
}

impl SwitchSpec {
    /// Enumerate every source port of a node with the given resource counts,
    /// in the canonical order used for microcode source-select codes.
    pub fn enumerate_sources(
        fus: usize,
        caches: usize,
        planes: usize,
        sdus: usize,
        taps_per_sdu: usize,
    ) -> Vec<SourceRef> {
        let mut v = Vec::with_capacity(fus + caches + planes + sdus * taps_per_sdu);
        v.extend((0..fus).map(|i| SourceRef::Fu(FuId(i as u8))));
        v.extend((0..caches).map(|i| SourceRef::CacheRead(CacheId(i as u8))));
        v.extend((0..planes).map(|i| SourceRef::PlaneRead(PlaneId(i as u8))));
        for s in 0..sdus {
            v.extend((0..taps_per_sdu).map(move |t| SourceRef::SduTap(SduId(s as u8), t as u8)));
        }
        v
    }

    /// Enumerate every sink port, in the canonical order used for the
    /// microcode switch table (one source-select field per sink).
    pub fn enumerate_sinks(fus: usize, caches: usize, planes: usize, sdus: usize) -> Vec<SinkRef> {
        let mut v = Vec::with_capacity(fus * 2 + caches + planes + sdus);
        for i in 0..fus {
            v.push(SinkRef::FuIn(FuId(i as u8), InPort::A));
            v.push(SinkRef::FuIn(FuId(i as u8), InPort::B));
        }
        v.extend((0..caches).map(|i| SinkRef::CacheWrite(CacheId(i as u8))));
        v.extend((0..planes).map(|i| SinkRef::PlaneWrite(PlaneId(i as u8))));
        v.extend((0..sdus).map(|i| SinkRef::SduIn(SduId(i as u8))));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_enumeration_order_and_count() {
        let src = SwitchSpec::enumerate_sources(32, 16, 16, 2, 4);
        assert_eq!(src.len(), 32 + 16 + 16 + 8);
        assert_eq!(src[0], SourceRef::Fu(FuId(0)));
        assert_eq!(src[32], SourceRef::CacheRead(CacheId(0)));
        assert_eq!(src[48], SourceRef::PlaneRead(PlaneId(0)));
        assert_eq!(src[64], SourceRef::SduTap(SduId(0), 0));
        assert_eq!(src[71], SourceRef::SduTap(SduId(1), 3));
    }

    #[test]
    fn sink_enumeration_order_and_count() {
        let sk = SwitchSpec::enumerate_sinks(32, 16, 16, 2);
        assert_eq!(sk.len(), 64 + 16 + 16 + 2);
        assert_eq!(sk[0], SinkRef::FuIn(FuId(0), InPort::A));
        assert_eq!(sk[1], SinkRef::FuIn(FuId(0), InPort::B));
        assert_eq!(sk[64], SinkRef::CacheWrite(CacheId(0)));
        assert_eq!(sk[80], SinkRef::PlaneWrite(PlaneId(0)));
        assert_eq!(sk[96], SinkRef::SduIn(SduId(0)));
    }

    #[test]
    fn ports_are_unique() {
        let src = SwitchSpec::enumerate_sources(32, 16, 16, 2, 4);
        let set: std::collections::HashSet<_> = src.iter().collect();
        assert_eq!(set.len(), src.len());
        let sk = SwitchSpec::enumerate_sinks(32, 16, 16, 2);
        let set: std::collections::HashSet<_> = sk.iter().collect();
        assert_eq!(set.len(), sk.len());
    }

    #[test]
    fn display_forms() {
        assert_eq!(SourceRef::Fu(FuId(3)).to_string(), "FU3.out");
        assert_eq!(SinkRef::FuIn(FuId(3), InPort::B).to_string(), "FU3.inb");
        assert_eq!(SourceRef::SduTap(SduId(1), 2).to_string(), "SDU1.tap2");
        assert_eq!(SinkRef::PlaneWrite(PlaneId(9)).to_string(), "MP9.wr");
    }

    #[test]
    fn sink_fu_accessor() {
        assert_eq!(SinkRef::FuIn(FuId(5), InPort::A).fu(), Some(FuId(5)));
        assert_eq!(SinkRef::CacheWrite(CacheId(0)).fu(), None);
    }
}
