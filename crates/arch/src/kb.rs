//! The knowledge base: the one queryable authority on machine facts.
//!
//! Paper §4: "The checker contains, in a knowledge base or other suitable
//! representation, detailed information about the architecture of the NSC,
//! so far as it is relevant to the programming process. This includes
//! various machine parameters such as the number and types of function
//! units, their organization into ALSs, the number and size of memory
//! planes, etc."
//!
//! And the robustness argument that experiment T9 validates: "it helps to
//! make the whole visual environment more robust in the face of changes to
//! the machine design. Some changes can be handled merely by updating the
//! knowledge base, with minimal impact on the graphical editor and microcode
//! generator."
//!
//! [`KnowledgeBase`] bundles a [`MachineConfig`] with its derived
//! [`NodeLayout`] and canonical switch-port enumerations; every downstream
//! component takes a `&KnowledgeBase` instead of hard-coding machine facts.

use crate::config::MachineConfig;
use crate::fu::{FuCaps, FuOp};
use crate::ids::{CacheId, FuId, PlaneId, SduId};
use crate::node::NodeLayout;
use crate::switch::{SinkRef, SourceRef, SwitchSpec};
use std::collections::HashMap;

/// Machine facts bundled for querying.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    cfg: MachineConfig,
    layout: NodeLayout,
    sources: Vec<SourceRef>,
    sinks: Vec<SinkRef>,
    source_codes: HashMap<SourceRef, u16>,
    sink_codes: HashMap<SinkRef, u16>,
}

impl KnowledgeBase {
    /// Build the knowledge base for a machine configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let layout = NodeLayout::build(&cfg);
        let sources = SwitchSpec::enumerate_sources(
            cfg.fu_count(),
            cfg.cache.caches,
            cfg.memory.planes,
            cfg.sdu.units,
            cfg.sdu.taps_per_unit,
        );
        let sinks = SwitchSpec::enumerate_sinks(
            cfg.fu_count(),
            cfg.cache.caches,
            cfg.memory.planes,
            cfg.sdu.units,
        );
        let source_codes = sources.iter().enumerate().map(|(i, &s)| (s, i as u16)).collect();
        let sink_codes = sinks.iter().enumerate().map(|(i, &s)| (s, i as u16)).collect();
        KnowledgeBase { cfg, layout, sources, sinks, source_codes, sink_codes }
    }

    /// The 1988 machine.
    pub fn nsc_1988() -> Self {
        Self::new(MachineConfig::nsc_1988())
    }

    /// The underlying configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The resolved node layout.
    pub fn layout(&self) -> &NodeLayout {
        &self.layout
    }

    /// Capability of a functional unit.
    pub fn fu_caps(&self, fu: FuId) -> FuCaps {
        self.layout.fu_caps(fu)
    }

    /// Legal operations for a functional unit — exactly the paper Figure 10
    /// pop-up menu contents.
    pub fn legal_ops(&self, fu: FuId) -> Vec<FuOp> {
        self.fu_caps(fu).legal_ops()
    }

    /// Every switch source port, in canonical (microcode) order.
    pub fn sources(&self) -> &[SourceRef] {
        &self.sources
    }

    /// Every switch sink port, in canonical (microcode) order.
    pub fn sinks(&self) -> &[SinkRef] {
        &self.sinks
    }

    /// Dense source-select code of a source port.
    pub fn source_code(&self, s: SourceRef) -> Option<u16> {
        self.source_codes.get(&s).copied()
    }

    /// Source port for a dense code.
    pub fn source_from_code(&self, code: u16) -> Option<SourceRef> {
        self.sources.get(code as usize).copied()
    }

    /// Dense index of a sink port.
    pub fn sink_code(&self, s: SinkRef) -> Option<u16> {
        self.sink_codes.get(&s).copied()
    }

    /// Sink port for a dense index.
    pub fn sink_from_code(&self, code: u16) -> Option<SinkRef> {
        self.sinks.get(code as usize).copied()
    }

    /// Whether this machine has the referenced resource at all (a cache id
    /// can be structurally valid yet absent under a subset model).
    pub fn source_exists(&self, s: SourceRef) -> bool {
        self.source_codes.contains_key(&s)
    }

    /// Sink-side counterpart of [`KnowledgeBase::source_exists`].
    pub fn sink_exists(&self, s: SinkRef) -> bool {
        self.sink_codes.contains_key(&s)
    }

    /// Range-check a plane id.
    pub fn valid_plane(&self, p: PlaneId) -> bool {
        p.index() < self.cfg.memory.planes
    }

    /// Range-check a cache id.
    pub fn valid_cache(&self, c: CacheId) -> bool {
        c.index() < self.cfg.cache.caches
    }

    /// Range-check an SDU id.
    pub fn valid_sdu(&self, s: SduId) -> bool {
        s.index() < self.cfg.sdu.units
    }

    /// Range-check a functional unit id.
    pub fn valid_fu(&self, f: FuId) -> bool {
        f.index() < self.cfg.fu_count()
    }

    /// Maximum switch fan-out per source.
    pub fn max_fanout(&self) -> usize {
        self.cfg.switch.max_fanout
    }

    /// Bits needed for a source-select microcode field (including one spare
    /// code for "unrouted").
    pub fn source_select_bits(&self) -> u32 {
        let n = self.sources.len() as u32 + 1;
        u32::BITS - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switch::InPort;

    #[test]
    fn codes_round_trip_for_every_port() {
        let kb = KnowledgeBase::nsc_1988();
        for (i, &s) in kb.sources().iter().enumerate() {
            assert_eq!(kb.source_code(s), Some(i as u16));
            assert_eq!(kb.source_from_code(i as u16), Some(s));
        }
        for (i, &s) in kb.sinks().iter().enumerate() {
            assert_eq!(kb.sink_code(s), Some(i as u16));
            assert_eq!(kb.sink_from_code(i as u16), Some(s));
        }
    }

    #[test]
    fn port_census_of_the_1988_machine() {
        let kb = KnowledgeBase::nsc_1988();
        assert_eq!(kb.sources().len(), 32 + 16 + 16 + 8, "72 sources");
        assert_eq!(kb.sinks().len(), 64 + 16 + 16 + 2, "98 sinks");
        assert_eq!(kb.source_select_bits(), 7, "72+1 codes fit in 7 bits");
    }

    #[test]
    fn subset_models_remove_ports() {
        let kb = KnowledgeBase::new(MachineConfig::nsc_1988().subset(crate::SubsetModel::NoCaches));
        assert!(!kb.source_exists(SourceRef::CacheRead(CacheId(0))));
        assert!(!kb.sink_exists(SinkRef::CacheWrite(CacheId(0))));
        assert!(kb.source_exists(SourceRef::PlaneRead(PlaneId(0))));

        let kb = KnowledgeBase::new(MachineConfig::nsc_1988().subset(crate::SubsetModel::NoSdu));
        assert!(!kb.source_exists(SourceRef::SduTap(SduId(0), 0)));
        assert!(!kb.sink_exists(SinkRef::SduIn(SduId(0))));
    }

    #[test]
    fn legal_ops_respects_fu_position() {
        let kb = KnowledgeBase::nsc_1988();
        // FU0 is the first unit of triplet 0: integer-capable.
        assert!(kb.legal_ops(FuId(0)).contains(&FuOp::IAdd));
        assert!(!kb.legal_ops(FuId(0)).contains(&FuOp::Max));
        // FU1 is the triplet middle: plain float.
        assert!(!kb.legal_ops(FuId(1)).contains(&FuOp::IAdd));
        assert!(!kb.legal_ops(FuId(1)).contains(&FuOp::Max));
        assert!(kb.legal_ops(FuId(1)).contains(&FuOp::Add));
        // FU2 is the triplet tail: min/max-capable.
        assert!(kb.legal_ops(FuId(2)).contains(&FuOp::Max));
    }

    #[test]
    fn validity_checks() {
        let kb = KnowledgeBase::nsc_1988();
        assert!(kb.valid_plane(PlaneId(15)) && !kb.valid_plane(PlaneId(16)));
        assert!(kb.valid_cache(CacheId(15)) && !kb.valid_cache(CacheId(16)));
        assert!(kb.valid_sdu(SduId(1)) && !kb.valid_sdu(SduId(2)));
        assert!(kb.valid_fu(FuId(31)) && !kb.valid_fu(FuId(32)));
    }

    #[test]
    fn sink_codes_cover_fu_inputs_first() {
        let kb = KnowledgeBase::nsc_1988();
        assert_eq!(kb.sink_code(SinkRef::FuIn(FuId(0), InPort::A)), Some(0));
        assert_eq!(kb.sink_code(SinkRef::FuIn(FuId(0), InPort::B)), Some(1));
        assert_eq!(kb.sink_code(SinkRef::FuIn(FuId(31), InPort::B)), Some(63));
    }
}
