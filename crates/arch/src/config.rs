//! The machine configuration: every parameter of one NSC node.
//!
//! [`MachineConfig::nsc_1988`] pins the sizing so the paper's published
//! numbers reproduce exactly (§2: 32 functional units, 2 GB in 16 planes,
//! 16 double-buffered caches, 2 shift/delay units, 640 MFLOPS peak per
//! node). [`SubsetModel`] implements the paper's §6 proposal — "to use a
//! simpler architectural model, perhaps a subset of the NSC. The tradeoff
//! here is between performance and programmability" — as explicit restricted
//! configurations for the ablation experiment (T4).

use crate::als::AlsKind;
use crate::memory::{CacheSpec, MemorySpec, SduSpec};
use crate::switch::SwitchSpec;
use crate::timing::LatencyTable;
use serde::{Deserialize, Serialize};

/// Complete description of one NSC node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable name of this configuration (shown in window titles).
    pub name: String,
    /// Node clock in Hz. 20 MHz x 32 FUs = the published 640 MFLOPS peak.
    pub clock_hz: u64,
    /// Number of triplet ALSs.
    pub triplets: usize,
    /// Number of doublet ALSs.
    pub doublets: usize,
    /// Number of singlet ALSs.
    pub singlets: usize,
    /// Memory-plane subsystem.
    pub memory: MemorySpec,
    /// Data-cache subsystem.
    pub cache: CacheSpec,
    /// Shift/delay units.
    pub sdu: SduSpec,
    /// Switch network limits.
    pub switch: SwitchSpec,
    /// Functional-unit pipeline depths.
    pub latency: LatencyTable,
    /// Words in each functional unit's register file (constants,
    /// intermediates, and circular delay queues share this space).
    pub rf_words: usize,
    /// If set, at most this many functional units per ALS may be active in
    /// one instruction (the "subset" restriction of §6; `None` = full NSC).
    pub max_active_per_als: Option<usize>,
}

impl MachineConfig {
    /// The pinned 1988 configuration (DESIGN.md §5).
    ///
    /// ALS mix: 4 triplets + 8 doublets + 4 singlets = 32 functional units.
    pub fn nsc_1988() -> Self {
        MachineConfig {
            name: "NSC (1988 sizing)".to_string(),
            clock_hz: 20_000_000,
            triplets: 4,
            doublets: 8,
            singlets: 4,
            memory: MemorySpec {
                planes: 16,
                words_per_plane: 16 * 1024 * 1024,
                read_ports_per_plane: 1,
                write_ports_per_plane: 1,
            },
            cache: CacheSpec { caches: 16, words_per_buffer: 8192, buffers: 2 },
            sdu: SduSpec { units: 2, taps_per_unit: 4, buffer_words: 16384 },
            switch: SwitchSpec { max_fanout: 4 },
            latency: LatencyTable::NSC_1988,
            rf_words: 64,
            max_active_per_als: None,
        }
    }

    /// A scaled-down configuration for fast unit tests: same shape and
    /// rules as the 1988 machine, tiny capacities.
    pub fn test_small() -> Self {
        MachineConfig {
            name: "NSC (test-small)".to_string(),
            clock_hz: 20_000_000,
            triplets: 1,
            doublets: 2,
            singlets: 1,
            memory: MemorySpec {
                planes: 4,
                words_per_plane: 4096,
                read_ports_per_plane: 1,
                write_ports_per_plane: 1,
            },
            cache: CacheSpec { caches: 4, words_per_buffer: 256, buffers: 2 },
            sdu: SduSpec { units: 1, taps_per_unit: 4, buffer_words: 512 },
            switch: SwitchSpec { max_fanout: 4 },
            latency: LatencyTable::NSC_1988,
            rf_words: 64,
            max_active_per_als: None,
        }
    }

    /// Apply a §6 subset restriction, returning the restricted machine.
    pub fn subset(&self, model: SubsetModel) -> MachineConfig {
        let mut cfg = self.clone();
        match model {
            SubsetModel::Full => {}
            SubsetModel::SingletsOnly => {
                cfg.name = format!("{} [singlets-only subset]", self.name);
                cfg.max_active_per_als = Some(1);
            }
            SubsetModel::NoCaches => {
                cfg.name = format!("{} [no-cache subset]", self.name);
                cfg.cache.caches = 0;
            }
            SubsetModel::NoSdu => {
                cfg.name = format!("{} [no-shift/delay subset]", self.name);
                cfg.sdu.units = 0;
            }
        }
        cfg
    }

    /// The ALS mix in layout order: triplets, then doublets, then singlets.
    pub fn als_kinds(&self) -> impl Iterator<Item = AlsKind> + '_ {
        std::iter::repeat_n(AlsKind::Triplet, self.triplets)
            .chain(std::iter::repeat_n(AlsKind::Doublet, self.doublets))
            .chain(std::iter::repeat_n(AlsKind::Singlet, self.singlets))
    }

    /// Total ALS count.
    pub fn als_count(&self) -> usize {
        self.triplets + self.doublets + self.singlets
    }

    /// Total functional units in the node.
    pub fn fu_count(&self) -> usize {
        self.triplets * 3 + self.doublets * 2 + self.singlets
    }

    /// Functional units usable simultaneously under the subset restriction.
    pub fn usable_fu_count(&self) -> usize {
        match self.max_active_per_als {
            None => self.fu_count(),
            Some(k) => {
                self.triplets * k.min(3) + self.doublets * k.min(2) + self.singlets * k.min(1)
            }
        }
    }

    /// Peak floating-point rate in MFLOPS: one result per usable FU per
    /// clock. For the 1988 sizing this is the paper's 640 MFLOPS.
    pub fn peak_mflops(&self) -> f64 {
        self.usable_fu_count() as f64 * self.clock_hz as f64 / 1.0e6
    }

    /// Peak rate of an `n`-node hypercube system in GFLOPS (the paper's
    /// 64-node figure is 40 GFLOPS).
    pub fn system_peak_gflops(&self, nodes: usize) -> f64 {
        self.peak_mflops() * nodes as f64 / 1.0e3
    }

    /// Total memory of an `n`-node system in gigabytes (128 GB at 64 nodes).
    pub fn system_memory_gb(&self, nodes: usize) -> u64 {
        self.memory.total_gigabytes() * nodes as u64
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::nsc_1988()
    }
}

/// The §6 "simpler architectural model" variants used by experiment T4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubsetModel {
    /// The full NSC, no restriction.
    Full,
    /// Every ALS restricted to one active unit (doublets/triplets operate
    /// as singlets, the generalization of the Figure 4 bypass form).
    SingletsOnly,
    /// No data caches: all streams to and from memory planes directly.
    NoCaches,
    /// No shift/delay units: stencil neighbour streams must come from
    /// separate plane copies of the array (§3's "multiple copies of
    /// arrays").
    NoSdu,
}

impl SubsetModel {
    /// All variants in presentation order.
    pub const ALL: [SubsetModel; 4] =
        [SubsetModel::Full, SubsetModel::SingletsOnly, SubsetModel::NoCaches, SubsetModel::NoSdu];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            SubsetModel::Full => "full NSC",
            SubsetModel::SingletsOnly => "singlets-only",
            SubsetModel::NoCaches => "no caches",
            SubsetModel::NoSdu => "no shift/delay",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_numbers_reproduce_exactly() {
        let cfg = MachineConfig::nsc_1988();
        assert_eq!(cfg.fu_count(), 32, "32 functional units per node");
        assert_eq!(cfg.peak_mflops(), 640.0, "640 MFLOPS peak per node");
        assert_eq!(cfg.memory.total_gigabytes(), 2, "2 GB per node");
        assert_eq!(cfg.system_peak_gflops(64), 40.96_f64.floor() + 0.96, "~40 GFLOPS at 64 nodes");
        assert!((cfg.system_peak_gflops(64) - 40.96).abs() < 1e-9);
        assert_eq!(cfg.system_memory_gb(64), 128, "128 GB at 64 nodes");
    }

    #[test]
    fn als_mix_adds_up() {
        let cfg = MachineConfig::nsc_1988();
        assert_eq!(cfg.als_count(), 16);
        let kinds: Vec<_> = cfg.als_kinds().collect();
        assert_eq!(kinds.len(), 16);
        assert_eq!(kinds.iter().filter(|k| **k == AlsKind::Triplet).count(), 4);
        assert_eq!(kinds.iter().filter(|k| **k == AlsKind::Doublet).count(), 8);
        assert_eq!(kinds.iter().filter(|k| **k == AlsKind::Singlet).count(), 4);
    }

    #[test]
    fn singlets_only_subset_halves_usable_units() {
        let cfg = MachineConfig::nsc_1988();
        let sub = cfg.subset(SubsetModel::SingletsOnly);
        assert_eq!(sub.usable_fu_count(), 16, "one unit per ALS");
        assert_eq!(sub.fu_count(), 32, "hardware is unchanged");
        assert_eq!(sub.peak_mflops(), 320.0);
    }

    #[test]
    fn no_cache_and_no_sdu_subsets() {
        let cfg = MachineConfig::nsc_1988();
        assert_eq!(cfg.subset(SubsetModel::NoCaches).cache.caches, 0);
        assert_eq!(cfg.subset(SubsetModel::NoSdu).sdu.units, 0);
        assert_eq!(cfg.subset(SubsetModel::Full), cfg);
    }

    #[test]
    fn subset_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            SubsetModel::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), SubsetModel::ALL.len());
    }

    #[test]
    fn test_small_is_consistent() {
        let cfg = MachineConfig::test_small();
        assert_eq!(cfg.fu_count(), 3 + 2 * 2 + 1);
        assert_eq!(cfg.als_count(), 4);
        assert!(cfg.peak_mflops() > 0.0);
    }

    #[test]
    fn config_serde_round_trip() {
        let cfg = MachineConfig::nsc_1988();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
