//! Arithmetic-logic structures: singlets, doublets and triplets.
//!
//! Paper §2: "The functional units are hardwired into three types of
//! arithmetic-logic structures (ALSs), called singlets, doublets, and
//! triplets, which contain respectively 1, 2, or 3 floating-point units."
//!
//! §5 adds the doublet subtlety visible in Figure 4: "Two representations of
//! the doublet are provided, since doublets may be configured to operate as
//! singlets by bypassing one of the functional units." [`DoubletMode`]
//! captures that configuration choice.
//!
//! Within an ALS the units are chained: the output of position `i` can feed
//! an input of position `i+1` directly, without a trip through the global
//! switch network. The checker treats intra-ALS chaining as always legal;
//! inter-ALS data must route through the switch.

use crate::fu::FuCaps;
use crate::ids::{AlsId, FuId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three hardwired ALS shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AlsKind {
    /// One functional unit.
    Singlet,
    /// Two functional units, optionally bypassing one ([`DoubletMode`]).
    Doublet,
    /// Three functional units.
    Triplet,
}

impl AlsKind {
    /// Number of functional units hardwired into this ALS shape.
    pub fn unit_count(self) -> usize {
        match self {
            AlsKind::Singlet => 1,
            AlsKind::Doublet => 2,
            AlsKind::Triplet => 3,
        }
    }

    /// Capability of the unit at `position` within this ALS shape.
    ///
    /// DESIGN.md pins the paper's asymmetry: the first unit carries the
    /// integer/logical circuitry ("double box" in Figure 4), the last unit of
    /// a multi-unit ALS carries min/max, and a singlet's lone unit gets both
    /// so it stays universally usable.
    pub fn unit_caps(self, position: usize) -> FuCaps {
        debug_assert!(position < self.unit_count());
        match self {
            AlsKind::Singlet => FuCaps::FULL,
            AlsKind::Doublet => {
                if position == 0 {
                    FuCaps::FLOAT_INT
                } else {
                    FuCaps::FLOAT_MINMAX
                }
            }
            AlsKind::Triplet => match position {
                0 => FuCaps::FLOAT_INT,
                1 => FuCaps::FLOAT,
                _ => FuCaps::FLOAT_MINMAX,
            },
        }
    }

    /// Display name matching the paper's vocabulary.
    pub fn name(self) -> &'static str {
        match self {
            AlsKind::Singlet => "singlet",
            AlsKind::Doublet => "doublet",
            AlsKind::Triplet => "triplet",
        }
    }
}

impl fmt::Display for AlsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a doublet is configured (paper Figure 4 shows both icon forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DoubletMode {
    /// Both units active, chained.
    #[default]
    Full,
    /// Operating as a singlet: only the first (integer-capable) unit active.
    BypassSecond,
    /// Operating as a singlet: only the second (min/max-capable) unit active.
    BypassFirst,
}

impl DoubletMode {
    /// Positions within the doublet that remain usable under this mode.
    pub fn active_positions(self) -> &'static [usize] {
        match self {
            DoubletMode::Full => &[0, 1],
            DoubletMode::BypassSecond => &[0],
            DoubletMode::BypassFirst => &[1],
        }
    }
}

/// One physical ALS: its shape and the global ids of its hardwired units.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlsStructure {
    /// Which ALS this is within the node.
    pub id: AlsId,
    /// Singlet, doublet or triplet.
    pub kind: AlsKind,
    /// Global FU ids, in chain order (`fus[i]` can feed `fus[i+1]`).
    pub fus: Vec<FuId>,
}

impl AlsStructure {
    /// Build an ALS whose units start at global id `first_fu`.
    pub fn new(id: AlsId, kind: AlsKind, first_fu: FuId) -> Self {
        let fus = (0..kind.unit_count()).map(|i| FuId(first_fu.0 + i as u8)).collect();
        AlsStructure { id, kind, fus }
    }

    /// Capability of the unit at chain `position`.
    pub fn caps_at(&self, position: usize) -> FuCaps {
        self.kind.unit_caps(position)
    }

    /// Chain position of a global FU id within this ALS, if it belongs here.
    pub fn position_of(&self, fu: FuId) -> Option<usize> {
        self.fus.iter().position(|&f| f == fu)
    }

    /// Whether `from` can feed `to` through the hardwired intra-ALS chain
    /// (adjacent positions, forward direction only).
    pub fn chains_to(&self, from: FuId, to: FuId) -> bool {
        match (self.position_of(from), self.position_of(to)) {
            (Some(a), Some(b)) => b == a + 1,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_counts_match_paper_names() {
        assert_eq!(AlsKind::Singlet.unit_count(), 1);
        assert_eq!(AlsKind::Doublet.unit_count(), 2);
        assert_eq!(AlsKind::Triplet.unit_count(), 3);
    }

    #[test]
    fn capability_asymmetry_per_als() {
        // "Only a single unit can perform integer operations, and another
        // unit has circuitry for min/max computations."
        for kind in [AlsKind::Doublet, AlsKind::Triplet] {
            let n = kind.unit_count();
            let int_units = (0..n).filter(|&p| kind.unit_caps(p).int_logic).count();
            let mm_units = (0..n).filter(|&p| kind.unit_caps(p).min_max).count();
            assert_eq!(int_units, 1, "{kind}: exactly one integer unit");
            assert_eq!(mm_units, 1, "{kind}: exactly one min/max unit");
        }
        // Every unit does float.
        for kind in [AlsKind::Singlet, AlsKind::Doublet, AlsKind::Triplet] {
            for p in 0..kind.unit_count() {
                assert!(kind.unit_caps(p).float);
            }
        }
    }

    #[test]
    fn triplet_middle_unit_is_plain_float() {
        let caps = AlsKind::Triplet.unit_caps(1);
        assert!(!caps.int_logic && !caps.min_max);
    }

    #[test]
    fn structure_assigns_dense_fu_ids() {
        let als = AlsStructure::new(AlsId(2), AlsKind::Triplet, FuId(6));
        assert_eq!(als.fus, vec![FuId(6), FuId(7), FuId(8)]);
        assert_eq!(als.position_of(FuId(7)), Some(1));
        assert_eq!(als.position_of(FuId(9)), None);
    }

    #[test]
    fn chaining_is_adjacent_and_forward_only() {
        let als = AlsStructure::new(AlsId(0), AlsKind::Triplet, FuId(0));
        assert!(als.chains_to(FuId(0), FuId(1)));
        assert!(als.chains_to(FuId(1), FuId(2)));
        assert!(!als.chains_to(FuId(0), FuId(2)), "no skip chaining");
        assert!(!als.chains_to(FuId(1), FuId(0)), "no backward chaining");
        assert!(!als.chains_to(FuId(2), FuId(3)), "FU3 is not in this ALS");
    }

    #[test]
    fn doublet_bypass_modes() {
        assert_eq!(DoubletMode::Full.active_positions(), &[0, 1]);
        assert_eq!(DoubletMode::BypassSecond.active_positions(), &[0]);
        assert_eq!(DoubletMode::BypassFirst.active_positions(), &[1]);
        assert_eq!(DoubletMode::default(), DoubletMode::Full);
    }
}
