//! Memory planes, double-buffered data caches, and shift/delay units.
//!
//! Paper §2: "Memory is arranged in 16 planes of 128 Mbytes each, for a
//! total memory of 2 Gbytes per node. In addition, there are 16
//! double-buffered data caches. Two shift/delay units are provided to aid in
//! reformatting memory data into multiple vector streams."
//!
//! The §3 constraint that dominates compilation — "During an instruction
//! (vector operation), a function unit can read or write in only a single
//! memory plane, and multiple function units working in the same memory
//! plane can cause contention problems" — is recorded here as plane port
//! counts for the checker to enforce.

use serde::{Deserialize, Serialize};

/// Sizing of the memory-plane subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Number of independent memory planes per node (16 in 1988).
    pub planes: usize,
    /// Capacity of one plane in 64-bit words (128 MB = 16 Mi words in 1988).
    pub words_per_plane: u64,
    /// Read ports per plane exposed to the switch (1: the §3 constraint).
    pub read_ports_per_plane: usize,
    /// Write ports per plane exposed to the switch (1: the §3 constraint).
    pub write_ports_per_plane: usize,
}

impl MemorySpec {
    /// Total node memory in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.planes as u64 * self.words_per_plane * 8
    }

    /// Total node memory in whole gigabytes (2 GB in the published sizing).
    pub fn total_gigabytes(&self) -> u64 {
        self.total_bytes() >> 30
    }

    /// Bytes per plane (128 MB in the published sizing).
    pub fn bytes_per_plane(&self) -> u64 {
        self.words_per_plane * 8
    }
}

/// Sizing of the double-buffered data caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSpec {
    /// Number of caches per node (16 in 1988).
    pub caches: usize,
    /// Words in one buffer of one cache (8 K words here; paper Figure 1's
    /// legend is garbled in the scan — "\[8\]KB x 16 x 2" — so the buffer
    /// size is a pinned DESIGN.md parameter).
    pub words_per_buffer: u64,
    /// Buffers per cache; 2 = double-buffered, which is what lets one buffer
    /// stream to the pipelines while DMA refills the other.
    pub buffers: usize,
}

impl CacheSpec {
    /// Total cache capacity of the node in words.
    pub fn total_words(&self) -> u64 {
        self.caches as u64 * self.words_per_buffer * self.buffers as u64
    }
}

/// Sizing of the shift/delay units.
///
/// An SDU accepts one input stream and re-emits it on several taps, each tap
/// delayed by a programmable number of elements (and optionally strided).
/// This is how a single memory-plane stream becomes the six neighbour
/// streams of a 3-D stencil: taps delayed by `0`, `nxny-nx`, `nxny-1`,
/// `nxny+1`, `nxny+nx` and `2*nxny` around the centre stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SduSpec {
    /// Number of shift/delay units per node (2 in 1988).
    pub units: usize,
    /// Output taps per unit.
    pub taps_per_unit: usize,
    /// Internal buffer length in words; the largest programmable tap delay.
    /// 16 Ki words covers `2*nx*ny` for grids up to 64 x 64 in the plane.
    pub buffer_words: u32,
}

impl SduSpec {
    /// Total delayed streams the node can synthesize at once.
    pub fn total_taps(&self) -> usize {
        self.units * self.taps_per_unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_memory() -> MemorySpec {
        MemorySpec {
            planes: 16,
            words_per_plane: 16 * 1024 * 1024,
            read_ports_per_plane: 1,
            write_ports_per_plane: 1,
        }
    }

    #[test]
    fn paper_memory_sizing_reproduces() {
        let m = paper_memory();
        assert_eq!(m.bytes_per_plane(), 128 * 1024 * 1024, "128 MB per plane");
        assert_eq!(m.total_gigabytes(), 2, "2 GB per node");
        assert_eq!(m.total_bytes(), 2 * 1024 * 1024 * 1024);
    }

    #[test]
    fn single_port_planes_encode_the_contention_constraint() {
        let m = paper_memory();
        assert_eq!(m.read_ports_per_plane, 1);
        assert_eq!(m.write_ports_per_plane, 1);
    }

    #[test]
    fn cache_capacity() {
        let c = CacheSpec { caches: 16, words_per_buffer: 8192, buffers: 2 };
        assert_eq!(c.total_words(), 16 * 8192 * 2);
    }

    #[test]
    fn sdu_taps_cover_a_3d_stencil() {
        let s = SduSpec { units: 2, taps_per_unit: 4, buffer_words: 16384 };
        // A 7-point stencil needs 6 neighbour taps plus the centre: two SDUs
        // fed from the same plane stream provide 8 taps.
        assert!(s.total_taps() >= 7);
        // And the buffer must hold two full xy-planes of a 64x64 grid.
        assert!(s.buffer_words >= 2 * 64 * 64);
    }
}
