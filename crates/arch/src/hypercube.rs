//! The hypercube system and hyperspace router.
//!
//! Paper §1: "The architecture consists of multiple processing nodes
//! arranged in a hypercube configuration"; §2: "Communication between nodes
//! is handled by means of a hyperspace router." The published system sizing
//! is 64 nodes (40 GFLOPS, 128 GB).
//!
//! The router is modelled with dimension-ordered (e-cube) routing and a
//! linear latency model — startup per hop plus time per word — with
//! synthetic constants pinned in DESIGN.md §5 (the paper gives none).

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Latency model of one hyperspace-router link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterModel {
    /// Fixed cost to launch a message across one hop, in nanoseconds.
    pub hop_startup_ns: u64,
    /// Transfer cost per 64-bit word per hop, in nanoseconds.
    pub ns_per_word: u64,
}

impl RouterModel {
    /// The pinned synthetic model: 10 us startup per hop, 100 ns per word.
    pub const NSC_1988: RouterModel = RouterModel { hop_startup_ns: 10_000, ns_per_word: 100 };

    /// Time for a message of `words` to traverse `hops` links, in ns.
    pub fn message_ns(&self, hops: u32, words: u64) -> u64 {
        if hops == 0 {
            return 0;
        }
        self.hop_startup_ns * hops as u64 + self.ns_per_word * words * hops as u64
    }
}

impl Default for RouterModel {
    fn default() -> Self {
        Self::NSC_1988
    }
}

/// A hypercube of NSC nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HypercubeConfig {
    /// Hypercube dimension; the system has `2^dimension` nodes.
    pub dimension: u32,
    /// Router latency model.
    pub router: RouterModel,
}

impl HypercubeConfig {
    /// A cube of the given dimension with the default router.
    pub fn new(dimension: u32) -> Self {
        assert!(dimension <= 16, "dimension {dimension} unreasonably large");
        HypercubeConfig { dimension, router: RouterModel::default() }
    }

    /// The published 64-node system.
    pub fn nsc_64() -> Self {
        Self::new(6)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        1usize << self.dimension
    }

    /// Hamming distance between two node addresses = e-cube hop count.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        (from.0 ^ to.0).count_ones()
    }

    /// Direct neighbours of a node (one per dimension).
    pub fn neighbours(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.dimension).map(|d| NodeId(node.0 ^ (1 << d))).collect()
    }

    /// Dimension-ordered (e-cube) route from `from` to `to`, inclusive of
    /// both endpoints. Deterministic and deadlock-free: dimensions are
    /// corrected lowest-first.
    pub fn ecube_route(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let mut route = vec![from];
        let mut cur = from.0;
        for d in 0..self.dimension {
            let bit = 1u16 << d;
            if (cur ^ to.0) & bit != 0 {
                cur ^= bit;
                route.push(NodeId(cur));
            }
        }
        route
    }

    /// Time for a point-to-point message, in nanoseconds.
    pub fn message_ns(&self, from: NodeId, to: NodeId, words: u64) -> u64 {
        self.router.message_ns(self.hops(from, to), words)
    }

    /// Binary-reflected Gray code of `i`: embeds a ring (or 1-D domain
    /// decomposition chain) into the cube so that successive subdomains are
    /// physical neighbours.
    pub fn gray(i: u16) -> u16 {
        i ^ (i >> 1)
    }

    /// The node hosting ring position `i` under the Gray embedding.
    pub fn ring_node(&self, i: usize) -> NodeId {
        NodeId(Self::gray((i % self.nodes()) as u16))
    }

    /// Inverse of [`HypercubeConfig::gray`]: the index whose Gray code is
    /// `g` (prefix-XOR decode).
    pub fn gray_inverse(g: u16) -> u16 {
        let mut i = g;
        let mut shift = 1;
        while shift < 16 {
            i ^= i >> shift;
            shift <<= 1;
        }
        i
    }

    /// The ring position a node hosts under the Gray embedding — the
    /// inverse of [`HypercubeConfig::ring_node`].
    pub fn ring_index(&self, node: NodeId) -> usize {
        Self::gray_inverse(node.0) as usize
    }

    /// Embed a `rows x cols` 2-D torus into the whole cube (see
    /// [`SubCube::torus2d`] for embedding into an allocated sub-cube).
    ///
    /// `rows * cols` must equal the node count and both must be powers of
    /// two. Torus-adjacent positions — including the wrap-around edges —
    /// land on hypercube neighbours: the row and column indices are each
    /// Gray-coded into their own bit field, and a binary-reflected Gray
    /// ring is cyclically adjacent.
    pub fn torus2d(&self, rows: usize, cols: usize) -> TorusEmbedding {
        self.whole_subcube().torus2d(rows, cols)
    }

    /// The whole cube viewed as one (trivially allocated) sub-cube.
    pub fn whole_subcube(&self) -> SubCube {
        SubCube { base: NodeId(0), dimension: self.dimension }
    }

    /// The most nearly square `rows x cols` factorization of the cube for
    /// [`HypercubeConfig::torus2d`]: rows get the extra dimension when the
    /// dimension is odd.
    pub fn torus2d_near_square(&self) -> TorusEmbedding {
        let row_bits = self.dimension.div_ceil(2);
        self.torus2d(1 << row_bits, 1 << (self.dimension - row_bits))
    }

    /// Split `items` contiguous items into `2^dimension` balanced chunks,
    /// one per ring position: `(start, len)` pairs in ring order, lengths
    /// differing by at most one (earlier chunks take the remainder). The
    /// chunk at ring position `i` lives on [`HypercubeConfig::ring_node`]`(i)`,
    /// so adjacent chunks sit on physically adjacent nodes — the 1-D
    /// domain-decomposition layout.
    ///
    /// This is a *plain* balanced split with no knowledge of ghost
    /// layers; stencil solvers should decompose through `nsc-cfd`'s
    /// `Partition` implementations instead, which additionally donate
    /// items toward the edges so every local slab stays sweepable.
    pub fn ring_partition(&self, items: usize) -> Vec<(usize, usize)> {
        let parts = self.nodes();
        let base = items / parts;
        let rem = items % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let len = base + usize::from(i < rem);
            out.push((start, len));
            start += len;
        }
        out
    }
}

/// An aligned sub-cube of the system: `2^dimension` nodes whose addresses
/// share the high bits of `base` and range over the low `dimension` bits.
///
/// Sub-cubes are the unit of space sharing: several embeddings (rings,
/// tori) can coexist on one system as long as their sub-cubes are
/// disjoint, which [`SubCubeAllocator`] guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubCube {
    /// Lowest node address of the sub-cube (low `dimension` bits zero).
    pub base: NodeId,
    /// Sub-cube dimension; it spans `2^dimension` nodes.
    pub dimension: u32,
}

impl SubCube {
    /// Number of nodes in the sub-cube.
    pub fn nodes(&self) -> usize {
        1usize << self.dimension
    }

    /// The `i`-th node of the sub-cube (local address `i`).
    pub fn node(&self, i: usize) -> NodeId {
        debug_assert!(i < self.nodes());
        NodeId(self.base.0 | i as u16)
    }

    /// Whether a node belongs to this sub-cube.
    pub fn contains(&self, node: NodeId) -> bool {
        node.0 & !(self.nodes() as u16 - 1) == self.base.0
    }

    /// All member nodes, in local-address order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes()).map(|i| self.node(i))
    }

    /// Embed a `rows x cols` 2-D torus into this sub-cube. `rows * cols`
    /// must equal the sub-cube's node count and both must be powers of
    /// two; distinct torus-adjacent positions (wrap-around included) are
    /// always exactly one hop apart.
    pub fn torus2d(&self, rows: usize, cols: usize) -> TorusEmbedding {
        assert!(rows.is_power_of_two() && cols.is_power_of_two(), "torus sides are powers of two");
        assert_eq!(
            rows * cols,
            self.nodes(),
            "a {rows}x{cols} torus does not tile a {}-node sub-cube",
            self.nodes()
        );
        TorusEmbedding { rows, cols, col_bits: cols.trailing_zeros(), subcube: *self }
    }
}

/// Buddy allocator for disjoint, aligned sub-cubes of one system.
///
/// The hosting substrate for running several distributed workloads on one
/// machine at once: each workload allocates the sub-cube its embedding
/// needs, and releases it when done. Allocation splits the smallest free
/// block that fits (so the space stays unfragmented), release re-merges
/// freed buddies.
#[derive(Debug, Clone)]
pub struct SubCubeAllocator {
    dimension: u32,
    /// `free[k]` holds the bases of free sub-cubes of dimension `k`.
    free: Vec<Vec<u16>>,
    /// Sub-cubes handed out and not yet freed, in allocation order.
    outstanding: Vec<SubCube>,
}

impl SubCubeAllocator {
    /// An allocator over the whole of `cube`, initially all free.
    pub fn new(cube: &HypercubeConfig) -> Self {
        let mut free = vec![Vec::new(); cube.dimension as usize + 1];
        free[cube.dimension as usize].push(0);
        SubCubeAllocator { dimension: cube.dimension, free, outstanding: Vec::new() }
    }

    /// Allocate a sub-cube of `2^dim` nodes, or `None` when no aligned
    /// block of that size is free.
    pub fn allocate(&mut self, dim: u32) -> Option<SubCube> {
        if dim > self.dimension {
            return None;
        }
        // Smallest free block that fits, lowest base first (deterministic).
        let from = (dim..=self.dimension).find(|&k| !self.free[k as usize].is_empty())?;
        let list = &mut self.free[from as usize];
        let pos = (0..list.len()).min_by_key(|&i| list[i]).expect("nonempty list");
        let mut base = list.swap_remove(pos);
        // Split down, returning the upper buddy of every level to the pool.
        for k in (dim..from).rev() {
            self.free[k as usize].push(base | (1 << k));
        }
        base &= !((1u16 << dim) - 1);
        let sc = SubCube { base: NodeId(base), dimension: dim };
        self.outstanding.push(sc);
        Some(sc)
    }

    /// Return a sub-cube to the pool, merging it with its free buddy at
    /// every level it can — so once everything is freed, the whole cube
    /// re-coalesces into one block of the allocator's own dimension.
    ///
    /// # Panics
    ///
    /// Panics when `sc` is not an outstanding allocation of this
    /// allocator (a double free, or a sub-cube it never handed out):
    /// silently accepting one would inflate capacity and let later
    /// allocations overlap.
    pub fn free(&mut self, sc: SubCube) {
        let pos =
            self.outstanding.iter().position(|o| *o == sc).unwrap_or_else(|| {
                panic!("freeing {sc:?}, which is not an outstanding allocation")
            });
        self.outstanding.swap_remove(pos);
        let mut base = sc.base.0;
        let mut dim = sc.dimension;
        while dim < self.dimension {
            let buddy = base ^ (1 << dim);
            let Some(pos) = self.free[dim as usize].iter().position(|&b| b == buddy) else {
                break;
            };
            self.free[dim as usize].swap_remove(pos);
            base &= !(1 << dim);
            dim += 1;
        }
        self.free[dim as usize].push(base);
    }

    /// Alias of [`SubCubeAllocator::free`], kept for the embedding
    /// drivers that pair `allocate` with `release`.
    pub fn release(&mut self, sc: SubCube) {
        self.free(sc);
    }

    /// Nodes currently unallocated.
    pub fn free_nodes(&self) -> usize {
        self.free.iter().enumerate().map(|(k, list)| list.len() << k).sum()
    }

    /// Total nodes the allocator manages (free or not).
    pub fn capacity_nodes(&self) -> usize {
        1usize << self.dimension
    }

    /// Nodes currently handed out.
    pub fn allocated_nodes(&self) -> usize {
        self.outstanding.iter().map(|sc| sc.nodes()).sum()
    }

    /// Sub-cubes handed out and not yet freed, in allocation order.
    pub fn outstanding(&self) -> &[SubCube] {
        &self.outstanding
    }

    /// Largest sub-cube dimension an [`SubCubeAllocator::allocate`] call
    /// would currently succeed for, or `None` when nothing is free. The
    /// scheduler's admission test: a job of dimension `d` fits iff
    /// `largest_free_dim() >= Some(d)`.
    pub fn largest_free_dim(&self) -> Option<u32> {
        (0..=self.dimension).rev().find(|&k| !self.free[k as usize].is_empty())
    }

    /// Whether an aligned block of `2^dim` nodes is free right now.
    pub fn can_allocate(&self, dim: u32) -> bool {
        dim <= self.dimension && self.largest_free_dim().is_some_and(|k| k >= dim)
    }
}

/// A `rows x cols` 2-D torus Gray-embedded in a sub-cube.
///
/// Position `(r, c)` lives on node
/// `base | gray(r) << col_bits | gray(c)`; because a binary-reflected
/// Gray ring is cyclically adjacent, torus neighbours — wrap-around edges
/// included — are hypercube neighbours, so every halo message of a 2-D
/// block decomposition crosses exactly one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TorusEmbedding {
    rows: usize,
    cols: usize,
    col_bits: u32,
    subcube: SubCube,
}

impl TorusEmbedding {
    /// Torus rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Torus columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total torus positions (= sub-cube nodes).
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the torus is empty (it never is; for clippy symmetry).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sub-cube hosting the embedding.
    pub fn subcube(&self) -> SubCube {
        self.subcube
    }

    /// The node hosting torus position `(r, c)`.
    pub fn node(&self, r: usize, c: usize) -> NodeId {
        debug_assert!(r < self.rows && c < self.cols);
        let local =
            (HypercubeConfig::gray(r as u16) << self.col_bits) | HypercubeConfig::gray(c as u16);
        NodeId(self.subcube.base.0 | local)
    }

    /// The torus position a node hosts, or `None` when the node is outside
    /// the embedding's sub-cube — the inverse of [`TorusEmbedding::node`].
    pub fn coords(&self, node: NodeId) -> Option<(usize, usize)> {
        if !self.subcube.contains(node) {
            return None;
        }
        let local = node.0 & (self.subcube.nodes() as u16 - 1);
        let r = HypercubeConfig::gray_inverse(local >> self.col_bits) as usize;
        let c = HypercubeConfig::gray_inverse(local & ((1 << self.col_bits) - 1)) as usize;
        Some((r, c))
    }

    /// Torus neighbour of `(r, c)` one step along the row axis
    /// (`dr = ±1`), wrapping at the edges.
    pub fn row_neighbour(&self, r: usize, c: usize, dr: isize) -> NodeId {
        let nr = (r as isize + dr).rem_euclid(self.rows as isize) as usize;
        self.node(nr, c)
    }

    /// Torus neighbour of `(r, c)` one step along the column axis
    /// (`dc = ±1`), wrapping at the edges.
    pub fn col_neighbour(&self, r: usize, c: usize, dc: isize) -> NodeId {
        let nc = (c as isize + dc).rem_euclid(self.cols as isize) as usize;
        self.node(r, nc)
    }

    /// All member nodes in row-major torus order.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(|i| self.node(i / self.cols, i % self.cols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_system_size() {
        let sys = HypercubeConfig::nsc_64();
        assert_eq!(sys.nodes(), 64);
        assert_eq!(sys.dimension, 6);
    }

    #[test]
    fn hop_count_is_hamming_distance() {
        let sys = HypercubeConfig::new(4);
        assert_eq!(sys.hops(NodeId(0b0000), NodeId(0b1111)), 4);
        assert_eq!(sys.hops(NodeId(0b1010), NodeId(0b1010)), 0);
        assert_eq!(sys.hops(NodeId(0b1010), NodeId(0b1000)), 1);
    }

    #[test]
    fn neighbours_differ_in_exactly_one_bit() {
        let sys = HypercubeConfig::new(6);
        let n = NodeId(0b101010);
        let nb = sys.neighbours(n);
        assert_eq!(nb.len(), 6);
        for x in nb {
            assert_eq!(sys.hops(n, x), 1);
        }
    }

    #[test]
    fn ecube_route_is_monotone_and_minimal() {
        let sys = HypercubeConfig::new(6);
        let from = NodeId(0b000111);
        let to = NodeId(0b101010);
        let route = sys.ecube_route(from, to);
        assert_eq!(route.first(), Some(&from));
        assert_eq!(route.last(), Some(&to));
        assert_eq!(route.len() as u32 - 1, sys.hops(from, to), "minimal route");
        for w in route.windows(2) {
            assert_eq!(sys.hops(w[0], w[1]), 1, "each step crosses one link");
        }
    }

    #[test]
    fn ecube_route_trivial_when_same_node() {
        let sys = HypercubeConfig::new(3);
        assert_eq!(sys.ecube_route(NodeId(5), NodeId(5)), vec![NodeId(5)]);
    }

    #[test]
    fn message_time_model() {
        let r = RouterModel::NSC_1988;
        assert_eq!(r.message_ns(0, 1000), 0, "local messages are free");
        assert_eq!(r.message_ns(1, 0), 10_000);
        assert_eq!(r.message_ns(2, 100), 2 * 10_000 + 2 * 100 * 100);
    }

    #[test]
    fn gray_embedding_keeps_ring_neighbours_adjacent() {
        let sys = HypercubeConfig::new(6);
        for i in 0..sys.nodes() {
            let a = sys.ring_node(i);
            let b = sys.ring_node((i + 1) % sys.nodes());
            assert_eq!(sys.hops(a, b), 1, "ring positions {i},{} not adjacent", i + 1);
        }
    }

    #[test]
    fn gray_codes_are_a_permutation() {
        let n = 64u16;
        let set: std::collections::HashSet<_> = (0..n).map(HypercubeConfig::gray).collect();
        assert_eq!(set.len(), n as usize);
    }

    #[test]
    fn gray_inverse_round_trips() {
        for i in 0..1024u16 {
            assert_eq!(HypercubeConfig::gray_inverse(HypercubeConfig::gray(i)), i);
        }
        let sys = HypercubeConfig::new(5);
        for i in 0..sys.nodes() {
            assert_eq!(sys.ring_index(sys.ring_node(i)), i);
        }
    }

    #[test]
    fn torus_adjacency_is_one_hop_including_wraps() {
        let sys = HypercubeConfig::new(6);
        for (rows, cols) in [(8, 8), (16, 4), (4, 16), (2, 32), (64, 1), (1, 64)] {
            let t = sys.torus2d(rows, cols);
            assert_eq!((t.rows(), t.cols()), (rows, cols));
            for r in 0..rows {
                for c in 0..cols {
                    let here = t.node(r, c);
                    for n in [
                        t.row_neighbour(r, c, 1),
                        t.row_neighbour(r, c, -1),
                        t.col_neighbour(r, c, 1),
                        t.col_neighbour(r, c, -1),
                    ] {
                        if n != here {
                            assert_eq!(sys.hops(here, n), 1, "{rows}x{cols} at ({r},{c})");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn torus_is_a_bijection_with_coords_inverse() {
        let sys = HypercubeConfig::new(5);
        let t = sys.torus2d_near_square();
        assert_eq!((t.rows(), t.cols()), (8, 4));
        let seen: std::collections::HashSet<_> = t.members().collect();
        assert_eq!(seen.len(), 32, "every node hosts exactly one position");
        for r in 0..t.rows() {
            for c in 0..t.cols() {
                assert_eq!(t.coords(t.node(r, c)), Some((r, c)));
            }
        }
    }

    #[test]
    fn subcube_allocation_is_disjoint_and_torus_capable() {
        let sys = HypercubeConfig::new(4);
        let mut alloc = SubCubeAllocator::new(&sys);
        let a = alloc.allocate(3).expect("8 nodes");
        let b = alloc.allocate(2).expect("4 nodes");
        let c = alloc.allocate(2).expect("4 more");
        assert!(alloc.allocate(1).is_none(), "the cube is full");
        assert_eq!(alloc.free_nodes(), 0);
        let all: Vec<NodeId> = a.members().chain(b.members()).chain(c.members()).collect();
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 16, "allocations are disjoint and cover the cube");

        // Two embeddings coexist on disjoint sub-cubes, each with the
        // one-hop invariant inside its own sub-cube.
        let ta = a.torus2d(4, 2);
        let tb = b.torus2d(2, 2);
        for t in [&ta, &tb] {
            for r in 0..t.rows() {
                for c in 0..t.cols() {
                    for n in [t.row_neighbour(r, c, 1), t.col_neighbour(r, c, 1)] {
                        if n != t.node(r, c) {
                            assert_eq!(sys.hops(t.node(r, c), n), 1);
                        }
                    }
                    assert!(t.subcube().contains(t.node(r, c)));
                }
            }
        }
        assert!(ta.members().all(|n| tb.coords(n).is_none()), "no cross-talk");
    }

    #[test]
    fn subcube_release_remerges_buddies() {
        let sys = HypercubeConfig::new(3);
        let mut alloc = SubCubeAllocator::new(&sys);
        let a = alloc.allocate(1).expect("2 nodes");
        let b = alloc.allocate(1).expect("2 nodes");
        let c = alloc.allocate(2).expect("4 nodes");
        assert_eq!(alloc.free_nodes(), 0);
        alloc.release(a);
        alloc.release(b);
        alloc.release(c);
        assert_eq!(alloc.free_nodes(), 8);
        let whole = alloc.allocate(3).expect("buddies re-merged to the full cube");
        assert_eq!(whole.base, NodeId(0));
        assert_eq!(whole.nodes(), 8);
    }

    #[test]
    fn ring_partition_is_balanced_and_covers() {
        let sys = HypercubeConfig::new(3);
        let parts = sys.ring_partition(29);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts.iter().map(|&(_, l)| l).sum::<usize>(), 29);
        let (min, max) =
            parts.iter().fold((usize::MAX, 0), |(lo, hi), &(_, l)| (lo.min(l), hi.max(l)));
        assert_eq!(max - min, 1, "remainder spread one item at a time");
        // Contiguous: each chunk starts where the previous ended.
        let mut next = 0;
        for &(start, len) in &parts {
            assert_eq!(start, next);
            next = start + len;
        }
    }
}
