//! The hypercube system and hyperspace router.
//!
//! Paper §1: "The architecture consists of multiple processing nodes
//! arranged in a hypercube configuration"; §2: "Communication between nodes
//! is handled by means of a hyperspace router." The published system sizing
//! is 64 nodes (40 GFLOPS, 128 GB).
//!
//! The router is modelled with dimension-ordered (e-cube) routing and a
//! linear latency model — startup per hop plus time per word — with
//! synthetic constants pinned in DESIGN.md §5 (the paper gives none).

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Latency model of one hyperspace-router link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterModel {
    /// Fixed cost to launch a message across one hop, in nanoseconds.
    pub hop_startup_ns: u64,
    /// Transfer cost per 64-bit word per hop, in nanoseconds.
    pub ns_per_word: u64,
}

impl RouterModel {
    /// The pinned synthetic model: 10 us startup per hop, 100 ns per word.
    pub const NSC_1988: RouterModel = RouterModel { hop_startup_ns: 10_000, ns_per_word: 100 };

    /// Time for a message of `words` to traverse `hops` links, in ns.
    pub fn message_ns(&self, hops: u32, words: u64) -> u64 {
        if hops == 0 {
            return 0;
        }
        self.hop_startup_ns * hops as u64 + self.ns_per_word * words * hops as u64
    }
}

impl Default for RouterModel {
    fn default() -> Self {
        Self::NSC_1988
    }
}

/// A hypercube of NSC nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HypercubeConfig {
    /// Hypercube dimension; the system has `2^dimension` nodes.
    pub dimension: u32,
    /// Router latency model.
    pub router: RouterModel,
}

impl HypercubeConfig {
    /// A cube of the given dimension with the default router.
    pub fn new(dimension: u32) -> Self {
        assert!(dimension <= 16, "dimension {dimension} unreasonably large");
        HypercubeConfig { dimension, router: RouterModel::default() }
    }

    /// The published 64-node system.
    pub fn nsc_64() -> Self {
        Self::new(6)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        1usize << self.dimension
    }

    /// Hamming distance between two node addresses = e-cube hop count.
    pub fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        (from.0 ^ to.0).count_ones()
    }

    /// Direct neighbours of a node (one per dimension).
    pub fn neighbours(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.dimension).map(|d| NodeId(node.0 ^ (1 << d))).collect()
    }

    /// Dimension-ordered (e-cube) route from `from` to `to`, inclusive of
    /// both endpoints. Deterministic and deadlock-free: dimensions are
    /// corrected lowest-first.
    pub fn ecube_route(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let mut route = vec![from];
        let mut cur = from.0;
        for d in 0..self.dimension {
            let bit = 1u16 << d;
            if (cur ^ to.0) & bit != 0 {
                cur ^= bit;
                route.push(NodeId(cur));
            }
        }
        route
    }

    /// Time for a point-to-point message, in nanoseconds.
    pub fn message_ns(&self, from: NodeId, to: NodeId, words: u64) -> u64 {
        self.router.message_ns(self.hops(from, to), words)
    }

    /// Binary-reflected Gray code of `i`: embeds a ring (or 1-D domain
    /// decomposition chain) into the cube so that successive subdomains are
    /// physical neighbours.
    pub fn gray(i: u16) -> u16 {
        i ^ (i >> 1)
    }

    /// The node hosting ring position `i` under the Gray embedding.
    pub fn ring_node(&self, i: usize) -> NodeId {
        NodeId(Self::gray((i % self.nodes()) as u16))
    }

    /// Inverse of [`HypercubeConfig::gray`]: the index whose Gray code is
    /// `g` (prefix-XOR decode).
    pub fn gray_inverse(g: u16) -> u16 {
        let mut i = g;
        let mut shift = 1;
        while shift < 16 {
            i ^= i >> shift;
            shift <<= 1;
        }
        i
    }

    /// The ring position a node hosts under the Gray embedding — the
    /// inverse of [`HypercubeConfig::ring_node`].
    pub fn ring_index(&self, node: NodeId) -> usize {
        Self::gray_inverse(node.0) as usize
    }

    /// Split `items` contiguous items into `2^dimension` balanced chunks,
    /// one per ring position: `(start, len)` pairs in ring order, lengths
    /// differing by at most one (earlier chunks take the remainder). The
    /// chunk at ring position `i` lives on [`HypercubeConfig::ring_node`]`(i)`,
    /// so adjacent chunks sit on physically adjacent nodes — the 1-D
    /// domain-decomposition layout.
    pub fn ring_partition(&self, items: usize) -> Vec<(usize, usize)> {
        let parts = self.nodes();
        let base = items / parts;
        let rem = items % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let len = base + usize::from(i < rem);
            out.push((start, len));
            start += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_system_size() {
        let sys = HypercubeConfig::nsc_64();
        assert_eq!(sys.nodes(), 64);
        assert_eq!(sys.dimension, 6);
    }

    #[test]
    fn hop_count_is_hamming_distance() {
        let sys = HypercubeConfig::new(4);
        assert_eq!(sys.hops(NodeId(0b0000), NodeId(0b1111)), 4);
        assert_eq!(sys.hops(NodeId(0b1010), NodeId(0b1010)), 0);
        assert_eq!(sys.hops(NodeId(0b1010), NodeId(0b1000)), 1);
    }

    #[test]
    fn neighbours_differ_in_exactly_one_bit() {
        let sys = HypercubeConfig::new(6);
        let n = NodeId(0b101010);
        let nb = sys.neighbours(n);
        assert_eq!(nb.len(), 6);
        for x in nb {
            assert_eq!(sys.hops(n, x), 1);
        }
    }

    #[test]
    fn ecube_route_is_monotone_and_minimal() {
        let sys = HypercubeConfig::new(6);
        let from = NodeId(0b000111);
        let to = NodeId(0b101010);
        let route = sys.ecube_route(from, to);
        assert_eq!(route.first(), Some(&from));
        assert_eq!(route.last(), Some(&to));
        assert_eq!(route.len() as u32 - 1, sys.hops(from, to), "minimal route");
        for w in route.windows(2) {
            assert_eq!(sys.hops(w[0], w[1]), 1, "each step crosses one link");
        }
    }

    #[test]
    fn ecube_route_trivial_when_same_node() {
        let sys = HypercubeConfig::new(3);
        assert_eq!(sys.ecube_route(NodeId(5), NodeId(5)), vec![NodeId(5)]);
    }

    #[test]
    fn message_time_model() {
        let r = RouterModel::NSC_1988;
        assert_eq!(r.message_ns(0, 1000), 0, "local messages are free");
        assert_eq!(r.message_ns(1, 0), 10_000);
        assert_eq!(r.message_ns(2, 100), 2 * 10_000 + 2 * 100 * 100);
    }

    #[test]
    fn gray_embedding_keeps_ring_neighbours_adjacent() {
        let sys = HypercubeConfig::new(6);
        for i in 0..sys.nodes() {
            let a = sys.ring_node(i);
            let b = sys.ring_node((i + 1) % sys.nodes());
            assert_eq!(sys.hops(a, b), 1, "ring positions {i},{} not adjacent", i + 1);
        }
    }

    #[test]
    fn gray_codes_are_a_permutation() {
        let n = 64u16;
        let set: std::collections::HashSet<_> = (0..n).map(HypercubeConfig::gray).collect();
        assert_eq!(set.len(), n as usize);
    }

    #[test]
    fn gray_inverse_round_trips() {
        for i in 0..1024u16 {
            assert_eq!(HypercubeConfig::gray_inverse(HypercubeConfig::gray(i)), i);
        }
        let sys = HypercubeConfig::new(5);
        for i in 0..sys.nodes() {
            assert_eq!(sys.ring_index(sys.ring_node(i)), i);
        }
    }

    #[test]
    fn ring_partition_is_balanced_and_covers() {
        let sys = HypercubeConfig::new(3);
        let parts = sys.ring_partition(29);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts.iter().map(|&(_, l)| l).sum::<usize>(), 29);
        let (min, max) =
            parts.iter().fold((usize::MAX, 0), |(lo, hi), &(_, l)| (lo.min(l), hi.max(l)));
        assert_eq!(max - min, 1, "remainder spread one item at a time");
        // Contiguous: each chunk starts where the previous ended.
        let mut next = 0;
        for &(start, len) in &parts {
            assert_eq!(start, next);
            next = start + len;
        }
    }
}
