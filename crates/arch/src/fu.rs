//! Functional units: capabilities and the operation repertoire.
//!
//! Paper §2: "Every functional unit can perform floating-point operations,
//! and some of them can also perform either integer/logical operations or
//! max/min computations." §3 adds the asymmetry that complicates compilation:
//! "Only a single unit can perform integer operations, and another unit has
//! circuitry for min/max computations" — *per ALS*. The checker enforces
//! [`FuCaps::supports`] whenever the editor assigns an operation to a unit
//! (paper Figure 10 pops up only the legal menu).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Capability set of one functional unit.
///
/// `float` is always true on the NSC; the flags record the extras that only
/// some units have ("double box" units in the icon of paper Figure 4 are the
/// integer/logical-capable ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuCaps {
    /// Floating-point arithmetic (every NSC unit has this).
    pub float: bool,
    /// Integer and logical operations (one unit per ALS).
    pub int_logic: bool,
    /// Min/max circuitry (another unit per ALS).
    pub min_max: bool,
}

impl FuCaps {
    /// A plain floating-point unit.
    pub const FLOAT: FuCaps = FuCaps { float: true, int_logic: false, min_max: false };
    /// The per-ALS unit that additionally performs integer/logical work.
    pub const FLOAT_INT: FuCaps = FuCaps { float: true, int_logic: true, min_max: false };
    /// The per-ALS unit that additionally has min/max circuitry.
    pub const FLOAT_MINMAX: FuCaps = FuCaps { float: true, int_logic: false, min_max: true };
    /// A singlet's lone unit: the 1988 sizing gives it both extras so that a
    /// singlet remains universally usable (documented DESIGN.md choice).
    pub const FULL: FuCaps = FuCaps { float: true, int_logic: true, min_max: true };

    /// Whether a unit with these capabilities may execute `op`.
    #[inline]
    pub fn supports(self, op: FuOp) -> bool {
        match op.class() {
            OpClass::Float => self.float,
            OpClass::IntLogic => self.int_logic,
            OpClass::MinMax => self.min_max,
        }
    }

    /// All operations a unit with these capabilities may execute, in menu
    /// order. This is exactly the content of the paper's Figure 10 pop-up.
    pub fn legal_ops(self) -> Vec<FuOp> {
        FuOp::ALL.iter().copied().filter(|&op| self.supports(op)).collect()
    }
}

impl fmt::Display for FuCaps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F")?;
        if self.int_logic {
            write!(f, "+I")?;
        }
        if self.min_max {
            write!(f, "+M")?;
        }
        Ok(())
    }
}

/// Broad class of an operation; determines which units may host it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Floating point (legal on every unit).
    Float,
    /// Integer / logical (legal only on `int_logic` units).
    IntLogic,
    /// Min / max (legal only on `min_max` units).
    MinMax,
}

/// The operation repertoire of an NSC functional unit.
///
/// Each unit takes up to two input operands (`A`, `B`) per element and
/// produces one result per clock once the pipeline is full. Scalars are
/// vectors of length one (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuOp {
    // -- floating point (every unit) --
    /// `A + B`
    Add,
    /// `A - B`
    Sub,
    /// `A * B`
    Mul,
    /// `A / B`
    Div,
    /// `-A`
    Neg,
    /// `|A|`
    Abs,
    /// `sqrt(A)`
    Sqrt,
    /// `1 / A`
    Recip,
    /// Pass `A` through unchanged (used for bypass / buffering).
    Copy,
    /// Fused `A * B` then add the unit's register-file constant.
    MulAddConst,
    // -- integer / logical (one unit per ALS) --
    /// Integer add (operands truncated to i64).
    IAdd,
    /// Integer subtract.
    ISub,
    /// Integer multiply.
    IMul,
    /// Bitwise AND of the operands' integer images.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `B` bits.
    Shl,
    /// Logical shift right by `B` bits.
    Shr,
    /// `1.0` if `A < B` else `0.0` (predicate streams for masking).
    CmpLt,
    /// `1.0` if `A == B` else `0.0`.
    CmpEq,
    // -- min / max (one unit per ALS) --
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Maximum of `|A|` and `B` (one-unit residual-norm step).
    MaxAbs,
}

impl FuOp {
    /// Every operation, in the canonical menu order used by the editor.
    pub const ALL: [FuOp; 23] = [
        FuOp::Add,
        FuOp::Sub,
        FuOp::Mul,
        FuOp::Div,
        FuOp::Neg,
        FuOp::Abs,
        FuOp::Sqrt,
        FuOp::Recip,
        FuOp::Copy,
        FuOp::MulAddConst,
        FuOp::IAdd,
        FuOp::ISub,
        FuOp::IMul,
        FuOp::And,
        FuOp::Or,
        FuOp::Xor,
        FuOp::Shl,
        FuOp::Shr,
        FuOp::CmpLt,
        FuOp::CmpEq,
        FuOp::Max,
        FuOp::Min,
        FuOp::MaxAbs,
    ];

    /// Which capability class this operation requires.
    pub fn class(self) -> OpClass {
        use FuOp::*;
        match self {
            Add | Sub | Mul | Div | Neg | Abs | Sqrt | Recip | Copy | MulAddConst => OpClass::Float,
            IAdd | ISub | IMul | And | Or | Xor | Shl | Shr | CmpLt | CmpEq => OpClass::IntLogic,
            Max | Min | MaxAbs => OpClass::MinMax,
        }
    }

    /// Number of input operands consumed per element.
    pub fn arity(self) -> usize {
        use FuOp::*;
        match self {
            Neg | Abs | Sqrt | Recip | Copy => 1,
            _ => 2,
        }
    }

    /// Whether this operation counts as a floating-point operation for
    /// MFLOPS accounting (the paper's 640 MFLOPS peak counts FP results).
    pub fn is_flop(self) -> bool {
        matches!(self.class(), OpClass::Float | OpClass::MinMax) && self != FuOp::Copy
    }

    /// Apply the operation to concrete element values (the simulator's
    /// arithmetic core). `c` is the unit's register-file constant, used by
    /// [`FuOp::MulAddConst`].
    #[inline]
    pub fn apply(self, a: f64, b: f64, c: f64) -> f64 {
        use FuOp::*;
        match self {
            Add => a + b,
            Sub => a - b,
            Mul => a * b,
            Div => a / b,
            Neg => -a,
            Abs => a.abs(),
            Sqrt => a.sqrt(),
            Recip => 1.0 / a,
            Copy => a,
            MulAddConst => a * b + c,
            IAdd => ((a as i64).wrapping_add(b as i64)) as f64,
            ISub => ((a as i64).wrapping_sub(b as i64)) as f64,
            IMul => ((a as i64).wrapping_mul(b as i64)) as f64,
            And => ((a as i64) & (b as i64)) as f64,
            Or => ((a as i64) | (b as i64)) as f64,
            Xor => ((a as i64) ^ (b as i64)) as f64,
            Shl => (((a as i64) as u64) << ((b as i64) as u64 & 63)) as i64 as f64,
            Shr => (((a as i64) as u64) >> ((b as i64) as u64 & 63)) as i64 as f64,
            CmpLt => {
                if a < b {
                    1.0
                } else {
                    0.0
                }
            }
            CmpEq => {
                if a == b {
                    1.0
                } else {
                    0.0
                }
            }
            Max => a.max(b),
            Min => a.min(b),
            MaxAbs => a.abs().max(b),
        }
    }

    /// Mnemonic used by the disassembler and diagram labels.
    pub fn mnemonic(self) -> &'static str {
        use FuOp::*;
        match self {
            Add => "ADD",
            Sub => "SUB",
            Mul => "MUL",
            Div => "DIV",
            Neg => "NEG",
            Abs => "ABS",
            Sqrt => "SQRT",
            Recip => "RECIP",
            Copy => "COPY",
            MulAddConst => "MAC",
            IAdd => "IADD",
            ISub => "ISUB",
            IMul => "IMUL",
            And => "AND",
            Or => "OR",
            Xor => "XOR",
            Shl => "SHL",
            Shr => "SHR",
            CmpLt => "CLT",
            CmpEq => "CEQ",
            Max => "MAX",
            Min => "MIN",
            MaxAbs => "MAXA",
        }
    }

    /// Inverse of [`FuOp::mnemonic`], used by the microcode disassembler
    /// tests and the pseudo-code reader.
    pub fn from_mnemonic(s: &str) -> Option<FuOp> {
        FuOp::ALL.iter().copied().find(|op| op.mnemonic() == s)
    }

    /// Dense code used in the microcode encoding (6-bit field).
    pub fn code(self) -> u8 {
        FuOp::ALL.iter().position(|&op| op == self).expect("op in ALL") as u8
    }

    /// Decode a 6-bit opcode field.
    pub fn from_code(code: u8) -> Option<FuOp> {
        FuOp::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for FuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_unit_does_float_only_special_units_do_extras() {
        assert!(FuCaps::FLOAT.supports(FuOp::Add));
        assert!(!FuCaps::FLOAT.supports(FuOp::IAdd));
        assert!(!FuCaps::FLOAT.supports(FuOp::Max));
        assert!(FuCaps::FLOAT_INT.supports(FuOp::And));
        assert!(!FuCaps::FLOAT_INT.supports(FuOp::Min));
        assert!(FuCaps::FLOAT_MINMAX.supports(FuOp::MaxAbs));
        assert!(!FuCaps::FLOAT_MINMAX.supports(FuOp::Xor));
        assert!(FuCaps::FULL.supports(FuOp::Shl) && FuCaps::FULL.supports(FuOp::Min));
    }

    #[test]
    fn legal_ops_matches_supports() {
        for caps in [FuCaps::FLOAT, FuCaps::FLOAT_INT, FuCaps::FLOAT_MINMAX, FuCaps::FULL] {
            let menu = caps.legal_ops();
            for op in FuOp::ALL {
                assert_eq!(menu.contains(&op), caps.supports(op), "{caps} {op}");
            }
        }
    }

    #[test]
    fn float_menu_is_the_ten_fp_ops() {
        assert_eq!(FuCaps::FLOAT.legal_ops().len(), 10);
        assert_eq!(FuCaps::FULL.legal_ops().len(), FuOp::ALL.len());
    }

    #[test]
    fn op_codes_round_trip() {
        for op in FuOp::ALL {
            assert_eq!(FuOp::from_code(op.code()), Some(op));
            assert!(op.code() < 64, "must fit the 6-bit microcode field");
        }
        assert_eq!(FuOp::from_code(63), None);
    }

    #[test]
    fn mnemonics_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in FuOp::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op.mnemonic());
            assert_eq!(FuOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(FuOp::from_mnemonic("NOPE"), None);
    }

    #[test]
    fn arithmetic_semantics() {
        assert_eq!(FuOp::Add.apply(2.0, 3.0, 0.0), 5.0);
        assert_eq!(FuOp::Sub.apply(2.0, 3.0, 0.0), -1.0);
        assert_eq!(FuOp::MulAddConst.apply(2.0, 3.0, 10.0), 16.0);
        assert_eq!(FuOp::Abs.apply(-4.5, 0.0, 0.0), 4.5);
        assert_eq!(FuOp::Max.apply(-1.0, 2.0, 0.0), 2.0);
        assert_eq!(FuOp::MaxAbs.apply(-3.0, 2.0, 0.0), 3.0);
        assert_eq!(FuOp::CmpLt.apply(1.0, 2.0, 0.0), 1.0);
        assert_eq!(FuOp::CmpEq.apply(2.0, 2.0, 0.0), 1.0);
        assert_eq!(FuOp::And.apply(6.0, 3.0, 0.0), 2.0);
        assert_eq!(FuOp::Shl.apply(1.0, 4.0, 0.0), 16.0);
        assert_eq!(FuOp::Copy.apply(7.0, 99.0, 0.0), 7.0);
    }

    #[test]
    fn flop_accounting_excludes_copy_and_integer_ops() {
        assert!(FuOp::Add.is_flop());
        assert!(FuOp::Max.is_flop());
        assert!(!FuOp::Copy.is_flop());
        assert!(!FuOp::IAdd.is_flop());
        assert!(!FuOp::And.is_flop());
    }

    #[test]
    fn arity_is_one_for_unary_ops() {
        assert_eq!(FuOp::Neg.arity(), 1);
        assert_eq!(FuOp::Sqrt.arity(), 1);
        assert_eq!(FuOp::Add.arity(), 2);
        assert_eq!(FuOp::Max.arity(), 2);
    }

    #[test]
    fn caps_display() {
        assert_eq!(FuCaps::FLOAT.to_string(), "F");
        assert_eq!(FuCaps::FLOAT_INT.to_string(), "F+I");
        assert_eq!(FuCaps::FLOAT_MINMAX.to_string(), "F+M");
        assert_eq!(FuCaps::FULL.to_string(), "F+I+M");
    }
}
