//! # nsc-core — the integrated visual programming environment
//!
//! Paper Figure 3 shows the system's three components — graphical editor,
//! checker with its machine-specific knowledge base, and microcode
//! generator — and how the user's diagrams flow through them into an
//! executable program. [`VisualEnvironment`] is that integration: one
//! object owning the knowledge base, handing out checker-connected
//! editors, validating documents, generating microcode and executing it on
//! the simulated machine.
//!
//! It also implements the two §6 extensions the paper proposes:
//!
//! * **visual debugging** — "During execution, each new instruction would
//!   display the corresponding pipeline diagram, annotated to show data
//!   values flowing through the pipeline." [`VisualEnvironment::debug_run`]
//!   captures per-instruction source traces from the simulator and renders
//!   each pipeline diagram with its live pad values attached;
//! * **compiler back end** — "The visual environment might also be useful
//!   as a back end to a compiler, displaying the results of the
//!   compilation process." [`VisualEnvironment::display_document`] renders
//!   any generated document (e.g. from `nsc-expr`'s mapper) as diagrams.

pub mod debugger;
pub mod environment;

pub use self::debugger::{DebugFrame, DebugReport};
pub use self::environment::VisualEnvironment;
