//! # nsc-core — the integrated visual programming environment
//!
//! Paper Figure 3 shows the system's three components — graphical editor,
//! checker with its machine-specific knowledge base, and microcode
//! generator — and how the user's diagrams flow through them into an
//! executable program. [`VisualEnvironment`] is that integration: one
//! object owning the knowledge base, handing out checker-connected
//! editors, validating documents, generating microcode and executing it on
//! the simulated machine.
//!
//! It also implements the two §6 extensions the paper proposes:
//!
//! * **visual debugging** — "During execution, each new instruction would
//!   display the corresponding pipeline diagram, annotated to show data
//!   values flowing through the pipeline." [`VisualEnvironment::debug_run`]
//!   captures per-instruction source traces from the simulator and renders
//!   each pipeline diagram with its live pad values attached;
//! * **compiler back end** — "The visual environment might also be useful
//!   as a back end to a compiler, displaying the results of the
//!   compilation process." [`VisualEnvironment::display_document`] renders
//!   any generated document (e.g. from `nsc-expr`'s mapper) as diagrams.
//!
//! ## Quickstart: the typed stage pipeline
//!
//! Compiling and running a document is a [`Session`] producing a
//! [`CompiledProgram`]; every stage (auto-bind, global check, codegen,
//! execution) reports through the one workspace error type, [`NscError`]:
//!
//! ```
//! use nsc_arch::{AlsKind, FuOp, InPort, MachineConfig, PlaneId};
//! use nsc_core::Session;
//! use nsc_diagram::{DmaAttrs, Document, FuAssign, IconKind, PadLoc, PadRef};
//! use nsc_sim::RunOptions;
//!
//! # fn main() -> Result<(), nsc_core::NscError> {
//! // Draw: plane 0 -> (x * 2) -> plane 1.
//! let mut doc = Document::new("double");
//! let pid = doc.add_pipeline("double");
//! let d = doc.pipeline_mut(pid).unwrap();
//! d.stream_len = 4;
//! let src = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
//! let als = d.add_icon(IconKind::als(AlsKind::Singlet));
//! let dst = d.add_icon(IconKind::Memory { plane: Some(PlaneId(1)) });
//! d.connect(
//!     PadLoc::new(src, PadRef::Io),
//!     PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
//!     Some(DmaAttrs::at_address(0)),
//! )?;
//! d.assign_fu(als, 0, FuAssign::with_const(FuOp::Mul, 2.0))?;
//! d.connect(
//!     PadLoc::new(als, PadRef::FuOut { pos: 0 }),
//!     PadLoc::new(dst, PadRef::Io),
//!     Some(DmaAttrs::at_address(0)),
//! )?;
//!
//! // Compile (bind + check + generate) and run through the typed stages.
//! let session = Session::new(MachineConfig::nsc_1988());
//! let compiled = session.compile(&mut doc)?;
//! let mut node = session.node();
//! node.mem.plane_mut(PlaneId(0)).write_slice(0, &[1.0, 2.0, 3.0, 4.0]);
//! let report = compiled.run(&mut node, &RunOptions::default())?;
//! assert_eq!(node.mem.plane(PlaneId(1)).read_vec(0, 4), vec![2.0, 4.0, 6.0, 8.0]);
//! assert!(report.counters.flops >= 4);
//! # Ok(())
//! # }
//! ```
//!
//! [`Session::run_batch`] extends the same pipeline to many documents
//! across a pool of nodes ([`run_compiled_on_pool`] drives an explicit
//! subset — the nodes of one sub-cube embedding); the [`Workload`] trait
//! packages whole solver problems (see `nsc-cfd`'s Jacobi/SOR/multigrid
//! workloads) behind it.

#![warn(missing_docs)]

pub mod certify;
pub mod debugger;
pub mod environment;
pub mod error;
pub mod session;

pub use self::debugger::{DebugFrame, DebugReport};
pub use self::environment::VisualEnvironment;
pub use self::error::{DiagnosticSet, NscError};
pub use self::session::{
    run_compiled_batch, run_compiled_on_pool, run_compiled_phased, BatchReport, CacheStats,
    CertificateLog, CompiledProgram, KernelCache, RunReport, Session, Workload,
};
