//! The Figure 3 integration: editor ↔ checker ↔ generator ↔ machine.
//!
//! [`VisualEnvironment`] owns the knowledge base and hands out the
//! interactive pieces (checker-connected editors, diagram renders). The
//! compile-and-run half lives in the typed stage pipeline of
//! [`Session`] / [`CompiledProgram`](crate::CompiledProgram); reach it
//! through [`VisualEnvironment::session`].

use crate::session::Session;
use nsc_arch::{KnowledgeBase, MachineConfig};
use nsc_checker::{Checker, Diagnostic};
use nsc_diagram::Document;
use nsc_editor::Editor;
use nsc_sim::NodeSim;

/// The whole environment for one machine configuration.
#[derive(Debug, Clone)]
pub struct VisualEnvironment {
    kb: KnowledgeBase,
}

impl VisualEnvironment {
    /// An environment for a machine configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        VisualEnvironment { kb: KnowledgeBase::new(cfg) }
    }

    /// The published 1988 machine.
    pub fn nsc_1988() -> Self {
        Self::new(MachineConfig::nsc_1988())
    }

    /// The knowledge base.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// A checker over this machine.
    pub fn checker(&self) -> Checker {
        Checker::new(self.kb.clone())
    }

    /// A fresh editor wired to this machine's checker.
    pub fn editor(&self, name: impl Into<String>) -> Editor {
        Editor::new(self.checker(), name)
    }

    /// An editor over an existing document.
    pub fn open(&self, doc: Document) -> Editor {
        Editor::open(self.checker(), doc)
    }

    /// Whole-document check (the generator's "thorough check of global
    /// constraints").
    pub fn check(&self, doc: &Document) -> Vec<Diagnostic> {
        self.checker().check_document(doc)
    }

    /// A compile-and-run [`Session`] over this machine — the typed stage
    /// pipeline (bind → check → generate → run).
    pub fn session(&self) -> Session {
        Session::from_kb(self.kb.clone())
    }

    /// A fresh simulated node for this machine.
    pub fn node(&self) -> NodeSim {
        NodeSim::new(self.kb.clone())
    }

    /// Render every pipeline of a document (the §6 "back end to a
    /// compiler" display mode). Returns `(pipeline name, ascii render)`.
    pub fn display_document(&self, doc: &Document) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for p in doc.pipelines() {
            let mut sub = Document::new(doc.name.clone());
            sub.decls = doc.decls.clone();
            let pid = sub.add_pipeline(p.name.clone());
            *sub.pipeline_mut(pid).unwrap() = {
                let mut clone = p.clone();
                clone.id = pid;
                clone
            };
            // Lay the icons out automatically if the source document had
            // no display data.
            let mut ed = Editor::open(self.checker(), sub);
            auto_layout(&mut ed, pid);
            out.push((p.name.clone(), nsc_editor::render_ascii(&ed)));
        }
        out
    }
}

/// Grid-place any unpositioned icons so renders are meaningful for
/// documents built programmatically (no display data).
pub fn auto_layout(ed: &mut Editor, pipeline: nsc_diagram::PipelineId) {
    use nsc_diagram::Point;
    let Some(d) = ed.doc.pipeline(pipeline) else { return };
    let ids: Vec<_> = d.icons().map(|i| i.id).collect();
    let placed: Vec<_> = {
        let layout = ed.doc.layout(pipeline);
        ids.iter().filter(|id| layout.is_none_or(|l| l.position(**id).is_none())).copied().collect()
    };
    let (x0, y0) = (nsc_editor::DRAW_X0 + 3, nsc_editor::DRAW_Y0 + 1);
    for (i, id) in placed.into_iter().enumerate() {
        let col = (i % 5) as i32;
        let row = (i / 5) as i32;
        if let Some(layout) = ed.doc.layout_mut(pipeline) {
            layout.place(id, Point::new(x0 + col * 14, y0 + row * 13));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::NscError;
    use nsc_arch::{AlsKind, FuOp, InPort, PlaneId};
    use nsc_diagram::{DmaAttrs, FuAssign, IconKind, PadLoc, PadRef};
    use nsc_sim::{HaltReason, RunOptions};

    /// Build a MP0 -> neg -> MP1 document through the environment's editor.
    fn small_doc(env: &VisualEnvironment) -> Document {
        let mut ed = env.editor("negate");
        ed.set_stream_len(32);
        let mem = ed.place_icon(
            IconKind::Memory { plane: Some(PlaneId(0)) },
            nsc_diagram::Point::new(22, 6),
        );
        let als = ed.place_icon(IconKind::als(AlsKind::Singlet), nsc_diagram::Point::new(45, 6));
        let out = ed.place_icon(
            IconKind::Memory { plane: Some(PlaneId(1)) },
            nsc_diagram::Point::new(70, 6),
        );
        let c1 = ed
            .connect(
                PadLoc::new(mem, PadRef::Io),
                PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            )
            .expect("legal");
        ed.set_dma(c1, DmaAttrs::at_address(0));
        ed.assign_fu(als, 0, FuAssign::unary(FuOp::Neg));
        let c2 = ed
            .connect(PadLoc::new(als, PadRef::FuOut { pos: 0 }), PadLoc::new(out, PadRef::Io))
            .expect("legal");
        ed.set_dma(c2, DmaAttrs::at_address(100));
        ed.doc.clone()
    }

    #[test]
    fn figure_3_flow_end_to_end() {
        let env = VisualEnvironment::nsc_1988();
        let mut doc = small_doc(&env);
        // Compile (binds unbound icons) -> run -> check.
        let session = env.session();
        let mut node = env.node();
        node.mem.plane_mut(PlaneId(0)).write_slice(0, &[1.0, -2.0, 3.0]);
        let compiled = session.compile(&mut doc).expect("compiles");
        let report = compiled.run(&mut node, &RunOptions::default()).expect("runs");
        let diags = env.check(&doc);
        assert!(!nsc_checker::diag::has_errors(&diags), "{diags:?}");
        assert_eq!(compiled.program().len(), 1);
        assert_eq!(report.stats.halted, HaltReason::Halt);
        assert!(report.counters.cycles > 0 && report.counters.flops > 0);
        assert_eq!(node.mem.plane(PlaneId(1)).read_vec(100, 3), vec![-1.0, 2.0, -3.0]);
    }

    #[test]
    fn generation_refuses_unbindable_documents() {
        let env = VisualEnvironment::nsc_1988();
        let mut doc = Document::new("too-many");
        let pid = doc.add_pipeline("p");
        for _ in 0..5 {
            doc.pipeline_mut(pid).unwrap().add_icon(IconKind::als(AlsKind::Triplet));
        }
        assert!(matches!(env.session().compile(&mut doc), Err(NscError::BindFailed(_))));
    }

    #[test]
    fn display_mode_renders_every_pipeline() {
        let env = VisualEnvironment::nsc_1988();
        let doc = small_doc(&env);
        let frames = env.display_document(&doc);
        assert_eq!(frames.len(), 1);
        assert!(frames[0].1.contains("NEG"));
        assert!(frames[0].1.contains("MP0"));
    }

    #[test]
    fn knowledge_base_evolution_absorbs_machine_changes() {
        // Experiment T9: the same document checks and generates against a
        // revised machine (double-size register files, six-tap SDUs) with
        // no editor or document change.
        let env_a = VisualEnvironment::nsc_1988();
        let mut revised = MachineConfig::nsc_1988();
        revised.name = "NSC (1989 revision)".into();
        revised.rf_words = 128;
        revised.sdu.taps_per_unit = 6;
        let env_b = VisualEnvironment::new(revised);
        let mut doc_a = small_doc(&env_a);
        let mut doc_b = doc_a.clone();
        let out_a = env_a.session().compile(&mut doc_a).expect("1988 compiles");
        let out_b = env_b.session().compile(&mut doc_b).expect("1989 compiles");
        assert_eq!(out_a.program().len(), out_b.program().len());
        assert_eq!(out_b.program().machine, "NSC (1989 revision)");
    }
}
