//! Certificate emission: the engine's half of the "untrusted engine,
//! trusted checker" contract.
//!
//! Every [`crate::Session::compile`] distills what it just built into an
//! `nsc_cert::CompileCertificate`: the machine limits it compiled
//! against, a per-instruction resource census read straight off the
//! generated microcode, and the kernel calculus's per-instruction
//! validity windows. The certificate is sealed and bound to the
//! document's content digest, so `nsc_cert::verify` can re-check every
//! capacity obligation later — in a park audit, in CI, offline — without
//! invoking the checker or the code generator again.
//!
//! The census here is deliberately *dumb*: it transcribes the microcode
//! fields (enabled units, DMA address spans, SDU taps) without judging
//! them. Judgment is the verifier's job; an emission bug that transcribes
//! an illegal program faithfully still gets the program rejected at audit
//! time, which is the fail-closed direction.

use nsc_arch::MachineConfig;
use nsc_cert::{
    digest_hex, CacheSpan, CompileCertificate, CompilePath, InstrCensus, KernelWindow,
    MachineLimits, PlaneSpan, ResourceCensus, SduUse,
};
use nsc_codegen::GenOutput;
use nsc_diagram::MAX_SDU_TAPS;
use nsc_microcode::{MicroInstruction, MicroProgram};
use nsc_sim::CompiledKernel;

/// The machine limits the certificate's capacity obligations divide by,
/// transcribed from the session's [`MachineConfig`].
pub fn machine_limits(cfg: &MachineConfig) -> MachineLimits {
    MachineLimits {
        fu_count: cfg.fu_count() as u32,
        planes: cfg.memory.planes as u32,
        words_per_plane: cfg.memory.words_per_plane,
        caches: cfg.cache.caches as u32,
        cache_buffers: cfg.cache.buffers as u32,
        cache_words_per_buffer: cfg.cache.words_per_buffer,
        sdu_units: cfg.sdu.units as u32,
        sdu_taps_per_unit: cfg.sdu.taps_per_unit as u32,
        sdu_buffer_words: cfg.sdu.buffer_words as u64,
        max_sdu_taps: MAX_SDU_TAPS as u32,
        rf_words: cfg.rf_words as u32,
        clock_hz: cfg.clock_hz,
    }
}

/// The inclusive `[lo, hi]` address span a DMA stream touches: `count`
/// elements starting at `base`, `stride` words apart. A stream whose
/// arithmetic escapes below zero claims an impossible span (`hi` at
/// `u64::MAX`) so the verifier rejects it rather than the emitter
/// masking it.
fn dma_span(base: i128, stride: i128, count: u64) -> (u64, u64) {
    let last = base + stride * (count as i128 - 1);
    let (lo, hi) = if stride >= 0 { (base, last) } else { (last, base) };
    if lo < 0 || hi < 0 {
        return (0, u64::MAX);
    }
    (lo as u64, hi as u64)
}

/// The resource census of one microinstruction.
fn instr_census(index: usize, ins: &MicroInstruction) -> InstrCensus {
    let mut planes = Vec::new();
    for (write, fields) in [(false, &ins.plane_rd), (true, &ins.plane_wr)] {
        for (plane, f) in fields.iter().enumerate() {
            if !f.enabled || f.count == 0 {
                continue;
            }
            let (lo, hi) = dma_span(f.base as i128, f.stride as i128, f.count as u64);
            planes.push(PlaneSpan { plane: plane as u32, lo, hi, words: f.count as u64, write });
        }
    }
    let mut caches = Vec::new();
    for (write, fields) in [(false, &ins.cache_rd), (true, &ins.cache_wr)] {
        for (cache, f) in fields.iter().enumerate() {
            if !f.enabled || f.count == 0 {
                continue;
            }
            let (lo, hi) = dma_span(f.offset as i128, f.stride as i128, f.count as u64);
            caches.push(CacheSpan {
                cache: cache as u32,
                buffer: f.buffer as u32,
                lo,
                hi,
                words: f.count as u64,
                write,
            });
        }
    }
    let sdu = ins
        .sdus
        .iter()
        .enumerate()
        .filter(|(_, s)| s.enabled)
        .map(|(unit, s)| SduUse {
            unit: unit as u32,
            taps: s.taps.iter().filter(|t| t.enabled).count() as u32,
            max_delay: s.max_delay() as u64,
        })
        .filter(|s| s.taps > 0)
        .collect();
    InstrCensus {
        index: index as u32,
        active_fus: ins.enabled_fus().count() as u32,
        sdu,
        planes,
        caches,
    }
}

/// The whole program's census: per-instruction rows plus the redundant
/// totals the verifier cross-checks.
pub fn resource_census(program: &MicroProgram) -> ResourceCensus {
    let instructions: Vec<InstrCensus> =
        program.instrs.iter().enumerate().map(|(i, ins)| instr_census(i, ins)).collect();
    let active_fus = instructions.iter().map(|r| r.active_fus as u64).sum();
    let sdu_taps = instructions.iter().flat_map(|r| &r.sdu).map(|s| s.taps as u64).sum();
    let plane_words = instructions.iter().flat_map(|r| &r.planes).map(|p| p.words).sum();
    let cache_words = instructions.iter().flat_map(|r| &r.caches).map(|c| c.words).sum();
    ResourceCensus { instructions, active_fus, sdu_taps, plane_words, cache_words }
}

/// The kernel calculus's per-instruction validity windows, for the
/// instructions it specialized into pipelines.
pub fn kernel_windows(kernel: &CompiledKernel) -> Vec<KernelWindow> {
    (0..kernel.instructions())
        .filter_map(|pc| {
            kernel.plan_summary(pc).map(|s| KernelWindow {
                index: pc as u32,
                executed_cycles: s.executed_cycles,
                flops: s.flops,
                streamed: s.elements_streamed,
                stored: s.elements_stored,
            })
        })
        .collect()
}

/// Build and seal the certificate for one compile.
pub fn build_certificate(
    cfg: &MachineConfig,
    digest: u128,
    shape: u128,
    path: CompilePath,
    output: &GenOutput,
    kernel: Option<&CompiledKernel>,
) -> CompileCertificate {
    CompileCertificate {
        doc_digest: digest_hex(digest),
        shape_digest: digest_hex(shape),
        compile_path: path,
        machine: machine_limits(cfg),
        census: resource_census(&output.program),
        windows: kernel.map(kernel_windows).unwrap_or_default(),
        routes: Vec::new(),
        coverage: Vec::new(),
        lease: None,
        seal: String::new(),
    }
    .sealed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_spans_cover_both_stride_signs() {
        assert_eq!(dma_span(10, 1, 5), (10, 14));
        assert_eq!(dma_span(10, 3, 4), (10, 19));
        assert_eq!(dma_span(10, -2, 5), (2, 10));
        assert_eq!(dma_span(10, 0, 7), (10, 10), "scalar rewrite stays put");
        assert_eq!(dma_span(2, -3, 4), (0, u64::MAX), "underflow claims the impossible span");
    }

    #[test]
    fn limits_transcribe_the_1988_machine() {
        let m = machine_limits(&MachineConfig::nsc_1988());
        assert_eq!(m.fu_count, 32);
        assert_eq!(m.planes, 16);
        assert_eq!(m.words_per_plane, 16 * 1024 * 1024);
        assert_eq!(m.max_sdu_taps, MAX_SDU_TAPS as u32);
        assert_eq!(m.clock_hz, 20_000_000);
    }
}
