//! The one error type of the compile-and-run pipeline.
//!
//! Every stage of the Figure 3 loop — diagram construction, auto-binding,
//! the whole-document check, microcode generation, and execution on the
//! simulated machine — reports through [`NscError`], so callers chain the
//! stages with `?` and inspect failures through one `match`. Each variant
//! wraps the producing crate's own error type and exposes it through
//! [`std::error::Error::source`], so generic error reporters can walk the
//! chain down to the original diagnostic.
//!
//! The `From` conversions for every producing crate's error type live here
//! rather than in the producing crates: `nsc-diagram`, `nsc-checker`,
//! `nsc-codegen` and `nsc-sim` all sit *below* `nsc-core` in the
//! dependency graph, so the orphan rule places the impls with `NscError`
//! itself.

use nsc_arch::NodeId;
use nsc_checker::Diagnostic;
use nsc_codegen::GenError;
use nsc_diagram::DiagramError;
use nsc_sim::{ExecError, NodeExecError};
use std::error::Error;
use std::fmt;

/// A batch of checker diagnostics packaged as an error source.
///
/// `Vec<Diagnostic>` cannot itself implement [`std::error::Error`], so the
/// [`NscError::BindFailed`] and [`NscError::CheckFailed`] variants wrap
/// this newtype, which renders every finding and participates in the
/// `source()` chain.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosticSet(Vec<Diagnostic>);

impl DiagnosticSet {
    /// Package a batch of diagnostics.
    pub fn new(diags: Vec<Diagnostic>) -> Self {
        DiagnosticSet(diags)
    }

    /// The findings.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.0
    }

    /// Unwrap the findings.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.0
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for DiagnosticSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} finding(s)", self.0.len())?;
        for d in &self.0 {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

impl Error for DiagnosticSet {}

/// Everything that can go wrong between an edited document and a completed
/// run on the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub enum NscError {
    /// A structural diagram mutation was rejected (`nsc-diagram`).
    Diagram(DiagramError),
    /// Auto-binding could not place every icon on a physical resource.
    BindFailed(DiagnosticSet),
    /// The whole-document global check found rule violations.
    CheckFailed(DiagnosticSet),
    /// The microcode generator refused the document (`nsc-codegen`).
    Gen(GenError),
    /// The simulator reported an execution failure (`nsc-sim`).
    Exec(ExecError),
    /// The instruction-budget guard tripped: the program is a runaway (or
    /// the caller's [`nsc_sim::RunOptions::max_instructions`] is too small
    /// for it).
    MaxInstructions {
        /// Instructions executed before the guard tripped.
        executed: u64,
        /// The configured budget.
        limit: u64,
    },
    /// A failure attributed to one document of a batch; the underlying
    /// error is the `source()`.
    Batch {
        /// Index of the failing document in the submitted batch.
        doc: usize,
        /// What went wrong with it.
        source: Box<NscError>,
    },
    /// A failure attributed to one node of a distributed run; the
    /// underlying error is the `source()`.
    NodeFailed {
        /// The hypercube node that failed.
        node: NodeId,
        /// What went wrong on it.
        source: Box<NscError>,
    },
    /// A batch was submitted with documents but no nodes to run them on.
    EmptyPool,
    /// A batch worker thread panicked. Unreachable with the std-backed
    /// scoped-thread pool (child panics propagate), kept so the driver has
    /// no panicking path of its own.
    WorkerPanic,
    /// A workload's own preconditions failed (mismatched grids, bad
    /// parameters) before any document was built.
    Workload(String),
    /// A rebind was asked to bind a document onto a compiled program of a
    /// different shape — the documents differ structurally, not just in
    /// their constants.
    ShapeMismatch {
        /// The compiled program's shape digest.
        expected: u128,
        /// The offered document's shape digest.
        got: u128,
    },
}

impl NscError {
    /// Wrap an error as a per-document batch failure.
    pub fn in_batch(doc: usize, source: NscError) -> Self {
        NscError::Batch { doc, source: Box::new(source) }
    }

    /// Wrap an error as a per-node distributed-run failure.
    pub fn on_node(node: NodeId, source: NscError) -> Self {
        NscError::NodeFailed { node, source: Box::new(source) }
    }

    /// Auto-bind diagnostics as an error.
    pub fn bind_failed(diags: Vec<Diagnostic>) -> Self {
        NscError::BindFailed(DiagnosticSet::new(diags))
    }

    /// Global-check diagnostics as an error.
    pub fn check_failed(diags: Vec<Diagnostic>) -> Self {
        NscError::CheckFailed(DiagnosticSet::new(diags))
    }
}

impl fmt::Display for NscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NscError::Diagram(e) => write!(f, "diagram edit rejected: {e}"),
            NscError::BindFailed(d) => write!(f, "auto-bind failed: {d}"),
            NscError::CheckFailed(d) => write!(f, "global check failed: {d}"),
            NscError::Gen(e) => write!(f, "microcode generation failed: {e}"),
            NscError::Exec(e) => write!(f, "execution failed: {e}"),
            NscError::MaxInstructions { executed, limit } => {
                write!(f, "instruction budget exhausted: {executed} executed (limit {limit})")
            }
            NscError::Batch { doc, source } => write!(f, "batch document {doc}: {source}"),
            NscError::NodeFailed { node, source } => write!(f, "node {node}: {source}"),
            NscError::EmptyPool => write!(f, "batch submitted with no nodes to run on"),
            NscError::WorkerPanic => write!(f, "a batch worker thread panicked"),
            NscError::Workload(msg) => write!(f, "workload rejected: {msg}"),
            NscError::ShapeMismatch { expected, got } => write!(
                f,
                "rebind refused: document shape {got:032x} does not match \
                 the compiled program's shape {expected:032x}"
            ),
        }
    }
}

impl Error for NscError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NscError::Diagram(e) => Some(e),
            NscError::BindFailed(d) | NscError::CheckFailed(d) => Some(d),
            NscError::Gen(e) => Some(e),
            NscError::Exec(e) => Some(e),
            NscError::Batch { source, .. } | NscError::NodeFailed { source, .. } => {
                Some(source.as_ref())
            }
            NscError::MaxInstructions { .. }
            | NscError::EmptyPool
            | NscError::WorkerPanic
            | NscError::Workload(_)
            | NscError::ShapeMismatch { .. } => None,
        }
    }
}

impl From<DiagramError> for NscError {
    fn from(e: DiagramError) -> Self {
        NscError::Diagram(e)
    }
}

impl From<GenError> for NscError {
    fn from(e: GenError) -> Self {
        NscError::Gen(e)
    }
}

impl From<ExecError> for NscError {
    fn from(e: ExecError) -> Self {
        NscError::Exec(e)
    }
}

impl From<NodeExecError> for NscError {
    fn from(e: NodeExecError) -> Self {
        NscError::on_node(e.node, NscError::Exec(e.error))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_checker::{RuleCode, Subject};
    use nsc_diagram::IconId;

    #[test]
    fn sources_chain_to_the_producing_crates_error() {
        let e: NscError = GenError::EmptyProgram.into();
        let src = e.source().expect("gen errors chain");
        assert!(src.downcast_ref::<GenError>().is_some());

        let e: NscError = DiagramError::NoSuchIcon(IconId(3)).into();
        assert!(e.source().unwrap().downcast_ref::<DiagramError>().is_some());

        let e: NscError = ExecError::BadProgram("x".into()).into();
        assert!(e.source().unwrap().downcast_ref::<ExecError>().is_some());

        let diag = Diagnostic::error(RuleCode::UnboundIcon, Subject::Document, "unbound");
        let e = NscError::bind_failed(vec![diag]);
        let set = e.source().unwrap().downcast_ref::<DiagnosticSet>().expect("diagnostic set");
        assert_eq!(set.len(), 1);

        assert!(NscError::MaxInstructions { executed: 7, limit: 7 }.source().is_none());
    }

    #[test]
    fn batch_errors_chain_to_the_per_document_failure() {
        let inner = NscError::from(GenError::EmptyProgram);
        let e = NscError::in_batch(4, inner);
        assert!(e.to_string().contains("batch document 4"));
        let level1 = e.source().unwrap().downcast_ref::<NscError>().unwrap();
        assert!(matches!(level1, NscError::Gen(GenError::EmptyProgram)));
        assert!(level1.source().unwrap().downcast_ref::<GenError>().is_some());
    }

    #[test]
    fn node_failures_chain_to_the_executor_error() {
        let e: NscError =
            NodeExecError { node: NodeId(5), error: ExecError::BadProgram("x".into()) }.into();
        assert!(e.to_string().contains("node N5"), "{e}");
        let level1 = e.source().unwrap().downcast_ref::<NscError>().unwrap();
        assert!(matches!(level1, NscError::Exec(_)));
        assert!(level1.source().unwrap().downcast_ref::<ExecError>().is_some());
    }

    #[test]
    fn display_carries_each_finding() {
        let diags = vec![
            Diagnostic::error(RuleCode::UnboundIcon, Subject::Document, "icon A unbound"),
            Diagnostic::error(RuleCode::UnboundIcon, Subject::Document, "icon B unbound"),
        ];
        let msg = NscError::check_failed(diags).to_string();
        assert!(msg.contains("2 finding(s)"));
        assert!(msg.contains("icon A unbound") && msg.contains("icon B unbound"));
    }
}
