//! The typed stage pipeline: `Session` → `CompiledProgram` → `RunReport`.
//!
//! The paper's Figure 3 loop (editor ↔ checker ↔ generator ↔ machine) is
//! driven here as explicit, inspectable, *fallible* stages:
//!
//! 1. [`Session::auto_bind`] — place every unbound icon on a physical
//!    resource (the checker's binder);
//! 2. [`Session::check`] — the generator-time "thorough check of global
//!    constraints" over the whole document;
//! 3. [`Session::codegen`] — lower the diagrams to microcode.
//!
//! [`Session::compile`] chains all three into a [`CompiledProgram`], and
//! [`CompiledProgram::run`] executes it on a [`NodeSim`], returning a
//! [`RunReport`] with per-run [`PerfCounters`]. Every failure anywhere in
//! the pipeline is an [`NscError`].
//!
//! [`Session::run_batch`] is the batch driver: it compiles many documents
//! and executes them across a pool of nodes on crossbeam scoped threads,
//! aggregating the per-run counters — the substrate for serving many
//! concurrent workloads on one simulated machine park.

use crate::certify::build_certificate;
use crate::error::NscError;
use nsc_arch::{KnowledgeBase, MachineConfig};
use nsc_cert::{digest_hex, CompileCertificate, CompilePath};
use nsc_checker::{diag, Checker, Diagnostic};
use nsc_codegen::GenOutput;
use nsc_diagram::Document;
use nsc_microcode::MicroProgram;
use nsc_sim::{CompiledKernel, HaltReason, NodeSim, NscSystem, PerfCounters, RunOptions, RunStats};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One cached compilation: the generator output plus the host fast-path
/// kernel specialized from it and the compile certificate the full
/// pipeline emitted (the rebind base for the family's certificates).
#[derive(Debug)]
struct CacheEntry {
    output: GenOutput,
    warnings: Vec<Diagnostic>,
    kernel: Arc<CompiledKernel>,
    certificate: Arc<CompileCertificate>,
}

/// The session's compile cache, keyed by [`Document::digest`] with a
/// secondary index keyed by [`Document::shape_digest`].
///
/// A digest hit returns the cached microcode *and* the pre-specialized
/// [`CompiledKernel`], skipping check, codegen and kernel analysis
/// entirely — the compile-once/run-many shape Jacobi iterations, V-cycle
/// smoothing passes and ensemble re-runs all have. A digest *miss* whose
/// shape digest matches a previous compile takes the rebind fast path
/// instead: the cached program is cloned, its functional-unit preloads are
/// re-patched to the new document's constants, and only kernel
/// specialization re-runs — check and codegen are skipped. Exactly one of
/// [`KernelCache::hits`], [`KernelCache::rebinds`] or
/// [`KernelCache::misses`] ticks per compile. The cache is shared by
/// clones of its [`Session`] (it is an `Arc` internally) and is safe to
/// use from many threads.
///
/// ```
/// use nsc_arch::{AlsKind, FuOp, InPort, MachineConfig, PlaneId};
/// use nsc_core::Session;
/// use nsc_diagram::{DmaAttrs, Document, FuAssign, IconKind, PadLoc, PadRef};
/// use nsc_sim::RunOptions;
///
/// # fn main() -> Result<(), nsc_core::NscError> {
/// // Draw: plane 0 -> (x * 2) -> plane 1.
/// let mut doc = Document::new("double");
/// let pid = doc.add_pipeline("double");
/// let d = doc.pipeline_mut(pid).unwrap();
/// d.stream_len = 4;
/// let src = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
/// let als = d.add_icon(IconKind::als(AlsKind::Singlet));
/// let dst = d.add_icon(IconKind::Memory { plane: Some(PlaneId(1)) });
/// d.connect(
///     PadLoc::new(src, PadRef::Io),
///     PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
///     Some(DmaAttrs::at_address(0)),
/// )?;
/// d.assign_fu(als, 0, FuAssign::with_const(FuOp::Mul, 2.0))?;
/// d.connect(
///     PadLoc::new(als, PadRef::FuOut { pos: 0 }),
///     PadLoc::new(dst, PadRef::Io),
///     Some(DmaAttrs::at_address(0)),
/// )?;
///
/// // Compile once, run many: iterations 2 and 3 hit the kernel cache.
/// let session = Session::new(MachineConfig::nsc_1988());
/// let mut node = session.node();
/// for _ in 0..3 {
///     let compiled = session.compile(&mut doc)?;
///     compiled.run(&mut node, &RunOptions::default())?;
/// }
/// assert_eq!(session.kernel_cache().misses(), 1, "first compile populates");
/// assert_eq!(session.kernel_cache().hits(), 2, "re-compiles are cache hits");
/// assert_eq!(session.kernel_cache().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct KernelCache {
    inner: Arc<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: Mutex<HashMap<u128, Arc<CacheEntry>>>,
    shapes: Mutex<HashMap<u128, Arc<CacheEntry>>>,
    hits: AtomicU64,
    rebinds: AtomicU64,
    misses: AtomicU64,
}

impl KernelCache {
    /// Number of distinct documents cached.
    pub fn len(&self) -> usize {
        self.inner.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct document *shapes* cached (the rebind index).
    pub fn shape_count(&self) -> usize {
        self.inner.shapes.lock().expect("cache lock").len()
    }

    /// Compiles served whole from the cache (same document digest).
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Compiles served through the rebind fast path: a new document digest
    /// whose shape matched a cached compile, so only the functional-unit
    /// preloads were re-patched and the kernel re-specialized.
    pub fn rebinds(&self) -> u64 {
        self.inner.rebinds.load(Ordering::Relaxed)
    }

    /// Compiles that ran the full pipeline and populated the cache.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Statistics snapshot ([`Session::cache_stats`] re-exports this).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits(),
            rebinds: self.rebinds(),
            misses: self.misses(),
            entries: self.len(),
            shapes: self.shape_count(),
        }
    }

    /// Drop every cached entry, in both indexes (statistics are kept).
    pub fn clear(&self) {
        self.inner.entries.lock().expect("cache lock").clear();
        self.inner.shapes.lock().expect("cache lock").clear();
    }

    fn lookup(&self, digest: u128) -> Option<Arc<CacheEntry>> {
        self.inner.entries.lock().expect("cache lock").get(&digest).cloned()
    }

    fn lookup_shape(&self, shape: u128) -> Option<Arc<CacheEntry>> {
        self.inner.shapes.lock().expect("cache lock").get(&shape).cloned()
    }

    fn note_hit(&self) {
        self.inner.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn note_rebind(&self) {
        self.inner.rebinds.fetch_add(1, Ordering::Relaxed);
    }

    fn note_miss(&self) {
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn insert(&self, digest: u128, shape: u128, entry: Arc<CacheEntry>) {
        self.inner.entries.lock().expect("cache lock").insert(digest, entry.clone());
        // First compile of a shape becomes the rebind base for the whole
        // family; later members keep rebinding from it.
        self.inner.shapes.lock().expect("cache lock").entry(shape).or_insert(entry);
    }
}

/// A serializable snapshot of [`KernelCache`] counters — what ensemble
/// reports and the CI perf gate consume instead of reaching into the
/// cache's internals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CacheStats {
    /// Compiles served whole from the cache.
    pub hits: u64,
    /// Compiles served through the rebind fast path.
    pub rebinds: u64,
    /// Compiles that ran the full pipeline.
    pub misses: u64,
    /// Distinct documents currently cached.
    pub entries: usize,
    /// Distinct document shapes currently cached.
    pub shapes: usize,
}

impl CacheStats {
    /// Fraction of compiles that avoided the full pipeline (whole hits
    /// plus rebinds over all lookups); `1.0` when nothing compiled yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.rebinds + self.misses;
        if total == 0 {
            1.0
        } else {
            (self.hits + self.rebinds) as f64 / total as f64
        }
    }
}

/// A shared log of the certificates a [`Session`] emitted, for auditing.
///
/// [`Session::with_certificate_log`] clones a session with a fresh log
/// attached; every subsequent [`Session::compile`] through that clone
/// appends its sealed [`CompileCertificate`] here (cache hits and rebinds
/// included — each restamped with its own compile path and digest). The
/// machine park drains one log per job lease to attribute certificates to
/// jobs; the log is an `Arc` internally, so cloning it shares the record.
#[derive(Debug, Clone, Default)]
pub struct CertificateLog {
    inner: Arc<Mutex<Vec<Arc<CompileCertificate>>>>,
}

impl CertificateLog {
    /// Append a certificate to the log.
    pub fn record(&self, cert: Arc<CompileCertificate>) {
        self.inner.lock().expect("certificate log lock").push(cert);
    }

    /// Take every recorded certificate, leaving the log empty.
    pub fn drain(&self) -> Vec<Arc<CompileCertificate>> {
        std::mem::take(&mut *self.inner.lock().expect("certificate log lock"))
    }

    /// Number of certificates currently recorded.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("certificate log lock").len()
    }

    /// Whether the log holds no certificates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A compile-and-run session over one machine configuration.
///
/// Cheap to construct (one knowledge-base clone, reused by every stage)
/// and freely cloneable; every stage takes `&self`, so one session can
/// compile documents from many threads. Clones share the [`KernelCache`],
/// so a document compiled through any clone is a cache hit for all.
#[derive(Debug, Clone)]
pub struct Session {
    checker: Checker,
    kernels: KernelCache,
    fast_path: bool,
    cert_log: Option<CertificateLog>,
}

impl Session {
    /// A session for a machine configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        Self::from_kb(KnowledgeBase::new(cfg))
    }

    /// A session over an existing knowledge base.
    pub fn from_kb(kb: KnowledgeBase) -> Self {
        Session {
            checker: Checker::new(kb),
            kernels: KernelCache::default(),
            fast_path: true,
            cert_log: None,
        }
    }

    /// A session for the published 1988 machine.
    pub fn nsc_1988() -> Self {
        Self::from_kb(KnowledgeBase::nsc_1988())
    }

    /// Toggle the host fast path (on by default). With it off,
    /// [`Session::compile`] skips both the kernel cache and kernel
    /// specialization, so every run interprets — the reference mode the
    /// fast path is bit-compared against.
    pub fn with_fast_path(mut self, enabled: bool) -> Self {
        self.fast_path = enabled;
        self
    }

    /// Whether compiles specialize host kernels and use the cache.
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// The digest-keyed compile cache.
    pub fn kernel_cache(&self) -> &KernelCache {
        &self.kernels
    }

    /// A clone of this session with a fresh [`CertificateLog`] attached,
    /// plus the log itself. Compiles through the clone append their sealed
    /// certificates to the log; the original session keeps whatever log it
    /// had (usually none). The kernel cache stays shared with the original.
    pub fn with_certificate_log(&self) -> (Session, CertificateLog) {
        let log = CertificateLog::default();
        let mut session = self.clone();
        session.cert_log = Some(log.clone());
        (session, log)
    }

    /// Append a certificate to this session's log, if one is attached.
    /// Engines that extend a compile's certificate (the sweep engine's
    /// topology restamp) record the extended version through this.
    pub fn record_certificate(&self, cert: Arc<CompileCertificate>) {
        if let Some(log) = &self.cert_log {
            log.record(cert);
        }
    }

    /// The knowledge base.
    pub fn kb(&self) -> &KnowledgeBase {
        self.checker.kb()
    }

    /// The checker every stage consults.
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    /// A fresh simulated node for this machine.
    pub fn node(&self) -> NodeSim {
        NodeSim::new(self.kb().clone())
    }

    /// Stage 1: bind every unbound icon in every pipeline to a free
    /// physical resource. Fails with [`NscError::BindFailed`] when the
    /// machine cannot host the document.
    pub fn auto_bind(&self, doc: &mut Document) -> Result<(), NscError> {
        let decls = doc.decls.clone();
        let ids: Vec<_> = doc.pipelines().iter().map(|p| p.id).collect();
        let mut diags = Vec::new();
        for id in ids {
            diags.extend(self.checker.auto_bind(doc.pipeline_mut(id).expect("listed id"), &decls));
        }
        if diags.is_empty() {
            Ok(())
        } else {
            Err(NscError::bind_failed(diags))
        }
    }

    /// Stage 2: the whole-document global check. Returns the surviving
    /// warnings on success; fails with [`NscError::CheckFailed`] when any
    /// finding is an error.
    pub fn check(&self, doc: &Document) -> Result<Vec<Diagnostic>, NscError> {
        let diags = self.checker.check_document(doc);
        if diag::has_errors(&diags) {
            Err(NscError::check_failed(diags))
        } else {
            Ok(diags)
        }
    }

    /// Stage 3: lower the (bound, checked) document to microcode.
    pub fn codegen(&self, doc: &Document) -> Result<GenOutput, NscError> {
        Ok(nsc_codegen::generate(self.kb(), doc)?)
    }

    /// The full front half of the Figure 3 loop: bind, check, generate —
    /// then specialize the host fast-path kernel, all behind the
    /// digest-keyed [`KernelCache`].
    ///
    /// The document is mutated in place by binding (exactly what the
    /// interactive environment does before generation). The digest is
    /// taken *after* binding, so documents that bind identically share a
    /// cache slot. On a hit, check, codegen and kernel analysis are all
    /// skipped and the cached program (with its kernel) is returned. On a
    /// miss whose [`Document::shape_digest`] matches a previous compile —
    /// a parameter-sweep member differing only in constants — the cached
    /// program is rebound instead: its preloads are re-patched and only
    /// the kernel re-specializes, skipping check and codegen. The global
    /// check runs exactly once per distinct document *shape*: generation
    /// reuses this stage's verdict instead of re-checking internally, and
    /// rebinding reuses the base compile's warnings (constants cannot
    /// change the check verdict).
    pub fn compile(&self, doc: &mut Document) -> Result<CompiledProgram, NscError> {
        self.auto_bind(doc)?;
        if !self.fast_path {
            let warnings = self.check(doc)?;
            let output = nsc_codegen::generate_prechecked(self.kb(), doc)?;
            let digest = doc.digest();
            let shape = doc.shape_digest();
            let certificate = Arc::new(build_certificate(
                self.kb().config(),
                digest,
                shape,
                CompilePath::Full,
                &output,
                None,
            ));
            self.record_certificate(certificate.clone());
            return Ok(CompiledProgram { output, warnings, kernel: None, shape, certificate });
        }
        let digest = doc.digest();
        let shape = doc.shape_digest();
        if let Some(hit) = self.kernels.lookup(digest) {
            self.kernels.note_hit();
            // Same document, same microcode: the cached certificate holds,
            // restamped so the audit trail shows this compile was a hit.
            let certificate =
                Arc::new(hit.certificate.with_path(CompilePath::CacheHit, digest_hex(digest)));
            self.record_certificate(certificate.clone());
            return Ok(CompiledProgram {
                output: hit.output.clone(),
                warnings: hit.warnings.clone(),
                kernel: Some(hit.kernel.clone()),
                shape,
                certificate,
            });
        }
        if let Some(base) = self.kernels.lookup_shape(shape) {
            // Same shape, different constants: re-patch the preloads and
            // re-specialize the kernel. Patching only fails on a shape
            // collision (distinct structures, equal 128-bit digest) — fall
            // through to the full pipeline in that case, which is always
            // correct, merely slower.
            let mut output = base.output.clone();
            if rebind_preloads(doc, &mut output).is_ok() {
                let kernel = Arc::new(CompiledKernel::compile(self.kb(), &output.program));
                let warnings = base.warnings.clone();
                // The census is re-read from the *rebound* microcode, so
                // the certificate vouches for what actually runs, not for
                // the base member it was patched from.
                let certificate = Arc::new(build_certificate(
                    self.kb().config(),
                    digest,
                    shape,
                    CompilePath::Rebind,
                    &output,
                    Some(&kernel),
                ));
                self.record_certificate(certificate.clone());
                let entry = Arc::new(CacheEntry {
                    output,
                    warnings,
                    kernel,
                    certificate: certificate.clone(),
                });
                self.kernels.note_rebind();
                self.kernels.insert(digest, shape, entry.clone());
                return Ok(CompiledProgram {
                    output: entry.output.clone(),
                    warnings: entry.warnings.clone(),
                    kernel: Some(entry.kernel.clone()),
                    shape,
                    certificate: entry.certificate.clone(),
                });
            }
        }
        self.kernels.note_miss();
        let warnings = self.check(doc)?;
        let output = nsc_codegen::generate_prechecked(self.kb(), doc)?;
        let kernel = Arc::new(CompiledKernel::compile(self.kb(), &output.program));
        let certificate = Arc::new(build_certificate(
            self.kb().config(),
            digest,
            shape,
            CompilePath::Full,
            &output,
            Some(&kernel),
        ));
        self.record_certificate(certificate.clone());
        let entry =
            Arc::new(CacheEntry { output, warnings, kernel, certificate: certificate.clone() });
        self.kernels.insert(digest, shape, entry.clone());
        Ok(CompiledProgram {
            output: entry.output.clone(),
            warnings: entry.warnings.clone(),
            kernel: Some(entry.kernel.clone()),
            shape,
            certificate,
        })
    }

    /// Rebind a compiled program's constant icons to a new document of the
    /// same shape, without consulting or populating the [`KernelCache`].
    ///
    /// `doc` is bound in place, its shape is required to equal `base`'s
    /// ([`NscError::ShapeMismatch`] otherwise), and the result is `base`'s
    /// microcode with every functional-unit preload re-patched to `doc`'s
    /// constants and feedback seeds — bit-identical to what a from-scratch
    /// [`Session::compile`] of `doc` produces, because constants lower
    /// *only* into preloads. The kernel re-specializes when the fast path
    /// is on (preload values are baked into specialized kernels).
    ///
    /// This is the manual counterpart of the rebind fast path `compile`
    /// takes automatically; sweep engines use it to hold a family's base
    /// compile and stamp out members without touching the shared cache.
    pub fn rebind(
        &self,
        base: &CompiledProgram,
        doc: &mut Document,
    ) -> Result<CompiledProgram, NscError> {
        self.auto_bind(doc)?;
        let shape = doc.shape_digest();
        if shape != base.shape {
            return Err(NscError::ShapeMismatch { expected: base.shape, got: shape });
        }
        let mut output = base.output.clone();
        // Equal shape digests with a failing patch means a digest
        // collision between genuinely different structures.
        rebind_preloads(doc, &mut output)
            .map_err(|_| NscError::ShapeMismatch { expected: base.shape, got: shape })?;
        let kernel = if self.fast_path {
            Some(Arc::new(CompiledKernel::compile(self.kb(), &output.program)))
        } else {
            None
        };
        let certificate = Arc::new(build_certificate(
            self.kb().config(),
            doc.digest(),
            shape,
            CompilePath::Rebind,
            &output,
            kernel.as_deref(),
        ));
        Ok(CompiledProgram { output, warnings: base.warnings.clone(), kernel, shape, certificate })
    }

    /// Snapshot of the kernel cache's counters — hit/rebind/miss counts
    /// and sizes — for reports and gates that must not reach into the
    /// cache's internals.
    ///
    /// The three counters partition compiles exactly: every
    /// [`Session::compile`] through the fast path ticks exactly one of
    /// `hits` (same digest, cached program returned whole), `rebinds` (new
    /// digest, known shape — preloads re-patched, check and codegen
    /// skipped) or `misses` (full pipeline). The per-compile view of the
    /// same fact travels in the certificate: `CompileCertificate::
    /// compile_path` is `CacheHit`, `Rebind` or `Full` respectively, so an
    /// audit can tell a rebind-path compile from a full compile for any
    /// single job, while these counters give the aggregate.
    pub fn cache_stats(&self) -> CacheStats {
        self.kernels.stats()
    }

    /// Compile many documents and execute them across a pool of nodes.
    ///
    /// Document `i` runs on node `i % nodes.len()`; each node executes its
    /// queue in submission order on its own scoped thread, so distinct
    /// nodes run concurrently while one node's programs never interleave.
    ///
    /// A *compile* failure aborts before anything executes, leaving every
    /// node untouched. A *runtime* failure cancels the not-yet-started
    /// remainder of the batch (programs already in flight on other nodes
    /// finish their run), and the lowest-indexed failure is reported as
    /// [`NscError::Batch`]; nodes that completed work before the
    /// cancellation keep their memory and counters, so reuse the pool
    /// after an error only if the documents write disjoint state. On
    /// success the [`BatchReport`] carries one [`RunReport`] per document
    /// plus pool-level aggregate counters.
    pub fn run_batch(
        &self,
        docs: &mut [Document],
        nodes: &mut [NodeSim],
        opts: &RunOptions,
    ) -> Result<BatchReport, NscError> {
        if docs.is_empty() {
            return Ok(BatchReport::default());
        }
        if nodes.is_empty() {
            return Err(NscError::EmptyPool);
        }
        let compiled = docs
            .iter_mut()
            .enumerate()
            .map(|(i, d)| self.compile(d).map_err(|e| NscError::in_batch(i, e)))
            .collect::<Result<Vec<_>, _>>()?;
        let programs: Vec<&CompiledProgram> = compiled.iter().collect();
        run_compiled_batch(&programs, nodes, opts)
    }
}

/// Re-patch a generated program's functional-unit preloads to `doc`'s
/// constants and feedback seeds, instruction slot by instruction slot
/// through the generator's diagram back-references.
///
/// Constants lower *only* into `FuField::preload` (the generator rejects
/// units whose operands both carry values, so each unit has at most one),
/// which is what makes this equivalent to recompiling: everything else in
/// the program — routing, compensation, DMA, loop sequencing — is
/// value-independent. Slots without a back-reference (loop headers and
/// tails) carry no units and are skipped. Fails only when `doc` does not
/// actually match the program's structure (a shape-digest collision).
fn rebind_preloads(doc: &Document, output: &mut GenOutput) -> Result<(), ()> {
    for (slot, map) in output.maps.iter().enumerate() {
        let Some(map) = map else { continue };
        let diagram = doc.pipeline(map.pipeline).ok_or(())?;
        for (icon, pos, assign) in diagram.fu_assigns() {
            let Some(value) = assign.preload_value() else { continue };
            let fu = *map.unit_to_fu.get(&(icon, pos)).ok_or(())?;
            output.program.instrs[slot].fu_mut(fu).preload = Some(value);
        }
    }
    Ok(())
}

/// Execute already-compiled programs across a pool of nodes: program `i`
/// runs on node `i % nodes.len()`, each node draining its queue in
/// submission order on its own scoped thread. This is the runtime half of
/// [`Session::run_batch`], exposed separately so drivers that compile once
/// and run many times (distributed solvers sweeping with halo exchanges)
/// skip recompilation. Failure semantics match [`Session::run_batch`].
pub fn run_compiled_batch(
    programs: &[&CompiledProgram],
    nodes: &mut [NodeSim],
    opts: &RunOptions,
) -> Result<BatchReport, NscError> {
    run_compiled_on_lanes(programs, nodes.iter_mut().collect(), opts)
}

/// Execute compiled programs across a *pool* — an explicit subset of a
/// node slice, in pool order: program `i` runs on
/// `nodes[pool[i % pool.len()]]`. This is how an embedding hosted on a
/// sub-cube drives exactly its own nodes (several embeddings on disjoint
/// sub-cubes of one system can be driven from different threads without
/// contending for the whole slice — each call borrows only its pool).
/// Pool indices must be distinct and in range; failure semantics match
/// [`Session::run_batch`].
pub fn run_compiled_on_pool(
    programs: &[&CompiledProgram],
    nodes: &mut [NodeSim],
    pool: &[usize],
    opts: &RunOptions,
) -> Result<BatchReport, NscError> {
    if pool.is_empty() {
        return if programs.is_empty() {
            Ok(BatchReport::default())
        } else {
            Err(NscError::EmptyPool)
        };
    }
    // Take disjoint mutable borrows of the pool's nodes, in pool order.
    let mut all: Vec<Option<&mut NodeSim>> = nodes.iter_mut().map(Some).collect();
    let picked: Vec<&mut NodeSim> = pool
        .iter()
        .map(|&i| {
            all.get_mut(i)
                .and_then(Option::take)
                .unwrap_or_else(|| panic!("pool node {i} out of range or repeated"))
        })
        .collect();
    run_compiled_on_lanes(programs, picked, opts)
}

/// The phased pool driver behind the overlapped sweep engine: run each
/// lane's *interior* program, perform the communication step with an
/// overlappable window open, then run each lane's *boundary-shell*
/// program.
///
/// `interior[i]` and `shell[i]` (either may be `None` — thin parts fold
/// their whole sweep into one phase) run on `system`'s node `pool[i]`,
/// each phase concurrently across lanes through
/// [`run_compiled_on_pool`]. Between the phases, `exchange` is invoked
/// with an overlap window open ([`NscSystem::open_comm_window`]) whose
/// per-node budget is exactly the simulated time each pool node just
/// spent in its interior phase: message time the exchange charges to
/// those nodes is hidden up to that budget, modelling halo sendrecvs
/// issued concurrently with the interior compute. Returns the total
/// hidden nanoseconds.
///
/// Failures are reported as [`NscError::Batch`] with `doc` equal to the
/// *lane* index, so callers can attribute them to the lane's part/node.
pub fn run_compiled_phased(
    system: &mut NscSystem,
    pool: &[usize],
    interior: &[Option<&CompiledProgram>],
    shell: &[Option<&CompiledProgram>],
    opts: &RunOptions,
    exchange: impl FnOnce(&mut NscSystem),
) -> Result<u64, NscError> {
    assert_eq!(interior.len(), pool.len(), "one interior slot per pool lane");
    assert_eq!(shell.len(), pool.len(), "one shell slot per pool lane");

    // Run one sparse phase: the lanes that have a program, concurrently.
    fn run_phase(
        system: &mut NscSystem,
        pool: &[usize],
        progs: &[Option<&CompiledProgram>],
        opts: &RunOptions,
    ) -> Result<(), NscError> {
        let mut sub_progs = Vec::new();
        let mut sub_pool = Vec::new();
        let mut lanes = Vec::new();
        for (lane, prog) in progs.iter().enumerate() {
            if let Some(p) = prog {
                sub_progs.push(*p);
                sub_pool.push(pool[lane]);
                lanes.push(lane);
            }
        }
        if sub_progs.is_empty() {
            return Ok(());
        }
        run_compiled_on_pool(&sub_progs, system.nodes_mut(), &sub_pool, opts).map(|_| ()).map_err(
            |e| match e {
                NscError::Batch { doc, source } => NscError::Batch { doc: lanes[doc], source },
                other => other,
            },
        )
    }

    let before: Vec<u64> = pool.iter().map(|&i| system.nodes()[i].counters.cycles).collect();
    run_phase(system, pool, interior, opts)?;
    // The interior window: what each pool node just spent computing, in ns.
    let clock = system.nodes()[0].kb.config().clock_hz;
    let budgets: Vec<(nsc_arch::NodeId, u64)> = pool
        .iter()
        .zip(&before)
        .map(|(&i, &b)| {
            let cycles = system.nodes()[i].counters.cycles.saturating_sub(b);
            let ns = (cycles as u128 * 1_000_000_000 / clock as u128) as u64;
            (nsc_arch::NodeId(i as u16), ns)
        })
        .collect();
    system.open_comm_window(&budgets);
    exchange(system);
    let hidden = system.close_comm_window();
    run_phase(system, pool, shell, opts)?;
    Ok(hidden)
}

fn run_compiled_on_lanes(
    programs: &[&CompiledProgram],
    mut nodes: Vec<&mut NodeSim>,
    opts: &RunOptions,
) -> Result<BatchReport, NscError> {
    if programs.is_empty() {
        return Ok(BatchReport::default());
    }
    if nodes.is_empty() {
        return Err(NscError::EmptyPool);
    }
    // Deal (index, program, result slot) triples round-robin into one
    // work queue per node.
    let lanes = nodes.len();
    let mut slots: Vec<Option<Result<RunReport, NscError>>> =
        programs.iter().map(|_| None).collect();
    let mut queues: Vec<Vec<(usize, &CompiledProgram, &mut Option<_>)>> =
        (0..lanes).map(|_| Vec::new()).collect();
    for (i, (prog, slot)) in programs.iter().zip(slots.iter_mut()).enumerate() {
        queues[i % lanes].push((i, *prog, slot));
    }
    let cancelled = AtomicBool::new(false);
    let scope_ok = crossbeam::thread::scope(|scope| {
        for (node, queue) in nodes.iter_mut().zip(queues) {
            let cancelled = &cancelled;
            scope.spawn(move |_| {
                for (i, prog, slot) in queue {
                    if cancelled.load(Ordering::Relaxed) {
                        break;
                    }
                    let run = prog.run(node, opts).map_err(|e| NscError::in_batch(i, e));
                    if run.is_err() {
                        cancelled.store(true, Ordering::Relaxed);
                    }
                    *slot = Some(run);
                }
            });
        }
    })
    .is_ok();
    if !scope_ok {
        return Err(NscError::WorkerPanic);
    }

    // Surface the lowest-indexed failure; a `None` slot means the
    // cancellation skipped that document, which is only reachable
    // when some earlier slot holds the causing error.
    if cancelled.load(Ordering::Relaxed) {
        for slot in &slots {
            if let Some(Err(e)) = slot {
                return Err(e.clone());
            }
        }
        return Err(NscError::WorkerPanic);
    }

    let mut report = BatchReport::default();
    let mut lane_totals = vec![PerfCounters::default(); lanes];
    for (i, slot) in slots.into_iter().enumerate() {
        let run = slot.unwrap_or(Err(NscError::WorkerPanic))?;
        lane_totals[i % lanes].accumulate(&run.counters);
        report.runs.push(run);
    }
    // A node's queue runs sequentially (counters accumulate); the
    // nodes themselves overlap in time (counters absorb).
    for lane in &lane_totals {
        report.total.absorb(lane);
    }
    report.nodes_used = lanes.min(report.runs.len());
    report.per_lane = lane_totals;
    Ok(report)
}

/// A document that made it through bind, check and generate.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The generator's output: executable microcode plus per-instruction
    /// diagram back-references.
    pub output: GenOutput,
    /// Non-fatal findings from the global check.
    pub warnings: Vec<Diagnostic>,
    /// The host fast-path kernel, when the session compiled one; shared
    /// with the cache entry, so clones are cheap and thread-safe.
    kernel: Option<Arc<CompiledKernel>>,
    /// The source document's shape digest, for [`Session::rebind`]'s
    /// same-shape guard.
    shape: u128,
    /// The sealed compile certificate, bound to the document digest.
    certificate: Arc<CompileCertificate>,
}

impl CompiledProgram {
    /// The executable microcode.
    pub fn program(&self) -> &MicroProgram {
        &self.output.program
    }

    /// The source document's [`Document::shape_digest`] — the key under
    /// which [`Session::rebind`] accepts new constants for this program.
    pub fn shape_digest(&self) -> u128 {
        self.shape
    }

    /// The host fast-path kernel, if this program was compiled with the
    /// fast path enabled. [`CompiledProgram::run`] uses it automatically.
    pub fn kernel(&self) -> Option<&CompiledKernel> {
        self.kernel.as_deref()
    }

    /// The sealed [`CompileCertificate`] this compile emitted: machine
    /// limits, resource census and kernel validity windows, bound to the
    /// source document's digest. Feed it to `nsc_cert::verify` to re-check
    /// every capacity obligation without the engine.
    pub fn certificate(&self) -> &Arc<CompileCertificate> {
        &self.certificate
    }

    /// Execute on a node.
    ///
    /// Tripping the [`RunOptions::max_instructions`] guard is reported as
    /// [`NscError::MaxInstructions`] — a compiled document that exhausts
    /// its budget is a runaway, not a completed run. (The raw
    /// [`NodeSim::run_program`] API still reports the guard as an ordinary
    /// [`HaltReason`] for callers that probe budgets deliberately.)
    pub fn run(&self, node: &mut NodeSim, opts: &RunOptions) -> Result<RunReport, NscError> {
        let before = node.counters;
        let stats =
            node.run_program_with_kernel(&self.output.program, self.kernel.as_deref(), opts)?;
        if stats.halted == HaltReason::MaxInstructions {
            return Err(NscError::MaxInstructions {
                executed: stats.executed,
                limit: opts.max_instructions,
            });
        }
        let counters = node.counters.since(&before);
        let mflops = counters.mflops(node.kb.config().clock_hz);
        Ok(RunReport { stats, counters, mflops })
    }
}

/// Outcome of one program run through the typed pipeline.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The simulator's halt reason, instruction count and traces.
    pub stats: RunStats,
    /// Counters accumulated by *this* run (not the node's lifetime).
    pub counters: PerfCounters,
    /// Achieved MFLOPS of this run at the node's clock.
    pub mflops: f64,
}

/// Outcome of a [`Session::run_batch`] call.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Per-document reports, in submission order.
    pub runs: Vec<RunReport>,
    /// Pool-level aggregate: work sums across all runs; elapsed cycles are
    /// the busiest node's total (nodes overlap in time).
    pub total: PerfCounters,
    /// Per-lane totals, indexed like the pool the batch ran on: lane `i`
    /// accumulated every document it was dealt (`i`, `i + lanes`, ...).
    /// Job accounting reads busy time per node from here instead of
    /// re-deriving it from the round-robin deal.
    pub per_lane: Vec<PerfCounters>,
    /// Nodes that actually received work.
    pub nodes_used: usize,
}

impl BatchReport {
    /// Aggregate achieved MFLOPS of the pool at a clock rate.
    pub fn mflops(&self, clock_hz: u64) -> f64 {
        self.total.mflops(clock_hz)
    }

    /// Per-document counters, in submission order — what document `i`
    /// alone charged its node (already a delta, not a lifetime total).
    pub fn document_counters(&self) -> impl Iterator<Item = &PerfCounters> + '_ {
        self.runs.iter().map(|r| &r.counters)
    }
}

/// A reusable problem that knows how to run itself through a [`Session`].
///
/// Solver front ends (`nsc-cfd`'s Jacobi, SOR and multigrid drivers)
/// implement this so that benchmarks, examples and batch harnesses can
/// treat "a workload" uniformly: build documents, compile them through the
/// session, execute on the target, and report — returning `Err` instead of
/// panicking at every stage.
///
/// `Target` is what the workload executes *on*: a single [`NodeSim`] (the
/// default — the paper's one-node solvers) or a whole
/// [`nsc_sim::NscSystem`] for domain-decomposed solvers that spread one
/// problem across the hypercube with halo exchanges.
pub trait Workload<Target = NodeSim> {
    /// What a completed run reports.
    type Report;

    /// Human-readable name for logs and batch summaries.
    fn name(&self) -> String;

    /// Execute the workload through `session` on `target`.
    fn execute(&self, session: &Session, target: &mut Target) -> Result<Self::Report, NscError>;
}
