//! The §6 visual debugger.
//!
//! "The visual environment could potentially be extended to include
//! debugging features. During execution, each new instruction would
//! display the corresponding pipeline diagram, annotated to show data
//! values flowing through the pipeline. This could help to pinpoint timing
//! errors, as well as other bugs in the program."
//!
//! [`VisualEnvironment::debug_run`] executes a document with tracing on,
//! then replays each executed instruction as a rendered diagram plus the
//! last value observed on every live port — plane reads, shift/delay taps,
//! and every functional unit's output, named in *diagram* terms via the
//! generator's instruction maps.

use crate::environment::VisualEnvironment;
use crate::error::NscError;
use nsc_arch::SourceRef;
use nsc_diagram::{Document, IconKind, PipelineId};
use nsc_sim::{NodeSim, RunOptions};

/// One executed instruction, annotated.
#[derive(Debug, Clone)]
pub struct DebugFrame {
    /// Program counter of the instruction.
    pub pc: usize,
    /// The pipeline it came from (`None` for loop headers).
    pub pipeline: Option<PipelineId>,
    /// Pipeline name, for display.
    pub title: String,
    /// ASCII rendering of the diagram.
    pub diagram: String,
    /// `(port label, value)` pairs observed during execution.
    pub values: Vec<(String, f64)>,
}

/// A complete annotated run.
#[derive(Debug, Clone)]
pub struct DebugReport {
    /// Frames in execution order (capped by the run options' trace cap).
    pub frames: Vec<DebugFrame>,
    /// Instructions executed in total.
    pub executed: u64,
}

impl DebugReport {
    /// Render the report as text (diagram + value table per frame).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.frames {
            out.push_str(&format!("=== I{} {} ===\n", f.pc, f.title));
            out.push_str(&f.diagram);
            out.push_str("-- values flowing --\n");
            for (label, v) in &f.values {
                out.push_str(&format!("  {label:<24} = {v}\n"));
            }
        }
        out
    }
}

impl VisualEnvironment {
    /// Execute with tracing and annotate every captured instruction.
    pub fn debug_run(
        &self,
        doc: &mut Document,
        node: &mut NodeSim,
        max_frames: usize,
    ) -> Result<DebugReport, NscError> {
        let compiled = self.session().compile(doc)?;
        let out = &compiled.output;
        let opts = RunOptions { trace: true, trace_cap: max_frames, ..Default::default() };
        let stats = compiled.run(node, &opts)?.stats;

        let renders: std::collections::BTreeMap<String, String> =
            self.display_document(doc).into_iter().collect();

        let mut frames = Vec::new();
        for (pc, trace) in &stats.traces {
            let map = out.maps.get(*pc).and_then(|m| m.as_ref());
            let (pipeline, title, diagram) = match map {
                Some(m) => {
                    let p = doc.pipeline(m.pipeline);
                    let name = p.map(|p| p.name.clone()).unwrap_or_default();
                    let render = renders.get(&name).cloned().unwrap_or_default();
                    (Some(m.pipeline), name, render)
                }
                None => (None, "(sequencer)".to_string(), String::new()),
            };
            let mut values = Vec::new();
            if let (Some(m), Some(p)) = (map, pipeline.and_then(|id| doc.pipeline(id))) {
                // Functional-unit outputs, in diagram terms.
                for ((icon, pos), fu) in &m.unit_to_fu {
                    if let Some(v) = trace.value_of(self.kb(), SourceRef::Fu(*fu)) {
                        values.push((format!("{icon}.u{pos}.out ({fu})"), v));
                    }
                }
                // Storage and shift/delay ports.
                for icon in p.icons() {
                    match icon.kind {
                        IconKind::Memory { plane: Some(pl) } => {
                            if let Some(v) = trace.value_of(self.kb(), SourceRef::PlaneRead(pl)) {
                                values.push((format!("{}.rd ({pl})", icon.id), v));
                            }
                        }
                        IconKind::Cache { cache: Some(c) } => {
                            if let Some(v) = trace.value_of(self.kb(), SourceRef::CacheRead(c)) {
                                values.push((format!("{}.rd ({c})", icon.id), v));
                            }
                        }
                        IconKind::Sdu { sdu: Some(s) } => {
                            for t in 0..p.sdu_taps(icon.id).len() as u8 {
                                if let Some(v) = trace.value_of(self.kb(), SourceRef::SduTap(s, t))
                                {
                                    values.push((format!("{}.tap{t} ({s})", icon.id), v));
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            frames.push(DebugFrame { pc: *pc, pipeline, title, diagram, values });
        }
        Ok(DebugReport { frames, executed: stats.executed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{AlsKind, FuOp, InPort, PlaneId};
    use nsc_diagram::{DmaAttrs, FuAssign, IconKind, PadLoc, PadRef};

    fn scaled_doc(env: &VisualEnvironment) -> Document {
        let mut ed = env.editor("debugged");
        ed.set_stream_len(8);
        let mem = ed.place_icon(
            IconKind::Memory { plane: Some(PlaneId(0)) },
            nsc_diagram::Point::new(22, 6),
        );
        let als = ed.place_icon(IconKind::als(AlsKind::Singlet), nsc_diagram::Point::new(45, 6));
        let out = ed.place_icon(
            IconKind::Memory { plane: Some(PlaneId(1)) },
            nsc_diagram::Point::new(70, 6),
        );
        let c1 = ed
            .connect(
                PadLoc::new(mem, PadRef::Io),
                PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            )
            .unwrap();
        ed.set_dma(c1, DmaAttrs::at_address(0));
        ed.assign_fu(als, 0, FuAssign::with_const(FuOp::Mul, 10.0));
        let c2 = ed
            .connect(PadLoc::new(als, PadRef::FuOut { pos: 0 }), PadLoc::new(out, PadRef::Io))
            .unwrap();
        ed.set_dma(c2, DmaAttrs::at_address(0));
        ed.doc.clone()
    }

    #[test]
    fn debug_frames_show_live_values() {
        let env = VisualEnvironment::nsc_1988();
        let mut doc = scaled_doc(&env);
        let mut node = env.node();
        node.mem.plane_mut(PlaneId(0)).write_slice(0, &[1.0, 2.0, 7.0]);
        let report = env.debug_run(&mut doc, &mut node, 16).expect("debugs");
        assert_eq!(report.frames.len(), 1);
        let frame = &report.frames[0];
        assert!(frame.diagram.contains("MUL"), "diagram rendered");
        // The unit's last output is the last input x10 — but the stream is
        // 8 long and only 3 words were loaded; the rest are zeros, so the
        // last observed value is 0.0. The plane read shows 0.0 too.
        let fu_val =
            frame.values.iter().find(|(l, _)| l.contains(".u0.out")).expect("unit value present");
        assert_eq!(fu_val.1, 0.0);
        let rendered = report.render();
        assert!(rendered.contains("values flowing"));
    }

    #[test]
    fn debugger_pinpoints_a_data_bug() {
        // The §6 promise: a wrong constant is visible in the annotated
        // diagram without inspecting memory dumps.
        let env = VisualEnvironment::nsc_1988();
        let mut doc = scaled_doc(&env);
        let mut node = env.node();
        node.mem.plane_mut(PlaneId(0)).write_slice(0, &[3.0; 8]);
        let report = env.debug_run(&mut doc, &mut node, 4).expect("debugs");
        let fu_val = report.frames[0].values.iter().find(|(l, _)| l.contains(".u0.out")).unwrap();
        assert_eq!(fu_val.1, 30.0, "3.0 x 10 visible at the unit's output pad");
    }
}
