//! Automatic binding of logical icons to physical resources.
//!
//! The paper's first design goal (§4): "that the representation have a
//! one-to-one correspondence with the functional model of the machine, so
//! that everything could be specified precisely if necessary. However, an
//! effort would be made to choose appropriate defaults wherever possible in
//! order to minimize the amount of detail required. The defaults could be
//! easily overridden when required."
//!
//! The binder is that default-chooser for physical resource numbers: icons
//! the user left unbound are assigned first-fit from the free pool. Icons
//! whose DMA attributes name a declared variable are bound to *that
//! variable's plane* — the declaration already decided the allocation.

use crate::diag::{Diagnostic, RuleCode, Subject};
use nsc_arch::{CacheId, KnowledgeBase, PlaneId, SduId};
use nsc_diagram::{Declarations, IconId, IconKind, PadRef, PipelineDiagram};
use std::collections::BTreeSet;

/// Bind every unbound icon to a free physical resource. Returns
/// diagnostics for icons that could not be bound (pool exhausted). Bound
/// icons are never re-bound.
pub fn auto_bind(
    kb: &KnowledgeBase,
    diagram: &mut PipelineDiagram,
    decls: &Declarations,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Pools of already-taken physical resources.
    let mut taken_als: BTreeSet<u8> = BTreeSet::new();
    let mut taken_planes: BTreeSet<u8> = BTreeSet::new();
    let mut taken_caches: BTreeSet<u8> = BTreeSet::new();
    let mut taken_sdus: BTreeSet<u8> = BTreeSet::new();
    for icon in diagram.icons() {
        match icon.kind {
            IconKind::Als { als: Some(a), .. } => {
                taken_als.insert(a.0);
            }
            IconKind::Memory { plane: Some(p) } => {
                taken_planes.insert(p.0);
            }
            IconKind::Cache { cache: Some(c) } => {
                taken_caches.insert(c.0);
            }
            IconKind::Sdu { sdu: Some(s) } => {
                taken_sdus.insert(s.0);
            }
            _ => {}
        }
    }
    // Planes already owned by declared variables are only available to the
    // icons that reference those variables.
    let var_planes: BTreeSet<u8> = decls.vars.iter().map(|v| v.plane.0).collect();

    let unbound: Vec<(IconId, IconKind)> =
        diagram.icons().filter(|i| !i.kind.is_bound()).map(|i| (i.id, i.kind)).collect();

    for (id, kind) in unbound {
        match kind {
            IconKind::Als { kind: shape, .. } => {
                let free =
                    kb.layout().alss_of_kind(shape).into_iter().find(|a| !taken_als.contains(&a.0));
                match free {
                    Some(a) => {
                        taken_als.insert(a.0);
                        if let Some(icon) = diagram.icon_mut(id) {
                            if let IconKind::Als { als, .. } = &mut icon.kind {
                                *als = Some(a);
                            }
                        }
                    }
                    None => diags.push(Diagnostic::error(
                        RuleCode::AlsOvercommit,
                        Subject::Icon(id),
                        format!("no free {shape} left to bind"),
                    )),
                }
            }
            IconKind::Memory { .. } => {
                // If this icon's wires name a declared variable, bind to the
                // variable's plane.
                let var_plane = variable_plane_of(diagram, id, decls);
                let pick = match var_plane {
                    Some(p) => Some(p),
                    None => (0..kb.config().memory.planes as u8)
                        .find(|p| !taken_planes.contains(p) && !var_planes.contains(p))
                        .map(PlaneId),
                };
                match pick {
                    Some(p) => {
                        // A variable's plane may be shared by a read icon
                        // and a write icon; first-fit planes may not.
                        if var_plane.is_none() {
                            taken_planes.insert(p.0);
                        }
                        if let Some(icon) = diagram.icon_mut(id) {
                            icon.kind = IconKind::Memory { plane: Some(p) };
                        }
                    }
                    None => diags.push(Diagnostic::error(
                        RuleCode::AlsOvercommit,
                        Subject::Icon(id),
                        "no free memory plane left to bind",
                    )),
                }
            }
            IconKind::Cache { .. } => {
                let free = (0..kb.config().cache.caches as u8).find(|c| !taken_caches.contains(c));
                match free {
                    Some(c) => {
                        taken_caches.insert(c);
                        if let Some(icon) = diagram.icon_mut(id) {
                            icon.kind = IconKind::Cache { cache: Some(CacheId(c)) };
                        }
                    }
                    None => diags.push(Diagnostic::error(
                        RuleCode::AlsOvercommit,
                        Subject::Icon(id),
                        "no free cache left to bind",
                    )),
                }
            }
            IconKind::Sdu { .. } => {
                let free = (0..kb.config().sdu.units as u8).find(|s| !taken_sdus.contains(s));
                match free {
                    Some(s) => {
                        taken_sdus.insert(s);
                        if let Some(icon) = diagram.icon_mut(id) {
                            icon.kind = IconKind::Sdu { sdu: Some(SduId(s)) };
                        }
                    }
                    None => diags.push(Diagnostic::error(
                        RuleCode::AlsOvercommit,
                        Subject::Icon(id),
                        "no free shift/delay unit left to bind",
                    )),
                }
            }
        }
    }
    diags
}

/// If any wire touching this storage icon carries DMA attributes naming a
/// declared variable, the variable's plane decides the binding.
fn variable_plane_of(
    diagram: &PipelineDiagram,
    icon: IconId,
    decls: &Declarations,
) -> Option<PlaneId> {
    let loc = nsc_diagram::PadLoc::new(icon, PadRef::Io);
    diagram
        .connections()
        .filter(|c| c.from == loc || c.to == loc)
        .filter_map(|c| c.dma.as_ref()?.variable.as_deref().and_then(|n| decls.lookup(n)))
        .map(|v| v.plane)
        .next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{AlsId, AlsKind, InPort};
    use nsc_diagram::{DmaAttrs, PadLoc, PipelineId, VarDecl};

    fn kb() -> KnowledgeBase {
        KnowledgeBase::nsc_1988()
    }

    #[test]
    fn binds_als_icons_first_fit_by_kind() {
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        let t1 = d.add_icon(IconKind::als(AlsKind::Triplet));
        let t2 = d.add_icon(IconKind::als(AlsKind::Triplet));
        let s1 = d.add_icon(IconKind::als(AlsKind::Singlet));
        let diags = auto_bind(&kb, &mut d, &Declarations::default());
        assert!(diags.is_empty());
        let bound = |id| match d.icon(id).unwrap().kind {
            IconKind::Als { als, .. } => als.unwrap(),
            _ => panic!(),
        };
        assert_eq!(bound(t1), AlsId(0));
        assert_eq!(bound(t2), AlsId(1));
        // Singlets are ALS12..15 on the 1988 machine.
        assert_eq!(bound(s1), AlsId(12));
    }

    #[test]
    fn respects_existing_bindings() {
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        let pre = d.add_icon(IconKind::Als {
            kind: AlsKind::Triplet,
            mode: nsc_arch::DoubletMode::Full,
            als: Some(AlsId(0)),
        });
        let t = d.add_icon(IconKind::als(AlsKind::Triplet));
        auto_bind(&kb, &mut d, &Declarations::default());
        let bound = |id| match d.icon(id).unwrap().kind {
            IconKind::Als { als, .. } => als.unwrap(),
            _ => panic!(),
        };
        assert_eq!(bound(pre), AlsId(0), "pre-bound icon untouched");
        assert_eq!(bound(t), AlsId(1), "new icon skips the taken ALS");
    }

    #[test]
    fn pool_exhaustion_reports() {
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        for _ in 0..5 {
            d.add_icon(IconKind::als(AlsKind::Triplet)); // machine has 4
        }
        let diags = auto_bind(&kb, &mut d, &Declarations::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RuleCode::AlsOvercommit);
    }

    #[test]
    fn variable_references_decide_memory_bindings() {
        let kb = kb();
        let mut decls = Declarations::default();
        decls.declare(VarDecl { name: "u".into(), plane: PlaneId(7), base: 0, len: 512 });
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        d.stream_len = 512;
        let m = d.add_icon(IconKind::memory());
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        d.connect(
            PadLoc::new(m, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::variable("u")),
        )
        .unwrap();
        auto_bind(&kb, &mut d, &decls);
        assert_eq!(d.icon(m).unwrap().kind, IconKind::Memory { plane: Some(PlaneId(7)) });
    }

    #[test]
    fn first_fit_planes_avoid_variable_planes() {
        let kb = kb();
        let mut decls = Declarations::default();
        decls.declare(VarDecl { name: "u".into(), plane: PlaneId(0), base: 0, len: 512 });
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        let m = d.add_icon(IconKind::memory()); // no variable reference
        auto_bind(&kb, &mut d, &decls);
        assert_eq!(
            d.icon(m).unwrap().kind,
            IconKind::Memory { plane: Some(PlaneId(1)) },
            "plane 0 belongs to variable 'u'"
        );
    }

    #[test]
    fn binds_caches_and_sdus() {
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        let c = d.add_icon(IconKind::cache());
        let s = d.add_icon(IconKind::sdu());
        let diags = auto_bind(&kb, &mut d, &Declarations::default());
        assert!(diags.is_empty());
        assert_eq!(d.icon(c).unwrap().kind, IconKind::Cache { cache: Some(CacheId(0)) });
        assert_eq!(d.icon(s).unwrap().kind, IconKind::Sdu { sdu: Some(SduId(0)) });
    }
}
