//! Legal-connection queries: the Figure 8 menu contents.
//!
//! Paper §5: "A menu pops up showing the available choices ... The checker
//! is used during this operation to ensure that only legal connections are
//! attempted." The implementation is transactional: a candidate wire is
//! tried on a scratch copy of the diagram, and accepted only if it
//! introduces no *new errors* relative to the diagram as it stands
//! (pre-existing problems elsewhere must not block unrelated wiring).

use crate::diag::{Diagnostic, Severity};
use crate::rules;
use crate::Stage;
use nsc_arch::KnowledgeBase;
use nsc_diagram::{PadLoc, PipelineDiagram};

/// Diagnostics that the proposed wire would *add* to the diagram's
/// incremental findings. Empty result = the wire is legal.
pub fn validate_connection(
    kb: &KnowledgeBase,
    diagram: &PipelineDiagram,
    from: PadLoc,
    to: PadLoc,
) -> Vec<Diagnostic> {
    // Structural refusal first (pads must exist and be oriented correctly).
    let mut scratch = diagram.clone();
    let conn = match scratch.connect(from, to, None) {
        Ok(id) => id,
        Err(e) => {
            return vec![Diagnostic::error(
                crate::diag::RuleCode::SinkDrivenTwice, // structural: surfaced as a generic wiring error
                crate::diag::Subject::Icon(from.icon),
                format!("connection refused: {e}"),
            )];
        }
    };
    let before = rules::check_pipeline(kb, diagram, Stage::Incremental);
    let after = rules::check_pipeline(kb, &scratch, Stage::Incremental);
    // New errors only; warnings (like "DMA attributes still needed") are
    // expected mid-gesture. Findings attributed to the new wire are always
    // new.
    after
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .filter(|d| d.subject == crate::diag::Subject::Connection(conn) || !before.contains(d))
        .collect()
}

/// Every pad in the diagram that may legally receive a wire from `from` —
/// exactly what the editor's pop-up menu lists.
pub fn legal_targets(kb: &KnowledgeBase, diagram: &PipelineDiagram, from: PadLoc) -> Vec<PadLoc> {
    if !diagram.has_pad(from) || !from.pad.can_source() {
        return Vec::new();
    }
    let taps = kb.config().sdu.taps_per_unit;
    let mut out = Vec::new();
    let icons: Vec<_> = diagram.icons().map(|i| (i.id, i.kind)).collect();
    for (icon_id, kind) in icons {
        for pad in kind.pads(taps) {
            let to = PadLoc::new(icon_id, pad);
            if !pad.can_sink() || to == from {
                continue;
            }
            if validate_connection(kb, diagram, from, to).is_empty() {
                out.push(to);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{AlsKind, DoubletMode, InPort, PlaneId};
    use nsc_diagram::{DmaAttrs, IconKind, PadRef, PipelineId};

    fn kb() -> KnowledgeBase {
        KnowledgeBase::nsc_1988()
    }

    #[test]
    fn fu_inputs_are_legal_targets_for_a_memory_read() {
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        let m = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let als = d.add_icon(IconKind::als(AlsKind::Triplet));
        let targets = legal_targets(&kb, &d, PadLoc::new(m, PadRef::Io));
        // All six FU inputs of the triplet are available.
        for pos in 0..3u8 {
            for port in [InPort::A, InPort::B] {
                assert!(
                    targets.contains(&PadLoc::new(als, PadRef::FuIn { pos, port })),
                    "missing u{pos}.{port}"
                );
            }
        }
        // FU outputs are not sinks.
        assert!(!targets.iter().any(|t| matches!(t.pad, PadRef::FuOut { .. })));
    }

    #[test]
    fn occupied_sinks_disappear_from_the_menu() {
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        let m = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let cache = d.add_icon(IconKind::Cache { cache: Some(nsc_arch::CacheId(0)) });
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        let sink = PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A });
        d.connect(PadLoc::new(m, PadRef::Io), sink, Some(DmaAttrs::at_address(0))).unwrap();
        let targets = legal_targets(&kb, &d, PadLoc::new(cache, PadRef::Io));
        assert!(!targets.contains(&sink), "already-driven input is not offered");
        assert!(targets.contains(&PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::B })));
    }

    #[test]
    fn second_plane_read_not_offered_to_the_same_unit() {
        // §3: one read plane per functional unit per instruction — the menu
        // for a second memory icon must not offer the other input of a unit
        // that already reads a different plane.
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        let m = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let m2 = d.add_icon(IconKind::Memory { plane: Some(PlaneId(1)) });
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        d.connect(
            PadLoc::new(m, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        let targets = legal_targets(&kb, &d, PadLoc::new(m2, PadRef::Io));
        assert!(
            !targets.contains(&PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::B })),
            "two read planes on one unit must be refused"
        );
    }

    #[test]
    fn the_papers_plane_example_via_legal_targets() {
        // Once FU0's output is routed to plane MP2, a second unit's output
        // must not be offered MP2 as a destination.
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        let a = d.add_icon(IconKind::Als {
            kind: AlsKind::Singlet,
            mode: DoubletMode::Full,
            als: Some(kb.layout().alss_of_kind(AlsKind::Singlet)[0]),
        });
        let b = d.add_icon(IconKind::Als {
            kind: AlsKind::Singlet,
            mode: DoubletMode::Full,
            als: Some(kb.layout().alss_of_kind(AlsKind::Singlet)[1]),
        });
        let plane = d.add_icon(IconKind::Memory { plane: Some(PlaneId(2)) });
        d.connect(
            PadLoc::new(a, PadRef::FuOut { pos: 0 }),
            PadLoc::new(plane, PadRef::Io),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        let targets = legal_targets(&kb, &d, PadLoc::new(b, PadRef::FuOut { pos: 0 }));
        assert!(
            !targets.contains(&PadLoc::new(plane, PadRef::Io)),
            "the editor must not offer the occupied plane"
        );
    }

    #[test]
    fn sdu_inputs_offered_only_to_storage_sources() {
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        let m = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        let sdu = d.add_icon(IconKind::Sdu { sdu: Some(nsc_arch::SduId(0)) });
        let from_mem = legal_targets(&kb, &d, PadLoc::new(m, PadRef::Io));
        assert!(from_mem.contains(&PadLoc::new(sdu, PadRef::SduIn)));
        let from_fu = legal_targets(&kb, &d, PadLoc::new(als, PadRef::FuOut { pos: 0 }));
        assert!(
            !from_fu.contains(&PadLoc::new(sdu, PadRef::SduIn)),
            "SDUs reformat memory data, not FU results"
        );
    }

    #[test]
    fn validate_rejects_structurally_bad_wires() {
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        let diags = validate_connection(
            &kb,
            &d,
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            PadLoc::new(als, PadRef::FuOut { pos: 0 }),
        );
        assert!(!diags.is_empty());
    }

    #[test]
    fn preexisting_errors_do_not_block_unrelated_wires() {
        let kb = kb();
        let mut d = PipelineDiagram::new(PipelineId(0), "t");
        // A pre-existing error: icon bound to a nonexistent plane.
        d.add_icon(IconKind::Memory { plane: Some(PlaneId(99)) });
        let m = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        let diags = validate_connection(
            &kb,
            &d,
            PadLoc::new(m, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
        );
        assert!(diags.is_empty(), "unrelated wire must stay legal: {diags:?}");
    }
}
