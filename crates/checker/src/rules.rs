//! The rule set: every conflict, constraint and asymmetry the knowledge
//! base knows about, as executable checks.
//!
//! Each rule is motivated by a specific sentence of the paper; the rule
//! table in DESIGN.md maps codes to quotes. Rules are pure functions over
//! the diagram + knowledge base; the editor decides *when* to run them
//! (after every mutation) and the generator runs them all again globally.

use crate::diag::{Diagnostic, RuleCode, Subject};
use crate::Stage;
use nsc_arch::{AlsKind, KnowledgeBase};
use nsc_diagram::{
    CaptureMode, ControlNode, Declarations, DmaAttrs, Document, Icon, IconId, IconKind, InputSpec,
    PadRef, PipelineDiagram,
};
use std::collections::{BTreeMap, BTreeSet};

/// Check one pipeline without document context (variable names are not
/// resolvable; declaration-dependent rules are skipped).
pub fn check_pipeline(kb: &KnowledgeBase, d: &PipelineDiagram, stage: Stage) -> Vec<Diagnostic> {
    check_pipeline_with(kb, d, stage, None)
}

/// Check one pipeline with the document's declarations available.
pub fn check_pipeline_with(
    kb: &KnowledgeBase,
    d: &PipelineDiagram,
    stage: Stage,
    decls: Option<&Declarations>,
) -> Vec<Diagnostic> {
    let mut cx = Ctx { kb, d, stage, decls, diags: Vec::new() };
    cx.rule_bindings();
    cx.rule_overcommit();
    cx.rule_sink_single_driver();
    cx.rule_fanout();
    cx.rule_storage_ports();
    cx.rule_fu_single_plane();
    cx.rule_capabilities_and_arity();
    cx.rule_register_file();
    cx.rule_sdu();
    cx.rule_dma();
    cx.rule_subset();
    cx.rule_self_loop();
    cx.rule_stream_len();
    cx.rule_unused_icons();
    if stage == Stage::Global {
        cx.rule_cycles();
        cx.rule_store_exists();
    }
    cx.diags
}

/// Check a whole document: every pipeline globally (with declarations),
/// plus document-level control-flow and declaration rules.
pub fn check_document(kb: &KnowledgeBase, doc: &Document) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for p in doc.pipelines() {
        diags.extend(check_pipeline_with(kb, p, Stage::Global, Some(&doc.decls)));
    }
    // C024: control-flow references.
    if let Some(control) = &doc.control {
        for id in control.referenced_pipelines() {
            if doc.pipeline(id).is_none() {
                diags.push(Diagnostic::error(
                    RuleCode::DanglingControlRef,
                    Subject::Document,
                    format!("control flow references {id}, which does not exist"),
                ));
            }
        }
        // C025: convergence scalars must be written somewhere in the body.
        check_conditions(kb, doc, control, &mut diags);
    }
    // Declarations: plane validity and overlap.
    for v in &doc.decls.vars {
        if !kb.valid_plane(v.plane) {
            diags.push(Diagnostic::error(
                RuleCode::NoSuchResource,
                Subject::Document,
                format!("variable '{}' declared in nonexistent plane {}", v.name, v.plane),
            ));
        } else if v.base + v.len > kb.config().memory.words_per_plane {
            diags.push(Diagnostic::error(
                RuleCode::DmaRange,
                Subject::Document,
                format!("variable '{}' extends past the end of {}", v.name, v.plane),
            ));
        }
    }
    for (i, a) in doc.decls.vars.iter().enumerate() {
        for b in doc.decls.vars.iter().skip(i + 1) {
            if a.plane == b.plane && a.base < b.base + b.len && b.base < a.base + a.len {
                diags.push(Diagnostic::warning(
                    RuleCode::DmaRange,
                    Subject::Document,
                    format!("variables '{}' and '{}' overlap in {}", a.name, b.name, a.plane),
                ));
            }
        }
    }
    diags
}

#[allow(clippy::only_used_in_recursion)] // every rule fn takes the knowledge base uniformly
fn check_conditions(
    kb: &KnowledgeBase,
    doc: &Document,
    node: &ControlNode,
    diags: &mut Vec<Diagnostic>,
) {
    match node {
        ControlNode::Pipeline(_) => {}
        ControlNode::Seq(children) => {
            children.iter().for_each(|c| check_conditions(kb, doc, c, diags))
        }
        ControlNode::Repeat { body, .. } => check_conditions(kb, doc, body, diags),
        ControlNode::RepeatUntil { cond, body } => {
            let written = body.referenced_pipelines().iter().any(|pid| {
                doc.pipeline(*pid).is_some_and(|p| {
                    p.connections().any(|c| {
                        let Some(icon) = p.icon(c.to.icon) else { return false };
                        matches!(icon.kind, IconKind::Cache { cache: Some(cc) } if cc == cond.cache)
                            && c.dma.as_ref().is_some_and(|a| a.offset == cond.offset as u64)
                    })
                })
            });
            if !written {
                diags.push(Diagnostic::warning(
                    RuleCode::UnwrittenCondition,
                    Subject::Document,
                    format!(
                        "convergence test reads {}[{}], which no pipeline in the loop writes",
                        cond.cache, cond.offset
                    ),
                ));
            }
            check_conditions(kb, doc, body, diags);
        }
    }
}

// ---------------------------------------------------------------------
// per-pipeline rule context
// ---------------------------------------------------------------------

struct Ctx<'a> {
    kb: &'a KnowledgeBase,
    d: &'a PipelineDiagram,
    stage: Stage,
    decls: Option<&'a Declarations>,
    diags: Vec<Diagnostic>,
}

impl<'a> Ctx<'a> {
    fn err(&mut self, rule: RuleCode, subject: Subject, msg: impl Into<String>) {
        self.diags.push(Diagnostic::error(rule, subject, msg));
    }

    fn warn(&mut self, rule: RuleCode, subject: Subject, msg: impl Into<String>) {
        self.diags.push(Diagnostic::warning(rule, subject, msg));
    }

    /// Incomplete-work findings: warnings while editing, errors at codegen.
    fn gap(&mut self, rule: RuleCode, subject: Subject, msg: impl Into<String>) {
        let d = match self.stage {
            Stage::Incremental => Diagnostic::warning(rule, subject, msg),
            Stage::Global => Diagnostic::error(rule, subject, msg),
        };
        self.diags.push(d);
    }

    fn als_icons(&self) -> impl Iterator<Item = (&'a Icon, AlsKind)> + '_ {
        self.d.icons().filter_map(|i| match i.kind {
            IconKind::Als { kind, .. } => Some((i, kind)),
            _ => None,
        })
    }

    /// Active chain positions of an ALS icon (respecting doublet bypass).
    fn active_positions(kind: AlsKind, mode: nsc_arch::DoubletMode) -> Vec<u8> {
        match kind {
            AlsKind::Doublet => mode.active_positions().iter().map(|&p| p as u8).collect(),
            k => (0..k.unit_count() as u8).collect(),
        }
    }

    /// Positions of an ALS icon that are "in use": programmed or wired.
    fn used_positions(&self, icon: &Icon) -> Vec<u8> {
        let IconKind::Als { kind, mode, .. } = icon.kind else { return vec![] };
        Self::active_positions(kind, mode)
            .into_iter()
            .filter(|&pos| {
                self.d.fu_assign(icon.id, pos).is_some()
                    || self.d.connections().any(|c| {
                        let touches = |loc: nsc_diagram::PadLoc| {
                            loc.icon == icon.id
                                && match loc.pad {
                                    PadRef::FuIn { pos: p, .. } | PadRef::FuOut { pos: p } => {
                                        p == pos
                                    }
                                    _ => false,
                                }
                        };
                        touches(c.from) || touches(c.to)
                    })
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // C001/C002/C003/C027: bindings
    // ------------------------------------------------------------------

    fn rule_bindings(&mut self) {
        let mut als_bound: BTreeMap<nsc_arch::AlsId, IconId> = BTreeMap::new();
        let mut sdu_bound: BTreeMap<nsc_arch::SduId, IconId> = BTreeMap::new();
        let icons: Vec<Icon> = self.d.icons().copied().collect();
        for icon in icons {
            let subject = Subject::Icon(icon.id);
            match icon.kind {
                IconKind::Als { kind, als, .. } => match als {
                    None => self.gap(
                        RuleCode::UnboundIcon,
                        subject,
                        format!("{} icon not yet bound to a physical ALS", kind),
                    ),
                    Some(a) if a.index() >= self.kb.layout().alss().len() => self.err(
                        RuleCode::NoSuchResource,
                        subject,
                        format!("{a} does not exist on {}", self.kb.config().name),
                    ),
                    Some(a) => {
                        let phys = self.kb.layout().als(a);
                        if phys.kind != kind {
                            self.err(
                                RuleCode::BindingKindMismatch,
                                subject,
                                format!("{} icon bound to {a}, which is a {}", kind, phys.kind),
                            );
                        }
                        if let Some(prev) = als_bound.insert(a, icon.id) {
                            self.err(
                                RuleCode::DuplicateBinding,
                                subject,
                                format!("{a} already bound by {prev}"),
                            );
                        }
                    }
                },
                IconKind::Memory { plane } => match plane {
                    None => self.gap(
                        RuleCode::UnboundIcon,
                        subject,
                        "memory icon has no plane number yet".to_string(),
                    ),
                    Some(p) if !self.kb.valid_plane(p) => self.err(
                        RuleCode::NoSuchResource,
                        subject,
                        format!("{p} does not exist on {}", self.kb.config().name),
                    ),
                    Some(_) => {}
                },
                IconKind::Cache { cache } => match cache {
                    None => self.gap(
                        RuleCode::UnboundIcon,
                        subject,
                        "cache icon has no cache number yet".to_string(),
                    ),
                    Some(c) if !self.kb.valid_cache(c) => self.err(
                        RuleCode::NoSuchResource,
                        subject,
                        format!("{c} does not exist on {}", self.kb.config().name),
                    ),
                    Some(_) => {}
                },
                IconKind::Sdu { sdu } => match sdu {
                    None => self.gap(
                        RuleCode::UnboundIcon,
                        subject,
                        "shift/delay icon not yet bound to a unit".to_string(),
                    ),
                    Some(s) if !self.kb.valid_sdu(s) => self.err(
                        RuleCode::NoSuchResource,
                        subject,
                        format!("{s} does not exist on {}", self.kb.config().name),
                    ),
                    Some(s) => {
                        if let Some(prev) = sdu_bound.insert(s, icon.id) {
                            self.err(
                                RuleCode::DuplicateBinding,
                                subject,
                                format!("{s} already bound by {prev}"),
                            );
                        }
                    }
                },
            }
        }
    }

    // ------------------------------------------------------------------
    // C004: resource overcommit
    // ------------------------------------------------------------------

    fn rule_overcommit(&mut self) {
        let cfg = self.kb.config();
        let mut by_kind: BTreeMap<AlsKind, usize> = BTreeMap::new();
        let (mut mems, mut caches, mut sdus) = (0usize, 0usize, 0usize);
        for icon in self.d.icons() {
            match icon.kind {
                IconKind::Als { kind, .. } => *by_kind.entry(kind).or_default() += 1,
                IconKind::Memory { .. } => mems += 1,
                IconKind::Cache { .. } => caches += 1,
                IconKind::Sdu { .. } => sdus += 1,
            }
        }
        let subject = Subject::Pipeline(self.d.id);
        let avail = |k: AlsKind| self.kb.layout().alss_of_kind(k).len();
        for (kind, n) in by_kind {
            if n > avail(kind) {
                self.err(
                    RuleCode::AlsOvercommit,
                    subject,
                    format!("{n} {kind} icons but the machine has {}", avail(kind)),
                );
            }
        }
        // Memory icons may legitimately share planes (read + write side),
        // so they are capped at two per plane.
        if mems > cfg.memory.planes * 2 {
            self.err(
                RuleCode::AlsOvercommit,
                subject,
                format!("{mems} memory icons but the machine has {} planes", cfg.memory.planes),
            );
        }
        if caches > cfg.cache.caches * 2 {
            self.err(
                RuleCode::AlsOvercommit,
                subject,
                format!("{caches} cache icons but the machine has {}", cfg.cache.caches),
            );
        }
        if sdus > cfg.sdu.units {
            self.err(
                RuleCode::AlsOvercommit,
                subject,
                format!("{sdus} shift/delay icons but the machine has {}", cfg.sdu.units),
            );
        }
    }

    // ------------------------------------------------------------------
    // C005: one driver per sink pad
    // ------------------------------------------------------------------

    fn rule_sink_single_driver(&mut self) {
        let mut seen: BTreeMap<nsc_diagram::PadLoc, nsc_diagram::ConnId> = BTreeMap::new();
        let conns: Vec<_> = self.d.connections().cloned().collect();
        for c in conns {
            if let Some(prev) = seen.insert(c.to, c.id) {
                self.err(
                    RuleCode::SinkDrivenTwice,
                    Subject::Connection(c.id),
                    format!("{} is already driven by {prev}", c.to),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // C006: switch fan-out
    // ------------------------------------------------------------------

    fn rule_fanout(&mut self) {
        let max = self.kb.max_fanout();
        let mut counts: BTreeMap<nsc_diagram::PadLoc, usize> = BTreeMap::new();
        for c in self.d.connections() {
            *counts.entry(c.from).or_default() += 1;
        }
        for (pad, n) in counts {
            if n > max {
                self.err(
                    RuleCode::FanoutExceeded,
                    Subject::Icon(pad.icon),
                    format!("{pad} drives {n} sinks; the switch fans out at most {max}"),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // C007: storage port contention (the paper's flagship example)
    // ------------------------------------------------------------------

    fn rule_storage_ports(&mut self) {
        // Group icons by the physical plane/cache they are bound to;
        // unbound icons are judged individually.
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        enum Key {
            Plane(u8),
            Cache(u8),
            Solo(IconId),
        }
        let mut groups: BTreeMap<Key, Vec<IconId>> = BTreeMap::new();
        for icon in self.d.icons() {
            match icon.kind {
                IconKind::Memory { plane: Some(p) } => {
                    groups.entry(Key::Plane(p.0)).or_default().push(icon.id)
                }
                IconKind::Cache { cache: Some(c) } => {
                    groups.entry(Key::Cache(c.0)).or_default().push(icon.id)
                }
                IconKind::Memory { plane: None } | IconKind::Cache { cache: None } => {
                    groups.entry(Key::Solo(icon.id)).or_default().push(icon.id)
                }
                _ => {}
            }
        }
        for (key, icons) in groups {
            let name = match key {
                Key::Plane(p) => format!("plane MP{p}"),
                Key::Cache(c) => format!("cache DC{c}"),
                Key::Solo(_) => "this storage icon".to_string(),
            };
            let mut reads: Vec<(nsc_diagram::ConnId, Option<DmaAttrs>)> = Vec::new();
            let mut writes = 0usize;
            let mut subject = Subject::Icon(icons[0]);
            for &ic in &icons {
                subject = Subject::Icon(ic);
                let loc = nsc_diagram::PadLoc::new(ic, PadRef::Io);
                for c in self.d.outgoing(loc) {
                    reads.push((c.id, c.dma.clone()));
                }
                writes += self.d.incoming(loc).len();
            }
            // One read *stream*: multiple wires allowed only if they carry
            // identical DMA attributes (one port fanned out by the switch).
            // Wires whose attributes are still pending (None) are tolerated
            // here; C014 catches them at code-generation time.
            let set: Vec<&DmaAttrs> = reads.iter().filter_map(|(_, a)| a.as_ref()).collect();
            if set.len() > 1 && set.iter().any(|a| *a != set[0]) {
                self.err(
                    RuleCode::PlaneContention,
                    subject,
                    format!("{name} read port carries one stream; wires request different ones"),
                );
            }
            if writes > 1 {
                self.err(
                    RuleCode::PlaneContention,
                    subject,
                    format!("{name} write port already driven; a second unit cannot store there"),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // C008: one plane per functional unit
    // ------------------------------------------------------------------

    fn rule_fu_single_plane(&mut self) {
        let plane_of = |icon: IconId| -> Option<nsc_arch::PlaneId> {
            match self.d.icon(icon)?.kind {
                IconKind::Memory { plane } => plane,
                _ => None,
            }
        };
        let als_icon_ids: Vec<IconId> = self
            .d
            .icons()
            .filter(|i| matches!(i.kind, IconKind::Als { .. }))
            .map(|i| i.id)
            .collect();
        for icon_id in als_icon_ids {
            // Planes a unit reads from and writes to, per chain position.
            // §3's constraint is per access direction: one read plane and
            // one write plane per unit per instruction (otherwise even a
            // plain MP->FU->MP vector op would be unprogrammable).
            let mut reads: BTreeMap<u8, BTreeSet<u8>> = BTreeMap::new();
            let mut writes: BTreeMap<u8, BTreeSet<u8>> = BTreeMap::new();
            for c in self.d.connections() {
                if c.to.icon == icon_id {
                    if let PadRef::FuIn { pos, .. } = c.to.pad {
                        if let Some(p) = plane_of(c.from.icon) {
                            reads.entry(pos).or_default().insert(p.0);
                        }
                    }
                }
                if c.from.icon == icon_id {
                    if let PadRef::FuOut { pos } = c.from.pad {
                        if let Some(p) = plane_of(c.to.icon) {
                            writes.entry(pos).or_default().insert(p.0);
                        }
                    }
                }
            }
            for (dir, map) in [("read", reads), ("write", writes)] {
                for (pos, planes) in map {
                    if planes.len() > 1 {
                        let list: Vec<String> = planes.iter().map(|p| format!("MP{p}")).collect();
                        self.err(
                            RuleCode::FuMultiPlane,
                            Subject::Unit(icon_id, pos),
                            format!(
                                "a function unit can {dir} in only a single memory plane per \
                                 instruction; this one {dir}s {}; stage one operand through a \
                                 cache or a COPY unit",
                                list.join(", ")
                            ),
                        );
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // C009/C010/C020/C029: capabilities, arity, dead outputs
    // ------------------------------------------------------------------

    fn rule_capabilities_and_arity(&mut self) {
        let icons: Vec<Icon> = self.d.icons().copied().collect();
        for icon in icons {
            let IconKind::Als { kind, mode, .. } = icon.kind else { continue };
            let active = Self::active_positions(kind, mode);
            // C029: assignments on positions that are no longer active
            // (e.g. the doublet was re-configured to bypass after
            // programming).
            for pos in 0..kind.unit_count() as u8 {
                if !active.contains(&pos) && self.d.fu_assign(icon.id, pos).is_some() {
                    self.err(
                        RuleCode::InactiveUnit,
                        Subject::Unit(icon.id, pos),
                        "unit is programmed but bypassed by the doublet configuration",
                    );
                }
            }
            for &pos in &active {
                let subject = Subject::Unit(icon.id, pos);
                let in_a = nsc_diagram::PadLoc::new(
                    icon.id,
                    PadRef::FuIn { pos, port: nsc_arch::InPort::A },
                );
                let in_b = nsc_diagram::PadLoc::new(
                    icon.id,
                    PadRef::FuIn { pos, port: nsc_arch::InPort::B },
                );
                let out = nsc_diagram::PadLoc::new(icon.id, PadRef::FuOut { pos });
                let wired_a = !self.d.incoming(in_a).is_empty();
                let wired_b = !self.d.incoming(in_b).is_empty();
                let wired_out = !self.d.outgoing(out).is_empty();
                match self.d.fu_assign(icon.id, pos) {
                    None => {
                        if wired_a || wired_b || wired_out {
                            self.gap(
                                RuleCode::ArityMismatch,
                                subject,
                                "unit has wires but no operation assigned yet",
                            );
                        }
                    }
                    Some(assign) => {
                        // C009: capability asymmetry.
                        let caps = kind.unit_caps(pos as usize);
                        if !caps.supports(assign.op) {
                            self.err(
                                RuleCode::CapabilityViolation,
                                subject,
                                format!(
                                    "{} requires {:?} circuitry; unit {pos} of a {} has {}",
                                    assign.op.mnemonic(),
                                    assign.op.class(),
                                    kind,
                                    caps
                                ),
                            );
                        }
                        // C010: operand wiring vs. input specs.
                        self.check_operand(subject, "a", assign.in_a, wired_a);
                        let spec_b = if assign.op.arity() == 1 {
                            if assign.in_b.wants_wire() && wired_b {
                                self.warn(
                                    RuleCode::ArityMismatch,
                                    subject,
                                    format!(
                                        "{} is unary; the wire on input b is ignored",
                                        assign.op.mnemonic()
                                    ),
                                );
                            }
                            None
                        } else {
                            Some(assign.in_b)
                        };
                        if let Some(spec) = spec_b {
                            self.check_operand(subject, "b", spec, wired_b);
                        }
                        // C020: dead output.
                        if !wired_out {
                            self.gap(
                                RuleCode::DeadOutput,
                                subject,
                                "unit is programmed but its output feeds nothing",
                            );
                        }
                    }
                }
            }
        }
    }

    fn check_operand(&mut self, subject: Subject, port: &str, spec: InputSpec, wired: bool) {
        match (spec.wants_wire(), wired) {
            (true, false) => self.gap(
                RuleCode::ArityMismatch,
                subject,
                format!("input {port} expects a wire but none is connected"),
            ),
            (false, true) => self.err(
                RuleCode::ArityMismatch,
                subject,
                format!("input {port} is internal ({spec:?}) but a wire is connected to it"),
            ),
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // C011: register-file depth
    // ------------------------------------------------------------------

    fn rule_register_file(&mut self) {
        let rf = self.kb.config().rf_words;
        let assigns: Vec<(IconId, u8, nsc_diagram::FuAssign)> =
            self.d.fu_assigns().map(|(i, p, a)| (i, p, *a)).collect();
        for (icon, pos, assign) in assigns {
            let mut used = 0usize;
            for spec in [assign.in_a, assign.in_b] {
                match spec {
                    InputSpec::DelayedWire { delay } => used += delay as usize,
                    InputSpec::Constant(_) | InputSpec::Feedback { .. } => used += 1,
                    _ => {}
                }
            }
            if used > rf {
                self.err(
                    RuleCode::QueueDepthExceeded,
                    Subject::Unit(icon, pos),
                    format!("register file holds {rf} words; this programming needs {used}"),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // C012/C013/C028: shift/delay units
    // ------------------------------------------------------------------

    fn rule_sdu(&mut self) {
        let cfg = self.kb.config();
        let icons: Vec<Icon> = self.d.icons().copied().collect();
        for icon in icons {
            if !matches!(icon.kind, IconKind::Sdu { .. }) {
                continue;
            }
            let subject = Subject::Icon(icon.id);
            let taps = self.d.sdu_taps(icon.id).to_vec();
            if taps.len() > cfg.sdu.taps_per_unit {
                self.err(
                    RuleCode::SduTapCount,
                    subject,
                    format!(
                        "{} delays programmed; the unit has {} taps",
                        taps.len(),
                        cfg.sdu.taps_per_unit
                    ),
                );
            }
            for &delay in &taps {
                if delay as u32 > cfg.sdu.buffer_words {
                    self.err(
                        RuleCode::SduDelayRange,
                        subject,
                        format!(
                            "tap delay {delay} exceeds the {}-word delay buffer",
                            cfg.sdu.buffer_words
                        ),
                    );
                }
            }
            // Wires leaving taps must refer to programmed, existing taps.
            let conns: Vec<_> = self.d.connections().cloned().collect();
            for c in &conns {
                if c.from.icon == icon.id {
                    if let PadRef::SduTap { tap } = c.from.pad {
                        if tap as usize >= cfg.sdu.taps_per_unit {
                            self.err(
                                RuleCode::SduTapCount,
                                Subject::Connection(c.id),
                                format!(
                                    "tap {tap} does not exist (unit has {})",
                                    cfg.sdu.taps_per_unit
                                ),
                            );
                        } else if tap as usize >= taps.len() {
                            self.gap(
                                RuleCode::SduTapCount,
                                Subject::Connection(c.id),
                                format!("tap {tap} is wired but has no delay programmed"),
                            );
                        }
                    }
                }
                // C028: SDU input must come from memory or cache.
                if c.to.icon == icon.id && c.to.pad == PadRef::SduIn {
                    let ok = self.d.icon(c.from.icon).is_some_and(|src| {
                        matches!(src.kind, IconKind::Memory { .. } | IconKind::Cache { .. })
                    });
                    if !ok {
                        self.err(
                            RuleCode::SduSourceKind,
                            Subject::Connection(c.id),
                            "shift/delay units reformat memory data; feed them from a \
                             memory plane or cache",
                        );
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // C014/C015/C016/C017/C023: DMA attributes
    // ------------------------------------------------------------------

    fn rule_dma(&mut self) {
        let cfg = self.kb.config();
        let conns: Vec<_> = self.d.connections().cloned().collect();
        for c in &conns {
            let from_kind = self.d.icon(c.from.icon).map(|i| i.kind);
            let to_kind = self.d.icon(c.to.icon).map(|i| i.kind);
            let from_storage =
                matches!(from_kind, Some(IconKind::Memory { .. }) | Some(IconKind::Cache { .. }));
            let to_storage =
                matches!(to_kind, Some(IconKind::Memory { .. }) | Some(IconKind::Cache { .. }));
            if from_storage && to_storage {
                self.err(
                    RuleCode::DmaMissing,
                    Subject::Connection(c.id),
                    "storage-to-storage wires are not routable; pass the stream through a \
                     function unit (COPY)",
                );
                continue;
            }
            if !(from_storage || to_storage) {
                continue;
            }
            let storage_kind = if from_storage { from_kind } else { to_kind };
            let Some(attrs) = &c.dma else {
                self.gap(
                    RuleCode::DmaMissing,
                    Subject::Connection(c.id),
                    "memory/cache connection needs DMA parameters (plane, address, stride)",
                );
                continue;
            };
            let count = match attrs.mode {
                CaptureMode::LastOnly => attrs.count.unwrap_or(1),
                CaptureMode::Stream => attrs.count.unwrap_or(self.d.stream_len),
            };
            // C017: explicit counts should match the pipeline stream.
            if attrs.mode == CaptureMode::Stream {
                if let Some(n) = attrs.count {
                    if n != self.d.stream_len {
                        self.warn(
                            RuleCode::StreamLenMismatch,
                            Subject::Connection(c.id),
                            format!(
                                "explicit count {n} differs from the pipeline stream length {}",
                                self.d.stream_len
                            ),
                        );
                    }
                }
            }
            if attrs.stride == 0 && count > 1 {
                self.err(
                    RuleCode::DmaRange,
                    Subject::Connection(c.id),
                    "stride 0 with more than one element re-reads one word forever",
                );
            }
            // Resolve variable base if declarations are available.
            let (base, limit) = match (&attrs.variable, self.decls) {
                (Some(name), Some(decls)) => match decls.lookup(name) {
                    None => {
                        self.err(
                            RuleCode::UndeclaredVariable,
                            Subject::Connection(c.id),
                            format!("variable '{name}' is not declared"),
                        );
                        continue;
                    }
                    Some(v) => (v.base + attrs.offset, Some(v.base + v.len)),
                },
                (Some(_), None) => continue, // cannot resolve without decls
                (None, _) => (attrs.offset, None),
            };
            let span = base as i128 + (count.max(1) as i128 - 1) * attrs.stride as i128;
            let hard_limit = match storage_kind {
                Some(IconKind::Cache { .. }) => cfg.cache.words_per_buffer,
                _ => cfg.memory.words_per_plane,
            };
            let is_cache = matches!(storage_kind, Some(IconKind::Cache { .. }));
            if span < 0 || span >= hard_limit as i128 || base >= hard_limit {
                let rule = if is_cache { RuleCode::CacheCapacity } else { RuleCode::DmaRange };
                self.err(
                    rule,
                    Subject::Connection(c.id),
                    format!(
                        "transfer [{base} .. {span}] leaves the {}-word {}",
                        hard_limit,
                        if is_cache { "cache buffer" } else { "plane" }
                    ),
                );
            } else if let Some(lim) = limit {
                if span >= lim as i128 {
                    self.err(
                        RuleCode::DmaRange,
                        Subject::Connection(c.id),
                        format!("transfer runs past the end of the variable (limit {lim})"),
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // C018: subset-model restriction
    // ------------------------------------------------------------------

    fn rule_subset(&mut self) {
        let Some(max) = self.kb.config().max_active_per_als else { return };
        let icons: Vec<Icon> = self.als_icons().map(|(i, _)| *i).collect();
        for icon in icons {
            let used = self.used_positions(&icon);
            if used.len() > max {
                self.err(
                    RuleCode::SubsetViolation,
                    Subject::Icon(icon.id),
                    format!(
                        "subset model allows {max} active unit(s) per ALS; this icon uses {}",
                        used.len()
                    ),
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // C022: direct self-loops
    // ------------------------------------------------------------------

    fn rule_self_loop(&mut self) {
        let conns: Vec<_> = self.d.connections().cloned().collect();
        for c in conns {
            if c.from.icon == c.to.icon {
                if let (PadRef::FuOut { pos: a }, PadRef::FuIn { pos: b, .. }) =
                    (c.from.pad, c.to.pad)
                {
                    if a == b {
                        self.err(
                            RuleCode::SelfLoop,
                            Subject::Connection(c.id),
                            "use the register-file feedback input for reductions, not a wire \
                             to the unit's own input",
                        );
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // C017 (pipeline-level): stream length sanity
    // ------------------------------------------------------------------

    fn rule_stream_len(&mut self) {
        if self.d.stream_len == 0 {
            self.err(
                RuleCode::StreamLenMismatch,
                Subject::Pipeline(self.d.id),
                "stream length 0; scalars are vectors of length one",
            );
        }
    }

    // ------------------------------------------------------------------
    // C026: unused icons
    // ------------------------------------------------------------------

    fn rule_unused_icons(&mut self) {
        let icons: Vec<Icon> = self.d.icons().copied().collect();
        for icon in icons {
            let touched =
                self.d.connections().any(|c| c.from.icon == icon.id || c.to.icon == icon.id);
            if !touched {
                self.warn(
                    RuleCode::UnusedIcon,
                    Subject::Icon(icon.id),
                    "icon participates in no connection",
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // C019 (global): cycles through the switch
    // ------------------------------------------------------------------

    fn rule_cycles(&mut self) {
        // Nodes are *units* — (icon, chain position) for ALS pads, the
        // whole icon for SDUs — so intra-ALS chaining (u0 feeding u1 in
        // one icon) is not mistaken for a loop. Storage icons are
        // excluded: their read and write streams are independent ports and
        // legitimately close loops across iterations, not within an
        // instruction.
        type Node = (IconId, u8);
        const ICON_LEVEL: u8 = u8::MAX;
        let node_of = |loc: nsc_diagram::PadLoc| -> Node {
            match loc.pad {
                PadRef::FuIn { pos, .. } | PadRef::FuOut { pos } => (loc.icon, pos),
                _ => (loc.icon, ICON_LEVEL),
            }
        };
        let mut adj: BTreeMap<Node, Vec<Node>> = BTreeMap::new();
        for c in self.d.connections() {
            let from_storage = self.d.icon(c.from.icon).is_some_and(|i| {
                matches!(i.kind, IconKind::Memory { .. } | IconKind::Cache { .. })
            });
            let to_storage = self.d.icon(c.to.icon).is_some_and(|i| {
                matches!(i.kind, IconKind::Memory { .. } | IconKind::Cache { .. })
            });
            if from_storage || to_storage {
                continue;
            }
            adj.entry(node_of(c.from)).or_default().push(node_of(c.to));
        }
        // Iterative DFS three-colour cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: BTreeMap<Node, Colour> = BTreeMap::new();
        let nodes: Vec<Node> = adj.keys().copied().collect();
        for &start in &nodes {
            if colour.get(&start).copied().unwrap_or(Colour::White) != Colour::White {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            colour.insert(start, Colour::Grey);
            while let Some(&(node, idx)) = stack.last() {
                let next = adj.get(&node).and_then(|v| v.get(idx)).copied();
                match next {
                    Some(succ) => {
                        stack.last_mut().unwrap().1 += 1;
                        match colour.get(&succ).copied().unwrap_or(Colour::White) {
                            Colour::White => {
                                colour.insert(succ, Colour::Grey);
                                stack.push((succ, 0));
                            }
                            Colour::Grey => {
                                self.err(
                                    RuleCode::CycleDetected,
                                    Subject::Icon(succ.0),
                                    "dataflow cycle through the switch; streams cannot be \
                                     aligned — use register-file feedback instead",
                                );
                                colour.insert(succ, Colour::Black);
                            }
                            Colour::Black => {}
                        }
                    }
                    None => {
                        colour.insert(node, Colour::Black);
                        stack.pop();
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // C021 (global): every instruction must store something
    // ------------------------------------------------------------------

    fn rule_store_exists(&mut self) {
        let stores = self.d.connections().any(|c| {
            self.d
                .icon(c.to.icon)
                .is_some_and(|i| matches!(i.kind, IconKind::Memory { .. } | IconKind::Cache { .. }))
        });
        if !stores && self.d.connection_count() > 0 {
            self.err(
                RuleCode::NoStore,
                Subject::Pipeline(self.d.id),
                "pipeline stores no result to any memory plane or cache",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::has_errors;
    use crate::diag::Severity;
    use nsc_arch::{AlsId, CacheId, DoubletMode, FuOp, InPort, MachineConfig, PlaneId, SduId};
    use nsc_diagram::{FuAssign, PadLoc, PipelineId, VarDecl};

    fn kb() -> KnowledgeBase {
        KnowledgeBase::nsc_1988()
    }

    fn diagram() -> PipelineDiagram {
        PipelineDiagram::new(PipelineId(0), "t")
    }

    fn fires(diags: &[Diagnostic], rule: RuleCode) -> bool {
        diags.iter().any(|d| d.rule == rule)
    }

    fn fires_err(diags: &[Diagnostic], rule: RuleCode) -> bool {
        diags.iter().any(|d| d.rule == rule && d.severity == Severity::Error)
    }

    /// A minimal legal pipeline: MP0 -> FU(add const) -> MP1.
    fn legal_pipeline(kb: &KnowledgeBase) -> PipelineDiagram {
        let mut d = diagram();
        d.stream_len = 64;
        let src = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let als = d.add_icon(IconKind::Als {
            kind: AlsKind::Singlet,
            mode: DoubletMode::Full,
            als: Some(kb.layout().alss_of_kind(AlsKind::Singlet)[0]),
        });
        let dst = d.add_icon(IconKind::Memory { plane: Some(PlaneId(1)) });
        d.connect(
            PadLoc::new(src, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.connect(
            PadLoc::new(als, PadRef::FuOut { pos: 0 }),
            PadLoc::new(dst, PadRef::Io),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.assign_fu(als, 0, FuAssign::with_const(FuOp::Mul, 2.0)).unwrap();
        d
    }

    #[test]
    fn a_legal_pipeline_is_clean_at_both_stages() {
        let kb = kb();
        let d = legal_pipeline(&kb);
        let inc = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(!has_errors(&inc), "incremental errors: {inc:?}");
        let glob = check_pipeline(&kb, &d, Stage::Global);
        assert!(!has_errors(&glob), "global errors: {glob:?}");
    }

    #[test]
    fn incremental_accepts_what_global_accepts() {
        // Monotonicity: a diagram clean at Global must be clean at
        // Incremental (the editor never blocks something codegen allows).
        let kb = kb();
        let d = legal_pipeline(&kb);
        if !has_errors(&check_pipeline(&kb, &d, Stage::Global)) {
            assert!(!has_errors(&check_pipeline(&kb, &d, Stage::Incremental)));
        }
    }

    #[test]
    fn unbound_icons_warn_then_block() {
        let kb = kb();
        let mut d = diagram();
        d.add_icon(IconKind::memory());
        let inc = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires(&inc, RuleCode::UnboundIcon) && !has_errors(&inc));
        let glob = check_pipeline(&kb, &d, Stage::Global);
        assert!(fires_err(&glob, RuleCode::UnboundIcon));
    }

    #[test]
    fn nonexistent_resources_are_errors_immediately() {
        let kb = kb();
        let mut d = diagram();
        d.add_icon(IconKind::Memory { plane: Some(PlaneId(99)) });
        d.add_icon(IconKind::Cache { cache: Some(CacheId(16)) });
        d.add_icon(IconKind::Sdu { sdu: Some(SduId(7)) });
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert_eq!(diags.iter().filter(|x| x.rule == RuleCode::NoSuchResource).count(), 3);
    }

    #[test]
    fn binding_kind_mismatch_detected() {
        let kb = kb();
        let mut d = diagram();
        // ALS0 is a triplet; bind a singlet icon to it.
        d.add_icon(IconKind::Als {
            kind: AlsKind::Singlet,
            mode: DoubletMode::Full,
            als: Some(AlsId(0)),
        });
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::BindingKindMismatch));
    }

    #[test]
    fn duplicate_als_binding_detected() {
        let kb = kb();
        let mut d = diagram();
        for _ in 0..2 {
            d.add_icon(IconKind::Als {
                kind: AlsKind::Triplet,
                mode: DoubletMode::Full,
                als: Some(AlsId(0)),
            });
        }
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::DuplicateBinding));
    }

    #[test]
    fn als_overcommit_detected() {
        let kb = kb();
        let mut d = diagram();
        for _ in 0..5 {
            d.add_icon(IconKind::als(AlsKind::Triplet)); // machine has 4
        }
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::AlsOvercommit));
    }

    #[test]
    fn second_unit_to_same_plane_is_refused() {
        // The paper's own example: "if the user has routed the output from
        // one function unit to a particular memory plane, the graphical
        // editor will not let him send the output of a second unit to the
        // same plane."
        let kb = kb();
        let mut d = legal_pipeline(&kb);
        let als2 = d.add_icon(IconKind::Als {
            kind: AlsKind::Singlet,
            mode: DoubletMode::Full,
            als: Some(kb.layout().alss_of_kind(AlsKind::Singlet)[1]),
        });
        // A second memory icon bound to the same plane MP1:
        let dst2 = d.add_icon(IconKind::Memory { plane: Some(PlaneId(1)) });
        d.connect(
            PadLoc::new(als2, PadRef::FuOut { pos: 0 }),
            PadLoc::new(dst2, PadRef::Io),
            Some(DmaAttrs::at_address(512)),
        )
        .unwrap();
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::PlaneContention), "{diags:?}");
    }

    #[test]
    fn fu_touching_two_planes_is_refused() {
        let kb = kb();
        let mut d = diagram();
        d.stream_len = 16;
        let m0 = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let m1 = d.add_icon(IconKind::Memory { plane: Some(PlaneId(1)) });
        let als = d.add_icon(IconKind::Als {
            kind: AlsKind::Singlet,
            mode: DoubletMode::Full,
            als: Some(kb.layout().alss_of_kind(AlsKind::Singlet)[0]),
        });
        d.connect(
            PadLoc::new(m0, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        d.connect(
            PadLoc::new(m1, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::B }),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::FuMultiPlane));
    }

    #[test]
    fn capability_asymmetry_enforced() {
        let kb = kb();
        let mut d = diagram();
        let t = d.add_icon(IconKind::als(AlsKind::Triplet));
        // Position 1 of a triplet is plain float: integer ops refused.
        d.assign_fu(t, 1, FuAssign::binary(FuOp::IAdd)).unwrap();
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::CapabilityViolation));
        // Min/max on position 0 also refused.
        d.assign_fu(t, 0, FuAssign::binary(FuOp::Max)).unwrap();
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(diags.iter().filter(|x| x.rule == RuleCode::CapabilityViolation).count() >= 2);
    }

    #[test]
    fn wire_into_constant_input_is_an_error() {
        let kb = kb();
        let mut d = legal_pipeline(&kb);
        // The singlet's input b is Constant; wire something into it.
        let als_id = d.icons().find(|i| matches!(i.kind, IconKind::Als { .. })).unwrap().id;
        let extra = d.add_icon(IconKind::Memory { plane: Some(PlaneId(2)) });
        d.connect(
            PadLoc::new(extra, PadRef::Io),
            PadLoc::new(als_id, PadRef::FuIn { pos: 0, port: InPort::B }),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::ArityMismatch));
    }

    #[test]
    fn missing_wire_is_gap_not_error_while_editing() {
        let kb = kb();
        let mut d = diagram();
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        d.assign_fu(als, 0, FuAssign::binary(FuOp::Add)).unwrap();
        let inc = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires(&inc, RuleCode::ArityMismatch));
        assert!(!fires_err(&inc, RuleCode::ArityMismatch));
        let glob = check_pipeline(&kb, &d, Stage::Global);
        assert!(fires_err(&glob, RuleCode::ArityMismatch));
    }

    #[test]
    fn queue_depth_checked_against_register_file() {
        let kb = kb();
        let mut d = diagram();
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        d.assign_fu(
            als,
            0,
            FuAssign {
                op: FuOp::Add,
                in_a: InputSpec::DelayedWire { delay: 60 },
                in_b: InputSpec::DelayedWire { delay: 60 },
            },
        )
        .unwrap();
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::QueueDepthExceeded), "120 > 64 words");
    }

    #[test]
    fn sdu_rules() {
        let kb = kb();
        let mut d = diagram();
        let sdu = d.add_icon(IconKind::Sdu { sdu: Some(SduId(0)) });
        // Too many taps.
        d.set_sdu_taps(sdu, vec![0, 1, 2, 3, 4]).unwrap();
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::SduTapCount));
        // Delay beyond buffer.
        d.set_sdu_taps(sdu, vec![0xFFFF_u16 >> 2]).unwrap(); // 16383 <= 16384 ok
        d.set_sdu_taps(sdu, vec![16385]).unwrap_or(());
        // 16385 does not fit u16? it does (< 65536). Buffer is 16384.
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::SduDelayRange));
        // SDU fed from an ALS is refused.
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        d.set_sdu_taps(sdu, vec![0]).unwrap();
        d.connect(
            PadLoc::new(als, PadRef::FuOut { pos: 0 }),
            PadLoc::new(sdu, PadRef::SduIn),
            None,
        )
        .unwrap();
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::SduSourceKind));
    }

    #[test]
    fn dma_rules() {
        let kb = kb();
        let mut d = diagram();
        d.stream_len = 100;
        let m = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        // Missing DMA attrs: gap.
        let c1 = d
            .connect(
                PadLoc::new(m, PadRef::Io),
                PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
                None,
            )
            .unwrap();
        let inc = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires(&inc, RuleCode::DmaMissing) && !fires_err(&inc, RuleCode::DmaMissing));
        let glob = check_pipeline(&kb, &d, Stage::Global);
        assert!(fires_err(&glob, RuleCode::DmaMissing));
        // Out-of-range transfer.
        d.connection_mut(c1).unwrap().dma = Some(DmaAttrs::at_address(16 * 1024 * 1024 - 10));
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::DmaRange));
        // Zero stride.
        d.connection_mut(c1).unwrap().dma = Some(DmaAttrs::at_address(0).with_stride(0));
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::DmaRange));
        // Count mismatch warning.
        d.connection_mut(c1).unwrap().dma = Some(DmaAttrs::at_address(0).with_count(50));
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires(&diags, RuleCode::StreamLenMismatch));
    }

    #[test]
    fn storage_to_storage_wires_are_refused() {
        let kb = kb();
        let mut d = diagram();
        let m0 = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let m1 = d.add_icon(IconKind::Memory { plane: Some(PlaneId(1)) });
        d.connect(
            PadLoc::new(m0, PadRef::Io),
            PadLoc::new(m1, PadRef::Io),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::DmaMissing));
    }

    #[test]
    fn variable_rules_need_declarations() {
        let kb = kb();
        let mut d = diagram();
        d.stream_len = 64;
        let m = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        d.connect(
            PadLoc::new(m, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::variable("ghost")),
        )
        .unwrap();
        // Without declarations: silent on the variable.
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(!fires(&diags, RuleCode::UndeclaredVariable));
        // With declarations: undeclared variable is an error.
        let decls = Declarations::default();
        let diags = check_pipeline_with(&kb, &d, Stage::Incremental, Some(&decls));
        assert!(fires_err(&diags, RuleCode::UndeclaredVariable));
        // Declared but overrun: DmaRange.
        let mut decls = Declarations::default();
        decls.declare(VarDecl { name: "ghost".into(), plane: PlaneId(0), base: 0, len: 32 });
        let diags = check_pipeline_with(&kb, &d, Stage::Incremental, Some(&decls));
        assert!(fires_err(&diags, RuleCode::DmaRange), "64-long stream into 32-long var");
    }

    #[test]
    fn subset_model_limits_active_units() {
        let cfg = MachineConfig::nsc_1988().subset(nsc_arch::SubsetModel::SingletsOnly);
        let kb = KnowledgeBase::new(cfg);
        let mut d = diagram();
        let t = d.add_icon(IconKind::als(AlsKind::Triplet));
        d.assign_fu(t, 0, FuAssign::binary(FuOp::Add)).unwrap();
        d.assign_fu(t, 1, FuAssign::binary(FuOp::Mul)).unwrap();
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::SubsetViolation));
    }

    #[test]
    fn self_loop_refused_with_feedback_hint() {
        let kb = kb();
        let mut d = diagram();
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        d.connect(
            PadLoc::new(als, PadRef::FuOut { pos: 0 }),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::B }),
            None,
        )
        .unwrap();
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        let d = diags.iter().find(|x| x.rule == RuleCode::SelfLoop).expect("self loop");
        assert!(d.message.contains("feedback"));
    }

    #[test]
    fn cross_unit_cycle_detected_globally() {
        let kb = kb();
        let mut d = diagram();
        let a = d.add_icon(IconKind::als(AlsKind::Singlet));
        let b = d.add_icon(IconKind::als(AlsKind::Singlet));
        d.connect(
            PadLoc::new(a, PadRef::FuOut { pos: 0 }),
            PadLoc::new(b, PadRef::FuIn { pos: 0, port: InPort::A }),
            None,
        )
        .unwrap();
        d.connect(
            PadLoc::new(b, PadRef::FuOut { pos: 0 }),
            PadLoc::new(a, PadRef::FuIn { pos: 0, port: InPort::A }),
            None,
        )
        .unwrap();
        let inc = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(!fires(&inc, RuleCode::CycleDetected), "cycle check is global-only");
        let glob = check_pipeline(&kb, &d, Stage::Global);
        assert!(fires_err(&glob, RuleCode::CycleDetected));
    }

    #[test]
    fn pipelines_without_stores_are_refused_globally() {
        let kb = kb();
        let mut d = diagram();
        let m = d.add_icon(IconKind::Memory { plane: Some(PlaneId(0)) });
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        d.connect(
            PadLoc::new(m, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::at_address(0)),
        )
        .unwrap();
        let glob = check_pipeline(&kb, &d, Stage::Global);
        assert!(fires_err(&glob, RuleCode::NoStore));
    }

    #[test]
    fn zero_stream_length_is_an_error() {
        let kb = kb();
        let mut d = diagram();
        d.stream_len = 0;
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::StreamLenMismatch));
    }

    #[test]
    fn document_level_rules() {
        let kb = kb();
        let mut doc = Document::new("t");
        let p = doc.add_pipeline("only");
        doc.control = Some(ControlNode::Seq(vec![
            ControlNode::Pipeline(p),
            ControlNode::Pipeline(nsc_diagram::PipelineId(999)),
        ]));
        doc.decls.declare(VarDecl { name: "u".into(), plane: PlaneId(99), base: 0, len: 1 });
        doc.decls.declare(VarDecl { name: "a".into(), plane: PlaneId(0), base: 0, len: 100 });
        doc.decls.declare(VarDecl { name: "b".into(), plane: PlaneId(0), base: 50, len: 100 });
        let diags = check_document(&kb, &doc);
        assert!(fires_err(&diags, RuleCode::DanglingControlRef));
        assert!(fires_err(&diags, RuleCode::NoSuchResource), "var in plane 99");
        assert!(fires(&diags, RuleCode::DmaRange), "overlapping vars warn");
    }

    #[test]
    fn unwritten_convergence_condition_warns() {
        let kb = kb();
        let mut doc = Document::new("t");
        let p = doc.add_pipeline("body");
        doc.control = Some(ControlNode::RepeatUntil {
            cond: nsc_diagram::ConvergenceCond {
                cache: CacheId(0),
                offset: 0,
                threshold: 1e-6,
                max_iters: 100,
            },
            body: Box::new(ControlNode::Pipeline(p)),
        });
        let diags = check_document(&kb, &doc);
        assert!(fires(&diags, RuleCode::UnwrittenCondition));
    }

    #[test]
    fn unused_icon_warns() {
        let kb = kb();
        let mut d = diagram();
        d.add_icon(IconKind::memory());
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires(&diags, RuleCode::UnusedIcon));
    }

    #[test]
    fn inactive_unit_programming_detected_after_mode_change() {
        let kb = kb();
        let mut d = diagram();
        let doub = d.add_icon(IconKind::als(AlsKind::Doublet));
        d.assign_fu(doub, 1, FuAssign::binary(FuOp::Add)).unwrap();
        // Re-configure to bypass the second unit after programming it.
        if let Some(icon) = d.icon_mut(doub) {
            if let IconKind::Als { mode, .. } = &mut icon.kind {
                *mode = DoubletMode::BypassSecond;
            }
        }
        let diags = check_pipeline(&kb, &d, Stage::Incremental);
        assert!(fires_err(&diags, RuleCode::InactiveUnit));
    }
}
