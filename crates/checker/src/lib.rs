//! # nsc-checker — the knowledge-base rule engine
//!
//! Paper §4: "the checker also knows all of the rules about conflicts,
//! constraints, asymmetries and other restrictions in the NSC architecture.
//! The graphical editor calls on the checker at appropriate points during
//! interaction with the user to validate the information being input. Any
//! errors are flagged as soon as they are detected. In addition, the
//! graphical editor uses the checker's knowledge of the architecture to
//! reduce the possibilities for making errors. For example, if the user has
//! routed the output from one function unit to a particular memory plane,
//! the graphical editor will not let him send the output of a second unit
//! to the same plane."
//!
//! The checker runs at two stages, matching the paper:
//!
//! * [`Stage::Incremental`] — during editing; structural gaps (an input not
//!   yet wired) are warnings so half-built diagrams stay workable;
//! * [`Stage::Global`] — "invoked again at this point \[code generation\]
//!   to perform a thorough check of global constraints"; gaps become
//!   errors, and whole-program rules (cycles, dead stores, control-flow
//!   references) run.
//!
//! [`Checker::legal_targets`] powers the editor's Figure 8 behaviour: the
//! pop-up of connection choices contains only machine-legal destinations.

pub mod binder;
pub mod diag;
pub mod legal;
pub mod rules;

pub use self::binder::auto_bind;
pub use self::diag::{Diagnostic, RuleCode, Severity, Subject};

use nsc_arch::KnowledgeBase;
use nsc_diagram::{Document, PadLoc, PipelineDiagram};

/// Which checking pass is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// During editing: incomplete work is tolerated (warnings).
    Incremental,
    /// Before code generation: everything must be complete and consistent.
    Global,
}

/// The checker: a knowledge base plus the rule set.
#[derive(Debug, Clone)]
pub struct Checker {
    kb: KnowledgeBase,
}

impl Checker {
    /// A checker for the given machine.
    pub fn new(kb: KnowledgeBase) -> Self {
        Checker { kb }
    }

    /// A checker for the 1988 machine.
    pub fn nsc_1988() -> Self {
        Self::new(KnowledgeBase::nsc_1988())
    }

    /// The knowledge base consulted by the rules.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Check one pipeline diagram.
    pub fn check_pipeline(&self, diagram: &PipelineDiagram, stage: Stage) -> Vec<Diagnostic> {
        rules::check_pipeline(&self.kb, diagram, stage)
    }

    /// Check a whole document (per-pipeline global checks plus
    /// document-level rules).
    pub fn check_document(&self, doc: &Document) -> Vec<Diagnostic> {
        rules::check_document(&self.kb, doc)
    }

    /// All pads in the diagram that may legally receive a wire from
    /// `from` — the contents of the Figure 8 connection menu.
    pub fn legal_targets(&self, diagram: &PipelineDiagram, from: PadLoc) -> Vec<PadLoc> {
        legal::legal_targets(&self.kb, diagram, from)
    }

    /// Diagnostics a proposed wire would introduce; empty = legal.
    pub fn validate_connection(
        &self,
        diagram: &PipelineDiagram,
        from: PadLoc,
        to: PadLoc,
    ) -> Vec<Diagnostic> {
        legal::validate_connection(&self.kb, diagram, from, to)
    }

    /// Bind every unbound icon in the diagram to a free physical resource.
    pub fn auto_bind(
        &self,
        diagram: &mut PipelineDiagram,
        decls: &nsc_diagram::Declarations,
    ) -> Vec<Diagnostic> {
        binder::auto_bind(&self.kb, diagram, decls)
    }
}
