//! Diagnostics: what the checker tells the editor and the user.
//!
//! Paper §4: "Any errors are flagged as soon as they are detected" — the
//! editor shows these in its message strip, attributed to the icon, wire or
//! unit at fault so the display can highlight it.

use nsc_cert::ConstraintKind;
use nsc_diagram::{ConnId, IconId, PipelineId};
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; code generation may proceed.
    Warning,
    /// Violation of a machine rule; code generation is refused.
    Error,
}

/// What a diagnostic is about, for display highlighting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subject {
    /// A specific icon.
    Icon(IconId),
    /// A specific wire.
    Connection(ConnId),
    /// A functional unit within an ALS icon.
    Unit(IconId, u8),
    /// A whole pipeline.
    Pipeline(PipelineId),
    /// The document (control flow, declarations).
    Document,
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Icon(i) => write!(f, "{i}"),
            Subject::Connection(c) => write!(f, "{c}"),
            Subject::Unit(i, p) => write!(f, "{i}.u{p}"),
            Subject::Pipeline(p) => write!(f, "{p}"),
            Subject::Document => write!(f, "document"),
        }
    }
}

/// The rule that fired. Codes are stable identifiers used in tests and in
/// the editor's message strip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // each variant is documented by its message text
pub enum RuleCode {
    /// C001: icon not yet bound to a physical resource.
    UnboundIcon,
    /// C002: two icons bound to the same physical resource.
    DuplicateBinding,
    /// C003: bound resource does not exist on this machine.
    NoSuchResource,
    /// C004: more ALS icons of a kind than the machine has.
    AlsOvercommit,
    /// C005: two wires drive the same sink pad.
    SinkDrivenTwice,
    /// C006: a source pad drives more sinks than the switch fan-out allows.
    FanoutExceeded,
    /// C007: a memory plane's port used by conflicting streams (the paper's
    /// "will not let him send the output of a second unit to the same
    /// plane").
    PlaneContention,
    /// C008: one functional unit touching more than one memory plane.
    FuMultiPlane,
    /// C009: operation not supported by the unit's capabilities.
    CapabilityViolation,
    /// C010: wires on a unit's pads disagree with its operation's operands.
    ArityMismatch,
    /// C011: register-file delay queue deeper than the register file.
    QueueDepthExceeded,
    /// C012: shift/delay tap index or count beyond the machine's taps.
    SduTapCount,
    /// C013: shift/delay tap delay beyond the unit's buffer.
    SduDelayRange,
    /// C014: memory/cache wire without DMA attributes.
    DmaMissing,
    /// C015: DMA transfer runs outside the plane/cache/variable bounds.
    DmaRange,
    /// C016: DMA names a variable that is not declared.
    UndeclaredVariable,
    /// C017: stream length inconsistent with an explicit DMA count.
    StreamLenMismatch,
    /// C018: more units active in an ALS than the subset model allows.
    SubsetViolation,
    /// C019: dataflow cycle through the switch (feedback must use the
    /// register-file feedback path instead).
    CycleDetected,
    /// C020: an enabled unit's output feeds nothing.
    DeadOutput,
    /// C021: the pipeline stores no result anywhere.
    NoStore,
    /// C022: a wire loops a unit's output directly to its own input.
    SelfLoop,
    /// C023: cache DMA larger than one cache buffer.
    CacheCapacity,
    /// C024: control flow references a pipeline that does not exist.
    DanglingControlRef,
    /// C025: a convergence test reads a scalar nothing writes.
    UnwrittenCondition,
    /// C026: icon participates in no connection.
    UnusedIcon,
    /// C027: ALS icon bound to a physical ALS of a different kind.
    BindingKindMismatch,
    /// C028: shift/delay unit fed by something other than memory or cache.
    SduSourceKind,
    /// C029: a unit is wired or programmed on a pad the checker cannot
    /// attribute to an active unit.
    InactiveUnit,
}

impl RuleCode {
    /// The rule's place in the shared constraint taxonomy
    /// ([`nsc_cert::ConstraintKind`]) — the declarative, enumerable form
    /// the certificate verifier and audit reports also speak. The
    /// taxonomy owns the stable ids; [`RuleCode::code`] delegates here.
    pub fn constraint(&self) -> ConstraintKind {
        use RuleCode::*;
        match self {
            UnboundIcon => ConstraintKind::UnboundIcon,
            DuplicateBinding => ConstraintKind::DuplicateBinding,
            NoSuchResource => ConstraintKind::NoSuchResource,
            AlsOvercommit => ConstraintKind::AlsOvercommit,
            SinkDrivenTwice => ConstraintKind::SinkDrivenTwice,
            FanoutExceeded => ConstraintKind::FanoutExceeded,
            PlaneContention => ConstraintKind::PlaneContention,
            FuMultiPlane => ConstraintKind::FuMultiPlane,
            CapabilityViolation => ConstraintKind::CapabilityViolation,
            ArityMismatch => ConstraintKind::ArityMismatch,
            QueueDepthExceeded => ConstraintKind::QueueDepthExceeded,
            SduTapCount => ConstraintKind::SduTapCount,
            SduDelayRange => ConstraintKind::SduDelayRange,
            DmaMissing => ConstraintKind::DmaMissing,
            DmaRange => ConstraintKind::DmaRange,
            UndeclaredVariable => ConstraintKind::UndeclaredVariable,
            StreamLenMismatch => ConstraintKind::StreamLenMismatch,
            SubsetViolation => ConstraintKind::SubsetViolation,
            CycleDetected => ConstraintKind::CycleDetected,
            DeadOutput => ConstraintKind::DeadOutput,
            NoStore => ConstraintKind::NoStore,
            SelfLoop => ConstraintKind::SelfLoop,
            CacheCapacity => ConstraintKind::CacheCapacity,
            DanglingControlRef => ConstraintKind::DanglingControlRef,
            UnwrittenCondition => ConstraintKind::UnwrittenCondition,
            UnusedIcon => ConstraintKind::UnusedIcon,
            BindingKindMismatch => ConstraintKind::BindingKindMismatch,
            SduSourceKind => ConstraintKind::SduSourceKind,
            InactiveUnit => ConstraintKind::InactiveUnit,
        }
    }

    /// Stable short code ("C005") used in messages and tests — owned by
    /// the shared taxonomy since the certificate layer landed.
    pub fn code(&self) -> &'static str {
        self.constraint().id()
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleCode,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable explanation for the message strip.
    pub message: String,
    /// What it is about.
    pub subject: Subject,
}

impl Diagnostic {
    /// An error finding.
    pub fn error(rule: RuleCode, subject: Subject, message: impl Into<String>) -> Self {
        Diagnostic { rule, severity: Severity::Error, message: message.into(), subject }
    }

    /// A warning finding.
    pub fn warning(rule: RuleCode, subject: Subject, message: impl Into<String>) -> Self {
        Diagnostic { rule, severity: Severity::Warning, message: message.into(), subject }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}] {}: {}", self.rule.code(), self.subject, self.message)
    }
}

/// Convenience: does a finding list contain any errors?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Convenience: only the errors.
pub fn errors(diags: &[Diagnostic]) -> impl Iterator<Item = &Diagnostic> {
    diags.iter().filter(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        use RuleCode::*;
        let all = [
            UnboundIcon,
            DuplicateBinding,
            NoSuchResource,
            AlsOvercommit,
            SinkDrivenTwice,
            FanoutExceeded,
            PlaneContention,
            FuMultiPlane,
            CapabilityViolation,
            ArityMismatch,
            QueueDepthExceeded,
            SduTapCount,
            SduDelayRange,
            DmaMissing,
            DmaRange,
            UndeclaredVariable,
            StreamLenMismatch,
            SubsetViolation,
            CycleDetected,
            DeadOutput,
            NoStore,
            SelfLoop,
            CacheCapacity,
            DanglingControlRef,
            UnwrittenCondition,
            UnusedIcon,
            BindingKindMismatch,
            SduSourceKind,
            InactiveUnit,
        ];
        let set: std::collections::HashSet<_> = all.iter().map(|r| r.code()).collect();
        assert_eq!(set.len(), all.len());
        assert_eq!(RuleCode::SinkDrivenTwice.code(), "C005");

        // The rules map bijectively onto the taxonomy's checker half.
        let kinds: std::collections::HashSet<_> = all.iter().map(|r| r.constraint()).collect();
        assert_eq!(kinds.len(), all.len());
        let checker_kinds = ConstraintKind::ALL.iter().filter(|k| k.is_checker_rule()).count();
        assert_eq!(checker_kinds, all.len(), "taxonomy covers exactly the checker rules");
        for r in all {
            assert!(r.constraint().is_checker_rule());
            assert!(!r.constraint().describe().is_empty());
        }
    }

    #[test]
    fn display_format() {
        let d = Diagnostic::error(
            RuleCode::PlaneContention,
            Subject::Icon(IconId(3)),
            "plane MP2 write port already driven",
        );
        let s = d.to_string();
        assert!(s.contains("error[C007]"));
        assert!(s.contains("icon3"));
        assert!(s.contains("MP2"));
    }

    #[test]
    fn error_detection_helpers() {
        let diags = vec![
            Diagnostic::warning(RuleCode::UnusedIcon, Subject::Icon(IconId(0)), "unused"),
            Diagnostic::error(RuleCode::NoStore, Subject::Pipeline(PipelineId(0)), "no store"),
        ];
        assert!(has_errors(&diags));
        assert_eq!(errors(&diags).count(), 1);
        assert!(!has_errors(&diags[..1]));
    }
}
