//! Semantic attributes captured through pop-up menus and sub-windows.
//!
//! Paper §5: "In the case of a cache or memory connection, additional
//! information is needed to program the DMA units. This is handled by a
//! popup subwindow, in which the cache or memory plane number, variable
//! name or starting address, stride, etc. are specified." ([`DmaAttrs`])
//!
//! "The third and final step is to program the functional units by
//! specifying the arithmetic or logical operations which they are to
//! perform. Once again this is done with a pop-up menu." ([`FuAssign`])

use nsc_arch::FuOp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a write-side stream is captured (mirrors the microcode
/// `WriteMode`, but lives at diagram level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CaptureMode {
    /// Store the whole stream.
    #[default]
    Stream,
    /// Store only the final element (reduction results).
    LastOnly,
}

/// DMA parameters for a memory or cache connection — the contents of the
/// Figure 9 pop-up sub-window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DmaAttrs {
    /// Variable name, resolved against the document's declarations; when
    /// present, `offset` is relative to the variable's base address.
    pub variable: Option<String>,
    /// Starting word address (or offset within `variable`).
    pub offset: u64,
    /// Element stride in words.
    pub stride: i64,
    /// Words to transfer; `None` means "the pipeline's stream length".
    pub count: Option<u64>,
    /// Write-side capture mode.
    pub mode: CaptureMode,
}

impl DmaAttrs {
    /// Unit-stride attributes starting at a raw address.
    pub fn at_address(offset: u64) -> Self {
        DmaAttrs { variable: None, offset, stride: 1, count: None, mode: CaptureMode::Stream }
    }

    /// Unit-stride attributes referring to a declared variable.
    pub fn variable(name: impl Into<String>) -> Self {
        DmaAttrs {
            variable: Some(name.into()),
            offset: 0,
            stride: 1,
            count: None,
            mode: CaptureMode::Stream,
        }
    }

    /// Offset this attribute set by `delta` words (builder style).
    pub fn with_offset(mut self, offset: u64) -> Self {
        self.offset = offset;
        self
    }

    /// Set the stride (builder style).
    pub fn with_stride(mut self, stride: i64) -> Self {
        self.stride = stride;
        self
    }

    /// Set an explicit count (builder style).
    pub fn with_count(mut self, count: u64) -> Self {
        self.count = Some(count);
        self
    }

    /// Capture only the last element (builder style).
    pub fn last_only(mut self) -> Self {
        self.mode = CaptureMode::LastOnly;
        self
    }
}

impl fmt::Display for DmaAttrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.variable {
            Some(v) => write!(f, "{v}+{}", self.offset)?,
            None => write!(f, "@{}", self.offset)?,
        }
        write!(f, " stride={}", self.stride)?;
        if let Some(c) = self.count {
            write!(f, " count={c}")?;
        }
        if self.mode == CaptureMode::LastOnly {
            write!(f, " [last]")?;
        }
        Ok(())
    }
}

/// Where one operand of a functional unit comes from, at diagram level.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum InputSpec {
    /// The wire connected to this pad, if any (external connection).
    #[default]
    Wire,
    /// The wire connected to this pad, passed through a register-file
    /// circular queue introducing `delay` elements of lag — the paper's
    /// vector-stream alignment mechanism.
    DelayedWire {
        /// Delay in elements.
        delay: u8,
    },
    /// A register-file constant (internal connection).
    Constant(f64),
    /// Feedback of the unit's own output, seeded with an initial value
    /// (internal connection; running reductions).
    Feedback {
        /// Value of the accumulator before the first element.
        init: f64,
    },
    /// This operand is not used by the unit's operation.
    Unused,
}

impl InputSpec {
    /// Whether this operand expects a wire landing on its pad.
    pub fn wants_wire(&self) -> bool {
        matches!(self, InputSpec::Wire | InputSpec::DelayedWire { .. })
    }

    /// The register-file value this operand preloads, if any: the constant
    /// of a [`InputSpec::Constant`] operand or the seed of a
    /// [`InputSpec::Feedback`] accumulator.
    pub fn preload_value(&self) -> Option<f64> {
        match self {
            InputSpec::Constant(v) => Some(*v),
            InputSpec::Feedback { init } => Some(*init),
            _ => None,
        }
    }

    /// The same operand with any embedded register-file value replaced by
    /// `0.0` — the canonical form used by
    /// `Document::shape_digest`, under which two documents that differ only
    /// in swept constants hash identically.
    pub fn masked(self) -> InputSpec {
        match self {
            InputSpec::Constant(_) => InputSpec::Constant(0.0),
            InputSpec::Feedback { .. } => InputSpec::Feedback { init: 0.0 },
            other => other,
        }
    }
}

/// The programming of one functional unit within an ALS icon — the result
/// of the Figure 10 pop-up menu plus per-operand input choices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuAssign {
    /// Operation the unit performs.
    pub op: FuOp,
    /// First operand source.
    pub in_a: InputSpec,
    /// Second operand source.
    pub in_b: InputSpec,
}

impl FuAssign {
    /// A binary operation on two wires.
    pub fn binary(op: FuOp) -> Self {
        FuAssign { op, in_a: InputSpec::Wire, in_b: InputSpec::Wire }
    }

    /// A unary operation on one wire.
    pub fn unary(op: FuOp) -> Self {
        FuAssign { op, in_a: InputSpec::Wire, in_b: InputSpec::Unused }
    }

    /// A binary operation with a constant second operand.
    pub fn with_const(op: FuOp, value: f64) -> Self {
        FuAssign { op, in_a: InputSpec::Wire, in_b: InputSpec::Constant(value) }
    }

    /// A running reduction: wire on A, feedback on B.
    pub fn reduction(op: FuOp, init: f64) -> Self {
        FuAssign { op, in_a: InputSpec::Wire, in_b: InputSpec::Feedback { init } }
    }

    /// Number of wires this assignment expects to land on the unit's pads.
    pub fn expected_wires(&self) -> usize {
        [self.in_a, self.in_b].iter().filter(|s| s.wants_wire()).count()
    }

    /// The register-file preload this unit carries, if any — operand A
    /// first, matching the order the microcode generator consults the
    /// operands (it rejects units where both carry values, so at most one
    /// is ever present in a compilable document).
    pub fn preload_value(&self) -> Option<f64> {
        self.in_a.preload_value().or_else(|| self.in_b.preload_value())
    }

    /// The assignment with both operands in their
    /// [masked](InputSpec::masked) canonical form.
    pub fn masked(self) -> FuAssign {
        FuAssign { op: self.op, in_a: self.in_a.masked(), in_b: self.in_b.masked() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_builders() {
        let a = DmaAttrs::variable("u").with_offset(64).with_stride(2).with_count(100);
        assert_eq!(a.variable.as_deref(), Some("u"));
        assert_eq!((a.offset, a.stride, a.count), (64, 2, Some(100)));
        let b = DmaAttrs::at_address(4096).last_only();
        assert_eq!(b.mode, CaptureMode::LastOnly);
        assert_eq!(b.offset, 4096);
        assert_eq!(b.count, None, "defaults to stream length");
    }

    #[test]
    fn dma_display_matches_figure_9_vocabulary() {
        let a = DmaAttrs::variable("u").with_offset(10000).with_stride(1);
        let s = a.to_string();
        assert!(s.contains("u+10000"));
        assert!(s.contains("stride=1"));
        let b = DmaAttrs::at_address(0).last_only();
        assert!(b.to_string().contains("[last]"));
    }

    #[test]
    fn input_specs_wanting_wires() {
        assert!(InputSpec::Wire.wants_wire());
        assert!(InputSpec::DelayedWire { delay: 5 }.wants_wire());
        assert!(!InputSpec::Constant(2.0).wants_wire());
        assert!(!InputSpec::Feedback { init: 0.0 }.wants_wire());
        assert!(!InputSpec::Unused.wants_wire());
    }

    #[test]
    fn assign_constructors_expect_the_right_wire_counts() {
        assert_eq!(FuAssign::binary(FuOp::Add).expected_wires(), 2);
        assert_eq!(FuAssign::unary(FuOp::Abs).expected_wires(), 1);
        assert_eq!(FuAssign::with_const(FuOp::Mul, 1.0 / 6.0).expected_wires(), 1);
        assert_eq!(FuAssign::reduction(FuOp::Max, 0.0).expected_wires(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let a = FuAssign::reduction(FuOp::MaxAbs, 0.0);
        let json = serde_json::to_string(&a).unwrap();
        let back: FuAssign = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
