//! Identifiers and geometry for diagram objects.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of one icon within a pipeline diagram. Stable across edits
/// (never reused after deletion) so undo logs and checker diagnostics can
/// refer to icons safely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IconId(pub u32);

impl fmt::Display for IconId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "icon{}", self.0)
    }
}

/// Identity of one connection (wire) within a pipeline diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ConnId(pub u32);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire{}", self.0)
    }
}

/// Identity of one pipeline diagram within a document. Pipelines also have
/// an *ordinal* (their position in the program), which renumbering changes;
/// the id never changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PipelineId(pub u32);

impl fmt::Display for PipelineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipe{}", self.0)
    }
}

/// A position on the drawing surface, in character cells (the prototype
/// used Sun pixels; the headless renderer uses a character grid).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Point {
    /// Column, increasing rightward.
    pub x: i32,
    /// Row, increasing downward.
    pub y: i32,
}

impl Point {
    /// Construct a point.
    pub fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// Component-wise translation.
    pub fn offset(self, dx: i32, dy: i32) -> Self {
        Point { x: self.x + dx, y: self.y + dy }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(IconId(4).to_string(), "icon4");
        assert_eq!(ConnId(2).to_string(), "wire2");
        assert_eq!(PipelineId(0).to_string(), "pipe0");
    }

    #[test]
    fn point_offset() {
        let p = Point::new(3, 4).offset(-1, 2);
        assert_eq!(p, Point::new(2, 6));
        assert_eq!(p.to_string(), "(2,6)");
    }

    #[test]
    fn ids_serialize_transparently() {
        assert_eq!(serde_json::to_string(&IconId(7)).unwrap(), "7");
        let back: ConnId = serde_json::from_str("9").unwrap();
        assert_eq!(back, ConnId(9));
    }
}
