//! Pipeline diagrams: one diagram = one machine instruction.
//!
//! Paper §5: "To construct a program, a user defines a series of pipeline
//! diagrams. Each pipeline corresponds to a single instruction, or one line
//! of code, in a more conventional language." A diagram owns its icons,
//! the pad-to-pad connections between them, the per-unit operation
//! assignments, and the shift/delay tap programming.
//!
//! This type enforces only *structural* validity (pads exist, sources feed
//! sinks); everything the paper assigns to the checker — machine limits,
//! conflicts, asymmetries — lives in `nsc-checker` so that the division of
//! labour matches Figure 3.

use crate::attrs::{DmaAttrs, FuAssign};
use crate::icon::{Icon, IconKind, PadRef};
use crate::ids::{ConnId, IconId, PipelineId};
use nsc_arch::{AlsKind, DoubletMode};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A pad on a particular icon: where wires attach.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PadLoc {
    /// The icon.
    pub icon: IconId,
    /// The pad on it.
    pub pad: PadRef,
}

impl PadLoc {
    /// Construct a pad location.
    pub fn new(icon: IconId, pad: PadRef) -> Self {
        PadLoc { icon, pad }
    }
}

impl fmt::Display for PadLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.icon, self.pad)
    }
}

/// A wire between two pads, with optional DMA attributes when one end is a
/// memory or cache icon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Connection {
    /// Stable identity.
    pub id: ConnId,
    /// Source end (data flows out of this pad).
    pub from: PadLoc,
    /// Sink end (data flows into this pad).
    pub to: PadLoc,
    /// DMA programming for the memory/cache end (Figure 9 pop-up).
    pub dma: Option<DmaAttrs>,
}

/// Structural cap on shift/delay taps per unit. [`PipelineDiagram`] pads
/// and tap programming never exceed it; the checker narrows further to the
/// machine's actual taps-per-unit.
pub const MAX_SDU_TAPS: usize = 8;

/// Structural errors raised by diagram mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagramError {
    /// Referenced icon does not exist in this diagram.
    NoSuchIcon(IconId),
    /// The pad does not exist on the referenced icon.
    NoSuchPad(PadLoc),
    /// A wire cannot start at this pad (it is sink-only).
    NotASource(PadLoc),
    /// A wire cannot end at this pad (it is source-only).
    NotASink(PadLoc),
    /// Referenced connection does not exist.
    NoSuchConnection(ConnId),
    /// The referenced unit position is not active on this ALS icon.
    NoSuchUnit(IconId, u8),
    /// More shift/delay tap delays than the structural cap of
    /// [`MAX_SDU_TAPS`].
    TooManyTaps {
        /// The SDU icon being programmed.
        icon: IconId,
        /// How many taps the caller asked for.
        requested: usize,
    },
}

impl fmt::Display for DiagramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagramError::NoSuchIcon(i) => write!(f, "no such icon: {i}"),
            DiagramError::NoSuchPad(p) => write!(f, "no such pad: {p}"),
            DiagramError::NotASource(p) => write!(f, "wires cannot start at {p}"),
            DiagramError::NotASink(p) => write!(f, "wires cannot end at {p}"),
            DiagramError::NoSuchConnection(c) => write!(f, "no such connection: {c}"),
            DiagramError::NoSuchUnit(i, pos) => write!(f, "no active unit {pos} on {i}"),
            DiagramError::TooManyTaps { icon, requested } => {
                write!(f, "{icon} asked for {requested} taps; the structural cap is {MAX_SDU_TAPS}")
            }
        }
    }
}

impl std::error::Error for DiagramError {}

/// One pipeline diagram (= one NSC instruction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineDiagram {
    /// Stable identity within the document.
    pub id: PipelineId,
    /// Display name ("point Jacobi update", ...).
    pub name: String,
    /// Vector length of this instruction's streams; scalars are vectors of
    /// length one (paper §2).
    pub stream_len: u64,
    icons: BTreeMap<IconId, Icon>,
    connections: BTreeMap<ConnId, Connection>,
    fu_assigns: BTreeMap<IconId, BTreeMap<u8, FuAssign>>,
    sdu_taps: BTreeMap<IconId, Vec<u16>>,
    next_icon: u32,
    next_conn: u32,
}

impl PipelineDiagram {
    /// An empty diagram.
    pub fn new(id: PipelineId, name: impl Into<String>) -> Self {
        PipelineDiagram {
            id,
            name: name.into(),
            stream_len: 1,
            icons: BTreeMap::new(),
            connections: BTreeMap::new(),
            fu_assigns: BTreeMap::new(),
            sdu_taps: BTreeMap::new(),
            next_icon: 0,
            next_conn: 0,
        }
    }

    // ------------------------------------------------------------------
    // icons
    // ------------------------------------------------------------------

    /// Place a new icon, returning its id.
    pub fn add_icon(&mut self, kind: IconKind) -> IconId {
        let id = IconId(self.next_icon);
        self.next_icon += 1;
        self.icons.insert(id, Icon { id, kind });
        id
    }

    /// Look up an icon.
    pub fn icon(&self, id: IconId) -> Option<&Icon> {
        self.icons.get(&id)
    }

    /// Mutate an icon's kind (e.g. bind it to a physical resource).
    pub fn icon_mut(&mut self, id: IconId) -> Option<&mut Icon> {
        self.icons.get_mut(&id)
    }

    /// Delete an icon, cascading to its wires, assignments and taps.
    /// Returns the removed icon, or an error if it does not exist.
    pub fn remove_icon(&mut self, id: IconId) -> Result<Icon, DiagramError> {
        let icon = self.icons.remove(&id).ok_or(DiagramError::NoSuchIcon(id))?;
        self.connections.retain(|_, c| c.from.icon != id && c.to.icon != id);
        self.fu_assigns.remove(&id);
        self.sdu_taps.remove(&id);
        Ok(icon)
    }

    /// All icons in id order.
    pub fn icons(&self) -> impl Iterator<Item = &Icon> {
        self.icons.values()
    }

    /// Number of icons.
    pub fn icon_count(&self) -> usize {
        self.icons.len()
    }

    /// Whether `pad` exists structurally on icon `id`.
    pub fn has_pad(&self, loc: PadLoc) -> bool {
        let Some(icon) = self.icons.get(&loc.icon) else {
            return false;
        };
        match (&icon.kind, loc.pad) {
            (IconKind::Als { kind, mode, .. }, PadRef::FuIn { pos, .. })
            | (IconKind::Als { kind, mode, .. }, PadRef::FuOut { pos }) => {
                Self::position_active(*kind, *mode, pos)
            }
            (IconKind::Memory { .. }, PadRef::Io) | (IconKind::Cache { .. }, PadRef::Io) => true,
            (IconKind::Sdu { .. }, PadRef::SduIn) => true,
            // Structural cap; the checker narrows to the machine's actual
            // taps-per-unit.
            (IconKind::Sdu { .. }, PadRef::SduTap { tap }) => (tap as usize) < MAX_SDU_TAPS,
            _ => false,
        }
    }

    fn position_active(kind: AlsKind, mode: DoubletMode, pos: u8) -> bool {
        match kind {
            AlsKind::Doublet => mode.active_positions().contains(&(pos as usize)),
            k => (pos as usize) < k.unit_count(),
        }
    }

    // ------------------------------------------------------------------
    // connections
    // ------------------------------------------------------------------

    /// Wire `from` to `to` (paper Figure 8's rubber-band operation).
    ///
    /// Only structural validity is enforced here; machine-level legality is
    /// the checker's job and the editor consults it *before* calling this.
    pub fn connect(
        &mut self,
        from: PadLoc,
        to: PadLoc,
        dma: Option<DmaAttrs>,
    ) -> Result<ConnId, DiagramError> {
        if !self.icons.contains_key(&from.icon) {
            return Err(DiagramError::NoSuchIcon(from.icon));
        }
        if !self.icons.contains_key(&to.icon) {
            return Err(DiagramError::NoSuchIcon(to.icon));
        }
        if !self.has_pad(from) {
            return Err(DiagramError::NoSuchPad(from));
        }
        if !self.has_pad(to) {
            return Err(DiagramError::NoSuchPad(to));
        }
        if !from.pad.can_source() {
            return Err(DiagramError::NotASource(from));
        }
        if !to.pad.can_sink() {
            return Err(DiagramError::NotASink(to));
        }
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        self.connections.insert(id, Connection { id, from, to, dma });
        Ok(id)
    }

    /// Remove a wire.
    pub fn disconnect(&mut self, id: ConnId) -> Result<Connection, DiagramError> {
        self.connections.remove(&id).ok_or(DiagramError::NoSuchConnection(id))
    }

    /// Look up a wire.
    pub fn connection(&self, id: ConnId) -> Option<&Connection> {
        self.connections.get(&id)
    }

    /// Mutate a wire (e.g. attach DMA attributes from the Figure 9 pop-up).
    pub fn connection_mut(&mut self, id: ConnId) -> Option<&mut Connection> {
        self.connections.get_mut(&id)
    }

    /// All wires in id order.
    pub fn connections(&self) -> impl Iterator<Item = &Connection> {
        self.connections.values()
    }

    /// Number of wires.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Wires arriving at a pad.
    pub fn incoming(&self, loc: PadLoc) -> Vec<&Connection> {
        self.connections.values().filter(|c| c.to == loc).collect()
    }

    /// Wires leaving a pad.
    pub fn outgoing(&self, loc: PadLoc) -> Vec<&Connection> {
        self.connections.values().filter(|c| c.from == loc).collect()
    }

    // ------------------------------------------------------------------
    // functional-unit programming
    // ------------------------------------------------------------------

    /// Program the unit at `pos` within ALS icon `icon` (Figure 10 menu).
    pub fn assign_fu(
        &mut self,
        icon: IconId,
        pos: u8,
        assign: FuAssign,
    ) -> Result<(), DiagramError> {
        let ic = self.icons.get(&icon).ok_or(DiagramError::NoSuchIcon(icon))?;
        match ic.kind {
            IconKind::Als { kind, mode, .. } if Self::position_active(kind, mode, pos) => {
                self.fu_assigns.entry(icon).or_default().insert(pos, assign);
                Ok(())
            }
            _ => Err(DiagramError::NoSuchUnit(icon, pos)),
        }
    }

    /// The programming of a unit, if any.
    pub fn fu_assign(&self, icon: IconId, pos: u8) -> Option<&FuAssign> {
        self.fu_assigns.get(&icon)?.get(&pos)
    }

    /// Remove a unit's programming.
    pub fn clear_fu_assign(&mut self, icon: IconId, pos: u8) -> Option<FuAssign> {
        self.fu_assigns.get_mut(&icon)?.remove(&pos)
    }

    /// All (icon, position, assignment) triples.
    pub fn fu_assigns(&self) -> impl Iterator<Item = (IconId, u8, &FuAssign)> {
        self.fu_assigns.iter().flat_map(|(icon, m)| m.iter().map(move |(pos, a)| (*icon, *pos, a)))
    }

    /// Replace every register-file value (constants, feedback seeds) with
    /// the [masked](FuAssign::masked) canonical `0.0` — the normalization
    /// behind `Document::shape_digest`, under which documents differing
    /// only in swept constants compare equal.
    pub fn mask_preload_values(&mut self) {
        for units in self.fu_assigns.values_mut() {
            for assign in units.values_mut() {
                *assign = assign.masked();
            }
        }
    }

    // ------------------------------------------------------------------
    // shift/delay programming
    // ------------------------------------------------------------------

    /// Program the tap delays of an SDU icon. Rejects more than
    /// [`MAX_SDU_TAPS`] delays — the same structural cap [`Self::has_pad`]
    /// enforces on tap pads.
    pub fn set_sdu_taps(&mut self, icon: IconId, delays: Vec<u16>) -> Result<(), DiagramError> {
        if delays.len() > MAX_SDU_TAPS {
            return Err(DiagramError::TooManyTaps { icon, requested: delays.len() });
        }
        match self.icons.get(&icon) {
            Some(ic) if matches!(ic.kind, IconKind::Sdu { .. }) => {
                self.sdu_taps.insert(icon, delays);
                Ok(())
            }
            Some(_) => Err(DiagramError::NoSuchPad(PadLoc::new(icon, PadRef::SduIn))),
            None => Err(DiagramError::NoSuchIcon(icon)),
        }
    }

    /// Tap delays of an SDU icon (empty if unprogrammed).
    pub fn sdu_taps(&self, icon: IconId) -> &[u16] {
        self.sdu_taps.get(&icon).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{FuOp, InPort};

    fn diagram() -> PipelineDiagram {
        PipelineDiagram::new(PipelineId(0), "test")
    }

    #[test]
    fn icons_get_fresh_ids_never_reused() {
        let mut d = diagram();
        let a = d.add_icon(IconKind::memory());
        let b = d.add_icon(IconKind::cache());
        assert_ne!(a, b);
        d.remove_icon(a).unwrap();
        let c = d.add_icon(IconKind::memory());
        assert_ne!(c, a, "ids are never reused");
        assert_eq!(d.icon_count(), 2);
    }

    #[test]
    fn connect_validates_structure() {
        let mut d = diagram();
        let mem = d.add_icon(IconKind::memory());
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        // memory -> FU input is structurally fine
        let ok = d.connect(
            PadLoc::new(mem, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::at_address(0)),
        );
        assert!(ok.is_ok());
        // FU input cannot source a wire
        let err = d.connect(
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::B }),
            PadLoc::new(mem, PadRef::Io),
            None,
        );
        assert_eq!(
            err.unwrap_err(),
            DiagramError::NotASource(PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::B }))
        );
        // FU output cannot sink a wire
        let err = d.connect(
            PadLoc::new(mem, PadRef::Io),
            PadLoc::new(als, PadRef::FuOut { pos: 0 }),
            None,
        );
        assert!(matches!(err.unwrap_err(), DiagramError::NotASink(_)));
        // nonexistent unit position on a singlet
        let err = d.connect(
            PadLoc::new(mem, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 1, port: InPort::A }),
            None,
        );
        assert!(matches!(err.unwrap_err(), DiagramError::NoSuchPad(_)));
    }

    #[test]
    fn bypassed_doublet_hides_its_inactive_unit() {
        let mut d = diagram();
        let mem = d.add_icon(IconKind::memory());
        let doub = d.add_icon(IconKind::Als {
            kind: AlsKind::Doublet,
            mode: DoubletMode::BypassFirst,
            als: None,
        });
        // position 0 is bypassed
        let err = d.connect(
            PadLoc::new(mem, PadRef::Io),
            PadLoc::new(doub, PadRef::FuIn { pos: 0, port: InPort::A }),
            None,
        );
        assert!(err.is_err());
        // position 1 is live
        let ok = d.connect(
            PadLoc::new(mem, PadRef::Io),
            PadLoc::new(doub, PadRef::FuIn { pos: 1, port: InPort::A }),
            None,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn removing_an_icon_cascades() {
        let mut d = diagram();
        let mem = d.add_icon(IconKind::memory());
        let als = d.add_icon(IconKind::als(AlsKind::Triplet));
        d.connect(
            PadLoc::new(mem, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            None,
        )
        .unwrap();
        d.assign_fu(als, 0, FuAssign::binary(FuOp::Add)).unwrap();
        assert_eq!(d.connection_count(), 1);
        d.remove_icon(als).unwrap();
        assert_eq!(d.connection_count(), 0, "wires to the icon are gone");
        assert!(d.fu_assign(als, 0).is_none(), "assignments are gone");
        assert!(d.remove_icon(als).is_err(), "double delete reports");
    }

    #[test]
    fn fu_assignment_requires_active_position() {
        let mut d = diagram();
        let t = d.add_icon(IconKind::als(AlsKind::Triplet));
        assert!(d.assign_fu(t, 2, FuAssign::binary(FuOp::Mul)).is_ok());
        assert_eq!(
            d.assign_fu(t, 3, FuAssign::binary(FuOp::Mul)),
            Err(DiagramError::NoSuchUnit(t, 3))
        );
        let m = d.add_icon(IconKind::memory());
        assert!(matches!(
            d.assign_fu(m, 0, FuAssign::binary(FuOp::Mul)),
            Err(DiagramError::NoSuchUnit(..))
        ));
        // clear works
        assert!(d.clear_fu_assign(t, 2).is_some());
        assert!(d.fu_assign(t, 2).is_none());
    }

    #[test]
    fn incoming_outgoing_queries() {
        let mut d = diagram();
        let mem = d.add_icon(IconKind::memory());
        let sdu = d.add_icon(IconKind::sdu());
        let als = d.add_icon(IconKind::als(AlsKind::Singlet));
        d.connect(PadLoc::new(mem, PadRef::Io), PadLoc::new(sdu, PadRef::SduIn), None).unwrap();
        d.connect(
            PadLoc::new(sdu, PadRef::SduTap { tap: 0 }),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            None,
        )
        .unwrap();
        d.connect(
            PadLoc::new(sdu, PadRef::SduTap { tap: 1 }),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::B }),
            None,
        )
        .unwrap();
        assert_eq!(d.incoming(PadLoc::new(sdu, PadRef::SduIn)).len(), 1);
        assert_eq!(d.outgoing(PadLoc::new(sdu, PadRef::SduTap { tap: 0 })).len(), 1);
        assert_eq!(d.incoming(PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::B })).len(), 1);
    }

    #[test]
    fn sdu_taps_only_on_sdu_icons() {
        let mut d = diagram();
        let sdu = d.add_icon(IconKind::sdu());
        let mem = d.add_icon(IconKind::memory());
        assert!(d.set_sdu_taps(sdu, vec![0, 63, 4095]).is_ok());
        assert_eq!(d.sdu_taps(sdu), &[0, 63, 4095]);
        assert!(d.set_sdu_taps(mem, vec![1]).is_err());
        assert_eq!(d.sdu_taps(mem), &[] as &[u16]);
    }

    #[test]
    fn tap_count_respects_the_structural_cap() {
        let mut d = diagram();
        let sdu = d.add_icon(IconKind::sdu());
        // Exactly at the cap is fine; one over is rejected, consistent
        // with has_pad's `tap < MAX_SDU_TAPS` rule.
        assert!(d.set_sdu_taps(sdu, (0..MAX_SDU_TAPS as u16).collect()).is_ok());
        let err = d.set_sdu_taps(sdu, (0..=MAX_SDU_TAPS as u16).collect()).unwrap_err();
        assert_eq!(err, DiagramError::TooManyTaps { icon: sdu, requested: MAX_SDU_TAPS + 1 });
        assert_eq!(d.sdu_taps(sdu).len(), MAX_SDU_TAPS, "prior programming survives");
        assert!(!d.has_pad(PadLoc::new(sdu, PadRef::SduTap { tap: MAX_SDU_TAPS as u8 })));
    }

    #[test]
    fn scalars_are_vectors_of_length_one() {
        let d = diagram();
        assert_eq!(d.stream_len, 1);
    }

    #[test]
    fn serde_round_trip_preserves_everything() {
        let mut d = diagram();
        let mem = d.add_icon(IconKind::memory());
        let als = d.add_icon(IconKind::als(AlsKind::Doublet));
        d.connect(
            PadLoc::new(mem, PadRef::Io),
            PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }),
            Some(DmaAttrs::variable("u").with_stride(2)),
        )
        .unwrap();
        d.assign_fu(als, 0, FuAssign::with_const(FuOp::Mul, 0.25)).unwrap();
        d.stream_len = 4096;
        let json = serde_json::to_string(&d).unwrap();
        let back: PipelineDiagram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
