//! Icons: the visual objects representing architectural components.
//!
//! Paper §5: "The central concept is that visual objects, or icons, are
//! used to represent architectural components of the NSC at a suitable
//! level of abstraction ... icons consist principally of the three
//! different ALS types (Figure 4). Two representations of the doublet are
//! provided, since doublets may be configured to operate as singlets by
//! bypassing one of the functional units ... Other icons which would be
//! useful, but are not currently implemented, include memory planes and
//! shift/delay units." This reproduction implements those too (plus the
//! cache icon the Figure 9 pop-up needs).
//!
//! Every icon exposes **I/O pads** ("short wires terminated by small black
//! circles", §5) enumerated by [`PadRef`]; connections land on pads.

use crate::ids::IconId;
use nsc_arch::{AlsKind, CacheId, DoubletMode, InPort, PlaneId, SduId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What an icon stands for.
///
/// Physical bindings (`als`, `plane`, `cache`, `sdu`) start unresolved;
/// the pop-up sub-windows (Figure 9) or the automatic binder fill them in.
/// The checker refuses to generate code for unbound icons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IconKind {
    /// An arithmetic-logic structure of the given shape.
    Als {
        /// Singlet, doublet or triplet.
        kind: AlsKind,
        /// Bypass configuration (meaningful for doublets only).
        mode: DoubletMode,
        /// Physical ALS this icon is bound to, once allocated.
        als: Option<nsc_arch::AlsId>,
    },
    /// A memory plane.
    Memory {
        /// Physical plane number (the Figure 9 "plane" field).
        plane: Option<PlaneId>,
    },
    /// A double-buffered data cache.
    Cache {
        /// Physical cache number.
        cache: Option<CacheId>,
    },
    /// A shift/delay unit.
    Sdu {
        /// Physical unit number.
        sdu: Option<SduId>,
    },
}

impl IconKind {
    /// An unbound ALS icon.
    pub fn als(kind: AlsKind) -> Self {
        IconKind::Als { kind, mode: DoubletMode::Full, als: None }
    }

    /// An unbound memory-plane icon.
    pub fn memory() -> Self {
        IconKind::Memory { plane: None }
    }

    /// An unbound cache icon.
    pub fn cache() -> Self {
        IconKind::Cache { cache: None }
    }

    /// An unbound shift/delay icon.
    pub fn sdu() -> Self {
        IconKind::Sdu { sdu: None }
    }

    /// Palette label (paper Figure 5 control panel).
    pub fn palette_label(&self) -> &'static str {
        match self {
            IconKind::Als { kind: AlsKind::Singlet, .. } => "SINGLET",
            IconKind::Als { kind: AlsKind::Doublet, mode: DoubletMode::Full, .. } => "DOUBLET",
            IconKind::Als { kind: AlsKind::Doublet, .. } => "DOUBLET/1",
            IconKind::Als { kind: AlsKind::Triplet, .. } => "TRIPLET",
            IconKind::Memory { .. } => "MEMORY",
            IconKind::Cache { .. } => "CACHE",
            IconKind::Sdu { .. } => "SHIFT/DLY",
        }
    }

    /// Whether the icon has been bound to a physical resource.
    pub fn is_bound(&self) -> bool {
        match self {
            IconKind::Als { als, .. } => als.is_some(),
            IconKind::Memory { plane } => plane.is_some(),
            IconKind::Cache { cache } => cache.is_some(),
            IconKind::Sdu { sdu } => sdu.is_some(),
        }
    }

    /// The pads this icon exposes, in drawing order.
    pub fn pads(&self, taps_per_sdu: usize) -> Vec<PadRef> {
        match self {
            IconKind::Als { kind, mode, .. } => {
                let active: Vec<usize> = match (kind, mode) {
                    (AlsKind::Doublet, m) => m.active_positions().to_vec(),
                    (k, _) => (0..k.unit_count()).collect(),
                };
                let mut pads = Vec::with_capacity(active.len() * 3);
                for &pos in &active {
                    pads.push(PadRef::FuIn { pos: pos as u8, port: InPort::A });
                    pads.push(PadRef::FuIn { pos: pos as u8, port: InPort::B });
                    pads.push(PadRef::FuOut { pos: pos as u8 });
                }
                pads
            }
            IconKind::Memory { .. } | IconKind::Cache { .. } => vec![PadRef::Io],
            IconKind::Sdu { .. } => {
                let mut pads = vec![PadRef::SduIn];
                pads.extend((0..taps_per_sdu).map(|t| PadRef::SduTap { tap: t as u8 }));
                pads
            }
        }
    }
}

/// One pad (connection point) on an icon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PadRef {
    /// Operand input of the functional unit at chain position `pos`.
    FuIn {
        /// Chain position within the ALS icon (0-based).
        pos: u8,
        /// Which operand.
        port: InPort,
    },
    /// Result output of the functional unit at chain position `pos`.
    FuOut {
        /// Chain position within the ALS icon.
        pos: u8,
    },
    /// The single I/O pad of a memory or cache icon; acts as a source when
    /// a wire leaves it and a sink when a wire enters it.
    Io,
    /// The input pad of a shift/delay icon.
    SduIn,
    /// One delayed output tap of a shift/delay icon.
    SduTap {
        /// Tap index.
        tap: u8,
    },
}

impl PadRef {
    /// Which directions this pad supports.
    pub fn dir(&self) -> PadDir {
        match self {
            PadRef::FuIn { .. } | PadRef::SduIn => PadDir::SinkOnly,
            PadRef::FuOut { .. } | PadRef::SduTap { .. } => PadDir::SourceOnly,
            PadRef::Io => PadDir::Bidirectional,
        }
    }

    /// Whether a connection may *start* here.
    pub fn can_source(&self) -> bool {
        self.dir() != PadDir::SinkOnly
    }

    /// Whether a connection may *end* here.
    pub fn can_sink(&self) -> bool {
        self.dir() != PadDir::SourceOnly
    }
}

impl fmt::Display for PadRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PadRef::FuIn { pos, port } => write!(f, "u{pos}.in{port}"),
            PadRef::FuOut { pos } => write!(f, "u{pos}.out"),
            PadRef::Io => write!(f, "io"),
            PadRef::SduIn => write!(f, "in"),
            PadRef::SduTap { tap } => write!(f, "tap{tap}"),
        }
    }
}

/// Direction capability of a pad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PadDir {
    /// Data only flows out of this pad.
    SourceOnly,
    /// Data only flows into this pad.
    SinkOnly,
    /// Memory/cache pads carry reads out and writes in.
    Bidirectional,
}

/// An icon instance in a diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Icon {
    /// Stable identity.
    pub id: IconId,
    /// What it represents and how it is bound.
    pub kind: IconKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplet_exposes_nine_pads() {
        let pads = IconKind::als(AlsKind::Triplet).pads(4);
        assert_eq!(pads.len(), 9, "3 units x (inA, inB, out)");
        assert!(pads.contains(&PadRef::FuIn { pos: 2, port: InPort::B }));
        assert!(pads.contains(&PadRef::FuOut { pos: 0 }));
    }

    #[test]
    fn bypassed_doublet_exposes_one_units_pads() {
        let kind =
            IconKind::Als { kind: AlsKind::Doublet, mode: DoubletMode::BypassSecond, als: None };
        let pads = kind.pads(4);
        assert_eq!(pads.len(), 3);
        assert!(pads.iter().all(|p| match p {
            PadRef::FuIn { pos, .. } | PadRef::FuOut { pos } => *pos == 0,
            _ => false,
        }));
    }

    #[test]
    fn memory_and_cache_expose_a_single_io_pad() {
        assert_eq!(IconKind::memory().pads(4), vec![PadRef::Io]);
        assert_eq!(IconKind::cache().pads(4), vec![PadRef::Io]);
    }

    #[test]
    fn sdu_exposes_input_plus_taps() {
        let pads = IconKind::sdu().pads(4);
        assert_eq!(pads.len(), 5);
        assert_eq!(pads[0], PadRef::SduIn);
        assert_eq!(pads[4], PadRef::SduTap { tap: 3 });
    }

    #[test]
    fn pad_directions() {
        assert!(!PadRef::FuIn { pos: 0, port: InPort::A }.can_source());
        assert!(PadRef::FuIn { pos: 0, port: InPort::A }.can_sink());
        assert!(PadRef::FuOut { pos: 0 }.can_source());
        assert!(!PadRef::FuOut { pos: 0 }.can_sink());
        assert!(PadRef::Io.can_source() && PadRef::Io.can_sink());
        assert!(PadRef::SduTap { tap: 0 }.can_source());
        assert!(!PadRef::SduIn.can_source());
    }

    #[test]
    fn palette_labels_match_figure_4_and_5() {
        assert_eq!(IconKind::als(AlsKind::Singlet).palette_label(), "SINGLET");
        assert_eq!(IconKind::als(AlsKind::Doublet).palette_label(), "DOUBLET");
        let bypass =
            IconKind::Als { kind: AlsKind::Doublet, mode: DoubletMode::BypassFirst, als: None };
        assert_eq!(bypass.palette_label(), "DOUBLET/1");
        assert_eq!(IconKind::als(AlsKind::Triplet).palette_label(), "TRIPLET");
        assert_eq!(IconKind::memory().palette_label(), "MEMORY");
        assert_eq!(IconKind::cache().palette_label(), "CACHE");
        assert_eq!(IconKind::sdu().palette_label(), "SHIFT/DLY");
    }

    #[test]
    fn binding_state() {
        assert!(!IconKind::memory().is_bound());
        let bound = IconKind::Memory { plane: Some(PlaneId(3)) };
        assert!(bound.is_bound());
        let als = IconKind::Als {
            kind: AlsKind::Triplet,
            mode: DoubletMode::Full,
            als: Some(nsc_arch::AlsId(1)),
        };
        assert!(als.is_bound());
    }

    #[test]
    fn pad_display() {
        assert_eq!(PadRef::FuIn { pos: 1, port: InPort::A }.to_string(), "u1.ina");
        assert_eq!(PadRef::FuOut { pos: 2 }.to_string(), "u2.out");
        assert_eq!(PadRef::SduTap { tap: 3 }.to_string(), "tap3");
    }
}
