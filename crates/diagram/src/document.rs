//! The saved document: pipelines, layouts, declarations, control flow.
//!
//! A document is the unit the editor's SAVE button writes ("the usual
//! operations found in an editor, such as the ability to enter new input,
//! modify or delete existing data, and save the results", §4) and the unit
//! the microcode generator consumes. Pipeline-list operations mirror §5:
//! "Control panel operations provide the usual editor operations to insert,
//! delete, copy, and renumber pipelines, as well as to scroll forward or
//! backward or jump to a specific pipeline."
//!
//! The left-hand region of the Figure 5 window was "reserved for control
//! flow specifications and variable declarations, which are not implemented
//! in the prototype" — [`Declarations`] and [`ControlNode`] implement them.

use crate::ids::{IconId, PipelineId, Point};
use crate::pipeline::PipelineDiagram;
use nsc_arch::{CacheId, PlaneId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Display-only data for one pipeline: icon positions on the drawing
/// surface. Kept apart from semantics exactly as §4 prescribes.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DiagramLayout {
    /// Top-left position of each icon, in character cells.
    pub positions: BTreeMap<IconId, Point>,
}

impl DiagramLayout {
    /// Position of an icon, if placed.
    pub fn position(&self, icon: IconId) -> Option<Point> {
        self.positions.get(&icon).copied()
    }

    /// Place or move an icon.
    pub fn place(&mut self, icon: IconId, at: Point) {
        self.positions.insert(icon, at);
    }
}

/// A declared variable: a named array bound to a memory plane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Source-level name ("u", "f", "mask", ...).
    pub name: String,
    /// The plane holding it (§3: allocation to planes is the hard part).
    pub plane: PlaneId,
    /// Base word address within the plane.
    pub base: u64,
    /// Extent in words.
    pub len: u64,
}

/// The document's variable declarations.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Declarations {
    /// All declared variables, in declaration order.
    pub vars: Vec<VarDecl>,
}

impl Declarations {
    /// Declare a variable; replaces any previous declaration of the name.
    pub fn declare(&mut self, decl: VarDecl) {
        self.vars.retain(|v| v.name != decl.name);
        self.vars.push(decl);
    }

    /// Resolve a name.
    pub fn lookup(&self, name: &str) -> Option<&VarDecl> {
        self.vars.iter().find(|v| v.name == name)
    }
}

/// A convergence condition on a cache scalar (the residual check).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceCond {
    /// Cache holding the scalar.
    pub cache: CacheId,
    /// Word offset within the cache.
    pub offset: u16,
    /// Converged when `scalar < threshold`.
    pub threshold: f64,
    /// Iteration safety cap: stop (unconverged) after this many passes.
    pub max_iters: u32,
}

/// High-level control flow over pipeline instructions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlNode {
    /// Execute one pipeline diagram (one instruction).
    Pipeline(PipelineId),
    /// Execute children in order.
    Seq(Vec<ControlNode>),
    /// Execute the body a fixed number of times.
    Repeat {
        /// Trip count.
        times: u32,
        /// Loop body.
        body: Box<ControlNode>,
    },
    /// Execute the body until the condition's scalar drops below its
    /// threshold (the Jacobi residual convergence check).
    RepeatUntil {
        /// Convergence condition, tested after each pass.
        cond: ConvergenceCond,
        /// Loop body.
        body: Box<ControlNode>,
    },
}

impl ControlNode {
    /// Every pipeline referenced, in first-appearance order.
    pub fn referenced_pipelines(&self) -> Vec<PipelineId> {
        let mut out = Vec::new();
        self.visit(&mut |id| {
            if !out.contains(&id) {
                out.push(id);
            }
        });
        out
    }

    fn visit(&self, f: &mut impl FnMut(PipelineId)) {
        match self {
            ControlNode::Pipeline(id) => f(*id),
            ControlNode::Seq(children) => children.iter().for_each(|c| c.visit(f)),
            ControlNode::Repeat { body, .. } | ControlNode::RepeatUntil { body, .. } => {
                body.visit(f)
            }
        }
    }
}

/// The complete saved document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Document {
    /// Document title (program name).
    pub name: String,
    /// Pipelines in program order (the ordinal the RENUM operation edits).
    pipelines: Vec<PipelineDiagram>,
    /// Display layouts, one per pipeline.
    layouts: BTreeMap<PipelineId, DiagramLayout>,
    /// Variable declarations (left window region).
    pub decls: Declarations,
    /// Control-flow specification; `None` means "run pipelines in order,
    /// once".
    pub control: Option<ControlNode>,
    next_pipeline: u32,
}

impl Document {
    /// An empty document.
    pub fn new(name: impl Into<String>) -> Self {
        Document {
            name: name.into(),
            pipelines: Vec::new(),
            layouts: BTreeMap::new(),
            decls: Declarations::default(),
            control: None,
            next_pipeline: 0,
        }
    }

    fn fresh_id(&mut self) -> PipelineId {
        let id = PipelineId(self.next_pipeline);
        self.next_pipeline += 1;
        id
    }

    /// Append a new empty pipeline, returning its id.
    pub fn add_pipeline(&mut self, name: impl Into<String>) -> PipelineId {
        let id = self.fresh_id();
        self.pipelines.push(PipelineDiagram::new(id, name));
        self.layouts.insert(id, DiagramLayout::default());
        id
    }

    /// Insert a new empty pipeline at ordinal `at` (clamped to the end).
    pub fn insert_pipeline(&mut self, at: usize, name: impl Into<String>) -> PipelineId {
        let id = self.fresh_id();
        let at = at.min(self.pipelines.len());
        self.pipelines.insert(at, PipelineDiagram::new(id, name));
        self.layouts.insert(id, DiagramLayout::default());
        id
    }

    /// Deep-copy a pipeline (the COPY control-panel operation); the copy is
    /// appended and gets a fresh id.
    pub fn copy_pipeline(&mut self, src: PipelineId) -> Option<PipelineId> {
        let idx = self.ordinal_of(src)?;
        let mut copy = self.pipelines[idx].clone();
        let id = self.fresh_id();
        copy.id = id;
        copy.name = format!("{} (copy)", copy.name);
        let layout = self.layouts.get(&src).cloned().unwrap_or_default();
        self.pipelines.push(copy);
        self.layouts.insert(id, layout);
        Some(id)
    }

    /// Delete a pipeline.
    pub fn delete_pipeline(&mut self, id: PipelineId) -> Option<PipelineDiagram> {
        let idx = self.ordinal_of(id)?;
        self.layouts.remove(&id);
        Some(self.pipelines.remove(idx))
    }

    /// Move the pipeline at ordinal `from` to ordinal `to` (RENUM).
    pub fn renumber(&mut self, from: usize, to: usize) -> bool {
        if from >= self.pipelines.len() || to >= self.pipelines.len() {
            return false;
        }
        let p = self.pipelines.remove(from);
        self.pipelines.insert(to, p);
        true
    }

    /// Pipelines in program order.
    pub fn pipelines(&self) -> &[PipelineDiagram] {
        &self.pipelines
    }

    /// Number of pipelines.
    pub fn pipeline_count(&self) -> usize {
        self.pipelines.len()
    }

    /// A pipeline by id.
    pub fn pipeline(&self, id: PipelineId) -> Option<&PipelineDiagram> {
        self.pipelines.iter().find(|p| p.id == id)
    }

    /// Mutable pipeline by id.
    pub fn pipeline_mut(&mut self, id: PipelineId) -> Option<&mut PipelineDiagram> {
        self.pipelines.iter_mut().find(|p| p.id == id)
    }

    /// Program-order position of a pipeline.
    pub fn ordinal_of(&self, id: PipelineId) -> Option<usize> {
        self.pipelines.iter().position(|p| p.id == id)
    }

    /// Pipeline at a program-order position.
    pub fn by_ordinal(&self, ordinal: usize) -> Option<&PipelineDiagram> {
        self.pipelines.get(ordinal)
    }

    /// Display layout of a pipeline.
    pub fn layout(&self, id: PipelineId) -> Option<&DiagramLayout> {
        self.layouts.get(&id)
    }

    /// Mutable display layout of a pipeline.
    pub fn layout_mut(&mut self, id: PipelineId) -> Option<&mut DiagramLayout> {
        self.layouts.get_mut(&id)
    }

    /// Serialize the whole document (display data included) to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("document serializes")
    }

    /// Load a document from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Serialize *only the semantic information* — what the microcode
    /// generator needs (§4's distinction). Display layouts are stripped.
    pub fn semantic_json(&self) -> String {
        let mut stripped = self.clone();
        stripped.layouts.clear();
        serde_json::to_string_pretty(&stripped).expect("document serializes")
    }

    /// A 128-bit content digest of the document's *semantic* information —
    /// the same data [`Document::semantic_json`] keeps, so display-only
    /// edits (moving icons around) do not change the digest. Used as the
    /// kernel-cache key: equal digests mean the documents compile to the
    /// same program.
    ///
    /// FNV-1a (128-bit) over the serialized value tree, with every node
    /// shape tagged so differently-shaped trees cannot collide by byte
    /// coincidence.
    pub fn digest(&self) -> u128 {
        let mut stripped = self.clone();
        stripped.layouts.clear();
        semantic_digest(&stripped)
    }

    /// A 128-bit digest of the document's *shape*: everything
    /// [`Document::digest`] covers except the register-file values
    /// (functional-unit constants and feedback seeds), which are replaced
    /// by a canonical `0.0` before hashing.
    ///
    /// Two documents with equal shape digests compile to microcode that
    /// differs only in functional-unit preload values, so a compiled
    /// program for one can be *rebound* to the other's constants without
    /// recompiling — the fast path a parameter sweep lives on. Control
    /// structure is deliberately part of the shape: trip counts and
    /// convergence thresholds lower into loop sequencing, so changing them
    /// changes the shape, not just the constants.
    pub fn shape_digest(&self) -> u128 {
        let mut stripped = self.clone();
        stripped.layouts.clear();
        for p in &mut stripped.pipelines {
            p.mask_preload_values();
        }
        semantic_digest(&stripped)
    }
}

/// FNV-1a over an already-stripped document's value tree.
fn semantic_digest(stripped: &Document) -> u128 {
    let mut h: u128 = 0x6c62272e07bb014262b821756295c58d;
    digest_value(&stripped.to_value(), &mut h);
    h
}

fn digest_bytes(h: &mut u128, bytes: &[u8]) {
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    for &b in bytes {
        *h ^= b as u128;
        *h = h.wrapping_mul(PRIME);
    }
}

fn digest_value(v: &serde::Value, h: &mut u128) {
    use serde::Value;
    match v {
        Value::Null => digest_bytes(h, &[0]),
        Value::Bool(b) => digest_bytes(h, &[1, *b as u8]),
        Value::Int(i) => {
            digest_bytes(h, &[2]);
            digest_bytes(h, &i.to_le_bytes());
        }
        Value::UInt(u) => {
            digest_bytes(h, &[3]);
            digest_bytes(h, &u.to_le_bytes());
        }
        Value::Float(f) => {
            digest_bytes(h, &[4]);
            digest_bytes(h, &f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            digest_bytes(h, &[5]);
            digest_bytes(h, &(s.len() as u64).to_le_bytes());
            digest_bytes(h, s.as_bytes());
        }
        Value::Array(items) => {
            digest_bytes(h, &[6]);
            digest_bytes(h, &(items.len() as u64).to_le_bytes());
            for item in items {
                digest_value(item, h);
            }
        }
        Value::Object(entries) => {
            digest_bytes(h, &[7]);
            digest_bytes(h, &(entries.len() as u64).to_le_bytes());
            for (k, val) in entries {
                digest_bytes(h, &(k.len() as u64).to_le_bytes());
                digest_bytes(h, k.as_bytes());
                digest_value(val, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icon::IconKind;

    #[test]
    fn pipeline_list_operations() {
        let mut doc = Document::new("prog");
        let a = doc.add_pipeline("first");
        let b = doc.add_pipeline("second");
        let c = doc.insert_pipeline(1, "between");
        assert_eq!(doc.pipeline_count(), 3);
        assert_eq!(doc.ordinal_of(a), Some(0));
        assert_eq!(doc.ordinal_of(c), Some(1));
        assert_eq!(doc.ordinal_of(b), Some(2));
        assert!(doc.renumber(2, 0));
        assert_eq!(doc.ordinal_of(b), Some(0));
        let removed = doc.delete_pipeline(c).unwrap();
        assert_eq!(removed.name, "between");
        assert_eq!(doc.pipeline_count(), 2);
        assert!(!doc.renumber(5, 0), "out-of-range renumber refused");
    }

    #[test]
    fn digest_ignores_layout_but_tracks_semantics() {
        let mut doc = Document::new("prog");
        let p = doc.add_pipeline("sweep");
        let icon = doc.pipeline_mut(p).unwrap().add_icon(IconKind::memory());
        let d0 = doc.digest();
        assert_eq!(doc.digest(), d0, "digest is deterministic");

        doc.layout_mut(p).unwrap().place(icon, Point::new(40, 12));
        assert_eq!(doc.digest(), d0, "display-only edits keep the digest");

        doc.pipeline_mut(p).unwrap().add_icon(IconKind::memory());
        assert_ne!(doc.digest(), d0, "semantic edits change the digest");
    }

    #[test]
    fn shape_digest_masks_swept_values_but_tracks_structure() {
        use crate::attrs::FuAssign;
        use nsc_arch::{AlsKind, FuOp};
        let build = |omega: f64, seed: f64| {
            let mut doc = Document::new("sweep");
            let p = doc.add_pipeline("sor");
            let pd = doc.pipeline_mut(p).unwrap();
            let scale = pd.add_icon(IconKind::als(AlsKind::Singlet));
            pd.assign_fu(scale, 0, FuAssign::with_const(FuOp::Mul, omega)).unwrap();
            let reduce = pd.add_icon(IconKind::als(AlsKind::Singlet));
            pd.assign_fu(reduce, 0, FuAssign::reduction(FuOp::MaxAbs, seed)).unwrap();
            doc
        };
        let a = build(0.8, 0.0);
        let b = build(1.6, 3.5);
        assert_ne!(a.digest(), b.digest(), "constants and seeds are semantic");
        assert_eq!(a.shape_digest(), b.shape_digest(), "...but not shape");
        assert_eq!(a.shape_digest(), a.shape_digest(), "shape digest is deterministic");

        // Structural edits (and names, thresholds, stream lengths — anything
        // beyond register-file values) still change the shape.
        let mut c = build(0.8, 0.0);
        let p = c.pipelines()[0].id;
        c.pipeline_mut(p).unwrap().add_icon(IconKind::memory());
        assert_ne!(a.shape_digest(), c.shape_digest(), "structure is shape");
        let mut d = build(0.8, 0.0);
        d.name = "other".into();
        assert_ne!(a.shape_digest(), d.shape_digest(), "the name is shape");
    }

    #[test]
    fn digests_of_distinct_documents_differ() {
        let mut a = Document::new("a");
        a.add_pipeline("one");
        let mut b = a.clone();
        b.name = "b".into();
        assert_ne!(a.digest(), b.digest());
        let mut c = a.clone();
        c.add_pipeline("two");
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn copy_pipeline_is_a_deep_copy_with_fresh_id() {
        let mut doc = Document::new("prog");
        let a = doc.add_pipeline("jacobi");
        let icon = doc.pipeline_mut(a).unwrap().add_icon(IconKind::memory());
        doc.layout_mut(a).unwrap().place(icon, Point::new(5, 5));
        let b = doc.copy_pipeline(a).unwrap();
        assert_ne!(a, b);
        assert_eq!(doc.pipeline(b).unwrap().icon_count(), 1);
        assert!(doc.pipeline(b).unwrap().name.contains("copy"));
        assert_eq!(doc.layout(b).unwrap().position(icon), Some(Point::new(5, 5)));
        // Mutating the copy leaves the original alone.
        doc.pipeline_mut(b).unwrap().add_icon(IconKind::cache());
        assert_eq!(doc.pipeline(a).unwrap().icon_count(), 1);
        assert_eq!(doc.pipeline(b).unwrap().icon_count(), 2);
    }

    #[test]
    fn declarations_replace_by_name() {
        let mut decls = Declarations::default();
        decls.declare(VarDecl { name: "u".into(), plane: PlaneId(0), base: 0, len: 4096 });
        decls.declare(VarDecl { name: "u".into(), plane: PlaneId(3), base: 128, len: 4096 });
        assert_eq!(decls.vars.len(), 1);
        assert_eq!(decls.lookup("u").unwrap().plane, PlaneId(3));
        assert!(decls.lookup("v").is_none());
    }

    #[test]
    fn control_flow_collects_referenced_pipelines() {
        let body = ControlNode::Seq(vec![
            ControlNode::Pipeline(PipelineId(0)),
            ControlNode::Pipeline(PipelineId(1)),
            ControlNode::Pipeline(PipelineId(0)),
        ]);
        let tree = ControlNode::RepeatUntil {
            cond: ConvergenceCond {
                cache: CacheId(0),
                offset: 0,
                threshold: 1e-6,
                max_iters: 10_000,
            },
            body: Box::new(body),
        };
        assert_eq!(tree.referenced_pipelines(), vec![PipelineId(0), PipelineId(1)]);
    }

    #[test]
    fn json_round_trip() {
        let mut doc = Document::new("jacobi3d");
        let p = doc.add_pipeline("sweep");
        let icon = doc.pipeline_mut(p).unwrap().add_icon(IconKind::memory());
        doc.layout_mut(p).unwrap().place(icon, Point::new(10, 3));
        doc.decls.declare(VarDecl { name: "u".into(), plane: PlaneId(0), base: 0, len: 512 });
        doc.control = Some(ControlNode::Pipeline(p));
        let back = Document::from_json(&doc.to_json()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn semantic_json_strips_display_data() {
        let mut doc = Document::new("prog");
        let p = doc.add_pipeline("sweep");
        let icon = doc.pipeline_mut(p).unwrap().add_icon(IconKind::memory());
        doc.layout_mut(p).unwrap().place(icon, Point::new(42, 17));
        let full = doc.to_json();
        let semantic = doc.semantic_json();
        assert!(full.contains("42"), "layout present in full save");
        assert!(!semantic.contains("\"x\": 42"), "layout stripped from semantic output");
        // Semantic output still loads (layouts default empty).
        let back = Document::from_json(&semantic).unwrap();
        assert_eq!(back.pipeline(p).unwrap().icon_count(), 1);
        assert!(back.layout(p).is_none());
    }
}
