//! # nsc-diagram — the semantic data structures of the visual environment
//!
//! Paper §4: "Two types of internal data are distinguished. One type
//! consists of information which is needed solely to manage the graphical
//! display, such as the position of images on the screen. The other type
//! consists of semantic information which is needed in order to generate
//! microcode. Since the semantics are represented graphically, both types
//! of information are needed in order to reconstruct the display. But in
//! order to generate code, only the semantic information is needed."
//!
//! This crate holds both, kept strictly apart:
//!
//! * the **semantic side** — [`PipelineDiagram`]s (one per machine
//!   instruction: "Each pipeline corresponds to a single instruction, or
//!   one line of code, in a more conventional language", §5), their
//!   [`Icon`]s, pad-to-pad [`Connection`]s, [`DmaAttrs`] captured by the
//!   Figure 9 pop-up, and [`FuAssign`] operation assignments from the
//!   Figure 10 menu;
//! * the **display side** — [`DiagramLayout`] icon positions, consulted
//!   only by the renderer and hit-testing, never by the code generator;
//! * the **document** — the saved unit: all pipelines, variable
//!   declarations and the control-flow specification (the region "reserved
//!   for control flow specifications and variable declarations" on the left
//!   of the Figure 5 window, which the 1988 prototype did not implement and
//!   this reproduction does).
//!
//! The prototype's output was "only the semantic data structures ... a
//! pseudo-code representation of the instructions" — these are exactly the
//! types serialized by [`Document::to_json`].

pub mod attrs;
pub mod document;
pub mod icon;
pub mod ids;
pub mod pipeline;

pub use self::attrs::{CaptureMode, DmaAttrs, FuAssign, InputSpec};
pub use self::document::{
    ControlNode, ConvergenceCond, Declarations, DiagramLayout, Document, VarDecl,
};
pub use self::icon::{Icon, IconKind, PadDir, PadRef};
pub use self::ids::{ConnId, IconId, PipelineId, Point};
pub use self::pipeline::{Connection, DiagramError, PadLoc, PipelineDiagram, MAX_SDU_TAPS};
