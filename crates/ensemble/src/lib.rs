//! Ensemble engine: compile-once parameter sweeps over the machine park.
//!
//! CFD studies rarely run one solve. They run *families* of solves — the
//! same scenario across a grid of Reynolds numbers, relaxation factors,
//! grid sizes or node counts — to map where a scheme converges, where it
//! stalls, and where it diverges. On the simulated Navier-Stokes
//! Computer every member of such a family shares its document *shape*:
//! only constant icons (ω, Re-dependent coefficients, time steps)
//! differ. The [`nsc_core::Session`] compile cache exploits exactly
//! that — the first member pays for check + codegen, later members
//! rebind preloads on the cached program — so an ensemble is the
//! workload where compile-once pays off hardest.
//!
//! The flow:
//!
//! * **axes** ([`Axis`], [`Sweep`]) — name the swept parameters and
//!   their values; [`Sweep::points`] is the deterministic cartesian
//!   product, first axis outermost.
//! * **members** ([`ParamPoint`]) — each point is handed to a caller
//!   closure that builds one [`nsc_park::Job`]; the sweep batches them
//!   onto a [`nsc_park::MachinePark`] under a chosen
//!   [`nsc_park::SchedPolicy`].
//! * **report** ([`EnsembleReport`], [`MemberReport`]) — per-member
//!   residual histories, counters and convergence verdicts, the park's
//!   schedule figures, and the compile-cache delta for the whole run;
//!   serializable, with markdown renderers for the stability map and
//!   the cache-hit table.
//!
//! Members are allowed to fail: a diverging time step or an
//! out-of-range relaxation factor surfaces as that member's error, not
//! the sweep's. The stability map is where those verdicts become
//! legible — the whole point of sweeping past the stability limit is to
//! see where the boundary sits.

#![warn(missing_docs)]

mod report;
mod sweep;

pub use self::report::{EnsembleReport, MemberReport};
pub use self::sweep::{Axis, AxisValue, ParamPoint, Sweep};
