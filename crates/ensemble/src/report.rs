//! What an ensemble run hands back: per-member records, the park's
//! schedule figures, the compile-cache delta, and markdown renderers
//! for the stability map and the cache-hit table.

use nsc_cert::CompileCertificate;
use nsc_core::CacheStats;
use nsc_park::{JobId, ParkReport};
use nsc_sim::PerfCounters;
use serde::Serialize;
use std::sync::Arc;

use crate::sweep::{Axis, AxisValue};

/// The full record of one sweep member.
#[derive(Debug, Clone, Serialize)]
pub struct MemberReport {
    /// Member index in cartesian-product order.
    pub index: usize,
    /// The member's coordinates, one per axis, in axis order.
    pub point: Vec<AxisValue>,
    /// The park job id the member ran as.
    pub job: JobId,
    /// The tenant the member was submitted under.
    pub tenant: String,
    /// Workload name.
    pub name: String,
    /// Nodes the member ran on.
    pub nodes: usize,
    /// Final residual (NaN when the member failed).
    pub residual: f64,
    /// Whether the member's own convergence criterion ended the run.
    /// `false` both for members that hit an iteration cap and for
    /// members that failed outright (see `error`).
    pub converged: bool,
    /// The member's error, when it failed to run (diverged, rejected
    /// parameters). Failed members still held nodes and appear in the
    /// schedule figures.
    pub error: Option<String>,
    /// Per-iteration residual trace, in order; empty when the payload
    /// keeps no trace or the member failed.
    pub residual_history: Vec<f64>,
    /// System-level counter deltas over the member's lease, measured by
    /// the park.
    pub counters: PerfCounters,
    /// Simulated machine time the member ran for, seconds.
    pub simulated_seconds: f64,
    /// Achieved MFLOPS over the lease.
    pub mflops: f64,
    /// Seconds the member waited in the park queue.
    pub queue_wait: f64,
    /// The sealed compile certificates the member's compiles emitted,
    /// stamped with its sub-cube lease by the park. Audit them offline
    /// with [`fn@nsc_cert::verify`]; empty when the member failed before
    /// compiling anything.
    pub certificates: Vec<Arc<CompileCertificate>>,
}

impl MemberReport {
    /// Whether this member diverged: it either failed to run or stopped
    /// on an iteration cap instead of its convergence criterion.
    pub fn diverged(&self) -> bool {
        self.error.is_some() || !self.converged
    }
}

/// Aggregate record of one ensemble run, serializable via
/// [`EnsembleReport::to_json`].
#[derive(Debug, Clone, Serialize)]
pub struct EnsembleReport {
    /// Sweep name.
    pub name: String,
    /// Scheduling policy label the park ran under.
    pub policy: String,
    /// Nodes in the park machine.
    pub capacity_nodes: usize,
    /// The swept axes, outermost first.
    pub axes: Vec<Axis>,
    /// Per-member records, in cartesian-product order.
    pub members: Vec<MemberReport>,
    /// Park-clock time from zero to the last completion, seconds.
    pub makespan: f64,
    /// Fraction of the machine's node-seconds spent running members.
    pub utilization: f64,
    /// Members completed per park-clock second.
    pub members_per_second: f64,
    /// Members that diverged ([`MemberReport::diverged`]).
    pub diverged: usize,
    /// Compile-cache activity attributable to this run: hit/rebind/miss
    /// deltas across the sweep, entry/shape totals after it.
    pub cache: CacheStats,
    /// Members whose certificates the park's spot-audit policy
    /// re-verified. Every audited member passed — a rejected
    /// certificate fails the whole run instead of appearing here.
    pub audited_jobs: usize,
    /// Total certificates verified across the audited members.
    pub audited_certs: usize,
}

impl EnsembleReport {
    /// Assemble the aggregate from the member records, the park's
    /// schedule report, and the cache snapshots taken around the run.
    pub(crate) fn assemble(
        name: &str,
        axes: &[Axis],
        members: Vec<MemberReport>,
        schedule: &ParkReport,
        cache_before: CacheStats,
        cache_after: CacheStats,
    ) -> EnsembleReport {
        let diverged = members.iter().filter(|m| m.diverged()).count();
        let members_per_second =
            if schedule.makespan > 0.0 { members.len() as f64 / schedule.makespan } else { 0.0 };
        EnsembleReport {
            name: name.to_string(),
            policy: schedule.policy.clone(),
            capacity_nodes: schedule.capacity_nodes,
            axes: axes.to_vec(),
            members,
            makespan: schedule.makespan,
            utilization: schedule.utilization,
            members_per_second,
            diverged,
            // Counters delta by subtraction; entries/shapes are running
            // totals, so the post-run values stand.
            cache: CacheStats {
                hits: cache_after.hits - cache_before.hits,
                rebinds: cache_after.rebinds - cache_before.rebinds,
                misses: cache_after.misses - cache_before.misses,
                entries: cache_after.entries,
                shapes: cache_after.shapes,
            },
            audited_jobs: schedule.audited_jobs,
            audited_certs: schedule.audited_certs,
        }
    }

    /// The report serialized as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ensemble report serializes")
    }

    /// Members that diverged, in cartesian-product order.
    pub fn diverged_members(&self) -> Vec<&MemberReport> {
        self.members.iter().filter(|m| m.diverged()).collect()
    }

    /// The member at a cartesian-product index.
    pub fn member(&self, index: usize) -> Option<&MemberReport> {
        self.members.iter().find(|m| m.index == index)
    }

    /// The stability map as a markdown table over the first two axes:
    /// first axis across the columns, second axis down the rows (a 1-D
    /// sweep renders as a single row). Each cell shows the *worst*
    /// verdict over any remaining axes: `✗` a member failed, `~` a
    /// member stopped on an iteration cap, `✓` all members converged.
    pub fn stability_map_markdown(&self) -> String {
        let mut out = String::new();
        if self.axes.is_empty() {
            let verdict = self.members.first().map(cell_verdict_symbol).unwrap_or("✗");
            out.push_str(&format!("single member: {verdict}\n"));
            return out;
        }
        let cols = &self.axes[0];
        let rows: Option<&Axis> = self.axes.get(1);
        let corner = match rows {
            Some(r) => format!("{} \\ {}", r.name, cols.name),
            None => cols.name.clone(),
        };
        out.push_str(&format!("| {corner} |"));
        for v in &cols.values {
            out.push_str(&format!(" {v} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &cols.values {
            out.push_str("---|");
        }
        out.push('\n');
        let row_values: Vec<Option<f64>> = match rows {
            Some(r) => r.values.iter().copied().map(Some).collect(),
            None => vec![None],
        };
        for row in &row_values {
            match row {
                Some(v) => out.push_str(&format!("| {v} |")),
                None => out.push_str("| verdict |"),
            }
            for col in &cols.values {
                let verdict = self
                    .members
                    .iter()
                    .filter(|m| {
                        coord_is(&m.point, &cols.name, *col)
                            && row.is_none_or(|rv| {
                                coord_is(&m.point, &rows.expect("row axis exists").name, rv)
                            })
                    })
                    .map(verdict_rank)
                    .max();
                out.push_str(&format!(" {} |", rank_symbol(verdict)));
            }
            out.push('\n');
        }
        out.push_str("\n`✓` converged `~` hit iteration cap `✗` failed\n");
        out
    }

    /// The compile-cache delta as a markdown table: hits, rebinds,
    /// misses, distinct programs/shapes, and the hit rate (hits plus
    /// rebinds over all compiles — both paths skip check + codegen).
    pub fn cache_markdown(&self) -> String {
        format!(
            "| compiles | full hits | rebinds | misses | programs | shapes | hit rate |\n\
             |---|---|---|---|---|---|---|\n\
             | {} | {} | {} | {} | {} | {} | {:.3} |\n",
            self.cache.hits + self.cache.rebinds + self.cache.misses,
            self.cache.hits,
            self.cache.rebinds,
            self.cache.misses,
            self.cache.entries,
            self.cache.shapes,
            self.cache.hit_rate(),
        )
    }

    /// The spot-audit outcome as a markdown table: how many members the
    /// park's audit policy re-verified, how many sealed certificates
    /// that covered, and how many the sweep emitted in total. The
    /// verdict column is always `all passed` in a report you can read —
    /// a rejected certificate fails the whole run instead of rendering.
    pub fn audit_markdown(&self) -> String {
        let emitted: usize = self.members.iter().map(|m| m.certificates.len()).sum();
        format!(
            "| members | jobs audited | certs verified | certs emitted | verdict |\n\
             |---|---|---|---|---|\n\
             | {} | {} | {} | {} | {} |\n",
            self.members.len(),
            self.audited_jobs,
            self.audited_certs,
            emitted,
            if self.audited_jobs > 0 { "all passed" } else { "not audited" },
        )
    }

    /// Stability map, cache table, audit table, and the headline
    /// schedule figures as one markdown fragment — what the CI smoke job
    /// appends to its step summary.
    pub fn summary_markdown(&self) -> String {
        format!(
            "### Ensemble `{}` — {} members, `{}` policy\n\n\
             {}\n{}\n{}\n\
             makespan {:.3} s · utilization {:.2} · {:.2} members/s · {} diverged\n",
            self.name,
            self.members.len(),
            self.policy,
            self.stability_map_markdown(),
            self.cache_markdown(),
            self.audit_markdown(),
            self.makespan,
            self.utilization,
            self.members_per_second,
            self.diverged,
        )
    }
}

fn coord_is(point: &[AxisValue], axis: &str, value: f64) -> bool {
    point.iter().any(|c| c.axis == axis && c.value == value)
}

/// Verdict severity for worst-case cell aggregation: converged < cap <
/// failed.
fn verdict_rank(m: &MemberReport) -> u8 {
    if m.error.is_some() {
        2
    } else if !m.converged {
        1
    } else {
        0
    }
}

fn rank_symbol(rank: Option<u8>) -> &'static str {
    match rank {
        None => "·",
        Some(0) => "✓",
        Some(1) => "~",
        Some(_) => "✗",
    }
}

fn cell_verdict_symbol(m: &MemberReport) -> &'static str {
    rank_symbol(Some(verdict_rank(m)))
}
