//! Sweep definition and execution: axes, their cartesian product, and
//! the batched run over a machine park.

use nsc_core::NscError;
use nsc_park::{Job, MachinePark, SchedPolicy};
use serde::Serialize;

use crate::report::{EnsembleReport, MemberReport};

/// One swept parameter: a name and the values it takes.
#[derive(Debug, Clone, Serialize)]
pub struct Axis {
    /// Parameter name, e.g. `"re"` or `"omega"`.
    pub name: String,
    /// The values this axis sweeps over, in order.
    pub values: Vec<f64>,
}

/// One coordinate of a [`ParamPoint`]: an axis name with the value the
/// member takes on that axis.
#[derive(Debug, Clone, Serialize)]
pub struct AxisValue {
    /// The axis this coordinate belongs to.
    pub axis: String,
    /// The member's value on that axis.
    pub value: f64,
}

/// One member of the sweep: its index in submission order and its
/// coordinates, one per axis, in axis order.
#[derive(Debug, Clone, Serialize)]
pub struct ParamPoint {
    /// Member index in cartesian-product (= submission) order.
    pub index: usize,
    /// The member's coordinates, one per axis, in axis order.
    pub coords: Vec<AxisValue>,
}

impl ParamPoint {
    /// The member's value on the named axis, if that axis exists.
    pub fn get(&self, axis: &str) -> Option<f64> {
        self.coords.iter().find(|c| c.axis == axis).map(|c| c.value)
    }

    /// The member's value on the named axis.
    ///
    /// # Panics
    ///
    /// Panics if the sweep has no axis of that name — a typo in a
    /// member-builder closure should fail loudly, not default silently.
    pub fn value(&self, axis: &str) -> f64 {
        self.get(axis).unwrap_or_else(|| panic!("sweep has no axis named '{axis}'"))
    }
}

/// A named parameter sweep: a scenario fanned across one or more axes.
///
/// Build with [`Sweep::new`] + [`Sweep::axis`], then either enumerate
/// the members with [`Sweep::points`] or run the whole ensemble with
/// [`Sweep::run`].
///
/// ```
/// use nsc_ensemble::Sweep;
///
/// let sweep = Sweep::new("cavity study")
///     .axis("re", [100.0, 400.0])
///     .axis("omega", [1.0, 1.5, 1.9]);
/// let points = sweep.points();
/// assert_eq!(points.len(), 6);
/// // First axis is outermost: re=100 members come first.
/// assert_eq!(points[0].value("re"), 100.0);
/// assert_eq!(points[0].value("omega"), 1.0);
/// assert_eq!(points[1].value("omega"), 1.5);
/// assert_eq!(points[5].value("re"), 400.0);
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct Sweep {
    /// Sweep name, used in reports.
    pub name: String,
    /// The swept axes, outermost first.
    pub axes: Vec<Axis>,
}

impl Sweep {
    /// An empty sweep with the given name; add axes with [`Sweep::axis`].
    pub fn new(name: impl Into<String>) -> Self {
        Sweep { name: name.into(), axes: Vec::new() }
    }

    /// Append an axis (builder style). Axes are swept in the order they
    /// are added; the first axis varies slowest.
    pub fn axis(mut self, name: impl Into<String>, values: impl Into<Vec<f64>>) -> Self {
        self.axes.push(Axis { name: name.into(), values: values.into() });
        self
    }

    /// Number of members: the product of the axis lengths (1 for a
    /// sweep with no axes — the degenerate single-member ensemble).
    pub fn member_count(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// The cartesian product of the axes, in deterministic submission
    /// order: the first axis is outermost (varies slowest), the last
    /// axis innermost.
    pub fn points(&self) -> Vec<ParamPoint> {
        let count = self.member_count();
        let mut points = Vec::with_capacity(count);
        for index in 0..count {
            // Decompose the flat index in mixed radix, innermost axis
            // being the least-significant digit.
            let mut rem = index;
            let mut coords = vec![None; self.axes.len()];
            for (k, axis) in self.axes.iter().enumerate().rev() {
                let len = axis.values.len();
                coords[k] =
                    Some(AxisValue { axis: axis.name.clone(), value: axis.values[rem % len] });
                rem /= len;
            }
            points.push(ParamPoint {
                index,
                coords: coords.into_iter().map(|c| c.expect("every axis visited")).collect(),
            });
        }
        points
    }

    /// Run the ensemble: build one job per member, batch them onto the
    /// park, run the schedule, and aggregate the report.
    ///
    /// `make` receives each [`ParamPoint`] and returns the full
    /// [`Job`] — tenant and sub-cube dimension included, so a node-count
    /// axis is just `Job::new(tenant, point.value("dim") as u32, ...)`.
    /// If any member fails to *build*, nothing is submitted and the
    /// error is returned; members that fail to *run* (divergence,
    /// rejected parameters) stay in the report as diverged entries.
    ///
    /// The compile-cache delta in the report is measured around this
    /// call via [`nsc_core::Session::cache_stats`], so it reflects the
    /// sweep alone as long as nothing else uses the park's session
    /// concurrently. Likewise the schedule figures (makespan,
    /// utilization, members/second) assume the park's queue holds only
    /// this sweep's jobs; per-member figures are keyed by job id and
    /// stay correct either way.
    pub fn run<F>(
        &self,
        park: &mut MachinePark,
        policy: SchedPolicy,
        mut make: F,
    ) -> Result<EnsembleReport, NscError>
    where
        F: FnMut(&ParamPoint) -> Result<Job, NscError>,
    {
        let points = self.points();
        if points.is_empty() {
            return Err(NscError::Workload(format!(
                "sweep '{}' has an empty axis: no members to run",
                self.name
            )));
        }
        let jobs = points.iter().map(&mut make).collect::<Result<Vec<_>, _>>()?;
        let cache_before = park.session().cache_stats();
        let ids = park.submit_batch(jobs)?;
        let schedule = park.run(policy)?;
        let cache_after = park.session().cache_stats();

        let members = points
            .iter()
            .zip(&ids)
            .map(|(point, &id)| {
                let job = schedule.job(id).expect("every submitted job appears in the park report");
                let outcome = park.outcome(id);
                MemberReport {
                    index: point.index,
                    point: point.coords.clone(),
                    job: id,
                    tenant: job.tenant.clone(),
                    name: job.name.clone(),
                    nodes: job.nodes,
                    residual: job.residual,
                    converged: outcome.map(|o| o.converged).unwrap_or(false),
                    error: job.error.clone(),
                    residual_history: outcome.map(|o| o.history.clone()).unwrap_or_default(),
                    counters: job.counters,
                    simulated_seconds: job.simulated_seconds,
                    mflops: job.mflops,
                    queue_wait: job.queue_wait,
                    certificates: outcome.map(|o| o.certificates.clone()).unwrap_or_default(),
                }
            })
            .collect();

        Ok(EnsembleReport::assemble(
            &self.name,
            &self.axes,
            members,
            &schedule,
            cache_before,
            cache_after,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_points_are_deterministic_and_ordered() {
        let sweep = Sweep::new("t").axis("a", [1.0, 2.0, 3.0]).axis("b", [10.0, 20.0]);
        let points = sweep.points();
        assert_eq!(points.len(), 6);
        assert_eq!(sweep.member_count(), 6);
        let pairs: Vec<(f64, f64)> = points.iter().map(|p| (p.value("a"), p.value("b"))).collect();
        assert_eq!(
            pairs,
            vec![(1.0, 10.0), (1.0, 20.0), (2.0, 10.0), (2.0, 20.0), (3.0, 10.0), (3.0, 20.0)],
            "first axis outermost, last axis innermost"
        );
        assert!(points.iter().enumerate().all(|(i, p)| p.index == i));
        // A second enumeration is bit-identical.
        let again: Vec<(f64, f64)> =
            sweep.points().iter().map(|p| (p.value("a"), p.value("b"))).collect();
        assert_eq!(pairs, again);
    }

    #[test]
    fn point_lookup() {
        let sweep = Sweep::new("t").axis("omega", [1.5]);
        let p = &sweep.points()[0];
        assert_eq!(p.get("omega"), Some(1.5));
        assert_eq!(p.get("re"), None);
        assert_eq!(p.value("omega"), 1.5);
    }

    #[test]
    #[should_panic(expected = "no axis named 'missing'")]
    fn value_panics_on_unknown_axis() {
        let sweep = Sweep::new("t").axis("omega", [1.5]);
        sweep.points()[0].value("missing");
    }

    #[test]
    fn axis_less_sweep_has_one_member() {
        let sweep = Sweep::new("single");
        let points = sweep.points();
        assert_eq!(points.len(), 1);
        assert!(points[0].coords.is_empty());
    }

    #[test]
    fn empty_axis_yields_no_members() {
        let sweep = Sweep::new("t").axis("a", []).axis("b", [1.0]);
        assert_eq!(sweep.member_count(), 0);
        assert!(sweep.points().is_empty());
    }
}
