//! End-to-end sweeps over a real machine park: stability verdicts,
//! compile-cache behaviour, and cross-policy bit-identity.

use nsc_cfd::{DistributedMultigridWorkload, DistributedSorWorkload};
use nsc_core::Session;
use nsc_ensemble::{EnsembleReport, Sweep};
use nsc_park::{Job, MachinePark, SchedPolicy};

/// ω sweep of the same SOR problem: over-relaxation past 2 is rejected
/// by the workload, near-2 stalls on the sweep cap, the rest converge.
/// The stability map must tell the three verdicts apart.
#[test]
fn sor_omega_sweep_maps_stability() {
    let sweep = Sweep::new("sor omega stability").axis("omega", [1.0, 1.5, 1.99, 2.05]);
    let mut park = MachinePark::new(Session::nsc_1988(), 1);
    let report = sweep
        .run(&mut park, SchedPolicy::Fifo, |p| {
            Ok(Job::new(
                "study",
                0,
                DistributedSorWorkload::manufactured(6, p.value("omega"), 1e-3, 60),
            ))
        })
        .expect("sweep runs");

    assert_eq!(report.members.len(), 4);
    assert_eq!(report.policy, "fifo");

    let at = |omega: f64| {
        report.members.iter().find(|m| m.point[0].value == omega).expect("member exists")
    };
    for omega in [1.0, 1.5] {
        let m = at(omega);
        assert!(m.error.is_none() && m.converged, "omega={omega} converges");
        assert!(!m.residual_history.is_empty(), "converged member keeps its trace");
        assert!(m.residual_history.last().unwrap() <= &1e-3);
    }
    let stalled = at(1.99);
    assert!(stalled.error.is_none(), "omega=1.99 runs but stalls");
    assert!(!stalled.converged, "omega=1.99 hits the sweep cap");
    assert_eq!(stalled.residual_history.len(), 60, "one residual per sweep up to the cap");
    let rejected = at(2.05);
    assert!(rejected.error.is_some(), "omega=2.05 is a rejected parameter");
    assert!(rejected.residual.is_nan(), "failed member has no residual");

    assert_eq!(report.diverged, 2);
    assert_eq!(report.diverged_members().len(), 2);
    let map = report.stability_map_markdown();
    assert!(map.contains('✓') && map.contains('~') && map.contains('✗'), "map: {map}");

    // The report round-trips through JSON.
    let json = report.to_json();
    assert!(json.contains("\"omega\"") && json.contains("2.05"), "json: {json}");
}

/// ω is a document constant of the multigrid smoothing pipelines, so an
/// ω sweep on one grid size must compile shapes once and rebind the
/// rest — the compile-once story the ensemble layer exists for.
#[test]
fn multigrid_omega_sweep_rebinds_instead_of_recompiling() {
    let sweep = Sweep::new("mg omega").axis("omega", [0.6, 0.8, 1.0]);
    // A dimension-0 park runs members serially, so the cache counters
    // are deterministic here.
    let mut park = MachinePark::new(Session::nsc_1988(), 0);
    let run = |park: &mut MachinePark| {
        sweep
            .run(park, SchedPolicy::Fifo, |p| {
                Ok(Job::new(
                    "study",
                    0,
                    DistributedMultigridWorkload::manufactured(9, p.value("omega"), 1e-4, 25),
                ))
            })
            .expect("sweep runs")
    };

    let report = run(&mut park);
    assert_eq!(report.diverged, 0, "all damped-Jacobi members converge");
    let cache = &report.cache;
    assert!(cache.misses > 0, "the first member pays for codegen: {cache:?}");
    assert!(cache.rebinds > 0, "later members rebind the cached shapes: {cache:?}");
    assert!(cache.hit_rate() > 0.5, "most compiles avoid the full pipeline: {cache:?}");
    // Shapes are omega-independent, so distinct programs outnumber
    // distinct shapes by exactly the swept smoothing constants.
    assert!(cache.entries > cache.shapes, "{cache:?}");
    assert!(report.cache_markdown().contains("hit rate"));
    assert!(report.summary_markdown().contains("members/s"));

    // The same sweep again on the same park: every program is already
    // cached under its full digest, so the delta is pure hits.
    let again = run(&mut park);
    let cache = &again.cache;
    assert_eq!(cache.misses, 0, "second pass recompiles nothing: {cache:?}");
    assert_eq!(cache.rebinds, 0, "second pass repatches nothing: {cache:?}");
    assert!(cache.hits > 0 && cache.hit_rate() == 1.0, "{cache:?}");
    for (a, b) in report.members.iter().zip(&again.members) {
        assert_eq!(a.residual.to_bits(), b.residual.to_bits(), "cached reruns are bit-identical");
    }
}

/// The same sweep under all three policies: schedules differ, member
/// results must not. (The rebind fast path feeds every policy from the
/// same cached programs, so a mismatch here would implicate it.)
#[test]
fn member_results_bit_identical_across_policies() {
    let run = |policy: SchedPolicy| -> EnsembleReport {
        let sweep = Sweep::new("xpolicy").axis("omega", [1.0, 1.3, 1.6, 1.9]);
        let mut park = MachinePark::new(Session::nsc_1988(), 2);
        sweep
            .run(&mut park, policy, |p| {
                Ok(Job::new(
                    if p.index % 2 == 0 { "ada" } else { "grace" },
                    (p.index % 2) as u32,
                    DistributedSorWorkload::manufactured(6, p.value("omega"), 1e-4, 80),
                ))
            })
            .expect("sweep runs")
    };
    let fifo = run(SchedPolicy::Fifo);
    for other in [run(SchedPolicy::Backfill), run(SchedPolicy::FairShare)] {
        assert_ne!(fifo.policy, other.policy);
        for (a, b) in fifo.members.iter().zip(&other.members) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.residual.to_bits(), b.residual.to_bits(), "member {}", a.index);
            assert_eq!(a.converged, b.converged);
            let bits = |h: &[f64]| h.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&a.residual_history),
                bits(&b.residual_history),
                "member {} trace differs across policies",
                a.index
            );
        }
    }
}
