//! The lid-driven cavity — the first scenario to exercise the distributed
//! path end-to-end.
//!
//! Vorticity–stream-function formulation after Matyka (physics/0407002):
//! on the unit square with the top lid sliding at speed `lid`,
//!
//! 1. solve the stream-function Poisson equation `∇²ψ = -ω`;
//! 2. rebuild the wall vorticity from the fresh ψ (Thom's formula,
//!    `ω_w = 2(ψ_w - ψ_in)/h²`, minus `2·lid/h` on the moving lid);
//! 3. advance the interior vorticity one FTCS step of the transport
//!    equation `ω_t + u ω_x + v ω_y = (1/Re) ∇²ω`, with `u = ψ_y`,
//!    `v = -ψ_x` by central differences.
//!
//! The whole time step is machine-resident. [`Poisson2dSolver`] cuts the
//! plane across the hypercube through the [`Partition`] trait (2-D blocks
//! on the Gray torus by default, strips on request), compiles the
//! five-point Jacobi sweep pipeline per block once, and every step runs
//! the compiled sweeps concurrently on real node threads with halo faces
//! moving through the hyperspace router — identical machinery to the 3-D
//! [`crate::DistributedJacobiWorkload`], on 2-D documents. The explicit ω
//! transport (step 3) runs on the nodes too: [`VorticityTransport`]
//! compiles the FTCS step as its own 21-unit pipeline
//! ([`build_ftcs_transport_document`]); only Thom's boundary formula
//! (step 2, `O(n)` wall work) stays on the host.

use crate::diagrams::{
    build_ftcs_transport_document, build_jacobi2d_sweep_document_windows, Jacobi2dGeometry,
    PLANE_G, PLANE_MASK, PLANE_U0, PLANE_U1, PLANE_W0, PLANE_W1, PLANE_WC, RESIDUAL_CACHE,
};
use crate::distributed::{
    attribute_part, check_same_machine, compile_per_part, measure_system_run,
};
use crate::grid::{Grid2, PaddedField};
use crate::host::{ftcs_update_tree, FtcsCoeffs};
use crate::overlap::{CompiledSweep, SweepEngine, SweepIo};
use crate::partition::{read_slabs, GridShape, HaloSpec, Partition, PartitionSpec};
use nsc_arch::NodeId;
use nsc_core::{run_compiled_on_pool, CompiledProgram, NscError, Session, Workload};
use nsc_sim::{NscSystem, PerfCounters, RunOptions};

/// Outcome of one distributed Poisson solve.
#[derive(Debug, Clone, Copy)]
pub struct PoissonSolveStats {
    /// Ping-pong pairs executed.
    pub pairs: u64,
    /// Final global residual (`max |masked update|` of the last sweep).
    pub residual: f64,
    /// Whether the tolerance (not the pair cap) ended it.
    pub converged: bool,
}

/// A compiled, domain-decomposed 2-D Poisson solver bound to one system:
/// compile once, solve every time step.
#[derive(Debug)]
pub struct Poisson2dSolver {
    partition: Box<dyn Partition>,
    nx: usize,
    ny: usize,
    even: CompiledSweep,
    odd: CompiledSweep,
    members: Vec<NodeId>,
    overlap: bool,
}

impl Poisson2dSolver {
    /// Partition an `nx * ny` plane across `system`'s cube with the
    /// default decomposition (blocks when the cube offers both torus
    /// axes), compile each part's (even, odd) sweep pair on its local
    /// geometry, and load the static interior masks.
    pub fn new(
        session: &Session,
        system: &mut NscSystem,
        nx: usize,
        ny: usize,
    ) -> Result<Self, NscError> {
        Self::with_partition(session, system, nx, ny, PartitionSpec::Auto, false)
    }

    /// [`Poisson2dSolver::new`] with an explicit decomposition choice and
    /// overlap mode (`overlap` hides each sweep's halo exchange under its
    /// interior pipelines — see [`SweepEngine`]).
    pub fn with_partition(
        session: &Session,
        system: &mut NscSystem,
        nx: usize,
        ny: usize,
        spec: PartitionSpec,
        overlap: bool,
    ) -> Result<Self, NscError> {
        check_same_machine(session, system)?;
        let partition = spec.build(GridShape::plane2d(nx, ny), system.cube, true)?;
        let (even, odd) = {
            let engine = SweepEngine::new(partition.as_ref(), HaloSpec::stencil(), overlap);
            let build = |parity: bool| {
                move |p: &crate::partition::Part, windows: &[crate::partition::SweepWindow]| {
                    let (lnx, lny, _) = p.local_shape();
                    build_jacobi2d_sweep_document_windows(
                        Jacobi2dGeometry::new(lnx, lny),
                        parity,
                        windows,
                    )
                }
            };
            (engine.compile(session, build(true))?, engine.compile(session, build(false))?)
        };
        for p in partition.parts() {
            // The mask is static: ghost layers and global walls hold.
            let (lnx, lny, _) = p.local_shape();
            let local = Grid2 { nx: lnx, ny: lny, h: 1.0, data: vec![0.0; lnx * lny] };
            let mask = PaddedField::aligned2d(&local.interior_mask());
            system.node_mut(p.node).mem.plane_mut(PLANE_MASK).write_slice(0, &mask.words);
        }
        let members = partition.member_nodes();
        Ok(Poisson2dSolver { partition, nx, ny, even, odd, members, overlap })
    }

    /// The decomposition (for reporting and tests).
    pub fn partition(&self) -> &dyn Partition {
        self.partition.as_ref()
    }

    /// Solve `∇²u = -f` in place: scatter `u` and the scaled right-hand
    /// side into the node planes, sweep in ping-pong pairs with halo
    /// exchanges until `max |update| < tol` (checked once per pair, like
    /// the serial document) or `max_pairs` is exhausted, then gather the
    /// iterate back into `u`.
    pub fn solve(
        &self,
        system: &mut NscSystem,
        u: &mut Grid2,
        f: &Grid2,
        tol: f64,
        max_pairs: u32,
    ) -> Result<PoissonSolveStats, NscError> {
        assert_eq!((u.nx, u.ny), (self.nx, self.ny), "solver compiled for another grid");
        assert_eq!((f.nx, f.ny), (self.nx, self.ny), "right-hand side grid differs");
        // g = -h²f, as the pipeline computes (sum - g)/4.
        let h2 = u.h * u.h;
        let g_global: Vec<f64> = f.data.iter().map(|&v| -h2 * v).collect();
        let parts = self.partition.parts();
        let u_slabs = self.partition.scatter(&u.data);
        let g_slabs = self.partition.scatter(&g_global);
        for (p, (us, gs)) in parts.iter().zip(u_slabs.iter().zip(&g_slabs)) {
            let (lnx, lny, _) = p.local_shape();
            let wrap = |data: &[f64]| Grid2 { nx: lnx, ny: lny, h: u.h, data: data.to_vec() };
            let mem = &mut system.node_mut(p.node).mem;
            let padded_u = PaddedField::stencil2d(&wrap(us));
            mem.plane_mut(PLANE_U0).write_slice(0, &padded_u.words);
            mem.plane_mut(PLANE_G).write_slice(0, &PaddedField::aligned2d(&wrap(gs)).words);
            // Stale pong data from the previous solve must not leak into
            // this one's pad rows (the data rows are fully rewritten).
            mem.plane_mut(PLANE_U1).write_slice(0, &padded_u.words);
        }

        let engine = SweepEngine::new(self.partition.as_ref(), HaloSpec::stencil(), self.overlap);
        let opts = RunOptions::default();
        let mut pairs = 0u64;
        let mut residual = f64::INFINITY;
        let mut converged = false;
        while pairs < u64::from(max_pairs) && !converged {
            let even_io = if pairs == 0 {
                SweepIo::first(PLANE_U0, PLANE_U1)
            } else {
                SweepIo::steady(PLANE_U0, PLANE_U1)
            };
            engine.sweep(system, &self.even, even_io, &opts)?;
            engine.sweep(system, &self.odd, SweepIo::steady(PLANE_U1, PLANE_U0), &opts)?;
            let (r, _) = system.pool_max_cache_scalar(&self.members, RESIDUAL_CACHE, 0);
            residual = r;
            pairs += 1;
            converged = residual < tol;
        }

        let locals = read_slabs(self.partition.as_ref(), system, PLANE_U0);
        u.data = self.partition.gather(&locals);
        Ok(PoissonSolveStats { pairs, residual, converged })
    }
}

/// The machine-resident vorticity transport: one compiled FTCS pipeline
/// per part of the ψ-solver's partition, so the whole cavity time step —
/// Poisson solve *and* explicit transport — runs on the nodes.
#[derive(Debug)]
pub struct VorticityTransport {
    programs: Vec<CompiledProgram>,
}

impl VorticityTransport {
    /// Compile the FTCS step for every part of `partition`, deduplicating
    /// identical local shapes.
    pub fn new(
        session: &Session,
        partition: &dyn Partition,
        coeffs: FtcsCoeffs,
    ) -> Result<Self, NscError> {
        let programs = compile_per_part(session, partition, |p| {
            let (lnx, lny, _) = p.local_shape();
            build_ftcs_transport_document(Jacobi2dGeometry::new(lnx, lny), coeffs)
        })?;
        Ok(VorticityTransport { programs })
    }

    /// Advance `omega` one FTCS step on the nodes: scatter ψ and ω into
    /// the node planes (ω twice — the SDU stream and the direct centre
    /// stream read from separate planes), run the compiled step on every
    /// part concurrently, and gather the advanced vorticity back.
    pub fn step(
        &self,
        system: &mut NscSystem,
        partition: &dyn Partition,
        psi: &Grid2,
        omega: &mut Grid2,
    ) -> Result<(), NscError> {
        let parts = partition.parts();
        let psi_slabs = partition.scatter(&psi.data);
        let w_slabs = partition.scatter(&omega.data);
        for (p, (ps, ws)) in parts.iter().zip(psi_slabs.iter().zip(&w_slabs)) {
            let (lnx, lny, _) = p.local_shape();
            let wrap = |data: &[f64]| Grid2 { nx: lnx, ny: lny, h: psi.h, data: data.to_vec() };
            let mem = &mut system.node_mut(p.node).mem;
            mem.plane_mut(PLANE_U0).write_slice(0, &PaddedField::stencil2d(&wrap(ps)).words);
            mem.plane_mut(PLANE_W0).write_slice(0, &PaddedField::stencil2d(&wrap(ws)).words);
            mem.plane_mut(PLANE_WC).write_slice(0, &PaddedField::aligned2d(&wrap(ws)).words);
        }
        let refs: Vec<&CompiledProgram> = self.programs.iter().collect();
        run_compiled_on_pool(
            &refs,
            system.nodes_mut(),
            &partition.node_pool(),
            &RunOptions::default(),
        )
        .map_err(|e| attribute_part(parts, e))?;
        let locals = read_slabs(partition, system, PLANE_W1);
        omega.data = partition.gather(&locals);
        Ok(())
    }
}

/// Outcome of a cavity run.
#[derive(Debug, Clone)]
pub struct CavityRun {
    /// Final stream function.
    pub psi: Grid2,
    /// Final vorticity.
    pub omega: Grid2,
    /// x-velocity `u = ψ_y` (lid value on the top wall).
    pub u: Grid2,
    /// y-velocity `v = -ψ_x`.
    pub v: Grid2,
    /// Time steps taken.
    pub steps: usize,
    /// Total ping-pong pairs across all Poisson solves.
    pub psi_pairs: u64,
    /// Residual of the last Poisson solve.
    pub last_residual: f64,
    /// Residual of each time step's Poisson solve, in step order.
    pub residual_history: Vec<f64>,
    /// Per-node counter deltas for the whole run, indexed by node.
    pub per_node: Vec<PerfCounters>,
    /// System aggregate: work summed, elapsed overlapped.
    pub total: PerfCounters,
    /// Simulated seconds (slowest node, compute + communication).
    pub simulated_seconds: f64,
    /// Aggregate achieved MFLOPS across the system.
    pub aggregate_mflops: f64,
}

/// The lid-driven cavity workload on an `n x n` grid.
#[derive(Debug, Clone)]
pub struct CavityWorkload {
    /// Grid points per side.
    pub n: usize,
    /// Reynolds number (lid speed and cavity size are the scales).
    pub re: f64,
    /// Lid speed along +x on the top wall.
    pub lid: f64,
    /// Time step (FTCS stability wants `dt ≲ h²·Re/4`).
    pub dt: f64,
    /// Time steps to advance.
    pub steps: usize,
    /// Stream-function solve tolerance.
    pub psi_tol: f64,
    /// Cap on ping-pong pairs per stream-function solve.
    pub psi_max_pairs: u32,
    /// How to cut the plane across the cube (`Auto` resolves to 2-D
    /// blocks when the cube has both torus axes to offer).
    pub partition: PartitionSpec,
    /// Hide each ψ-sweep's halo exchange under its interior pipelines
    /// (see [`SweepEngine`]); bit-identical to the synchronized mode.
    pub overlap: bool,
}

impl CavityWorkload {
    /// A small, FTCS-stable default problem.
    pub fn new(n: usize, re: f64, steps: usize) -> Self {
        let h = 1.0 / (n as f64 - 1.0);
        CavityWorkload {
            n,
            re,
            lid: 1.0,
            dt: 0.2 * (h * h * re / 4.0).min(0.5 * h),
            steps,
            psi_tol: 1e-8,
            psi_max_pairs: 20_000,
            partition: PartitionSpec::Auto,
            overlap: false,
        }
    }

    /// Set the lid speed (builder style) — one of the cavity's natural
    /// sweep axes, alongside `re`.
    pub fn with_lid(mut self, lid: f64) -> Self {
        self.lid = lid;
        self
    }

    /// Set the time step explicitly (builder style), overriding the
    /// FTCS-stable default [`CavityWorkload::new`] derives from `re`.
    /// Sweeping `dt` past the stability limit is how an ensemble maps the
    /// divergence boundary.
    pub fn with_dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Thom's wall-vorticity update from the current stream function.
    fn wall_vorticity(&self, omega: &mut Grid2, psi: &Grid2) {
        let n = self.n;
        let h = psi.h;
        let h2 = h * h;
        for i in 0..n {
            // Bottom (j = 0) and top lid (j = n-1).
            *omega.at_mut(i, 0) = 2.0 * (psi.at(i, 0) - psi.at(i, 1)) / h2;
            *omega.at_mut(i, n - 1) =
                2.0 * (psi.at(i, n - 1) - psi.at(i, n - 2)) / h2 - 2.0 * self.lid / h;
        }
        for j in 0..n {
            // Left (i = 0) and right (i = n-1) walls.
            *omega.at_mut(0, j) = 2.0 * (psi.at(0, j) - psi.at(1, j)) / h2;
            *omega.at_mut(n - 1, j) = 2.0 * (psi.at(n - 1, j) - psi.at(n - 2, j)) / h2;
        }
    }

    /// One FTCS step of the vorticity transport equation on the host —
    /// the bit-exact mirror of the machine pipeline
    /// ([`build_ftcs_transport_document`]), kept for verification.
    pub fn advect_diffuse(&self, omega: &Grid2, psi: &Grid2) -> Grid2 {
        let n = self.n;
        let coeffs = FtcsCoeffs::new(psi.h, self.re, self.dt);
        let mut out = omega.clone();
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                *out.at_mut(i, j) = ftcs_update_tree(
                    psi.at(i, j + 1),
                    psi.at(i, j - 1),
                    psi.at(i + 1, j),
                    psi.at(i - 1, j),
                    omega.at(i, j + 1),
                    omega.at(i, j - 1),
                    omega.at(i + 1, j),
                    omega.at(i - 1, j),
                    omega.at(i, j),
                    1.0,
                    &coeffs,
                );
            }
        }
        out
    }

    /// Central-difference velocities from the stream function; the top
    /// wall carries the lid speed.
    pub fn velocities(&self, psi: &Grid2) -> (Grid2, Grid2) {
        let n = self.n;
        let h = psi.h;
        let mut u = Grid2::new(n, n);
        let mut v = Grid2::new(n, n);
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                *u.at_mut(i, j) = (psi.at(i, j + 1) - psi.at(i, j - 1)) / (2.0 * h);
                *v.at_mut(i, j) = -(psi.at(i + 1, j) - psi.at(i - 1, j)) / (2.0 * h);
            }
        }
        for i in 1..n - 1 {
            *u.at_mut(i, n - 1) = self.lid;
        }
        (u, v)
    }
}

impl Workload<NscSystem> for CavityWorkload {
    type Report = CavityRun;

    fn name(&self) -> String {
        format!("lid-driven cavity {}x{} Re={}", self.n, self.n, self.re)
    }

    fn execute(&self, session: &Session, system: &mut NscSystem) -> Result<CavityRun, NscError> {
        if self.n < 5 {
            return Err(NscError::Workload(format!(
                "cavity wants at least a 5x5 grid, got {}",
                self.n
            )));
        }
        if self.re <= 0.0 || self.dt <= 0.0 || !self.re.is_finite() || !self.dt.is_finite() {
            return Err(NscError::Workload(format!(
                "cavity wants re > 0 and dt > 0, got re={} dt={}",
                self.re, self.dt
            )));
        }
        let solver = Poisson2dSolver::with_partition(
            session,
            system,
            self.n,
            self.n,
            self.partition,
            self.overlap,
        )?;
        let mut psi = Grid2::new(self.n, self.n);
        let mut omega = Grid2::new(self.n, self.n);
        let coeffs = FtcsCoeffs::new(psi.h, self.re, self.dt);
        let transport = VorticityTransport::new(session, solver.partition(), coeffs)?;
        let before: Vec<PerfCounters> = system.nodes().iter().map(|n| n.counters).collect();
        let mut psi_pairs = 0u64;
        let mut last_residual = f64::INFINITY;
        let mut residual_history = Vec::with_capacity(self.steps);
        for step in 0..self.steps {
            // ∇²ψ = -ω, warm-started from the previous step's ψ.
            let stats = solver.solve(system, &mut psi, &omega, self.psi_tol, self.psi_max_pairs)?;
            psi_pairs += stats.pairs;
            last_residual = stats.residual;
            residual_history.push(stats.residual);
            if !stats.converged {
                // Advancing the vorticity on an unconverged ψ silently
                // corrupts the flow field; fail loudly instead.
                return Err(NscError::Workload(format!(
                    "stream-function solve at step {step} stalled: residual {} after {} pairs \
                     (raise psi_max_pairs or loosen psi_tol {})",
                    stats.residual, stats.pairs, self.psi_tol
                )));
            }
            self.wall_vorticity(&mut omega, &psi);
            transport.step(system, solver.partition(), &psi, &mut omega)?;
            if !omega.linf().is_finite() {
                return Err(NscError::Workload(format!(
                    "vorticity diverged (dt={} too large for Re={}, h={})",
                    self.dt, self.re, psi.h
                )));
            }
        }

        let m = measure_system_run(system, &before);
        let (u, v) = self.velocities(&psi);
        Ok(CavityRun {
            psi,
            omega,
            u,
            v,
            steps: self.steps,
            psi_pairs,
            last_residual,
            residual_history,
            per_node: m.per_node,
            total: m.total,
            simulated_seconds: m.simulated_seconds,
            aggregate_mflops: m.aggregate_mflops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{jacobi2d_sweep_host, Jacobi2dHostState};
    use nsc_arch::HypercubeConfig;

    fn system(dim: u32, session: &Session) -> NscSystem {
        NscSystem::new(HypercubeConfig::new(dim), session.kb())
    }

    #[test]
    fn distributed_poisson2d_matches_the_host_mirror_bit_for_bit() {
        // Fixed sweep count, tol 0: every sweep must agree exactly with
        // the 2-D host mirror across a 4-node decomposition.
        let n = 11;
        let mut u0 = Grid2::new(n, n);
        let mut f = Grid2::new(n, n);
        for j in 0..n {
            for i in 0..n {
                *f.at_mut(i, j) = ((i * 3 + j * 7) % 5) as f64 - 2.0;
                if !u0.is_boundary(i, j) {
                    *u0.at_mut(i, j) = (i as f64 - j as f64) * 0.125;
                }
            }
        }
        let session = Session::nsc_1988();
        let mut sys = system(2, &session);
        let solver = Poisson2dSolver::new(&session, &mut sys, n, n).expect("compiles");
        let mut u = u0.clone();
        let stats = solver.solve(&mut sys, &mut u, &f, 0.0, 4).expect("solves");
        assert_eq!(stats.pairs, 4);

        let mut host = Jacobi2dHostState::new(&u0, &f);
        let mut res = 0.0;
        for _ in 0..8 {
            res = jacobi2d_sweep_host(&mut host);
        }
        let host_u = host.current();
        for (a, b) in u.data.iter().zip(&host_u.data) {
            assert_eq!(a.to_bits(), b.to_bits(), "2-D distributed sweep must match the mirror");
        }
        assert_eq!(stats.residual.to_bits(), res.to_bits());
    }

    #[test]
    fn machine_ftcs_transport_matches_the_host_mirror_bit_for_bit() {
        // A non-trivial ψ/ω pair; the machine step across 1 node and a
        // 2x2 block torus must reproduce the host mirror exactly.
        let n = 11;
        let w = CavityWorkload::new(n, 40.0, 1);
        let mut psi = Grid2::new(n, n);
        let mut omega = Grid2::new(n, n);
        for j in 0..n {
            for i in 0..n {
                if !psi.is_boundary(i, j) {
                    *psi.at_mut(i, j) = ((i * 5 + j * 3) % 7) as f64 * 0.01 - 0.03;
                }
                *omega.at_mut(i, j) = ((i * 2 + j * 11) % 9) as f64 * 0.125 - 0.5;
            }
        }
        let want = w.advect_diffuse(&omega, &psi);
        let session = Session::nsc_1988();
        let coeffs = FtcsCoeffs::new(psi.h, w.re, w.dt);
        for (dim, spec) in [(0u32, PartitionSpec::Strip), (2, PartitionSpec::Block)] {
            let mut sys = system(dim, &session);
            let solver = Poisson2dSolver::with_partition(&session, &mut sys, n, n, spec, false)
                .expect("compiles");
            let transport =
                VorticityTransport::new(&session, solver.partition(), coeffs).expect("compiles");
            let mut got = omega.clone();
            transport.step(&mut sys, solver.partition(), &psi, &mut got).expect("steps");
            for (a, b) in got.data.iter().zip(&want.data) {
                assert_eq!(a.to_bits(), b.to_bits(), "{spec:?}: transport diverged from mirror");
            }
        }
    }

    #[test]
    fn cavity_spins_up_a_single_clockwise_vortex() {
        let session = Session::nsc_1988();
        let mut sys = system(1, &session);
        let mut w = CavityWorkload::new(9, 10.0, 30);
        w.psi_tol = 1e-6;
        let run = w.execute(&session, &mut sys).expect("runs");
        // ψ = 0 on all walls; the lid drags fluid into one vortex whose
        // stream function is single-signed (negative for a +x lid with
        // u = ψ_y: ψ must dip below the wall value inside).
        let psi = &run.psi;
        for i in 0..9 {
            assert_eq!(psi.at(i, 0), 0.0);
            assert_eq!(psi.at(i, 8), 0.0);
        }
        let min = psi.data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = psi.data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < -1e-4, "a vortex must form (min ψ = {min})");
        assert!(max <= 1e-6, "primary vortex is single-signed at Re=10 ({max})");
        // Velocity under the lid follows the lid; the return flow below
        // the vortex centre runs the other way.
        assert!(run.u.at(4, 7) > 0.0);
        assert!(run.u.at(4, 2) < 0.0, "return flow ({})", run.u.at(4, 2));
        assert!(run.psi_pairs > 0 && run.aggregate_mflops > 0.0);
        assert!(run.per_node.iter().all(|c| c.flops > 0), "every node computed");
    }

    #[test]
    fn cavity_is_bit_identical_across_cube_sizes() {
        // The decomposition must not change the physics: 1 node vs 4
        // nodes, same ψ and ω to the last bit.
        let session = Session::nsc_1988();
        let mut w = CavityWorkload::new(9, 50.0, 4);
        w.psi_tol = 1e-6;
        let mut sys1 = system(0, &session);
        let a = w.execute(&session, &mut sys1).expect("1-node run");
        for overlap in [false, true] {
            w.overlap = overlap;
            let mut sys4 = system(2, &session);
            let b = w.execute(&session, &mut sys4).expect("4-node run");
            for (x, y) in a.psi.data.iter().zip(&b.psi.data) {
                assert_eq!(x.to_bits(), y.to_bits(), "ψ differs (overlap {overlap})");
            }
            for (x, y) in a.omega.data.iter().zip(&b.omega.data) {
                assert_eq!(x.to_bits(), y.to_bits(), "ω differs (overlap {overlap})");
            }
            assert_eq!(a.psi_pairs, b.psi_pairs, "identical convergence history");
            // The 4-node run paid for its halos; overlapped, it hid some.
            assert!(b.total.comm_ns > 0 && a.total.comm_ns == 0);
            assert_eq!(
                b.per_node.iter().any(|c| c.comm_hidden_ns > 0),
                overlap,
                "hidden time iff overlapped"
            );
        }
    }

    #[test]
    fn cavity_rejects_bad_parameters() {
        let session = Session::nsc_1988();
        let mut sys = system(0, &session);
        let mut w = CavityWorkload::new(9, 10.0, 1);
        w.dt = 0.0;
        assert!(matches!(w.execute(&session, &mut sys), Err(NscError::Workload(_))));
        let tiny = CavityWorkload::new(4, 10.0, 1);
        assert!(matches!(tiny.execute(&session, &mut sys), Err(NscError::Workload(_))));
    }
}
