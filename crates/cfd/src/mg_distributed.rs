//! Machine-resident distributed multigrid on a 2-D block decomposition.
//!
//! The top ROADMAP item this layer exists for: multigrid's coarse grids go
//! thinner than one plane per node long before the fine grid does, so the
//! V-cycle could never run distributed on strips. On a
//! [`BlockPartition`] the two slowest axes shrink together, and each
//! coarse level's partition is *derived* from the finer one (coarse index
//! `c` lives where fine index `2c` lives), so restriction and
//! prolongation reach at most one ghost layer across block boundaries.
//!
//! Per V-cycle level:
//!
//! * **smoothing** runs machine-resident: each block compiles the damped
//!   Jacobi sweep pipeline on its local geometry
//!   ([`crate::diagrams::build_damped_jacobi_sweep_document`]) and sweeps
//!   concurrently on real node threads, ghost faces moving through the
//!   hyperspace router between sweeps — bit-identical to the serial
//!   [`crate::multigrid::smooth`] on the points a block owns, because the
//!   serial smoother computes the same operation tree;
//! * **residual, restriction and prolongation** are computed per block
//!   with the exact serial point kernels (the shared `lap_at`,
//!   `full_weight_at` and `prolong_value` functions), reading neighbour
//!   data from ghost faces refreshed through the router;
//! * when the next level would be too thin to sweep (or smaller than
//!   `3^3`), the remaining levels *agglomerate*: the residual is gathered,
//!   the serial V-cycle recursion finishes on the host, and the
//!   correction is interpolated straight back into the blocks.
//!
//! The result is bit-identical to the serial [`crate::MultigridWorkload`]
//! at every cube size — asserted down to the residual history in tests.

use crate::diagrams::{
    build_damped_jacobi_sweep_document_windows, JacobiGeometry, PLANE_G, PLANE_MASK, PLANE_U0,
    PLANE_U1, RESIDUAL_CACHE,
};
use crate::distributed::{check_same_machine, measure_system_run};
use crate::grid::{Grid3, PaddedField};
use crate::multigrid::{
    full_weight_at, lap_at, prolong_value, restrict, vcycle_level, MgOptions, MgStats,
};
use crate::overlap::{CompiledSweep, SweepEngine, SweepIo};
use crate::partition::{
    host_halo_exchange, read_slabs, BlockPartition, GridShape, HaloSpec, Partition,
};
use nsc_core::{NscError, Session, Workload};
use nsc_sim::{NscSystem, PerfCounters, RunOptions};

/// One distributed V-cycle level: its grid, its derived partition, and
/// the compiled damped-sweep pair per block.
#[derive(Debug)]
struct DistLevel {
    /// Grid points per side at this level.
    n: usize,
    /// Mesh spacing at this level.
    h: f64,
    part: BlockPartition,
    even: CompiledSweep,
    odd: CompiledSweep,
    /// Whether the level's sweeps run latency-hidden.
    overlap: bool,
    /// Aligned-padded interior masks, one per block (static per level).
    masks: Vec<Vec<f64>>,
}

/// Derive the next-coarser level's partition from a fine one: coarse
/// index `c` goes to the block owning fine index `2c`, so every transfer
/// operator reaches at most one ghost layer. `None` when a block's coarse
/// range would be empty or too thin to sweep.
fn derive_coarse(fine: &BlockPartition, nc: usize) -> Option<BlockPartition> {
    let derive = |sizes: &[usize]| -> Option<Vec<usize>> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for &len in sizes {
            let (fs, fe) = (start, start + len - 1);
            let (cs, ce) = (fs.div_ceil(2), fe / 2);
            if ce < cs {
                return None;
            }
            out.push(ce - cs + 1);
            start += len;
        }
        Some(out)
    };
    let rows = derive(&fine.row_sizes())?;
    let cols = derive(&fine.col_sizes())?;
    BlockPartition::from_sizes(GridShape::volume3d(nc, nc, nc), fine.torus, &rows, &cols).ok()
}

/// Build the distributed level stack: fine to coarse, stopping before a
/// level would be smaller than `5^3` or too thin to partition (the serial
/// host tail takes over from there).
fn build_levels(
    session: &Session,
    system: &NscSystem,
    n0: usize,
    h0: f64,
    omega: f64,
    overlap: bool,
) -> Result<Vec<DistLevel>, NscError> {
    let torus = system.cube.torus2d_near_square();
    let mut part = BlockPartition::new(GridShape::volume3d(n0, n0, n0), torus)?;
    let mut n = n0;
    let mut h = h0;
    let mut levels = Vec::new();
    loop {
        let (even, odd) = {
            let engine = SweepEngine::new(&part, HaloSpec::stencil(), overlap);
            let build = |parity: bool| {
                move |p: &crate::partition::Part, windows: &[crate::partition::SweepWindow]| {
                    let (lnx, lny, lnz) = p.local_shape();
                    build_damped_jacobi_sweep_document_windows(
                        JacobiGeometry::slab(lnx, lny, lnz),
                        parity,
                        omega,
                        windows,
                    )
                }
            };
            (engine.compile(session, build(true))?, engine.compile(session, build(false))?)
        };
        let masks = part
            .parts()
            .iter()
            .map(|p| {
                let (lnx, lny, lnz) = p.local_shape();
                let local = Grid3::new(lnx, lny, lnz);
                PaddedField::aligned(&local.interior_mask()).words
            })
            .collect();
        levels.push(DistLevel { n, h, part: part.clone(), even, odd, overlap, masks });
        let nc = n.div_ceil(2);
        if nc <= 3 {
            break;
        }
        match derive_coarse(&part, nc) {
            Some(next) => {
                part = next;
                n = nc;
                h *= 2.0;
            }
            None => break,
        }
    }
    Ok(levels)
}

/// Run `sweeps` machine-resident damped-Jacobi sweeps on a level: stage
/// the block fields into the node planes, refresh ghosts, ping-pong the
/// compiled sweep pair with a face exchange after every sweep, and read
/// the smoothed slabs (fresh ghosts included) back.
fn machine_smooth(
    level: &DistLevel,
    system: &mut NscSystem,
    u_slabs: &mut [Vec<f64>],
    f_slabs: &[Vec<f64>],
    sweeps: usize,
) -> Result<(), NscError> {
    let part = &level.part;
    let parts = part.parts();
    let halo = HaloSpec::stencil();
    if sweeps == 0 {
        // Nothing to smooth, but callers still rely on fresh ghosts.
        host_halo_exchange(part, system, PLANE_U0, u_slabs, &halo);
        return Ok(());
    }
    let h2 = level.h * level.h;
    for (pi, p) in parts.iter().enumerate() {
        let (lnx, lny, lnz) = p.local_shape();
        let wrap = |data: Vec<f64>| Grid3 { nx: lnx, ny: lny, nz: lnz, h: level.h, data };
        let padded_u = PaddedField::stencil(&wrap(u_slabs[pi].clone()));
        let g: Vec<f64> = f_slabs[pi].iter().map(|&v| -(h2 * v)).collect();
        let padded_g = PaddedField::aligned(&wrap(g));
        let mem = &mut system.node_mut(p.node).mem;
        mem.plane_mut(PLANE_U0).write_slice(0, &padded_u.words);
        // The pong plane's pad regions must hold zeros too.
        mem.plane_mut(PLANE_U1).write_slice(0, &padded_u.words);
        mem.plane_mut(PLANE_G).write_slice(0, &padded_g.words);
        mem.plane_mut(PLANE_MASK).write_slice(0, &level.masks[pi]);
    }
    let engine = SweepEngine::new(part, halo, level.overlap);
    if !level.overlap {
        // Ghosts may be stale after prolongation: refresh before the first
        // read (the overlapped mode folds this into sweep 0's exchange).
        part.halo_exchange(system, PLANE_U0, 1, &halo);
    }
    let opts = RunOptions::default();
    for s in 0..sweeps {
        let (sweep, io) = if s % 2 == 0 {
            (&level.even, SweepIo::steady(PLANE_U0, PLANE_U1))
        } else {
            (&level.odd, SweepIo::steady(PLANE_U1, PLANE_U0))
        };
        engine.sweep(system, sweep, io, &opts)?;
    }
    let final_plane = if sweeps.is_multiple_of(2) { PLANE_U0 } else { PLANE_U1 };
    if level.overlap {
        // The last sweep's faces never travelled; the slab readback below
        // hands ghosts to the host transfer operators, so refresh now.
        engine.refresh(system, final_plane);
    }
    for (dst, src) in u_slabs.iter_mut().zip(read_slabs(part, system, final_plane)) {
        *dst = src;
    }
    Ok(())
}

/// Per-block residual field `r = f + ∇²u` over owned interior points
/// (zero elsewhere). `u` ghosts must be fresh.
fn residual_slabs(level: &DistLevel, u_slabs: &[Vec<f64>], f_slabs: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = level.n;
    let h2 = level.h * level.h;
    level
        .part
        .parts()
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            let u = &u_slabs[pi];
            let f = &f_slabs[pi];
            let at = |i: usize, j: usize, k: usize| u[p.local_flat_of_global(i, j, k)];
            let mut r = vec![0.0; p.local_words()];
            for k in p.owned_interior(2, n) {
                for j in p.owned_interior(1, n) {
                    for i in p.owned_interior(0, n) {
                        let lap = lap_at(
                            at(i + 1, j, k),
                            at(i - 1, j, k),
                            at(i, j + 1, k),
                            at(i, j - 1, k),
                            at(i, j, k + 1),
                            at(i, j, k - 1),
                            at(i, j, k),
                            h2,
                        );
                        r[p.local_flat_of_global(i, j, k)] =
                            f[p.local_flat_of_global(i, j, k)] + lap;
                    }
                }
            }
            r
        })
        .collect()
}

/// Full-weighting restriction from a fine level's residual slabs onto the
/// derived coarse partition. Fine ghosts must be fresh (the transfer
/// reaches one layer across block boundaries).
fn restrict_slabs(fine: &DistLevel, coarse: &DistLevel, r_slabs: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let nc = coarse.n;
    coarse
        .part
        .parts()
        .iter()
        .enumerate()
        .map(|(pi, cp)| {
            let fp = &fine.part.parts()[pi];
            let r = &r_slabs[pi];
            let mut rc = vec![0.0; cp.local_words()];
            for kc in cp.owned_interior(2, nc) {
                for jc in cp.owned_interior(1, nc) {
                    for ic in cp.owned_interior(0, nc) {
                        let (i, j, k) = (2 * ic as i32, 2 * jc as i32, 2 * kc as i32);
                        rc[cp.local_flat_of_global(ic, jc, kc)] = full_weight_at(|di, dj, dk| {
                            r[fp.local_flat_of_global(
                                (i + di) as usize,
                                (j + dj) as usize,
                                (k + dk) as usize,
                            )]
                        });
                    }
                }
            }
            rc
        })
        .collect()
}

/// Trilinear prolongation added into each block's owned interior;
/// `coarse_at(block, ic, jc, kc)` reads the coarse correction.
fn prolong_add_slabs(
    fine: &DistLevel,
    u_slabs: &mut [Vec<f64>],
    coarse_at: impl Fn(usize, usize, usize, usize) -> f64,
) {
    let n = fine.n;
    for (pi, p) in fine.part.parts().iter().enumerate() {
        for k in p.owned_interior(2, n) {
            for j in p.owned_interior(1, n) {
                for i in p.owned_interior(0, n) {
                    u_slabs[pi][p.local_flat_of_global(i, j, k)] +=
                        prolong_value(|ic, jc, kc| coarse_at(pi, ic, jc, kc), i, j, k);
                }
            }
        }
    }
}

/// The distributed conventional residual `max |-∇²u - f|`, reduced over
/// the partition's node pool through the butterfly (`u` ghosts fresh).
fn residual_linf_dist(
    level: &DistLevel,
    system: &mut NscSystem,
    u_slabs: &[Vec<f64>],
    f_slabs: &[Vec<f64>],
) -> f64 {
    let n = level.n;
    let h2 = level.h * level.h;
    for (pi, p) in level.part.parts().iter().enumerate() {
        let u = &u_slabs[pi];
        let at = |i: usize, j: usize, k: usize| u[p.local_flat_of_global(i, j, k)];
        let mut r = 0.0f64;
        for k in p.owned_interior(2, n) {
            for j in p.owned_interior(1, n) {
                for i in p.owned_interior(0, n) {
                    let lap = lap_at(
                        at(i + 1, j, k),
                        at(i - 1, j, k),
                        at(i, j + 1, k),
                        at(i, j - 1, k),
                        at(i, j, k + 1),
                        at(i, j, k - 1),
                        at(i, j, k),
                        h2,
                    );
                    r = r.max((-lap - f_slabs[pi][p.local_flat_of_global(i, j, k)]).abs());
                }
            }
        }
        system.node_mut(p.node).mem.cache_mut(RESIDUAL_CACHE).write(0, 0, r);
    }
    let members = level.part.member_nodes();
    system.pool_max_cache_scalar(&members, RESIDUAL_CACHE, 0).0
}

/// One V-cycle from level `li` down: machine-resident smoothing, per-block
/// transfer operators, and the serial host tail below the last
/// distributed level.
#[allow(clippy::too_many_arguments)] // the recursion carries the whole cycle state
fn dist_vcycle(
    levels: &[DistLevel],
    li: usize,
    system: &mut NscSystem,
    u_slabs: &mut [Vec<f64>],
    f_slabs: &[Vec<f64>],
    opts: &MgOptions,
    fine_points: f64,
    stats: &mut MgStats,
) -> Result<(), NscError> {
    let level = &levels[li];
    let weight = (level.n * level.n * level.n) as f64 / fine_points;
    machine_smooth(level, system, u_slabs, f_slabs, opts.nu1)?;
    stats.fine_equivalent_sweeps += opts.nu1 as f64 * weight;

    let mut r_slabs = residual_slabs(level, u_slabs, f_slabs);

    if li + 1 < levels.len() {
        // Restriction reads one ghost layer of the residual across block
        // boundaries; the agglomeration branch gathers owned points only,
        // so it skips this exchange.
        host_halo_exchange(&level.part, system, PLANE_U0, &mut r_slabs, &HaloSpec::stencil());
        let coarse = &levels[li + 1];
        let rc_slabs = restrict_slabs(level, coarse, &r_slabs);
        let mut ec_slabs: Vec<Vec<f64>> =
            coarse.part.parts().iter().map(|p| vec![0.0; p.local_words()]).collect();
        dist_vcycle(levels, li + 1, system, &mut ec_slabs, &rc_slabs, opts, fine_points, stats)?;
        // Fresh ghosts on the correction before interpolating across
        // block boundaries.
        host_halo_exchange(&coarse.part, system, PLANE_U0, &mut ec_slabs, &HaloSpec::stencil());
        let cparts = coarse.part.parts();
        prolong_add_slabs(level, u_slabs, |pi, ic, jc, kc| {
            ec_slabs[pi][cparts[pi].local_flat_of_global(ic, jc, kc)]
        });
    } else {
        // Coarse agglomeration: the rest of the cycle is too small to
        // distribute; gather the residual and finish on the host with the
        // *same* serial recursion the serial workload runs.
        let mut r = Grid3::new(level.n, level.n, level.n);
        r.h = level.h;
        r.data = level.part.gather(&r_slabs);
        let rc = restrict(&r);
        let mut ec = Grid3::new(rc.nx, rc.ny, rc.nz);
        ec.h = rc.h;
        vcycle_level(&mut ec, &rc, opts, fine_points, stats);
        prolong_add_slabs(level, u_slabs, |_, ic, jc, kc| ec.at(ic, jc, kc));
    }

    machine_smooth(level, system, u_slabs, f_slabs, opts.nu2)?;
    stats.fine_equivalent_sweeps += opts.nu2 as f64 * weight;
    Ok(())
}

/// Outcome of a distributed multigrid solve.
#[derive(Debug, Clone)]
pub struct DistributedMultigridRun {
    /// The reassembled final iterate.
    pub u: Grid3,
    /// Work/quality accounting of the V-cycles (identical to the serial
    /// solver's, down to the residual history).
    pub stats: MgStats,
    /// Final L∞ residual.
    pub residual: f64,
    /// Whether the tolerance (not the cycle cap) ended it.
    pub converged: bool,
    /// V-cycle levels that ran distributed (the rest agglomerate).
    pub distributed_levels: usize,
    /// Per-node counter deltas for this run, indexed by node.
    pub per_node: Vec<PerfCounters>,
    /// System aggregate of this run: work summed, elapsed overlapped.
    pub total: PerfCounters,
    /// Simulated seconds (slowest node, compute + communication).
    pub simulated_seconds: f64,
    /// Aggregate achieved MFLOPS across the system.
    pub aggregate_mflops: f64,
}

/// The ref. \[6\] multigrid V-cycle run machine-resident across the cube
/// on a 2-D block decomposition — bit-identical to the serial
/// [`crate::MultigridWorkload`] at every cube size.
#[derive(Debug, Clone)]
pub struct DistributedMultigridWorkload {
    /// Initial iterate; the grid must be cubic with `2^m + 1` points per
    /// side, at least `5^3`.
    pub u0: Grid3,
    /// Right-hand side.
    pub f: Grid3,
    /// Residual convergence tolerance.
    pub tol: f64,
    /// Cap on V-cycles.
    pub max_cycles: usize,
    /// Cycle shape and smoothing parameters.
    pub opts: MgOptions,
    /// Hide halo latency inside every machine-resident smoothing sweep
    /// (see [`SweepEngine`]); bit-identical to the synchronized mode.
    pub overlap: bool,
}

impl DistributedMultigridWorkload {
    /// The manufactured `sin·sin·sin` Poisson problem on an `n³` grid
    /// (`n = 2^m + 1`) with a given damped-Jacobi smoothing weight — the
    /// sweepable constructor an ω-ensemble fans out over. The weight is a
    /// *document constant* of the smoothing pipelines, so members of the
    /// same grid size rebind the base compile instead of recompiling.
    pub fn manufactured(n: usize, omega: f64, tol: f64, max_cycles: usize) -> Self {
        let (u0, f, _) = crate::grid::manufactured_problem(n);
        DistributedMultigridWorkload {
            u0,
            f,
            tol,
            max_cycles,
            opts: MgOptions { omega, ..MgOptions::default() },
            overlap: false,
        }
    }
}

impl Workload<NscSystem> for DistributedMultigridWorkload {
    type Report = DistributedMultigridRun;

    fn name(&self) -> String {
        format!("distributed-multigrid V({},{}) {}^3", self.opts.nu1, self.opts.nu2, self.u0.nx)
    }

    fn execute(
        &self,
        session: &Session,
        system: &mut NscSystem,
    ) -> Result<DistributedMultigridRun, NscError> {
        check_same_machine(session, system)?;
        let n = self.u0.nx;
        if n != self.u0.ny || n != self.u0.nz || n < 5 || !(n - 1).is_power_of_two() {
            return Err(NscError::Workload(format!(
                "distributed multigrid wants a cubic 2^m + 1 grid of at least 5^3, got {}x{}x{}",
                self.u0.nx, self.u0.ny, self.u0.nz
            )));
        }
        if (self.u0.nx, self.u0.ny, self.u0.nz) != (self.f.nx, self.f.ny, self.f.nz) {
            return Err(NscError::Workload("iterate and right-hand side grids differ".into()));
        }
        let levels = build_levels(session, system, n, self.u0.h, self.opts.omega, self.overlap)?;
        let before: Vec<PerfCounters> = system.nodes().iter().map(|nd| nd.counters).collect();

        let mut u_slabs = levels[0].part.scatter(&self.u0.data);
        let f_slabs = levels[0].part.scatter(&self.f.data);
        let fine_points = (n * n * n) as f64;
        let mut stats = MgStats::default();
        let mut residual = f64::INFINITY;
        for _ in 0..self.max_cycles {
            dist_vcycle(
                &levels,
                0,
                system,
                &mut u_slabs,
                &f_slabs,
                &self.opts,
                fine_points,
                &mut stats,
            )?;
            stats.cycles += 1;
            residual = residual_linf_dist(&levels[0], system, &u_slabs, &f_slabs);
            stats.residual_history.push(residual);
            if residual < self.tol {
                break;
            }
        }
        let converged = residual < self.tol;

        let mut u = Grid3::new(n, n, n);
        u.h = self.u0.h;
        u.data = levels[0].part.gather(&u_slabs);
        let m = measure_system_run(system, &before);
        Ok(DistributedMultigridRun {
            u,
            stats,
            residual,
            converged,
            distributed_levels: levels.len(),
            per_node: m.per_node,
            total: m.total,
            simulated_seconds: m.simulated_seconds,
            aggregate_mflops: m.aggregate_mflops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::manufactured_problem;
    use crate::workloads::MultigridWorkload;
    use nsc_arch::HypercubeConfig;

    fn system(dim: u32, session: &Session) -> NscSystem {
        NscSystem::new(HypercubeConfig::new(dim), session.kb())
    }

    fn serial_run(n: usize, tol: f64, cycles: usize) -> crate::workloads::MultigridRun {
        let (u0, f, _) = manufactured_problem(n);
        let session = Session::nsc_1988();
        let mut node = session.node();
        let w = MultigridWorkload { u0, f, tol, max_cycles: cycles, opts: MgOptions::default() };
        w.execute(&session, &mut node).expect("serial multigrid runs")
    }

    #[test]
    fn distributed_multigrid_is_bit_identical_to_serial_at_1_4_8_nodes() {
        let n = 17;
        let tol = 1e-8;
        let serial = serial_run(n, tol, 25);
        assert!(serial.converged);
        let session = Session::nsc_1988();
        for (dim, overlap) in [(0u32, false), (0, true), (2, true), (3, false), (3, true)] {
            let (u0, f, _) = manufactured_problem(n);
            let mut sys = system(dim, &session);
            let w = DistributedMultigridWorkload {
                u0,
                f,
                tol,
                max_cycles: 25,
                opts: MgOptions::default(),
                overlap,
            };
            let run = w.execute(&session, &mut sys).expect("distributed multigrid runs");
            assert!(run.converged, "{} nodes: residual {}", sys.node_count(), run.residual);
            assert_eq!(run.stats.cycles, serial.stats.cycles, "{} nodes", sys.node_count());
            for (a, b) in run.u.data.iter().zip(&serial.u.data) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} nodes: iterate diverged from serial",
                    sys.node_count()
                );
            }
            for (a, b) in run.stats.residual_history.iter().zip(&serial.stats.residual_history) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} nodes: history", sys.node_count());
            }
            assert_eq!(
                run.stats.fine_equivalent_sweeps.to_bits(),
                serial.stats.fine_equivalent_sweeps.to_bits()
            );
            if dim > 0 {
                assert!(run.total.comm_ns > 0, "halos cost router time");
                assert!(run.distributed_levels >= 2, "coarse levels stay distributed");
            }
            if dim > 0 && overlap {
                assert!(
                    run.per_node.iter().any(|c| c.comm_hidden_ns > 0),
                    "overlapped smoothing must hide some halo time"
                );
            }
            assert!(run.per_node.iter().all(|c| c.flops > 0), "every node smoothed");
            assert!(run.aggregate_mflops > 0.0);
        }
    }

    #[test]
    fn distributed_multigrid_rejects_bad_grids() {
        let session = Session::nsc_1988();
        let mut sys = system(1, &session);
        let (u0, f, _) = manufactured_problem(8); // 8 - 1 = 7: not 2^m
        let w = DistributedMultigridWorkload {
            u0,
            f,
            tol: 1e-8,
            max_cycles: 5,
            opts: MgOptions::default(),
            overlap: false,
        };
        assert!(matches!(w.execute(&session, &mut sys), Err(NscError::Workload(_))));
    }

    #[test]
    fn coarse_partitions_derive_down_to_the_agglomeration_point() {
        // 17^3 on a 4x2 torus: the 17- and 9-level stay distributed, the
        // 5-level still fits (1-2 planes per row, 3 with ghosts), 3^3
        // agglomerates.
        let session = Session::nsc_1988();
        let sys = system(3, &session);
        let levels =
            build_levels(&session, &sys, 17, 1.0 / 16.0, 0.8, false).expect("levels build");
        assert!(levels.len() >= 2, "only {} distributed levels", levels.len());
        assert_eq!(levels[0].n, 17);
        assert_eq!(levels[1].n, 9);
        for w in levels.windows(2) {
            // Derivation invariant: coarse index c is owned where fine 2c
            // is owned.
            for (cp, fp) in w[1].part.parts().iter().zip(w[0].part.parts()) {
                for axis in [1usize, 2] {
                    let (cs, fs) = (&cp.spans[axis], &fp.spans[axis]);
                    for c in cs.start..cs.start + cs.len {
                        assert!(
                            2 * c >= fs.start && 2 * c < fs.start + fs.len,
                            "axis {axis}: coarse {c} not over fine {}..{}",
                            fs.start,
                            fs.start + fs.len
                        );
                    }
                }
            }
        }
    }
}
