//! Flat 3-D grids and the NSC padded memory layout.
//!
//! A grid point `(i, j, k)` lives at flat index `i + nx*(j + ny*k)`. The
//! NSC stencil streams an array once, linearly, and synthesizes the six
//! neighbour streams with shift/delay taps; for that to cover the `k ± 1`
//! neighbours the array is stored *padded*: one xy-plane of halo words
//! (`nx*ny` of them) before and after the data. Mask and right-hand-side
//! arrays use the same padded layout so their streams pair with the
//! stencil's centre tap (see `nsc-codegen`'s lag analysis).

use rand::Rng;

/// A 3-D scalar field on a uniform grid, unpadded.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    /// Points along x.
    pub nx: usize,
    /// Points along y.
    pub ny: usize,
    /// Points along z.
    pub nz: usize,
    /// Mesh spacing (uniform in all directions).
    pub h: f64,
    /// Values in x-fastest order; length `nx*ny*nz`.
    pub data: Vec<f64>,
}

impl Grid3 {
    /// A zero-initialized grid with spacing `h = 1/(nx-1)`.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx >= 3 && ny >= 3 && nz >= 3, "grids need interior points");
        Grid3 { nx, ny, nz, h: 1.0 / (nx as f64 - 1.0), data: vec![0.0; nx * ny * nz] }
    }

    /// Total points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Whether the grid is empty (it never is; for clippy symmetry).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat index of `(i, j, k)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// Value at `(i, j, k)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(i, j, k)]
    }

    /// Mutable value at `(i, j, k)`.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize, k: usize) -> &mut f64 {
        let idx = self.idx(i, j, k);
        &mut self.data[idx]
    }

    /// Whether `(i, j, k)` lies on the domain boundary.
    pub fn is_boundary(&self, i: usize, j: usize, k: usize) -> bool {
        i == 0 || j == 0 || k == 0 || i == self.nx - 1 || j == self.ny - 1 || k == self.nz - 1
    }

    /// Fill from a function of physical coordinates `(x, y, z) in [0,1]^3`.
    pub fn fill_with(&mut self, f: impl Fn(f64, f64, f64) -> f64) {
        let (nx, ny, nz, h) = (self.nx, self.ny, self.nz, self.h);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    self.data[i + nx * (j + ny * k)] = f(i as f64 * h, j as f64 * h, k as f64 * h);
                }
            }
        }
    }

    /// The interior mask: 1 inside, 0 on the boundary.
    pub fn interior_mask(&self) -> Grid3 {
        let mut m = Grid3::new(self.nx, self.ny, self.nz);
        for k in 0..self.nz {
            for j in 0..self.ny {
                for i in 0..self.nx {
                    *m.at_mut(i, j, k) = if self.is_boundary(i, j, k) { 0.0 } else { 1.0 };
                }
            }
        }
        m
    }

    /// Fill the interior with uniform random values (boundary untouched).
    pub fn randomize_interior(&mut self, rng: &mut impl Rng, lo: f64, hi: f64) {
        for k in 1..self.nz - 1 {
            for j in 1..self.ny - 1 {
                for i in 1..self.nx - 1 {
                    *self.at_mut(i, j, k) = rng.random_range(lo..hi);
                }
            }
        }
    }

    /// Max-norm of the difference against another grid.
    pub fn linf_diff(&self, other: &Grid3) -> f64 {
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max)
    }
}

/// A 2-D scalar field on a uniform grid, unpadded — the plane problems
/// (lid-driven cavity vorticity/stream-function fields) live here.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2 {
    /// Points along x.
    pub nx: usize,
    /// Points along y.
    pub ny: usize,
    /// Mesh spacing (uniform in both directions).
    pub h: f64,
    /// Values in x-fastest order; length `nx*ny`.
    pub data: Vec<f64>,
}

impl Grid2 {
    /// A zero-initialized grid with spacing `h = 1/(nx-1)`.
    pub fn new(nx: usize, ny: usize) -> Self {
        assert!(nx >= 3 && ny >= 3, "grids need interior points");
        Grid2 { nx, ny, h: 1.0 / (nx as f64 - 1.0), data: vec![0.0; nx * ny] }
    }

    /// Total points.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the grid is empty (it never is; for clippy symmetry).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat index of `(i, j)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny);
        i + self.nx * j
    }

    /// Value at `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[self.idx(i, j)]
    }

    /// Mutable value at `(i, j)`.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        let idx = self.idx(i, j);
        &mut self.data[idx]
    }

    /// Whether `(i, j)` lies on the domain boundary.
    pub fn is_boundary(&self, i: usize, j: usize) -> bool {
        i == 0 || j == 0 || i == self.nx - 1 || j == self.ny - 1
    }

    /// The interior mask: 1 inside, 0 on the boundary.
    pub fn interior_mask(&self) -> Grid2 {
        let mut m = Grid2::new(self.nx, self.ny);
        m.h = self.h;
        for j in 0..self.ny {
            for i in 0..self.nx {
                *m.at_mut(i, j) = if self.is_boundary(i, j) { 0.0 } else { 1.0 };
            }
        }
        m
    }

    /// Max-norm of the difference against another grid.
    pub fn linf_diff(&self, other: &Grid2) -> f64 {
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max)
    }

    /// Max-norm of the field itself.
    pub fn linf(&self) -> f64 {
        self.data.iter().map(|v| v.abs()).fold(0.0f64, f64::max)
    }
}

/// A field in an NSC padded layout: zero pad words before and after the
/// grid data.
///
/// Two layouts are used by the Jacobi pipeline, both `2*nx*ny` words longer
/// than the grid (so every stream of one instruction has the same length):
///
/// * [`PaddedField::stencil`] — `nx*ny` halo words on *each* end; the
///   array streamed through the shift/delay units (`u`), whose taps reach
///   one xy-plane forward and back;
/// * [`PaddedField::aligned`] — `2*nx*ny` pad words *in front only*; arrays
///   read directly from planes (`mask`, scaled RHS) whose element `q` must
///   arrive when the stencil emits output point `q` (first valid output
///   appears after the deepest tap's `2*nx*ny`-element warm-up).
#[derive(Debug, Clone, PartialEq)]
pub struct PaddedField {
    /// Pad words before the grid data.
    pub front: usize,
    /// Pad words after the grid data.
    pub back: usize,
    /// Padded storage: `front + nx*ny*nz + back` words.
    pub words: Vec<f64>,
}

impl PaddedField {
    fn build(g: &Grid3, front: usize, back: usize) -> Self {
        let mut words = vec![0.0; front];
        words.extend_from_slice(&g.data);
        words.extend(std::iter::repeat_n(0.0, back));
        PaddedField { front, back, words }
    }

    /// The shift/delay layout: one xy-plane of halo on each end.
    pub fn stencil(g: &Grid3) -> Self {
        let h = g.nx * g.ny;
        Self::build(g, h, h)
    }

    /// The direct-stream layout: two xy-planes of pad in front.
    pub fn aligned(g: &Grid3) -> Self {
        let h = g.nx * g.ny;
        Self::build(g, 2 * h, 0)
    }

    fn build2(g: &Grid2, front: usize, back: usize) -> Self {
        let mut words = vec![0.0; front];
        words.extend_from_slice(&g.data);
        words.extend(std::iter::repeat_n(0.0, back));
        PaddedField { front, back, words }
    }

    /// The 2-D shift/delay layout: one row of halo on each end (rows play
    /// the role xy-planes play in 3-D).
    pub fn stencil2d(g: &Grid2) -> Self {
        Self::build2(g, g.nx, g.nx)
    }

    /// The 2-D direct-stream layout: two rows of pad in front.
    pub fn aligned2d(g: &Grid2) -> Self {
        Self::build2(g, 2 * g.nx, 0)
    }

    /// Extract the interior back into a 2-D grid shape.
    pub fn to_grid2(&self, nx: usize, ny: usize) -> Grid2 {
        assert_eq!(nx * ny, self.interior_len());
        let mut g = Grid2::new(nx, ny);
        let n = g.len();
        g.data.copy_from_slice(&self.words[self.front..self.front + n]);
        g
    }

    /// Total padded length (the NSC stream length for this field).
    pub fn padded_len(&self) -> usize {
        self.words.len()
    }

    /// Interior (unpadded) length.
    pub fn interior_len(&self) -> usize {
        self.words.len() - self.front - self.back
    }

    /// Extract the interior back into a grid shape.
    pub fn to_grid(&self, nx: usize, ny: usize, nz: usize) -> Grid3 {
        assert_eq!(nx * ny * nz, self.interior_len());
        let mut g = Grid3::new(nx, ny, nz);
        let n = g.len();
        g.data.copy_from_slice(&self.words[self.front..self.front + n]);
        g
    }
}

/// The manufactured Poisson problem used throughout the experiments:
/// `-∇²u = f` with `u_exact = sin(πx) sin(πy) sin(πz)` (zero on the
/// boundary) and `f = 3π² u_exact`.
pub fn manufactured_problem(n: usize) -> (Grid3, Grid3, Grid3) {
    let pi = std::f64::consts::PI;
    let mut exact = Grid3::new(n, n, n);
    exact.fill_with(|x, y, z| (pi * x).sin() * (pi * y).sin() * (pi * z).sin());
    let mut f = Grid3::new(n, n, n);
    f.fill_with(|x, y, z| 3.0 * pi * pi * (pi * x).sin() * (pi * y).sin() * (pi * z).sin());
    let u0 = Grid3::new(n, n, n); // zero initial guess, zero Dirichlet data
    (u0, f, exact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_x_fastest() {
        let g = Grid3::new(4, 5, 6);
        assert_eq!(g.idx(0, 0, 0), 0);
        assert_eq!(g.idx(1, 0, 0), 1);
        assert_eq!(g.idx(0, 1, 0), 4);
        assert_eq!(g.idx(0, 0, 1), 20);
        assert_eq!(g.len(), 120);
    }

    #[test]
    fn boundary_detection() {
        let g = Grid3::new(4, 4, 4);
        assert!(g.is_boundary(0, 2, 2));
        assert!(g.is_boundary(3, 2, 2));
        assert!(g.is_boundary(2, 0, 2));
        assert!(g.is_boundary(2, 2, 3));
        assert!(!g.is_boundary(1, 2, 2));
    }

    #[test]
    fn mask_counts_interior_points() {
        let g = Grid3::new(5, 5, 5);
        let m = g.interior_mask();
        let ones = m.data.iter().filter(|&&v| v == 1.0).count();
        assert_eq!(ones, 3 * 3 * 3);
        let zeros = m.data.iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 125 - 27);
    }

    #[test]
    fn stencil_padding_round_trip() {
        let mut g = Grid3::new(4, 4, 4);
        g.fill_with(|x, y, z| x + 2.0 * y + 4.0 * z);
        let p = PaddedField::stencil(&g);
        assert_eq!((p.front, p.back), (16, 16));
        assert_eq!(p.padded_len(), 64 + 32);
        assert!(p.words[..16].iter().all(|&v| v == 0.0), "front halo is zero");
        assert!(p.words[80..].iter().all(|&v| v == 0.0), "back halo is zero");
        assert_eq!(p.to_grid(4, 4, 4), g);
    }

    #[test]
    fn aligned_padding_round_trip() {
        let mut g = Grid3::new(4, 4, 4);
        g.fill_with(|x, y, z| x * y * z + 1.0);
        let p = PaddedField::aligned(&g);
        assert_eq!((p.front, p.back), (32, 0));
        assert_eq!(p.padded_len(), PaddedField::stencil(&g).padded_len(), "same stream length");
        assert!(p.words[..32].iter().all(|&v| v == 0.0));
        assert_eq!(p.to_grid(4, 4, 4), g);
    }

    #[test]
    fn grid2_indexing_and_padding_round_trip() {
        let mut g = Grid2::new(4, 5);
        for j in 0..5 {
            for i in 0..4 {
                *g.at_mut(i, j) = (i + 10 * j) as f64;
            }
        }
        assert_eq!(g.idx(1, 0), 1);
        assert_eq!(g.idx(0, 1), 4);
        assert!(g.is_boundary(0, 2) && g.is_boundary(2, 4) && !g.is_boundary(2, 2));
        assert_eq!(g.interior_mask().data.iter().filter(|&&v| v == 1.0).count(), 2 * 3);

        let p = PaddedField::stencil2d(&g);
        assert_eq!((p.front, p.back), (4, 4));
        assert_eq!(p.padded_len(), 20 + 8);
        assert_eq!(p.to_grid2(4, 5), g);
        let a = PaddedField::aligned2d(&g);
        assert_eq!((a.front, a.back), (8, 0));
        assert_eq!(a.padded_len(), p.padded_len(), "same stream length");
        assert_eq!(a.to_grid2(4, 5), g);
    }

    #[test]
    fn manufactured_solution_vanishes_on_boundary() {
        let (_, _, exact) = manufactured_problem(8);
        for k in 0..8 {
            for j in 0..8 {
                for i in 0..8 {
                    if exact.is_boundary(i, j, k) {
                        assert!(exact.at(i, j, k).abs() < 1e-12);
                    }
                }
            }
        }
        // And is nontrivial inside.
        assert!(exact.at(4, 4, 4).abs() > 0.5);
    }

    #[test]
    fn fill_uses_physical_coordinates() {
        let mut g = Grid3::new(5, 5, 5);
        g.fill_with(|x, _, _| x);
        assert_eq!(g.at(0, 2, 2), 0.0);
        assert_eq!(g.at(4, 2, 2), 1.0);
        assert!((g.at(2, 0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn linf_diff() {
        let mut a = Grid3::new(3, 3, 3);
        let b = Grid3::new(3, 3, 3);
        *a.at_mut(1, 1, 1) = 0.25;
        assert_eq!(a.linf_diff(&b), 0.25);
    }
}
