//! The solver entry points as reusable [`Workload`] implementations.
//!
//! Each workload owns a complete problem statement and knows how to run
//! itself through a [`Session`] on a [`NodeSim`], returning `Err` instead
//! of panicking at every stage — the shape batch harnesses, benchmarks and
//! examples share:
//!
//! * [`JacobiWorkload`] — the paper's running example on the simulated
//!   NSC (Equation 1, Figures 2 and 11);
//! * [`SorWorkload`] — the host SOR baseline the paper's ref. \[6\]
//!   compares against;
//! * [`MultigridWorkload`] — the ref. \[6\] V-cycle on the host, with the
//!   NSC-simulated smoothing cost measured on the node (the kernel that
//!   dominates multigrid's machine time).

use crate::diagrams::JacobiVariant;
use crate::grid::Grid3;
use crate::host::{residual_linf, sor_sweep_host};
use crate::multigrid::{vcycle, MgOptions, MgStats};
use crate::nsc_run::{run_jacobi, JacobiRun};
use nsc_core::{NscError, Session, Workload};
use nsc_sim::NodeSim;

/// Point Jacobi for the 3-D Poisson problem on the simulated NSC.
#[derive(Debug, Clone)]
pub struct JacobiWorkload {
    /// Initial iterate (also fixes the grid size).
    pub u0: Grid3,
    /// Right-hand side.
    pub f: Grid3,
    /// Residual convergence tolerance.
    pub tol: f64,
    /// Cap on ping-pong sweep pairs.
    pub max_pairs: u32,
    /// Which pipeline construction to use.
    pub variant: JacobiVariant,
}

impl Workload for JacobiWorkload {
    type Report = JacobiRun;

    fn name(&self) -> String {
        format!("jacobi-poisson {}^3 ({:?})", self.u0.nx, self.variant)
    }

    fn execute(&self, session: &Session, node: &mut NodeSim) -> Result<JacobiRun, NscError> {
        // The document is compiled by `session` but executes on `node`:
        // refuse when the two describe different machines, or the program
        // would target hardware the node does not have.
        if session.kb().config() != node.kb.config() {
            return Err(NscError::Workload(format!(
                "session machine '{}' and node machine '{}' differ",
                session.kb().config().name,
                node.kb.config().name
            )));
        }
        run_jacobi(session, node, &self.u0, &self.f, self.tol, self.max_pairs, self.variant)
    }
}

/// Outcome of a host SOR solve.
#[derive(Debug, Clone)]
pub struct SorRun {
    /// The final iterate.
    pub u: Grid3,
    /// Final L∞ residual.
    pub residual: f64,
    /// Sweeps executed.
    pub sweeps: usize,
    /// Whether the tolerance (not the sweep cap) ended it.
    pub converged: bool,
}

/// Successive over-relaxation on the host — the paper-era baseline the
/// NSC runs are compared against. The node is untouched.
#[derive(Debug, Clone)]
pub struct SorWorkload {
    /// Initial iterate.
    pub u0: Grid3,
    /// Right-hand side.
    pub f: Grid3,
    /// Relaxation factor, in `(0, 2)` for convergence.
    pub omega: f64,
    /// Residual convergence tolerance.
    pub tol: f64,
    /// Cap on sweeps.
    pub max_sweeps: usize,
}

impl Workload for SorWorkload {
    type Report = SorRun;

    fn name(&self) -> String {
        format!("sor {}x{}x{} omega={}", self.u0.nx, self.u0.ny, self.u0.nz, self.omega)
    }

    fn execute(&self, _session: &Session, _node: &mut NodeSim) -> Result<SorRun, NscError> {
        if !(0.0..2.0).contains(&self.omega) || self.omega == 0.0 {
            return Err(NscError::Workload(format!(
                "SOR diverges outside 0 < omega < 2 (got {})",
                self.omega
            )));
        }
        if (self.u0.nx, self.u0.ny, self.u0.nz) != (self.f.nx, self.f.ny, self.f.nz) {
            return Err(NscError::Workload("iterate and right-hand side grids differ".into()));
        }
        let mut u = self.u0.clone();
        let mut residual = residual_linf(&u, &self.f);
        let mut sweeps = 0;
        let mut converged = residual < self.tol;
        while !converged && sweeps < self.max_sweeps {
            residual = sor_sweep_host(&mut u, &self.f, self.omega);
            sweeps += 1;
            converged = residual < self.tol;
        }
        Ok(SorRun { u, residual, sweeps, converged })
    }
}

/// Outcome of a multigrid solve with its NSC smoothing-cost measurement.
#[derive(Debug, Clone)]
pub struct MultigridRun {
    /// The final iterate.
    pub u: Grid3,
    /// Work/quality accounting of the V-cycles.
    pub stats: MgStats,
    /// Final L∞ residual.
    pub residual: f64,
    /// Whether the tolerance (not the cycle cap) ended it.
    pub converged: bool,
    /// The NSC-simulated smoothing kernel run used for cost estimation.
    pub smoothing: JacobiRun,
    /// Estimated simulated-NSC seconds to tolerance: fine-grid-equivalent
    /// sweeps times the measured per-sweep cost.
    pub est_seconds: f64,
}

/// The ref. \[6\] multigrid V-cycle, with the Jacobi smoothing kernel that
/// dominates its cost measured on the simulated node.
#[derive(Debug, Clone)]
pub struct MultigridWorkload {
    /// Initial iterate; the grid must be `2^m + 1` points per side.
    pub u0: Grid3,
    /// Right-hand side.
    pub f: Grid3,
    /// Residual convergence tolerance.
    pub tol: f64,
    /// Cap on V-cycles.
    pub max_cycles: usize,
    /// Cycle shape and smoothing parameters.
    pub opts: MgOptions,
}

impl Workload for MultigridWorkload {
    type Report = MultigridRun;

    fn name(&self) -> String {
        format!("multigrid V({},{}) {}^3", self.opts.nu1, self.opts.nu2, self.u0.nx)
    }

    fn execute(&self, session: &Session, node: &mut NodeSim) -> Result<MultigridRun, NscError> {
        let n = self.u0.nx;
        if n != self.u0.ny || n != self.u0.nz || n < 2 || !(n - 1).is_power_of_two() {
            return Err(NscError::Workload(format!(
                "multigrid wants a cubic 2^m + 1 grid, got {}x{}x{}",
                self.u0.nx, self.u0.ny, self.u0.nz
            )));
        }
        if (self.u0.nx, self.u0.ny, self.u0.nz) != (self.f.nx, self.f.ny, self.f.nz) {
            return Err(NscError::Workload("iterate and right-hand side grids differ".into()));
        }
        let mut u = self.u0.clone();
        let stats = vcycle(&mut u, &self.f, self.tol, self.max_cycles, &self.opts);
        let residual = stats.residual_history.last().copied().unwrap_or(f64::INFINITY);
        let converged = residual < self.tol;

        // Measure the smoothing kernel on the simulated machine: one
        // ping-pong pair of fine-grid Jacobi sweeps.
        let smoother = JacobiWorkload {
            u0: self.u0.clone(),
            f: self.f.clone(),
            tol: 0.0,
            max_pairs: 1,
            variant: JacobiVariant::Full,
        };
        let smoothing = smoother.execute(session, node)?;
        let clock_hz = node.kb.config().clock_hz;
        let per_sweep = smoothing.counters.seconds(clock_hz) / smoothing.sweeps.max(1) as f64;
        let est_seconds = stats.fine_equivalent_sweeps * per_sweep;
        Ok(MultigridRun { u, stats, residual, converged, smoothing, est_seconds })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::manufactured_problem;

    #[test]
    fn jacobi_workload_runs_through_a_session() {
        let (u0, f, exact) = manufactured_problem(6);
        let w = JacobiWorkload { u0, f, tol: 1e-9, max_pairs: 2000, variant: JacobiVariant::Full };
        let session = Session::nsc_1988();
        let mut node = session.node();
        let run = w.execute(&session, &mut node).expect("executes");
        assert!(run.converged);
        assert!(run.u.linf_diff(&exact) < 0.1);
        assert!(w.name().contains("jacobi"));
    }

    #[test]
    fn jacobi_workload_rejects_mismatched_machines() {
        let (u0, f, _) = manufactured_problem(6);
        let w = JacobiWorkload { u0, f, tol: 0.0, max_pairs: 1, variant: JacobiVariant::Full };
        let mut revised = nsc_arch::MachineConfig::nsc_1988();
        revised.name = "revised".into();
        let mut node = Session::new(revised).node();
        let err = w.execute(&Session::nsc_1988(), &mut node).unwrap_err();
        assert!(matches!(err, NscError::Workload(_)), "{err}");
    }

    #[test]
    fn sor_workload_converges_without_touching_the_node() {
        let (u0, f, exact) = manufactured_problem(9);
        let w = SorWorkload { u0, f, omega: 1.5, tol: 1e-8, max_sweeps: 10_000 };
        let session = Session::nsc_1988();
        let mut node = session.node();
        let run = w.execute(&session, &mut node).expect("executes");
        assert!(run.converged, "residual {}", run.residual);
        assert!(run.u.linf_diff(&exact) < 0.1);
        assert_eq!(node.counters.cycles, 0, "host baseline leaves the node idle");
    }

    #[test]
    fn sor_workload_rejects_divergent_omega() {
        let (u0, f, _) = manufactured_problem(5);
        let w = SorWorkload { u0, f, omega: 2.5, tol: 1e-8, max_sweeps: 10 };
        let session = Session::nsc_1988();
        let mut node = session.node();
        assert!(matches!(w.execute(&session, &mut node), Err(NscError::Workload(_))));
    }

    #[test]
    fn multigrid_workload_solves_and_prices_the_smoother() {
        let (u0, f, exact) = manufactured_problem(9); // 2^3 + 1
        let w = MultigridWorkload { u0, f, tol: 1e-8, max_cycles: 50, opts: MgOptions::default() };
        let session = Session::nsc_1988();
        let mut node = session.node();
        let run = w.execute(&session, &mut node).expect("executes");
        assert!(run.converged, "residual {}", run.residual);
        assert!(run.u.linf_diff(&exact) < 0.1);
        assert!(run.est_seconds > 0.0);
        assert!(run.smoothing.counters.cycles > 0, "smoother measured on the node");
    }

    #[test]
    fn multigrid_workload_rejects_non_power_of_two_grids() {
        let (u0, f, _) = manufactured_problem(8); // 8 - 1 = 7: not 2^m
        let w = MultigridWorkload { u0, f, tol: 1e-8, max_cycles: 5, opts: MgOptions::default() };
        let session = Session::nsc_1988();
        let mut node = session.node();
        assert!(matches!(w.execute(&session, &mut node), Err(NscError::Workload(_))));
    }
}
