//! 1-D strip domain decomposition of solver grids onto the hypercube.
//!
//! A grid is split along its slowest axis into contiguous *strips* of
//! "planes" (xy-planes of `nx*ny` words for a 3-D grid, rows of `nx` words
//! for a 2-D one — the decomposition only cares about the plane size).
//! Strip `i` lives on [`HypercubeConfig::ring_node`]`(i)`, so the Gray
//! embedding puts adjacent strips on physically adjacent nodes and every
//! halo message crosses exactly one link.
//!
//! Each interior strip boundary carries one *ghost plane* on each side: a
//! node's local slab is its owned planes plus the neighbouring boundary
//! planes, refreshed by [`DecomposedGrid::halo_exchange`] between sweeps.
//! The ghost planes land exactly where the NSC's stencil-padded memory
//! layout already reserves halo storage, so a decomposed Jacobi sweep is
//! the *same pipeline diagram* as the serial one, on slab geometry — and
//! bit-identical to the serial sweep on the points a node owns.

use nsc_arch::{HypercubeConfig, NodeId, PlaneId};
use nsc_core::NscError;
use nsc_sim::NscSystem;

/// One node's strip of the decomposition.
#[derive(Debug, Clone, Copy)]
pub struct Strip {
    /// Position along the decomposed axis (= Gray-ring position).
    pub ring_pos: usize,
    /// The hypercube node hosting this strip.
    pub node: NodeId,
    /// First owned plane (global index).
    pub start: usize,
    /// Number of owned planes.
    pub len: usize,
    /// Whether the local slab carries a ghost plane below (every strip but
    /// the first; the first strip's lowest plane is the domain boundary).
    pub lo_ghost: bool,
    /// Whether the local slab carries a ghost plane above.
    pub hi_ghost: bool,
}

impl Strip {
    /// Global index of the lowest plane in the local slab (ghost included).
    pub fn local_start(&self) -> usize {
        self.start - usize::from(self.lo_ghost)
    }

    /// Planes in the local slab: owned plus ghosts.
    pub fn local_planes(&self) -> usize {
        self.len + usize::from(self.lo_ghost) + usize::from(self.hi_ghost)
    }

    /// Local slab index of global plane `z`.
    pub fn local_index(&self, z: usize) -> usize {
        debug_assert!(z >= self.local_start() && z < self.local_start() + self.local_planes());
        z - self.local_start()
    }
}

/// A solver grid partitioned into strips across a hypercube.
#[derive(Debug, Clone)]
pub struct DecomposedGrid {
    /// Words per plane along the decomposed axis.
    pub plane_words: usize,
    /// Global planes along the decomposed axis.
    pub n_planes: usize,
    /// The cube the strips live on.
    pub cube: HypercubeConfig,
    /// One strip per ring position, in ring (= global plane) order.
    pub strips: Vec<Strip>,
}

impl DecomposedGrid {
    /// Partition `n_planes` planes of `plane_words` words each across the
    /// nodes of `cube`, balanced to within one plane. Fails when the grid
    /// is too small for every node's local slab (owned planes + ghosts) to
    /// hold the three planes a stencil sweep needs.
    pub fn strip_1d(
        plane_words: usize,
        n_planes: usize,
        cube: HypercubeConfig,
    ) -> Result<Self, NscError> {
        let parts = cube.ring_partition(n_planes);
        let last = parts.len() - 1;
        let mut sizes: Vec<usize> = parts.iter().map(|&(_, len)| len).collect();
        // The boundary strips have only one ghost plane, so they need two
        // owned planes where an interior strip gets by with one. The
        // balanced split spreads the remainder from the front; move a
        // plane from the fattest eligible donor when an edge came up
        // short (min 2 for an edge donor, 1 for an interior one).
        for edge in [last, 0] {
            if last > 0 && sizes[edge] < 2 {
                let donor = (0..sizes.len())
                    .filter(|&i| i != edge)
                    .filter(|&i| sizes[i] > if i == 0 || i == last { 2 } else { 1 })
                    .max_by_key(|&i| sizes[i]);
                if let Some(d) = donor {
                    sizes[d] -= 1;
                    sizes[edge] += 1;
                }
            }
        }
        let mut start = 0;
        let strips: Vec<Strip> = sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let s = Strip {
                    ring_pos: i,
                    node: cube.ring_node(i),
                    start,
                    len,
                    lo_ghost: i > 0,
                    hi_ghost: i < last,
                };
                start += len;
                s
            })
            .collect();
        if let Some(thin) = strips.iter().find(|s| s.local_planes() < 3) {
            return Err(NscError::Workload(format!(
                "strip decomposition too thin: {} planes across {} nodes leaves node {} with a \
                 {}-plane slab (a stencil sweep needs 3)",
                n_planes,
                cube.nodes(),
                thin.node,
                thin.local_planes()
            )));
        }
        Ok(DecomposedGrid { plane_words, n_planes, cube, strips })
    }

    /// Word offset of local plane `local` inside a plane-memory array laid
    /// out with `front_pad` pad planes before the slab data (1 for the
    /// stencil layout, 2 for the aligned layout).
    pub fn word_offset(&self, front_pad: usize, local: usize) -> u64 {
        ((front_pad + local) * self.plane_words) as u64
    }

    /// Split a flat global field (plane-major, `n_planes * plane_words`
    /// words) into per-strip local slabs, ghost planes included.
    pub fn scatter(&self, words: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(words.len(), self.n_planes * self.plane_words, "global field size");
        self.strips
            .iter()
            .map(|s| {
                let lo = s.local_start() * self.plane_words;
                let hi = lo + s.local_planes() * self.plane_words;
                words[lo..hi].to_vec()
            })
            .collect()
    }

    /// Reassemble a global field from per-strip local slabs, taking only
    /// the planes each strip owns (ghosts are dropped).
    pub fn gather(&self, locals: &[Vec<f64>]) -> Vec<f64> {
        assert_eq!(locals.len(), self.strips.len(), "one slab per strip");
        let pw = self.plane_words;
        let mut out = vec![0.0; self.n_planes * pw];
        for (s, local) in self.strips.iter().zip(locals) {
            assert_eq!(local.len(), s.local_planes() * pw, "slab size of strip {}", s.ring_pos);
            let from = s.local_index(s.start) * pw;
            out[s.start * pw..(s.start + s.len) * pw]
                .copy_from_slice(&local[from..from + s.len * pw]);
        }
        out
    }

    /// The halo-exchange step: every interior strip boundary swaps its two
    /// adjacent planes as one full-duplex *sendrecv* through
    /// [`NscSystem::exchange_bidirectional`] — a's top owned plane fills
    /// b's low ghost while b's bottom owned plane fills a's high ghost —
    /// charging the e-cube route cost to the endpoints'
    /// [`nsc_sim::PerfCounters`]. `plane` is the node memory plane holding
    /// the field, laid out with `front_pad` pad planes before the slab
    /// (1 = stencil layout).
    ///
    /// Returns the slowest per-node communication time of the step in
    /// nanoseconds (sendrecvs between disjoint node pairs overlap).
    pub fn halo_exchange(&self, system: &mut NscSystem, plane: PlaneId, front_pad: usize) -> u64 {
        let mut per_node = vec![0u64; self.strips.len()];
        for i in 0..self.strips.len().saturating_sub(1) {
            let (a, b) = (self.strips[i], self.strips[i + 1]);
            let ns = system.exchange_bidirectional(
                a.node,
                plane,
                self.word_offset(front_pad, a.local_index(a.start + a.len - 1)),
                self.word_offset(front_pad, a.local_planes() - 1),
                b.node,
                plane,
                self.word_offset(front_pad, b.local_index(b.start)),
                self.word_offset(front_pad, 0),
                self.plane_words as u64,
            );
            per_node[i] += ns;
            per_node[i + 1] += ns;
        }
        per_node.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{KnowledgeBase, MachineConfig};

    fn system(dim: u32) -> NscSystem {
        let kb = KnowledgeBase::new(MachineConfig::test_small());
        NscSystem::new(HypercubeConfig::new(dim), &kb)
    }

    #[test]
    fn strips_cover_the_grid_contiguously_on_adjacent_nodes() {
        let cube = HypercubeConfig::new(3);
        let d = DecomposedGrid::strip_1d(25, 21, cube).expect("decomposes");
        assert_eq!(d.strips.len(), 8);
        assert_eq!(d.strips.iter().map(|s| s.len).sum::<usize>(), 21);
        let mut next = 0;
        for w in d.strips.windows(2) {
            assert_eq!(cube.hops(w[0].node, w[1].node), 1, "adjacent strips, adjacent nodes");
        }
        for s in &d.strips {
            assert_eq!(s.start, next);
            next += s.len;
            assert!(s.local_planes() >= 3);
            assert_eq!(s.lo_ghost, s.ring_pos > 0);
            assert_eq!(s.hi_ghost, s.ring_pos < 7);
        }
    }

    #[test]
    fn edge_strips_borrow_planes_to_stay_sweepable() {
        // 11 planes, 8 nodes: the balanced split leaves the last strip one
        // plane; an interior strip donates so both edges own two.
        let cube = HypercubeConfig::new(3);
        for planes in [10, 11, 12] {
            let d = DecomposedGrid::strip_1d(4, planes, cube).expect("decomposes");
            assert_eq!(d.strips.iter().map(|s| s.len).sum::<usize>(), planes);
            assert!(d.strips.iter().all(|s| s.local_planes() >= 3), "{planes} planes");
            let mut next = 0;
            for s in &d.strips {
                assert_eq!(s.start, next, "still contiguous");
                next += s.len;
            }
        }
    }

    #[test]
    fn too_thin_grids_are_rejected_with_the_node_named() {
        let cube = HypercubeConfig::new(3);
        let err = DecomposedGrid::strip_1d(16, 8, cube).expect_err("1-plane edge strips");
        assert!(matches!(err, NscError::Workload(_)), "{err}");
        assert!(err.to_string().contains("3"), "{err}");
    }

    #[test]
    fn scatter_gather_round_trips_and_overlaps_ghosts() {
        let cube = HypercubeConfig::new(2);
        let d = DecomposedGrid::strip_1d(3, 10, cube).expect("decomposes");
        let global: Vec<f64> = (0..30).map(|x| x as f64).collect();
        let locals = d.scatter(&global);
        // Middle strips see one ghost plane on each side.
        let s1 = d.strips[1];
        assert_eq!(locals[1].len(), s1.local_planes() * 3);
        assert_eq!(locals[1][0], (s1.local_start() * 3) as f64, "low ghost holds the neighbour");
        assert_eq!(d.gather(&locals), global);
    }

    #[test]
    fn halo_exchange_fills_ghost_planes_and_charges_the_router() {
        let mut sys = system(2); // 4 nodes
        let pw = 4usize;
        let d = DecomposedGrid::strip_1d(pw, 9, sys.cube).expect("decomposes");
        // Stencil-style layout (front pad 1): write each strip's owned
        // planes with its global plane number; leave ghosts stale at -1.
        let plane = PlaneId(0);
        for s in &d.strips {
            let mut slab = vec![-1.0; (s.local_planes() + 2) * pw];
            for z in s.start..s.start + s.len {
                let off = (1 + s.local_index(z)) * pw;
                slab[off..off + pw].fill(z as f64);
            }
            sys.node_mut(s.node).mem.plane_mut(plane).write_slice(0, &slab);
        }
        let before = sys.comm_ns;
        let slowest = d.halo_exchange(&mut sys, plane, 1);
        // Every ghost plane now holds its neighbour's boundary plane.
        for s in &d.strips {
            let mem = sys.node(s.node).mem.plane(plane);
            if s.lo_ghost {
                let got = mem.read_vec(d.word_offset(1, 0), pw as u64);
                assert!(got.iter().all(|&v| v == (s.start - 1) as f64), "{got:?}");
            }
            if s.hi_ghost {
                let got = mem.read_vec(d.word_offset(1, s.local_planes() - 1), pw as u64);
                assert!(got.iter().all(|&v| v == (s.start + s.len) as f64), "{got:?}");
            }
        }
        // 3 interior boundaries x 2 messages of pw words over 1 hop each;
        // each boundary's pair overlaps as one full-duplex sendrecv.
        let msg = sys.cube.router.message_ns(1, pw as u64);
        assert_eq!(sys.comm_ns - before, 6 * msg, "serialized view counts every message");
        assert_eq!(slowest, 2 * msg, "middle strips sendrecv on both sides");
        // Endpoint accounting: the first node only talks to one neighbour.
        assert_eq!(sys.node(d.strips[0].node).counters.comm_ns, msg);
        assert_eq!(sys.node(d.strips[1].node).counters.comm_ns, 2 * msg);
    }
}
