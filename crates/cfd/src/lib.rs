//! # nsc-cfd — the paper's computational fluid dynamics workloads
//!
//! The NSC exists "to solve large computational fluid dynamics problems"
//! (§1), and the paper's running example (§4, Equation 1, Figures 2 and 11)
//! is "a point Jacobi update for the 3-D Poisson equation on a uniform grid
//! with a residual convergence check", drawn from the multigrid work of
//! Nosenchuck, Krist & Zang (paper ref. \[6\]).
//!
//! This crate provides:
//!
//! * [`grid`] — flat 3-D grids with the padded memory layout the NSC
//!   stencil streams require (front/back halos of one xy-plane);
//! * [`host`] — host reference solvers: a point-Jacobi sweep that mirrors
//!   the NSC pipeline's operation tree *exactly* (so simulator output can
//!   be compared bit-for-bit), plus an SOR baseline;
//! * [`multigrid`] — the ref-\[6\] V-cycle (full-weighting restriction,
//!   trilinear prolongation, Jacobi smoothing) for experiment T6;
//! * [`diagrams`] — builders that construct the paper's pipeline diagrams
//!   programmatically: the Figure 2/11 Jacobi document (shift/delay-unit
//!   stencil streams, masked update, feedback residual reduction), the
//!   no-SDU variant (array copies in extra planes, §3's "multiple copies
//!   of arrays"), the subset-model variant, and a compute-bound Chebyshev
//!   kernel for the T4 ablation;
//! * [`nsc_run`] — glue that loads a problem into a simulated node,
//!   compiles the document through `nsc_core::Session`, runs the
//!   generated microcode and compares against the host reference —
//!   returning `nsc_core::NscError` at every fallible stage;
//! * [`workloads`] — the solver entry points packaged as
//!   `nsc_core::Workload` implementations (Jacobi on the NSC, host SOR,
//!   multigrid with NSC-priced smoothing) for batch harnesses and
//!   benchmarks;
//! * [`partition`] — topology-aware domain decomposition behind the
//!   [`Partition`] trait: [`StripPartition`] (1-D strips of planes on the
//!   Gray ring) and [`BlockPartition`] (2-D blocks on a Gray-embedded
//!   torus), both with ghost layers refreshed through the hyperspace
//!   router per a [`HaloSpec`];
//! * [`distributed`] — the decomposed solvers: Jacobi compiled per node
//!   slab and run concurrently across the cube (bit-identical to the
//!   serial sweeps), and the block-SOR host baseline with router-charged
//!   halos — both decomposition-agnostic over the [`Partition`] trait;
//! * [`overlap`] — the **overlapped sweep engine** every distributed
//!   workload runs through: each sweep splits into an interior pipeline
//!   (no ghost dependency) and boundary-shell pipelines per halo face,
//!   and the halo sendrecvs travel concurrently with the interior
//!   phase, charging each node only the non-overlapped remainder —
//!   bit-identical to the fused sweep, strictly faster at scale;
//! * [`cavity`] — the lid-driven cavity (vorticity–stream-function, after
//!   Matyka physics/0407002), whose per-step stream-function Poisson
//!   solve *and* vorticity transport run through the distributed 2-D
//!   pipelines end-to-end.

pub mod cavity;
pub mod certify;
pub mod diagrams;
pub mod distributed;
pub mod grid;
pub mod host;
pub mod mg_distributed;
pub mod multigrid;
pub mod nsc_run;
pub mod overlap;
pub mod partition;
pub mod workloads;

pub use self::cavity::{CavityRun, CavityWorkload, Poisson2dSolver, VorticityTransport};
pub use self::certify::{halo_routes, window_coverage};
pub use self::diagrams::{
    build_chebyshev_document, build_damped_jacobi_sweep_document,
    build_damped_jacobi_sweep_document_windows, build_jacobi2d_sweep_document,
    build_jacobi2d_sweep_document_windows, build_jacobi_document, build_jacobi_sweep_document,
    build_jacobi_sweep_document_windows, JacobiVariant,
};
pub use self::distributed::{
    DistributedJacobiRun, DistributedJacobiWorkload, DistributedSorRun, DistributedSorWorkload,
};
pub use self::grid::{Grid2, Grid3, PaddedField};
pub use self::host::{jacobi_sweep_host, residual_linf, sor_sweep_host, JacobiHostState};
pub use self::mg_distributed::{DistributedMultigridRun, DistributedMultigridWorkload};
pub use self::multigrid::{vcycle, MgOptions, MgStats};
pub use self::nsc_run::{load_problem, prepare, run_jacobi, run_jacobi_on_node, JacobiRun};
pub use self::overlap::{CompiledSweep, SweepEngine, SweepIo};
pub use self::partition::{
    host_halo_exchange, read_slabs, AxisSpan, BlockPartition, GridShape, HaloSpec, Part, Partition,
    PartitionSpec, StripPartition, SweepSplit, SweepWindow,
};
pub use self::workloads::{JacobiWorkload, MultigridRun, MultigridWorkload, SorRun, SorWorkload};
