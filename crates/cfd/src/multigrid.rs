//! Multigrid V-cycle for the 3-D Poisson equation (paper ref. \[6\]:
//! Nosenchuck, Krist & Zang, "On Multigrid Methods for the Navier-Stokes
//! Computer" — the work the paper's Jacobi example is drawn from).
//!
//! Standard components: damped-Jacobi smoothing, full-weighting
//! restriction, trilinear prolongation, recursive V(ν1,ν2) cycles on grids
//! of size `2^m + 1`. Experiment T6 compares this against plain point
//! Jacobi on the simulated NSC: multigrid needs orders of magnitude fewer
//! fine-grid sweeps, exactly the motivation of ref. \[6\].

use crate::grid::Grid3;
use crate::host::{damped_jacobi_update_tree, residual_linf};

/// Multigrid parameters.
#[derive(Debug, Clone, Copy)]
pub struct MgOptions {
    /// Pre-smoothing sweeps.
    pub nu1: usize,
    /// Post-smoothing sweeps.
    pub nu2: usize,
    /// Damped-Jacobi weight (2/3 .. 0.9 smooths well for Poisson).
    pub omega: f64,
    /// Sweeps used to "solve" the coarsest level.
    pub coarse_sweeps: usize,
}

impl Default for MgOptions {
    fn default() -> Self {
        MgOptions { nu1: 2, nu2: 2, omega: 0.8, coarse_sweeps: 50 }
    }
}

/// Work/quality accounting of a multigrid solve.
#[derive(Debug, Clone, Default)]
pub struct MgStats {
    /// V-cycles performed.
    pub cycles: usize,
    /// Smoothing sweeps, weighted by level size relative to the fine grid
    /// (1.0 = one fine-grid-equivalent sweep).
    pub fine_equivalent_sweeps: f64,
    /// Residual after each cycle.
    pub residual_history: Vec<f64>,
}

/// One damped-Jacobi smoothing sweep for `-∇²u = f`, computed point for
/// point as the NSC's damped sweep pipeline computes it
/// ([`damped_jacobi_update_tree`], with `g = -(h² f)` and an interior mask
/// of one) — so a machine-resident smoothing sweep on a decomposed slab is
/// bit-identical to this host sweep on the points a node owns.
pub fn smooth(u: &mut Grid3, f: &Grid3, omega: f64) {
    let h2 = u.h * u.h;
    let mut next = u.clone();
    for k in 1..u.nz - 1 {
        for j in 1..u.ny - 1 {
            for i in 1..u.nx - 1 {
                let g = -(h2 * f.at(i, j, k));
                let (unew, _) = damped_jacobi_update_tree(
                    u.at(i, j, k + 1),
                    u.at(i, j, k - 1),
                    u.at(i, j + 1, k),
                    u.at(i, j - 1, k),
                    u.at(i + 1, j, k),
                    u.at(i - 1, j, k),
                    u.at(i, j, k),
                    g,
                    1.0,
                    omega,
                );
                *next.at_mut(i, j, k) = unew;
            }
        }
    }
    std::mem::swap(u, &mut next);
}

/// The seven-point Laplacian at one point, in the fixed evaluation order
/// every residual computation shares (east, west, north, south, up, down).
#[inline]
#[allow(clippy::too_many_arguments)] // one argument per stencil neighbour
pub(crate) fn lap_at(
    east: f64,
    west: f64,
    north: f64,
    south: f64,
    up: f64,
    down: f64,
    center: f64,
    h2: f64,
) -> f64 {
    (east + west + north + south + up + down - 6.0 * center) / h2
}

/// The 27-point full-weighting sum around one coarse point; `at(di, dj,
/// dk)` reads the fine grid relative to the coarse point's fine-grid
/// image. The fixed loop order makes every caller bit-compatible.
pub(crate) fn full_weight_at(at: impl Fn(i32, i32, i32) -> f64) -> f64 {
    let mut acc = 0.0;
    for (dk, wk) in [(-1i32, 0.25), (0, 0.5), (1, 0.25)] {
        for (dj, wj) in [(-1i32, 0.25), (0, 0.5), (1, 0.25)] {
            for (di, wi) in [(-1i32, 0.25), (0, 0.5), (1, 0.25)] {
                acc += wi * wj * wk * at(di, dj, dk);
            }
        }
    }
    acc
}

/// The trilinear interpolant of the coarse grid at fine point `(i, j,
/// k)`; `coarse_at` reads coarse-grid points. The fixed loop order (and
/// the skip of zero weights) makes every caller bit-compatible.
pub(crate) fn prolong_value(
    coarse_at: impl Fn(usize, usize, usize) -> f64,
    i: usize,
    j: usize,
    k: usize,
) -> f64 {
    let (ic, fi) = (i / 2, (i % 2) as f64 * 0.5);
    let (jc, fj) = (j / 2, (j % 2) as f64 * 0.5);
    let (kc, fk) = (k / 2, (k % 2) as f64 * 0.5);
    let mut acc = 0.0;
    for (dk, wk) in [(0usize, 1.0 - fk), (1, fk)] {
        if wk == 0.0 {
            continue;
        }
        for (dj, wj) in [(0usize, 1.0 - fj), (1, fj)] {
            if wj == 0.0 {
                continue;
            }
            for (di, wi) in [(0usize, 1.0 - fi), (1, fi)] {
                if wi == 0.0 {
                    continue;
                }
                acc += wi * wj * wk * coarse_at(ic + di, jc + dj, kc + dk);
            }
        }
    }
    acc
}

/// Pointwise residual `r = f + ∇²u` (zero on the boundary).
fn residual_field(u: &Grid3, f: &Grid3) -> Grid3 {
    let h2 = u.h * u.h;
    let mut r = Grid3::new(u.nx, u.ny, u.nz);
    r.h = u.h;
    for k in 1..u.nz - 1 {
        for j in 1..u.ny - 1 {
            for i in 1..u.nx - 1 {
                let lap = lap_at(
                    u.at(i + 1, j, k),
                    u.at(i - 1, j, k),
                    u.at(i, j + 1, k),
                    u.at(i, j - 1, k),
                    u.at(i, j, k + 1),
                    u.at(i, j, k - 1),
                    u.at(i, j, k),
                    h2,
                );
                *r.at_mut(i, j, k) = f.at(i, j, k) + lap;
            }
        }
    }
    r
}

/// Full-weighting restriction to the `(n+1)/2` coarse grid.
pub(crate) fn restrict(fine: &Grid3) -> Grid3 {
    let nc = fine.nx.div_ceil(2);
    let mut coarse = Grid3::new(nc, nc, nc);
    coarse.h = fine.h * 2.0;
    for kc in 1..nc - 1 {
        for jc in 1..nc - 1 {
            for ic in 1..nc - 1 {
                let (i, j, k) = (2 * ic as i32, 2 * jc as i32, 2 * kc as i32);
                *coarse.at_mut(ic, jc, kc) = full_weight_at(|di, dj, dk| {
                    fine.at((i + di) as usize, (j + dj) as usize, (k + dk) as usize)
                });
            }
        }
    }
    coarse
}

/// Trilinear prolongation from the coarse grid, added into `fine`.
fn prolong_add(fine: &mut Grid3, coarse: &Grid3) {
    let nf = fine.nx;
    for k in 1..nf - 1 {
        for j in 1..nf - 1 {
            for i in 1..nf - 1 {
                *fine.at_mut(i, j, k) += prolong_value(|ic, jc, kc| coarse.at(ic, jc, kc), i, j, k);
            }
        }
    }
}

pub(crate) fn vcycle_level(
    u: &mut Grid3,
    f: &Grid3,
    opts: &MgOptions,
    fine_points: f64,
    stats: &mut MgStats,
) {
    let weight = u.len() as f64 / fine_points;
    if u.nx <= 3 {
        for _ in 0..opts.coarse_sweeps {
            smooth(u, f, 1.0);
        }
        stats.fine_equivalent_sweeps += opts.coarse_sweeps as f64 * weight;
        return;
    }
    for _ in 0..opts.nu1 {
        smooth(u, f, opts.omega);
    }
    stats.fine_equivalent_sweeps += opts.nu1 as f64 * weight;
    let r = residual_field(u, f);
    let rc = restrict(&r);
    let mut ec = Grid3::new(rc.nx, rc.ny, rc.nz);
    ec.h = rc.h;
    vcycle_level(&mut ec, &rc, opts, fine_points, stats);
    prolong_add(u, &ec);
    for _ in 0..opts.nu2 {
        smooth(u, f, opts.omega);
    }
    stats.fine_equivalent_sweeps += opts.nu2 as f64 * weight;
}

/// Run V-cycles until the residual max-norm drops below `tol` (or
/// `max_cycles`). Grid size must be `2^m + 1`.
pub fn vcycle(u: &mut Grid3, f: &Grid3, tol: f64, max_cycles: usize, opts: &MgOptions) -> MgStats {
    assert!((u.nx - 1).is_power_of_two(), "multigrid wants 2^m + 1 grids");
    let mut stats = MgStats::default();
    let fine_points = u.len() as f64;
    for _ in 0..max_cycles {
        vcycle_level(u, f, opts, fine_points, &mut stats);
        stats.cycles += 1;
        let r = residual_linf(u, f);
        stats.residual_history.push(r);
        if r < tol {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::manufactured_problem;

    #[test]
    fn restriction_preserves_constants() {
        let mut fine = Grid3::new(9, 9, 9);
        fine.fill_with(|_, _, _| 4.2);
        let coarse = restrict(&fine);
        assert_eq!(coarse.nx, 5);
        assert!((coarse.at(2, 2, 2) - 4.2).abs() < 1e-12, "interior weight sums to one");
        assert!((coarse.h - fine.h * 2.0).abs() < 1e-15);
    }

    #[test]
    fn prolongation_interpolates_linears_exactly() {
        let mut coarse = Grid3::new(5, 5, 5);
        coarse.h = 0.25;
        coarse.fill_with(|x, y, z| x + y + z);
        let mut fine = Grid3::new(9, 9, 9);
        prolong_add(&mut fine, &coarse);
        // At an interior fine point not on the coarse lattice:
        let expect = |i: usize, j: usize, k: usize| {
            // coarse fill used *coarse* coordinates (h=0.25 over index/4):
            // value at coarse (ic,jc,kc) = (ic + jc + kc) * 0.25
            // trilinear interp of a linear function is exact.
            (i as f64 / 2.0 + j as f64 / 2.0 + k as f64 / 2.0) * 0.25
        };
        for (i, j, k) in [(3, 3, 3), (4, 5, 6), (1, 1, 1), (7, 3, 5)] {
            assert!(
                (fine.at(i, j, k) - expect(i, j, k)).abs() < 1e-12,
                "at ({i},{j},{k}): {} vs {}",
                fine.at(i, j, k),
                expect(i, j, k)
            );
        }
    }

    #[test]
    fn vcycles_converge_fast() {
        let (mut u, f, exact) = manufactured_problem(17);
        let stats = vcycle(&mut u, &f, 1e-8, 25, &MgOptions::default());
        assert!(
            *stats.residual_history.last().unwrap() < 1e-8,
            "history: {:?}",
            stats.residual_history
        );
        assert!(stats.cycles <= 25);
        assert!(u.linf_diff(&exact) < 0.02, "discretization-level error");
    }

    #[test]
    fn each_cycle_contracts_the_residual() {
        let (mut u, f, _) = manufactured_problem(17);
        let stats = vcycle(&mut u, &f, 0.0, 6, &MgOptions::default());
        for w in stats.residual_history.windows(2) {
            assert!(w[1] < w[0] * 0.7, "weak contraction: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn multigrid_work_is_far_below_jacobi_work() {
        let (mut u, f, _) = manufactured_problem(17);
        let tol = 1e-7;
        let stats = vcycle(&mut u, &f, tol, 40, &MgOptions::default());
        // Jacobi sweeps to the same tolerance (counted on the host).
        let (u0, f2, _) = manufactured_problem(17);
        let mut state = crate::host::JacobiHostState::new(&u0, &f2);
        let mut jacobi_sweeps = 0usize;
        for _ in 0..60_000 {
            jacobi_sweeps += 1;
            if crate::host::jacobi_sweep_host(&mut state) < tol / 10.0 {
                // update-norm tolerance roughly tracks residual/10 here
                break;
            }
        }
        assert!(
            stats.fine_equivalent_sweeps * 5.0 < jacobi_sweeps as f64,
            "multigrid {} fine-equivalent sweeps vs jacobi {jacobi_sweeps}",
            stats.fine_equivalent_sweeps
        );
    }
}
