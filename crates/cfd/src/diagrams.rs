//! Builders for the paper's pipeline diagrams.
//!
//! [`build_jacobi_document`] constructs, through the public diagram API,
//! exactly the program of paper Figures 2 and 11: a point-Jacobi update of
//! the 3-D Poisson equation with a residual convergence check. The
//! structure follows the hand-drawn Figure 2: the solution array streams
//! out of a memory plane, shift/delay units fan it into the six stencil
//! neighbour streams plus the centre, a tree of adders forms the neighbour
//! sum, the scaled right-hand side is subtracted, the result is scaled by
//! 1/6, masked against the interior mask (so boundary points hold), added
//! back onto the centre stream, and stored to the ping-pong plane — while
//! a min/max unit with register-file feedback reduces `max |update|` into
//! a data cache for the sequencer's convergence test.
//!
//! Variants (experiments T4/T5):
//!
//! * [`JacobiVariant::Full`] — the full machine, as in the paper;
//! * [`JacobiVariant::SingletsOnly`] — every ALS restricted to one active
//!   unit (§6's "simpler architectural model");
//! * [`JacobiVariant::NoSdu`] — no shift/delay units: the six neighbour
//!   streams come from six extra *copies* of the array in other planes
//!   (§3: "it may be necessary to maintain multiple copies of arrays"),
//!   refreshed by broadcast-copy instructions each sweep.
//!
//! [`build_chebyshev_document`] builds a compute-bound Horner-evaluation
//! kernel used by the subset ablation where functional-unit count, not
//! memory bandwidth, is the binding resource.

use crate::host::FtcsCoeffs;
use crate::partition::SweepWindow;
use nsc_arch::{AlsKind, CacheId, FuOp, InPort, PlaneId};
use nsc_diagram::{
    ControlNode, ConvergenceCond, DmaAttrs, Document, FuAssign, IconId, IconKind, InputSpec,
    PadLoc, PadRef, PipelineDiagram, VarDecl,
};

/// Memory-plane roles of the Jacobi program.
pub const PLANE_U0: PlaneId = PlaneId(0);
/// Interior mask plane.
pub const PLANE_MASK: PlaneId = PlaneId(1);
/// Scaled right-hand side plane.
pub const PLANE_G: PlaneId = PlaneId(2);
/// Ping-pong partner of [`PLANE_U0`].
pub const PLANE_U1: PlaneId = PlaneId(3);
/// First of the six copy planes used by the no-SDU variant.
pub const PLANE_COPY0: u8 = 4;
/// Cache and offset where the residual scalar lands.
pub const RESIDUAL_CACHE: CacheId = CacheId(0);

/// Which machine restriction the diagram targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JacobiVariant {
    /// Full NSC (paper Figures 2/11).
    Full,
    /// One active unit per ALS.
    SingletsOnly,
    /// No shift/delay units; neighbour streams from array copies.
    NoSdu,
}

/// Geometry shared by builders and loaders.
#[derive(Debug, Clone, Copy)]
pub struct JacobiGeometry {
    /// Grid points along x (the fastest axis; sets the north/south tap).
    pub nx: usize,
    /// Grid points along y.
    pub ny: usize,
    /// Grid points along z (the slowest axis — the one a 1-D strip
    /// decomposition splits).
    pub nz: usize,
    /// One xy-plane (`nx*ny`).
    pub plane: usize,
    /// Grid points (`nx*ny*nz`).
    pub points: usize,
    /// Padded stream length (`points + 2*plane`).
    pub padded: usize,
}

impl JacobiGeometry {
    /// Geometry for an `n^3` grid.
    pub fn cube(n: usize) -> Self {
        Self::slab(n, n, n)
    }

    /// Geometry for an `nx * ny * nz` slab — the shape a node owns under a
    /// 1-D strip decomposition along z (its planes plus one ghost plane on
    /// each interior side).
    pub fn slab(nx: usize, ny: usize, nz: usize) -> Self {
        let plane = nx * ny;
        let points = plane * nz;
        JacobiGeometry { nx, ny, nz, plane, points, padded: points + 2 * plane }
    }
}

/// The unit placements for one sweep pipeline: `(icon index, position)`
/// per operation, plus the icon shapes to create.
struct UnitPlan {
    icons: Vec<AlsKind>,
    /// Placement of the 11 compute units (order: add_ud, add_ns, add_ew,
    /// add_s4, add_s5, sub_g, mul16, sub_d, mul_mask, add_unew, maxabs).
    slots: Vec<(usize, u8)>,
}

fn plan(variant: JacobiVariant, damped: bool) -> UnitPlan {
    use AlsKind::*;
    match variant {
        JacobiVariant::Full | JacobiVariant::NoSdu => {
            let mut slots = vec![
                (0, 0),
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 1),
                (1, 2),
                (2, 0),
                (2, 1),
                (2, 2),
                (3, 0),
                (3, 2), // maxabs on the min/max-capable tail unit
            ];
            if damped {
                // The omega multiply takes the last free triplet slot.
                slots.push((3, 1));
            }
            UnitPlan { icons: vec![Triplet, Triplet, Triplet, Triplet], slots }
        }
        JacobiVariant::SingletsOnly => UnitPlan {
            icons: vec![
                Triplet, Triplet, Triplet, Triplet, Doublet, Doublet, Doublet, Doublet, Doublet,
                Doublet, Doublet,
            ],
            slots: vec![
                (0, 0),
                (1, 0),
                (2, 0),
                (3, 0),
                (4, 0),
                (5, 0),
                (6, 0),
                (7, 0),
                (8, 0),
                (9, 0),
                (10, 1), // maxabs on a doublet's min/max-capable unit
            ],
        },
    }
}

/// Declare the Jacobi working set (the Figure 5 left region).
fn declare_jacobi_vars(doc: &mut Document, geo: JacobiGeometry, variant: JacobiVariant) {
    let np = geo.padded as u64;
    for (name, plane) in [("u0", PLANE_U0), ("mask", PLANE_MASK), ("g", PLANE_G), ("u1", PLANE_U1)]
    {
        doc.decls.declare(VarDecl { name: name.into(), plane, base: 0, len: np });
    }
    if variant == JacobiVariant::NoSdu {
        for i in 0..6u8 {
            doc.decls.declare(VarDecl {
                name: format!("ucopy{i}"),
                plane: PlaneId(PLANE_COPY0 + i),
                base: 0,
                len: np,
            });
        }
    }
}

/// Build the complete Jacobi document for an `n^3` grid.
///
/// `tol` and `max_iters` program the convergence loop; the loop body is a
/// ping-pong pair of sweeps (u0 -> u1 then u1 -> u0), so iterations are
/// counted in pairs.
pub fn build_jacobi_document(
    n: usize,
    tol: f64,
    max_iters: u32,
    variant: JacobiVariant,
) -> Document {
    build_jacobi_slab_document(JacobiGeometry::cube(n), tol, max_iters, variant)
}

/// Build the Jacobi document for an arbitrary `nx * ny * nz` slab — same
/// pipelines and convergence loop as [`build_jacobi_document`], on the
/// local geometry a decomposed node owns.
pub fn build_jacobi_slab_document(
    geo: JacobiGeometry,
    tol: f64,
    max_iters: u32,
    variant: JacobiVariant,
) -> Document {
    let mut doc = Document::new(format!("jacobi3d-{}x{}x{}", geo.nx, geo.ny, geo.nz));
    declare_jacobi_vars(&mut doc, geo, variant);

    let whole = SweepWindow::whole(geo.nz);
    let sweep_a =
        build_sweep(&mut doc, "point Jacobi sweep (even)", "u0", "u1", geo, variant, None, whole);
    let sweep_b =
        build_sweep(&mut doc, "point Jacobi sweep (odd)", "u1", "u0", geo, variant, None, whole);

    let body = match variant {
        JacobiVariant::NoSdu => {
            // After each sweep, re-broadcast the new iterate into the six
            // copy planes (two instructions: fan-out is capped at four).
            let copy_a1 = build_broadcast(&mut doc, "broadcast u1 (1/2)", "u1", 0, 4, geo);
            let copy_a2 = build_broadcast(&mut doc, "broadcast u1 (2/2)", "u1", 4, 2, geo);
            let copy_b1 = build_broadcast(&mut doc, "broadcast u0 (1/2)", "u0", 0, 4, geo);
            let copy_b2 = build_broadcast(&mut doc, "broadcast u0 (2/2)", "u0", 4, 2, geo);
            ControlNode::Seq(vec![
                ControlNode::Pipeline(sweep_a),
                ControlNode::Pipeline(copy_a1),
                ControlNode::Pipeline(copy_a2),
                ControlNode::Pipeline(sweep_b),
                ControlNode::Pipeline(copy_b1),
                ControlNode::Pipeline(copy_b2),
            ])
        }
        _ => ControlNode::Seq(vec![ControlNode::Pipeline(sweep_a), ControlNode::Pipeline(sweep_b)]),
    };
    doc.control = Some(ControlNode::RepeatUntil {
        cond: ConvergenceCond { cache: RESIDUAL_CACHE, offset: 0, threshold: tol, max_iters },
        body: Box::new(body),
    });
    doc
}

/// Build a *single* Jacobi sweep as its own document: `u0 -> u1` when
/// `even`, `u1 -> u0` otherwise, with no convergence loop. This is the
/// unit of work of the distributed solver, which must interleave halo
/// exchanges between sweeps — the convergence decision moves up to the
/// system level (a global max-reduction of the per-node residuals).
pub fn build_jacobi_sweep_document(geo: JacobiGeometry, even: bool) -> Document {
    build_jacobi_sweep_document_windows(geo, even, &[SweepWindow::whole(geo.nz)])
}

/// [`build_jacobi_sweep_document`] restricted to output *windows*: one
/// pipeline instruction per window, each streaming only the xy-planes its
/// layers need and landing its own `max |masked update|` in the window's
/// cache slot. With disjoint windows covering a slab's owned layers, the
/// windowed document is **bit-identical** on those points to the fused
/// sweep (same operation tree over the same inputs), and the maximum of
/// the window residuals equals the fused residual — the split the
/// overlapped sweep engine runs as interior and boundary-shell phases.
pub fn build_jacobi_sweep_document_windows(
    geo: JacobiGeometry,
    even: bool,
    windows: &[SweepWindow],
) -> Document {
    build_sweep_windows_doc(geo, even, None, windows)
}

/// Build a single *damped* Jacobi sweep as its own document: the plain
/// sweep's update is scaled by `omega` before the mask, so the stored
/// iterate is `u + omega * (jacobi(u) - u)` — the smoothing kernel of the
/// ref. \[6\] multigrid V-cycle, as one extra multiply unit on the last
/// free triplet slot. `u0 -> u1` when `even`, `u1 -> u0` otherwise; the
/// residual reduction still lands `max |omega-scaled masked update|` in
/// the cache (the distributed V-cycle ignores it).
pub fn build_damped_jacobi_sweep_document(geo: JacobiGeometry, even: bool, omega: f64) -> Document {
    build_damped_jacobi_sweep_document_windows(geo, even, omega, &[SweepWindow::whole(geo.nz)])
}

/// [`build_damped_jacobi_sweep_document`] restricted to output windows —
/// see [`build_jacobi_sweep_document_windows`] for the windowing
/// contract.
pub fn build_damped_jacobi_sweep_document_windows(
    geo: JacobiGeometry,
    even: bool,
    omega: f64,
    windows: &[SweepWindow],
) -> Document {
    build_sweep_windows_doc(geo, even, Some(omega), windows)
}

/// Shared body of the windowed single-sweep builders.
fn build_sweep_windows_doc(
    geo: JacobiGeometry,
    even: bool,
    omega: Option<f64>,
    windows: &[SweepWindow],
) -> Document {
    assert!(!windows.is_empty(), "a sweep document needs at least one window");
    let (src, dst, tag) = if even { ("u0", "u1", "even") } else { ("u1", "u0", "odd") };
    let (kind, what) =
        if omega.is_some() { ("smooth", "damped Jacobi") } else { ("sweep", "point Jacobi") };
    let mut doc = Document::new(format!("jacobi3d-{kind}-{tag}-{}x{}x{}", geo.nx, geo.ny, geo.nz));
    declare_jacobi_vars(&mut doc, geo, JacobiVariant::Full);
    let pids: Vec<_> = windows
        .iter()
        .map(|&w| {
            let name = if w.len == geo.nz {
                format!("{what} sweep ({tag})")
            } else {
                format!("{what} sweep ({tag}, planes {}..{})", w.start, w.start + w.len)
            };
            build_sweep(&mut doc, &name, src, dst, geo, JacobiVariant::Full, omega, w)
        })
        .collect();
    doc.control = Some(if pids.len() == 1 {
        ControlNode::Pipeline(pids[0])
    } else {
        ControlNode::Seq(pids.into_iter().map(ControlNode::Pipeline).collect())
    });
    doc
}

/// Geometry of a 2-D five-point Jacobi sweep: rows play the role planes
/// play in 3-D (the pad and the halo unit is one row of `nx` words).
#[derive(Debug, Clone, Copy)]
pub struct Jacobi2dGeometry {
    /// Grid points along x (the fast axis).
    pub nx: usize,
    /// Grid points along y (the axis a strip decomposition splits).
    pub ny: usize,
    /// One row (`nx`).
    pub row: usize,
    /// Grid points (`nx*ny`).
    pub points: usize,
    /// Padded stream length (`points + 2*nx`).
    pub padded: usize,
}

impl Jacobi2dGeometry {
    /// Geometry for an `nx * ny` grid (or the row-slab a node owns).
    pub fn new(nx: usize, ny: usize) -> Self {
        Jacobi2dGeometry { nx, ny, row: nx, points: nx * ny, padded: nx * ny + 2 * nx }
    }
}

/// Build a single 2-D five-point Jacobi sweep document: the plane-Poisson
/// update `u' = (sum(4 neighbours) - g)/4` with masked boundaries and the
/// same feedback `max |update|` residual reduction as the 3-D pipeline.
/// `u0 -> u1` when `even`, `u1 -> u0` otherwise. This is the
/// stream-function solve of the lid-driven cavity (Matyka,
/// physics/0407002), built for the full machine only.
pub fn build_jacobi2d_sweep_document(geo: Jacobi2dGeometry, even: bool) -> Document {
    build_jacobi2d_sweep_document_windows(geo, even, &[SweepWindow::whole(geo.ny)])
}

/// [`build_jacobi2d_sweep_document`] restricted to output windows — runs
/// of *rows* here, since rows play the role xy-planes play in 3-D. See
/// [`build_jacobi_sweep_document_windows`] for the windowing contract.
pub fn build_jacobi2d_sweep_document_windows(
    geo: Jacobi2dGeometry,
    even: bool,
    windows: &[SweepWindow],
) -> Document {
    assert!(!windows.is_empty(), "a sweep document needs at least one window");
    let (src, dst, tag) = if even { ("u0", "u1", "even") } else { ("u1", "u0", "odd") };
    let mut doc = Document::new(format!("jacobi2d-sweep-{tag}-{}x{}", geo.nx, geo.ny));
    let np = geo.padded as u64;
    for (name, plane) in [("u0", PLANE_U0), ("mask", PLANE_MASK), ("g", PLANE_G), ("u1", PLANE_U1)]
    {
        doc.decls.declare(VarDecl { name: name.into(), plane, base: 0, len: np });
    }
    let pids: Vec<_> = windows
        .iter()
        .map(|&w| {
            let name = if w.len == geo.ny {
                format!("2-D Jacobi sweep ({tag})")
            } else {
                format!("2-D Jacobi sweep ({tag}, rows {}..{})", w.start, w.start + w.len)
            };
            build_sweep2d(&mut doc, &name, src, dst, geo, w)
        })
        .collect();
    doc.control = Some(if pids.len() == 1 {
        ControlNode::Pipeline(pids[0])
    } else {
        ControlNode::Seq(pids.into_iter().map(ControlNode::Pipeline).collect())
    });
    doc
}

/// One windowed 2-D five-point sweep pipeline (see
/// [`build_jacobi2d_sweep_document_windows`]).
fn build_sweep2d(
    doc: &mut Document,
    name: &str,
    src: &str,
    dst: &str,
    geo: Jacobi2dGeometry,
    window: SweepWindow,
) -> nsc_diagram::PipelineId {
    assert!(window.start + window.len <= geo.ny, "window exceeds the slab");
    assert!(window.len > 0, "empty sweep window");
    let pid = doc.add_pipeline(name);
    let h = geo.row as u64;
    let w0 = window.start as u64 * h;
    let wpts = window.len as u64 * h;
    let d = doc.pipeline_mut(pid).unwrap();
    d.stream_len = wpts + 2 * h;

    // Nine compute units on three triplets; the maxabs reduction sits on a
    // min/max-capable tail unit, as in the 3-D placement.
    let icons: Vec<IconId> = (0..3).map(|_| d.add_icon(IconKind::als(AlsKind::Triplet))).collect();
    let slots: [(usize, u8); 9] =
        [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2), (2, 0), (2, 1), (2, 2)];
    let unit = |i: usize| -> (IconId, u8) {
        let (icon, pos) = slots[i];
        (icons[icon], pos)
    };
    const ADD_NS: usize = 0;
    const ADD_EW: usize = 1;
    const ADD_S3: usize = 2;
    const SUB_G: usize = 3;
    const MUL14: usize = 4;
    const SUB_D: usize = 5;
    const MUL_MASK: usize = 6;
    const ADD_UNEW: usize = 7;
    const MAXABS: usize = 8;

    let mem_mask = d.add_icon(IconKind::memory());
    let mem_g = d.add_icon(IconKind::memory());
    let mem_out = d.add_icon(IconKind::memory());
    let cache_res = d.add_icon(IconKind::cache());

    let fu_in = |u: (IconId, u8), port: InPort| PadLoc::new(u.0, PadRef::FuIn { pos: u.1, port });
    let fu_out = |u: (IconId, u8)| PadLoc::new(u.0, PadRef::FuOut { pos: u.1 });

    // Five u-streams from two shift/delay units, delays relative to the
    // leading (j+1) row: north 0, east h-1, west h+1; south 2h, centre h
    // (a delay d taps stream element q+2h-d, as in the 3-D builder).
    let mem_u = d.add_icon(IconKind::memory());
    let sdu0 = d.add_icon(IconKind::sdu());
    let sdu1 = d.add_icon(IconKind::sdu());
    let hh = h as u16;
    d.set_sdu_taps(sdu0, vec![0, hh - 1, hh + 1]).unwrap();
    d.set_sdu_taps(sdu1, vec![2 * hh, hh]).unwrap();
    for sdu in [sdu0, sdu1] {
        d.connect(
            PadLoc::new(mem_u, PadRef::Io),
            PadLoc::new(sdu, PadRef::SduIn),
            Some(DmaAttrs::variable(src).with_offset(w0)),
        )
        .unwrap();
    }
    let tap = |sdu: IconId, t: u8| PadLoc::new(sdu, PadRef::SduTap { tap: t });
    d.connect(tap(sdu0, 0), fu_in(unit(ADD_NS), InPort::A), None).unwrap(); // north
    d.connect(tap(sdu1, 0), fu_in(unit(ADD_NS), InPort::B), None).unwrap(); // south
    d.connect(tap(sdu0, 1), fu_in(unit(ADD_EW), InPort::A), None).unwrap(); // east
    d.connect(tap(sdu0, 2), fu_in(unit(ADD_EW), InPort::B), None).unwrap(); // west
    for sink in [fu_in(unit(SUB_D), InPort::B), fu_in(unit(ADD_UNEW), InPort::A)] {
        d.connect(tap(sdu1, 1), sink, None).unwrap(); // centre
    }

    // The arithmetic tree: ((n+s) + (e+w) - g) / 4, masked update.
    let ops = [
        (ADD_NS, FuAssign::binary(FuOp::Add)),
        (ADD_EW, FuAssign::binary(FuOp::Add)),
        (ADD_S3, FuAssign::binary(FuOp::Add)),
        (SUB_G, FuAssign::binary(FuOp::Sub)),
        (MUL14, FuAssign::with_const(FuOp::Mul, 1.0 / 4.0)),
        (SUB_D, FuAssign::binary(FuOp::Sub)),
        (MUL_MASK, FuAssign::binary(FuOp::Mul)),
        (ADD_UNEW, FuAssign::binary(FuOp::Add)),
        (MAXABS, FuAssign::reduction(FuOp::MaxAbs, 0.0)),
    ];
    for (u, assign) in ops {
        let (icon, pos) = unit(u);
        d.assign_fu(icon, pos, assign).unwrap();
    }
    let wire = |d: &mut PipelineDiagram, from: usize, to: usize, port: InPort| {
        d.connect(fu_out(unit(from)), fu_in(unit(to), port), None).unwrap();
    };
    wire(d, ADD_NS, ADD_S3, InPort::A);
    wire(d, ADD_EW, ADD_S3, InPort::B);
    wire(d, ADD_S3, SUB_G, InPort::A);
    wire(d, SUB_G, MUL14, InPort::A);
    wire(d, MUL14, SUB_D, InPort::A);
    wire(d, SUB_D, MUL_MASK, InPort::A);
    wire(d, MUL_MASK, ADD_UNEW, InPort::B);
    wire(d, MUL_MASK, MAXABS, InPort::A);

    // Mask and scaled-RHS streams, stored `aligned` (front pad 2h).
    d.connect(
        PadLoc::new(mem_g, PadRef::Io),
        fu_in(unit(SUB_G), InPort::B),
        Some(DmaAttrs::variable("g").with_offset(w0)),
    )
    .unwrap();
    d.connect(
        PadLoc::new(mem_mask, PadRef::Io),
        fu_in(unit(MUL_MASK), InPort::B),
        Some(DmaAttrs::variable("mask").with_offset(w0)),
    )
    .unwrap();

    // Stores: the new iterate and the window's residual scalar.
    d.connect(
        fu_out(unit(ADD_UNEW)),
        PadLoc::new(mem_out, PadRef::Io),
        Some(DmaAttrs::variable(dst).with_offset(h + w0).with_count(wpts)),
    )
    .unwrap();
    d.connect(
        fu_out(unit(MAXABS)),
        PadLoc::new(cache_res, PadRef::Io),
        Some(DmaAttrs::at_address(window.slot).last_only()),
    )
    .unwrap();

    pid
}

/// Vorticity plane of the cavity's FTCS transport step (stencil layout,
/// streamed through a shift/delay unit).
pub const PLANE_W0: PlaneId = PlaneId(4);
/// Second copy of the vorticity (aligned layout) feeding the centre
/// stream directly — each plane has one read port, so the SDU stream and
/// the centre stream cannot share one plane (§3's "multiple copies of
/// arrays").
pub const PLANE_WC: PlaneId = PlaneId(5);
/// Output plane of the FTCS transport step.
pub const PLANE_W1: PlaneId = PlaneId(6);

/// Build the cavity's vorticity-transport pipeline: one FTCS step of
/// `ω_t + u ω_x + v ω_y = ∇²ω / Re` with `u = ψ_y`, `v = -ψ_x` by central
/// differences — 21 units fed by two shift/delay units (five-point ψ and
/// ω stencils) plus a direct ω-centre stream, masked so walls and ghost
/// cells hold. Reads ψ from [`PLANE_U0`] (stencil layout), ω from
/// [`PLANE_W0`] (stencil) and [`PLANE_WC`] (aligned copy), the interior
/// mask from [`PLANE_MASK`]; writes the advanced vorticity to
/// [`PLANE_W1`]. `coeffs` folds `h`, `Re` and `dt` into the three
/// multiply constants ([`FtcsCoeffs`] keeps the host mirror
/// bit-compatible).
pub fn build_ftcs_transport_document(geo: Jacobi2dGeometry, coeffs: FtcsCoeffs) -> Document {
    let mut doc = Document::new(format!("cavity-ftcs-{}x{}", geo.nx, geo.ny));
    let np = geo.padded as u64;
    for (name, plane) in [
        ("psi", PLANE_U0),
        ("mask", PLANE_MASK),
        ("w0", PLANE_W0),
        ("wc", PLANE_WC),
        ("w1", PLANE_W1),
    ] {
        doc.decls.declare(VarDecl { name: name.into(), plane, base: 0, len: np });
    }

    let pid = doc.add_pipeline("vorticity FTCS step");
    let h = geo.row as u64;
    let hh = h as u16;
    let d = doc.pipeline_mut(pid).unwrap();
    d.stream_len = geo.padded as u64;

    let units = alloc_unit_slots(d, 21);
    const SUB_PNS: usize = 0; // ψn - ψs
    const MUL_U: usize = 1; // u = (ψn - ψs) · c1
    const SUB_PWE: usize = 2; // ψw - ψe
    const MUL_V: usize = 3; // v = (ψw - ψe) · c1
    const SUB_WEW: usize = 4; // ωe - ωw
    const MUL_WX: usize = 5; // ωx
    const SUB_WNS: usize = 6; // ωn - ωs
    const MUL_WY: usize = 7; // ωy
    const ADD_WEW: usize = 8; // ωe + ωw
    const ADD_WNS: usize = 9; // ωn + ωs
    const ADD_S4: usize = 10; // four-neighbour sum
    const MUL_C4: usize = 11; // 4·ωc
    const SUB_LAP: usize = 12; // sum - 4ωc
    const MUL_C2: usize = 13; // · c2 = ∇²ω / Re
    const MUL_A1: usize = 14; // u·ωx
    const MUL_A2: usize = 15; // v·ωy
    const ADD_ADV: usize = 16; // u·ωx + v·ωy
    const SUB_RHS: usize = 17; // diffusion - advection
    const MUL_DT: usize = 18; // · dt
    const MUL_MASK: usize = 19; // · mask
    const ADD_OUT: usize = 20; // ωc + masked update

    let fu_in =
        |u: usize, port: InPort| PadLoc::new(units[u].0, PadRef::FuIn { pos: units[u].1, port });
    let fu_out = |u: usize| PadLoc::new(units[u].0, PadRef::FuOut { pos: units[u].1 });

    // ψ and ω five-point streams from one shift/delay unit each; delays
    // relative to the leading (j+1) row as in the 2-D Jacobi builder.
    let mem_psi = d.add_icon(IconKind::memory());
    let mem_w = d.add_icon(IconKind::memory());
    let sdu_psi = d.add_icon(IconKind::sdu());
    let sdu_w = d.add_icon(IconKind::sdu());
    d.set_sdu_taps(sdu_psi, vec![0, 2 * hh, hh - 1, hh + 1]).unwrap();
    d.set_sdu_taps(sdu_w, vec![0, 2 * hh, hh - 1, hh + 1]).unwrap();
    d.connect(
        PadLoc::new(mem_psi, PadRef::Io),
        PadLoc::new(sdu_psi, PadRef::SduIn),
        Some(DmaAttrs::variable("psi")),
    )
    .unwrap();
    d.connect(
        PadLoc::new(mem_w, PadRef::Io),
        PadLoc::new(sdu_w, PadRef::SduIn),
        Some(DmaAttrs::variable("w0")),
    )
    .unwrap();
    let tap = |sdu: IconId, t: u8| PadLoc::new(sdu, PadRef::SduTap { tap: t });
    // ψ taps: north, south, east, west.
    d.connect(tap(sdu_psi, 0), fu_in(SUB_PNS, InPort::A), None).unwrap();
    d.connect(tap(sdu_psi, 1), fu_in(SUB_PNS, InPort::B), None).unwrap();
    d.connect(tap(sdu_psi, 2), fu_in(SUB_PWE, InPort::B), None).unwrap(); // east
    d.connect(tap(sdu_psi, 3), fu_in(SUB_PWE, InPort::A), None).unwrap(); // west
                                                                          // ω taps fan out to the derivative subs and the Laplacian adds.
    d.connect(tap(sdu_w, 0), fu_in(SUB_WNS, InPort::A), None).unwrap();
    d.connect(tap(sdu_w, 0), fu_in(ADD_WNS, InPort::A), None).unwrap();
    d.connect(tap(sdu_w, 1), fu_in(SUB_WNS, InPort::B), None).unwrap();
    d.connect(tap(sdu_w, 1), fu_in(ADD_WNS, InPort::B), None).unwrap();
    d.connect(tap(sdu_w, 2), fu_in(SUB_WEW, InPort::A), None).unwrap();
    d.connect(tap(sdu_w, 2), fu_in(ADD_WEW, InPort::A), None).unwrap();
    d.connect(tap(sdu_w, 3), fu_in(SUB_WEW, InPort::B), None).unwrap();
    d.connect(tap(sdu_w, 3), fu_in(ADD_WEW, InPort::B), None).unwrap();
    // The ω centre stream comes straight from the aligned copy plane.
    let mem_wc = d.add_icon(IconKind::memory());
    for sink in [fu_in(MUL_C4, InPort::A), fu_in(ADD_OUT, InPort::A)] {
        d.connect(PadLoc::new(mem_wc, PadRef::Io), sink, Some(DmaAttrs::variable("wc"))).unwrap();
    }
    // Mask stream.
    let mem_mask = d.add_icon(IconKind::memory());
    d.connect(
        PadLoc::new(mem_mask, PadRef::Io),
        fu_in(MUL_MASK, InPort::B),
        Some(DmaAttrs::variable("mask")),
    )
    .unwrap();

    let ops = [
        (SUB_PNS, FuAssign::binary(FuOp::Sub)),
        (MUL_U, FuAssign::with_const(FuOp::Mul, coeffs.c1)),
        (SUB_PWE, FuAssign::binary(FuOp::Sub)),
        (MUL_V, FuAssign::with_const(FuOp::Mul, coeffs.c1)),
        (SUB_WEW, FuAssign::binary(FuOp::Sub)),
        (MUL_WX, FuAssign::with_const(FuOp::Mul, coeffs.c1)),
        (SUB_WNS, FuAssign::binary(FuOp::Sub)),
        (MUL_WY, FuAssign::with_const(FuOp::Mul, coeffs.c1)),
        (ADD_WEW, FuAssign::binary(FuOp::Add)),
        (ADD_WNS, FuAssign::binary(FuOp::Add)),
        (ADD_S4, FuAssign::binary(FuOp::Add)),
        (MUL_C4, FuAssign::with_const(FuOp::Mul, 4.0)),
        (SUB_LAP, FuAssign::binary(FuOp::Sub)),
        (MUL_C2, FuAssign::with_const(FuOp::Mul, coeffs.c2)),
        (MUL_A1, FuAssign::binary(FuOp::Mul)),
        (MUL_A2, FuAssign::binary(FuOp::Mul)),
        (ADD_ADV, FuAssign::binary(FuOp::Add)),
        (SUB_RHS, FuAssign::binary(FuOp::Sub)),
        (MUL_DT, FuAssign::with_const(FuOp::Mul, coeffs.dt)),
        (MUL_MASK, FuAssign::binary(FuOp::Mul)),
        (ADD_OUT, FuAssign::binary(FuOp::Add)),
    ];
    for (u, assign) in ops {
        let (icon, pos) = units[u];
        d.assign_fu(icon, pos, assign).unwrap();
    }
    let wire = |d: &mut PipelineDiagram, from: usize, to: usize, port: InPort| {
        d.connect(fu_out(from), fu_in(to, port), None).unwrap();
    };
    wire(d, SUB_PNS, MUL_U, InPort::A);
    wire(d, SUB_PWE, MUL_V, InPort::A);
    wire(d, SUB_WEW, MUL_WX, InPort::A);
    wire(d, SUB_WNS, MUL_WY, InPort::A);
    wire(d, ADD_WEW, ADD_S4, InPort::A);
    wire(d, ADD_WNS, ADD_S4, InPort::B);
    wire(d, MUL_C4, SUB_LAP, InPort::B);
    wire(d, ADD_S4, SUB_LAP, InPort::A);
    wire(d, SUB_LAP, MUL_C2, InPort::A);
    wire(d, MUL_U, MUL_A1, InPort::A);
    wire(d, MUL_WX, MUL_A1, InPort::B);
    wire(d, MUL_V, MUL_A2, InPort::A);
    wire(d, MUL_WY, MUL_A2, InPort::B);
    wire(d, MUL_A1, ADD_ADV, InPort::A);
    wire(d, MUL_A2, ADD_ADV, InPort::B);
    wire(d, MUL_C2, SUB_RHS, InPort::A);
    wire(d, ADD_ADV, SUB_RHS, InPort::B);
    wire(d, SUB_RHS, MUL_DT, InPort::A);
    wire(d, MUL_DT, MUL_MASK, InPort::A);
    wire(d, MUL_MASK, ADD_OUT, InPort::B);

    // Store the advanced vorticity into the output plane's data region.
    let mem_out = d.add_icon(IconKind::memory());
    d.connect(
        fu_out(ADD_OUT),
        PadLoc::new(mem_out, PadRef::Io),
        Some(DmaAttrs::variable("w1").with_offset(h).with_count(geo.points as u64)),
    )
    .unwrap();

    doc.control = Some(ControlNode::Pipeline(pid));
    doc
}

/// One sweep pipeline reading `src` and writing `dst`. `damping` adds an
/// `omega` multiply between the update and the mask (the multigrid
/// smoother; full variant only). `window` restricts the output to a run
/// of xy-planes: the stream starts `2h` elements before the window's
/// first output point and covers exactly `window.len` planes, so the
/// operation tree sees the same inputs as the fused sweep on those
/// points (the no-SDU variant streams differently and accepts only the
/// whole-slab window).
#[allow(clippy::too_many_arguments)] // one knob per paper experiment axis
fn build_sweep(
    doc: &mut Document,
    name: &str,
    src: &str,
    dst: &str,
    geo: JacobiGeometry,
    variant: JacobiVariant,
    damping: Option<f64>,
    window: SweepWindow,
) -> nsc_diagram::PipelineId {
    assert!(
        damping.is_none() || variant == JacobiVariant::Full,
        "the damped smoother is built for the full machine only"
    );
    assert!(window.start + window.len <= geo.nz, "window exceeds the slab");
    assert!(window.len > 0, "empty sweep window");
    let pid = doc.add_pipeline(name);
    let h = geo.plane as u64;
    // Window origin and extent in stream elements.
    let w0 = window.start as u64 * h;
    let wpts = window.len as u64 * h;
    let d = doc.pipeline_mut(pid).unwrap();
    d.stream_len = match variant {
        JacobiVariant::NoSdu => {
            assert!(
                window.start == 0 && window.len == geo.nz,
                "the no-SDU variant streams whole slabs only"
            );
            geo.points as u64
        }
        _ => wpts + 2 * h,
    };

    // Compute units.
    let unit_plan = plan(variant, damping.is_some());
    let als_icons: Vec<IconId> =
        unit_plan.icons.iter().map(|&k| d.add_icon(IconKind::als(k))).collect();
    let unit = |i: usize| -> (IconId, u8) {
        let (icon, pos) = unit_plan.slots[i];
        (als_icons[icon], pos)
    };
    const ADD_UD: usize = 0;
    const ADD_NS: usize = 1;
    const ADD_EW: usize = 2;
    const ADD_S4: usize = 3;
    const ADD_S5: usize = 4;
    const SUB_G: usize = 5;
    const MUL16: usize = 6;
    const SUB_D: usize = 7;
    const MUL_MASK: usize = 8;
    const ADD_UNEW: usize = 9;
    const MAXABS: usize = 10;
    const MUL_OMEGA: usize = 11;

    // Storage icons.
    let mem_mask = d.add_icon(IconKind::memory());
    let mem_g = d.add_icon(IconKind::memory());
    let mem_out = d.add_icon(IconKind::memory());
    let cache_res = d.add_icon(IconKind::cache());

    let fu_in = |u: (IconId, u8), port: InPort| PadLoc::new(u.0, PadRef::FuIn { pos: u.1, port });
    let fu_out = |u: (IconId, u8)| PadLoc::new(u.0, PadRef::FuOut { pos: u.1 });

    // ------------------------------------------------------------------
    // neighbour streams
    // ------------------------------------------------------------------
    // Wires carrying (stream, sink) pairs for the seven u-streams:
    // up, down, north, south, east, west, centre(x2 fan-out).
    let centre_sinks = [fu_in(unit(SUB_D), InPort::B), fu_in(unit(ADD_UNEW), InPort::A)];
    match variant {
        JacobiVariant::Full | JacobiVariant::SingletsOnly => {
            let mem_u = d.add_icon(IconKind::memory());
            let sdu0 = d.add_icon(IconKind::sdu());
            let sdu1 = d.add_icon(IconKind::sdu());
            // Tap programming: delays relative to the leading (k+1) plane.
            let nx = geo.nx as u16;
            let hh = h as u16;
            d.set_sdu_taps(sdu0, vec![0, hh - nx, hh - 1, hh + 1]).unwrap();
            d.set_sdu_taps(sdu1, vec![hh + nx, 2 * hh, hh]).unwrap();
            for sdu in [sdu0, sdu1] {
                d.connect(
                    PadLoc::new(mem_u, PadRef::Io),
                    PadLoc::new(sdu, PadRef::SduIn),
                    Some(DmaAttrs::variable(src).with_offset(w0)),
                )
                .unwrap();
            }
            let tap = |sdu: IconId, t: u8| PadLoc::new(sdu, PadRef::SduTap { tap: t });
            d.connect(tap(sdu0, 0), fu_in(unit(ADD_UD), InPort::A), None).unwrap(); // up
            d.connect(tap(sdu1, 1), fu_in(unit(ADD_UD), InPort::B), None).unwrap(); // down
            d.connect(tap(sdu0, 1), fu_in(unit(ADD_NS), InPort::A), None).unwrap(); // north
            d.connect(tap(sdu1, 0), fu_in(unit(ADD_NS), InPort::B), None).unwrap(); // south
            d.connect(tap(sdu0, 2), fu_in(unit(ADD_EW), InPort::A), None).unwrap(); // east
            d.connect(tap(sdu0, 3), fu_in(unit(ADD_EW), InPort::B), None).unwrap(); // west
            for sink in centre_sinks {
                d.connect(tap(sdu1, 2), sink, None).unwrap(); // centre
            }
        }
        JacobiVariant::NoSdu => {
            // Six copy planes + the source plane for the centre stream.
            // Each binary add would read two planes, which §3 forbids, so
            // one operand of each pair is staged through a COPY unit.
            let stage = [
                d.add_icon(IconKind::als(AlsKind::Doublet)),
                d.add_icon(IconKind::als(AlsKind::Doublet)),
            ];
            let stage_units = [(stage[0], 0u8), (stage[0], 1u8), (stage[1], 0u8)];
            let nx = geo.nx as u64;
            // (variable, base offset, destination)
            let direct = [
                ("ucopy0", 2 * h, fu_in(unit(ADD_UD), InPort::A)), // up
                ("ucopy2", h + nx, fu_in(unit(ADD_NS), InPort::A)), // north
                ("ucopy4", h + 1, fu_in(unit(ADD_EW), InPort::A)), // east
            ];
            let staged = [
                ("ucopy1", 0u64, 0usize, fu_in(unit(ADD_UD), InPort::B)), // down
                ("ucopy3", h - nx, 1, fu_in(unit(ADD_NS), InPort::B)),    // south
                ("ucopy5", h - 1, 2, fu_in(unit(ADD_EW), InPort::B)),     // west
            ];
            for (var, base, sink) in direct {
                let m = d.add_icon(IconKind::memory());
                d.connect(
                    PadLoc::new(m, PadRef::Io),
                    sink,
                    Some(DmaAttrs::variable(var).with_offset(base)),
                )
                .unwrap();
            }
            for (var, base, stage_idx, sink) in staged {
                let m = d.add_icon(IconKind::memory());
                let cu = stage_units[stage_idx];
                d.connect(
                    PadLoc::new(m, PadRef::Io),
                    fu_in(cu, InPort::A),
                    Some(DmaAttrs::variable(var).with_offset(base)),
                )
                .unwrap();
                d.assign_fu(cu.0, cu.1, FuAssign::unary(FuOp::Copy)).unwrap();
                d.connect(fu_out(cu), sink, None).unwrap();
            }
            // Centre stream straight from the source plane.
            let mem_u = d.add_icon(IconKind::memory());
            for sink in centre_sinks {
                d.connect(
                    PadLoc::new(mem_u, PadRef::Io),
                    sink,
                    Some(DmaAttrs::variable(src).with_offset(h)),
                )
                .unwrap();
            }
        }
    }

    // ------------------------------------------------------------------
    // the arithmetic tree (paper Equation 1)
    // ------------------------------------------------------------------
    let mut ops = vec![
        (ADD_UD, FuAssign::binary(FuOp::Add)),
        (ADD_NS, FuAssign::binary(FuOp::Add)),
        (ADD_EW, FuAssign::binary(FuOp::Add)),
        (ADD_S4, FuAssign::binary(FuOp::Add)),
        (ADD_S5, FuAssign::binary(FuOp::Add)),
        (SUB_G, FuAssign::binary(FuOp::Sub)),
        (MUL16, FuAssign::with_const(FuOp::Mul, 1.0 / 6.0)),
        (SUB_D, FuAssign::binary(FuOp::Sub)),
        (MUL_MASK, FuAssign::binary(FuOp::Mul)),
        (ADD_UNEW, FuAssign::binary(FuOp::Add)),
        (MAXABS, FuAssign::reduction(FuOp::MaxAbs, 0.0)),
    ];
    if let Some(omega) = damping {
        ops.push((MUL_OMEGA, FuAssign::with_const(FuOp::Mul, omega)));
    }
    for (u, assign) in ops {
        let (icon, pos) = unit(u);
        d.assign_fu(icon, pos, assign).unwrap();
    }
    let wire = |d: &mut PipelineDiagram, from: usize, to: usize, port: InPort| {
        d.connect(fu_out(unit(from)), fu_in(unit(to), port), None).unwrap();
    };
    wire(d, ADD_UD, ADD_S4, InPort::A);
    wire(d, ADD_NS, ADD_S4, InPort::B);
    wire(d, ADD_S4, ADD_S5, InPort::A);
    wire(d, ADD_EW, ADD_S5, InPort::B);
    wire(d, ADD_S5, SUB_G, InPort::A);
    wire(d, SUB_G, MUL16, InPort::A);
    wire(d, MUL16, SUB_D, InPort::A);
    if damping.is_some() {
        // The damped smoother scales the update by omega before masking.
        wire(d, SUB_D, MUL_OMEGA, InPort::A);
        wire(d, MUL_OMEGA, MUL_MASK, InPort::A);
    } else {
        wire(d, SUB_D, MUL_MASK, InPort::A);
    }
    wire(d, MUL_MASK, ADD_UNEW, InPort::B);
    wire(d, MUL_MASK, MAXABS, InPort::A);

    // Mask and scaled-RHS streams. Under the SDU layout they are stored
    // `aligned` (front pad 2h, offset 0); the no-SDU variant streams the
    // same images starting at the data (offset 2h).
    let storage_base = match variant {
        JacobiVariant::NoSdu => 2 * h,
        _ => w0,
    };
    d.connect(
        PadLoc::new(mem_g, PadRef::Io),
        fu_in(unit(SUB_G), InPort::B),
        Some(DmaAttrs::variable("g").with_offset(storage_base)),
    )
    .unwrap();
    d.connect(
        PadLoc::new(mem_mask, PadRef::Io),
        fu_in(unit(MUL_MASK), InPort::B),
        Some(DmaAttrs::variable("mask").with_offset(storage_base)),
    )
    .unwrap();

    // Stores: the new iterate (into the pong plane's window) and the
    // window's residual scalar.
    d.connect(
        fu_out(unit(ADD_UNEW)),
        PadLoc::new(mem_out, PadRef::Io),
        Some(DmaAttrs::variable(dst).with_offset(h + w0).with_count(wpts)),
    )
    .unwrap();
    d.connect(
        fu_out(unit(MAXABS)),
        PadLoc::new(cache_res, PadRef::Io),
        Some(DmaAttrs::at_address(window.slot).last_only()),
    )
    .unwrap();

    pid
}

/// A broadcast-copy pipeline: one plane fanned out to `n_dst` copy planes
/// starting at copy slot `first_dst` (no-SDU variant only).
fn build_broadcast(
    doc: &mut Document,
    name: &str,
    src: &str,
    first_dst: u8,
    n_dst: u8,
    geo: JacobiGeometry,
) -> nsc_diagram::PipelineId {
    let pid = doc.add_pipeline(name);
    let d = doc.pipeline_mut(pid).unwrap();
    d.stream_len = geo.padded as u64;
    let mem_src = d.add_icon(IconKind::memory());
    // n_dst copy units across ceil(n_dst/2) doublets.
    let mut units: Vec<(IconId, u8)> = Vec::new();
    for _ in 0..n_dst.div_ceil(2) {
        let icon = d.add_icon(IconKind::als(AlsKind::Doublet));
        units.push((icon, 0));
        units.push((icon, 1));
    }
    units.truncate(n_dst as usize);
    for (slot, &(icon, pos)) in units.iter().enumerate() {
        d.assign_fu(icon, pos, FuAssign::unary(FuOp::Copy)).unwrap();
        d.connect(
            PadLoc::new(mem_src, PadRef::Io),
            PadLoc::new(icon, PadRef::FuIn { pos, port: InPort::A }),
            Some(DmaAttrs::variable(src)),
        )
        .unwrap();
        let m = d.add_icon(IconKind::memory());
        d.connect(
            PadLoc::new(icon, PadRef::FuOut { pos }),
            PadLoc::new(m, PadRef::Io),
            Some(DmaAttrs::variable(format!("ucopy{}", first_dst + slot as u8))),
        )
        .unwrap();
    }
    pid
}

/// Allocate `needed` unit slots across mixed ALS shapes, triplets first
/// (the 1988 machine offers 32 slots in total).
fn alloc_unit_slots(d: &mut PipelineDiagram, needed: usize) -> Vec<(IconId, u8)> {
    let mut slots = Vec::new();
    let shapes =
        [(AlsKind::Triplet, 4usize, 3u8), (AlsKind::Doublet, 8, 2), (AlsKind::Singlet, 4, 1)];
    'outer: for (kind, max_icons, units) in shapes {
        for _ in 0..max_icons {
            if slots.len() >= needed {
                break 'outer;
            }
            let icon = d.add_icon(IconKind::als(kind));
            for p in 0..units {
                slots.push((icon, p));
            }
        }
    }
    assert!(slots.len() >= needed, "kernel needs {needed} units; the node has 32");
    slots
}

/// A compute-bound kernel for the subset ablation: Horner evaluation of a
/// degree-`coeffs.len()-1` polynomial over a `count`-element stream, split
/// into instructions of at most `stages_per_instr` Horner stages (the full
/// machine fits them all in one; a singlets-only machine cannot).
///
/// Plane 0 holds x; plane 1 receives y; plane 2 stages intermediates.
pub fn build_chebyshev_document(count: u64, coeffs: &[f64], stages_per_instr: usize) -> Document {
    assert!(coeffs.len() >= 2, "need at least a linear polynomial");
    assert!(stages_per_instr >= 1);
    let mut doc = Document::new(format!("horner-deg{}", coeffs.len() - 1));
    doc.decls.declare(VarDecl { name: "x".into(), plane: PlaneId(0), base: 0, len: count });
    doc.decls.declare(VarDecl { name: "y".into(), plane: PlaneId(1), base: 0, len: count });
    doc.decls.declare(VarDecl { name: "t".into(), plane: PlaneId(2), base: 0, len: count });

    // Horner: acc = c[n-1]; for i in (0..n-1).rev(): acc = acc*x + c[i]
    let stages: Vec<f64> = coeffs[..coeffs.len() - 1].iter().rev().copied().collect();
    let chunks: Vec<&[f64]> = stages.chunks(stages_per_instr).collect();
    let n_chunks = chunks.len();
    let mut pids = Vec::new();
    for (ci, chunk) in chunks.into_iter().enumerate() {
        let first = ci == 0;
        let last = ci == n_chunks - 1;
        let pid = doc.add_pipeline(format!("horner chunk {ci}"));
        let d = doc.pipeline_mut(pid).unwrap();
        d.stream_len = count;
        let mem_x = d.add_icon(IconKind::memory());
        let mem_in = d.add_icon(IconKind::memory());
        let mem_out = d.add_icon(IconKind::memory());
        let in_var = if first {
            "x"
        } else if ci % 2 == 1 {
            "t"
        } else {
            "y"
        };
        let out_var = if last || ci % 2 == 1 { "y" } else { "t" };

        // x fan-out tree: each COPY unit feeds up to 3 Horner muls plus
        // the next copy.
        let n_units = chunk.len() * 2; // mul + add-const per stage
        let n_copies = chunk.len().div_ceil(3);
        let needed = n_units + n_copies;
        let als = alloc_unit_slots(d, needed);
        let copies = &als[..n_copies];
        let units = &als[n_copies..needed];
        // Wire the x distribution: plane -> copy0 -> copy1 -> ...
        let mut x_src: Vec<PadLoc> = Vec::new();
        for (i, &(icon, pos)) in copies.iter().enumerate() {
            d.assign_fu(icon, pos, FuAssign::unary(FuOp::Copy)).unwrap();
            let from = if i == 0 {
                PadLoc::new(mem_x, PadRef::Io)
            } else {
                let (pi, pp) = copies[i - 1];
                PadLoc::new(pi, PadRef::FuOut { pos: pp })
            };
            let attrs = (i == 0).then(|| DmaAttrs::variable("x"));
            d.connect(from, PadLoc::new(icon, PadRef::FuIn { pos, port: InPort::A }), attrs)
                .unwrap();
            x_src.push(PadLoc::new(icon, PadRef::FuOut { pos }));
        }
        // Horner stages: mul(acc, x) then add-const.
        let mut acc_src = PadLoc::new(mem_in, PadRef::Io);
        let mut acc_attrs = Some(DmaAttrs::variable(in_var));
        for (si, &c) in chunk.iter().enumerate() {
            let (mi, mp) = units[2 * si];
            let (ai, ap) = units[2 * si + 1];
            d.assign_fu(mi, mp, FuAssign::binary(FuOp::Mul)).unwrap();
            let add_c = if first && si == 0 {
                // First stage folds the leading coefficient: acc was x, so
                // compute c_top*x + c_next via mul-by-const then add-const.
                FuAssign { op: FuOp::Add, in_a: InputSpec::Wire, in_b: InputSpec::Constant(c) }
            } else {
                FuAssign { op: FuOp::Add, in_a: InputSpec::Wire, in_b: InputSpec::Constant(c) }
            };
            d.assign_fu(ai, ap, add_c).unwrap();
            d.connect(
                acc_src,
                PadLoc::new(mi, PadRef::FuIn { pos: mp, port: InPort::A }),
                acc_attrs.take(),
            )
            .unwrap();
            d.connect(
                x_src[si / 3],
                PadLoc::new(mi, PadRef::FuIn { pos: mp, port: InPort::B }),
                None,
            )
            .unwrap();
            d.connect(
                PadLoc::new(mi, PadRef::FuOut { pos: mp }),
                PadLoc::new(ai, PadRef::FuIn { pos: ap, port: InPort::A }),
                None,
            )
            .unwrap();
            acc_src = PadLoc::new(ai, PadRef::FuOut { pos: ap });
        }
        d.connect(acc_src, PadLoc::new(mem_out, PadRef::Io), Some(DmaAttrs::variable(out_var)))
            .unwrap();
        pids.push(pid);
    }
    // Scale the very first stage by the leading coefficient: fold it by
    // declaring the first mul's B operand... (kept simple: the leading
    // coefficient is applied by the caller scaling x or accepted as 1).
    doc.control = Some(ControlNode::Seq(pids.into_iter().map(ControlNode::Pipeline).collect()));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{KnowledgeBase, MachineConfig, SubsetModel};
    use nsc_checker::{diag::has_errors, Checker};

    fn check_doc(doc: &mut Document, kb: &KnowledgeBase) -> Vec<nsc_checker::Diagnostic> {
        let checker = Checker::new(kb.clone());
        // Bind all pipelines first.
        let decls = doc.decls.clone();
        let ids: Vec<_> = doc.pipelines().iter().map(|p| p.id).collect();
        for id in ids {
            let p = doc.pipeline_mut(id).unwrap();
            let diags = checker.auto_bind(p, &decls);
            assert!(diags.is_empty(), "binding failed: {diags:?}");
        }
        checker.check_document(doc)
    }

    #[test]
    fn full_variant_passes_the_global_check() {
        let kb = KnowledgeBase::nsc_1988();
        let mut doc = build_jacobi_document(8, 1e-6, 100, JacobiVariant::Full);
        let diags = check_doc(&mut doc, &kb);
        assert!(!has_errors(&diags), "errors: {diags:#?}");
        assert_eq!(doc.pipeline_count(), 2, "ping-pong pair");
    }

    #[test]
    fn singlets_only_variant_passes_on_the_subset_machine() {
        let kb = KnowledgeBase::new(MachineConfig::nsc_1988().subset(SubsetModel::SingletsOnly));
        let mut doc = build_jacobi_document(8, 1e-6, 100, JacobiVariant::SingletsOnly);
        let diags = check_doc(&mut doc, &kb);
        assert!(!has_errors(&diags), "errors: {diags:#?}");
    }

    #[test]
    fn full_variant_fails_on_the_subset_machine() {
        // The packed placement uses 3 units per triplet; the subset model
        // allows one. The checker must catch this.
        let kb = KnowledgeBase::new(MachineConfig::nsc_1988().subset(SubsetModel::SingletsOnly));
        let mut doc = build_jacobi_document(8, 1e-6, 100, JacobiVariant::Full);
        let diags = check_doc(&mut doc, &kb);
        assert!(
            diags.iter().any(|d| d.rule == nsc_checker::RuleCode::SubsetViolation),
            "expected subset violations"
        );
    }

    #[test]
    fn no_sdu_variant_passes_on_the_no_sdu_machine() {
        let kb = KnowledgeBase::new(MachineConfig::nsc_1988().subset(SubsetModel::NoSdu));
        let mut doc = build_jacobi_document(8, 1e-6, 100, JacobiVariant::NoSdu);
        let diags = check_doc(&mut doc, &kb);
        assert!(!has_errors(&diags), "errors: {diags:#?}");
        assert_eq!(doc.pipeline_count(), 6, "2 sweeps + 4 broadcast instructions");
    }

    #[test]
    fn full_variant_needs_the_shift_delay_units() {
        // On the no-SDU machine the binder has no shift/delay units to
        // hand out: the SDU icons stay unbound and binding reports it.
        let kb = KnowledgeBase::new(MachineConfig::nsc_1988().subset(SubsetModel::NoSdu));
        let checker = Checker::new(kb.clone());
        let mut doc = build_jacobi_document(8, 1e-6, 100, JacobiVariant::Full);
        let decls = doc.decls.clone();
        let ids: Vec<_> = doc.pipelines().iter().map(|p| p.id).collect();
        let mut bind_errors = Vec::new();
        for id in ids {
            bind_errors.extend(checker.auto_bind(doc.pipeline_mut(id).unwrap(), &decls));
        }
        assert!(!bind_errors.is_empty(), "SDU icons must not bind on a machine without SDUs");
        // And even ignoring binding, the global check flags unbound icons.
        let diags = checker.check_document(&doc);
        assert!(has_errors(&diags));
    }

    #[test]
    fn damped_sweep_document_checks_out_and_fills_the_triplets() {
        let kb = KnowledgeBase::nsc_1988();
        for even in [true, false] {
            let mut doc =
                build_damped_jacobi_sweep_document(JacobiGeometry::slab(6, 6, 4), even, 0.8);
            let diags = check_doc(&mut doc, &kb);
            assert!(!has_errors(&diags), "errors: {diags:#?}");
            assert_eq!(doc.pipeline_count(), 1, "one sweep, no convergence loop");
        }
    }

    #[test]
    fn windowed_sweep_documents_check_out() {
        let kb = KnowledgeBase::nsc_1988();
        let geo = JacobiGeometry::slab(5, 4, 8);
        let windows = [
            SweepWindow { start: 1, len: 1, slot: SweepWindow::LO_SLOT },
            SweepWindow { start: 2, len: 5, slot: 0 },
            SweepWindow { start: 7, len: 1, slot: SweepWindow::HI_SLOT },
        ];
        let mut doc = build_jacobi_sweep_document_windows(geo, true, &windows);
        let diags = check_doc(&mut doc, &kb);
        assert!(!has_errors(&diags), "errors: {diags:#?}");
        assert_eq!(doc.pipeline_count(), 3, "one instruction per window");
        let mut damped = build_damped_jacobi_sweep_document_windows(geo, false, 0.8, &windows);
        let diags = check_doc(&mut damped, &kb);
        assert!(!has_errors(&diags), "errors: {diags:#?}");

        let g2 = Jacobi2dGeometry::new(6, 9);
        let rows = [
            SweepWindow { start: 0, len: 4, slot: 0 },
            SweepWindow { start: 4, len: 5, slot: SweepWindow::HI_SLOT },
        ];
        let mut doc2 = build_jacobi2d_sweep_document_windows(g2, false, &rows);
        let diags = check_doc(&mut doc2, &kb);
        assert!(!has_errors(&diags), "errors: {diags:#?}");
        assert_eq!(doc2.pipeline_count(), 2);
    }

    #[test]
    fn ftcs_transport_document_checks_out() {
        let kb = KnowledgeBase::nsc_1988();
        let coeffs = FtcsCoeffs::new(0.125, 50.0, 1e-3);
        let mut doc = build_ftcs_transport_document(Jacobi2dGeometry::new(9, 5), coeffs);
        let diags = check_doc(&mut doc, &kb);
        assert!(!has_errors(&diags), "errors: {diags:#?}");
        assert_eq!(doc.pipeline_count(), 1, "one FTCS step instruction");
    }

    #[test]
    fn horner_document_checks_out() {
        let kb = KnowledgeBase::nsc_1988();
        let coeffs = [1.0, -0.5, 0.25, -0.125, 0.0625, 1.5, -2.5, 3.5, 0.5, 0.75, 1.25];
        let mut doc = build_chebyshev_document(512, &coeffs, 10);
        let diags = check_doc(&mut doc, &kb);
        assert!(!has_errors(&diags), "errors: {diags:#?}");
        assert_eq!(doc.pipeline_count(), 1, "ten stages fit one instruction");
        let mut split = build_chebyshev_document(512, &coeffs, 5);
        let diags = check_doc(&mut split, &kb);
        assert!(!has_errors(&diags), "errors: {diags:#?}");
        assert_eq!(split.pipeline_count(), 2, "five-stage chunks");
    }

    #[test]
    fn geometry_numbers() {
        let g = JacobiGeometry::cube(8);
        assert_eq!(g.plane, 64);
        assert_eq!(g.points, 512);
        assert_eq!(g.padded, 512 + 128);
    }
}
