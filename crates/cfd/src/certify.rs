//! Topology certification: the distributed layer's contribution to the
//! compile certificate.
//!
//! A decomposed sweep makes two claims the node-local census cannot
//! carry:
//!
//! * **routing legality** — every halo message between neighbouring
//!   parts travels a minimal dimension-ordered (e-cube) path over the
//!   Gray embedding, one link per hop;
//! * **window coverage** — the overlap split's windows tile each part's
//!   *owned* layers exactly once (no layer skipped, none computed
//!   twice), which is the whole correctness argument for splitting a
//!   sweep into interior and boundary-shell phases.
//!
//! [`halo_routes`] and [`window_coverage`] transcribe those claims from
//! a [`Partition`]; [`SweepEngine::compile`](crate::SweepEngine::compile)
//! staples them onto the sweep's base compile certificate with
//! `CompileCertificate::with_topology` and records the result in the
//! session's certificate log. `nsc_cert::verify` then re-derives the
//! e-cube law and the tiling from scratch — a forged hop or a window gap
//! is rejected even though the emitter transcribed it faithfully.

use crate::partition::{HaloSpec, Partition, SweepSplit};
use nsc_cert::{CoverageCert, RouteCert, WindowSpan};

/// The dimension-ordered route from `from` to `to`, inclusive of both
/// endpoints, correcting the lowest differing bit first — the same walk
/// as `nsc_arch::HypercubeConfig::ecube_route`, on raw addresses so the
/// emitter needs no cube handle.
fn ecube_path(from: u64, to: u64) -> Vec<u64> {
    let mut path = vec![from];
    let mut cur = from;
    let mut diff = from ^ to;
    while diff != 0 {
        let bit = diff & diff.wrapping_neg();
        cur ^= bit;
        diff ^= bit;
        path.push(cur);
    }
    path
}

/// One [`RouteCert`] per directed halo message `spec` makes a partition
/// exchange: for every pair of parts abutting along exactly one split
/// axis, the lower part's top owned layers travel up (refreshing the
/// upper part's low ghosts) when the spec wants low faces, and vice
/// versa. `words` is the face area times the ghost depth; the path is
/// the e-cube route between the parts' nodes.
pub fn halo_routes(partition: &dyn Partition, spec: &HaloSpec) -> Vec<RouteCert> {
    let parts = partition.parts();
    let mut routes = Vec::new();
    for i in 0..parts.len() {
        for j in 0..parts.len() {
            if i == j {
                continue;
            }
            let (lo, hi) = (&parts[i], &parts[j]);
            // `lo` is `hi`'s lower neighbour along `axis` when their owned
            // ranges abut there and coincide on every other axis.
            let abuts = |a: usize| {
                lo.spans[a].start + lo.spans[a].len == hi.spans[a].start
                    && (0..3).filter(|&o| o != a).all(|o| {
                        lo.spans[o].start == hi.spans[o].start && lo.spans[o].len == hi.spans[o].len
                    })
            };
            let Some(axis) = (0..3).find(|&a| abuts(a)) else { continue };
            if lo.spans[axis].hi_ghost == 0 || hi.spans[axis].lo_ghost == 0 {
                continue;
            }
            let face: u64 =
                (0..3).filter(|&o| o != axis).map(|o| lo.spans[o].local_len() as u64).product();
            let words = face * spec.layers as u64;
            let [want_lo, want_hi] = spec.faces[axis];
            if want_lo {
                routes.push(RouteCert {
                    from: lo.node.0 as u64,
                    to: hi.node.0 as u64,
                    words,
                    path: ecube_path(lo.node.0 as u64, hi.node.0 as u64),
                });
            }
            if want_hi {
                routes.push(RouteCert {
                    from: hi.node.0 as u64,
                    to: lo.node.0 as u64,
                    words,
                    path: ecube_path(hi.node.0 as u64, lo.node.0 as u64),
                });
            }
        }
    }
    routes
}

/// One [`CoverageCert`] per part: the owned layer range along the
/// overlap axis (in local layer coordinates, ghosts counted) and the
/// split windows claimed to tile it. `splits` must be in partition
/// order, one per part — exactly what the sweep engine holds.
pub fn window_coverage(partition: &dyn Partition, splits: &[SweepSplit]) -> Vec<CoverageCert> {
    let axis = partition.shape().overlap_axis();
    partition
        .parts()
        .iter()
        .zip(splits)
        .enumerate()
        .map(|(pi, (p, split))| {
            let sp = &p.spans[axis];
            CoverageCert {
                part: pi as u32,
                node: p.node.0 as u64,
                owned_start: sp.lo_ghost as u64,
                owned_len: sp.len as u64,
                windows: split
                    .windows()
                    .map(|w| WindowSpan {
                        start: w.start as u64,
                        len: w.len as u64,
                        slot: w.slot as u32,
                    })
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{BlockPartition, GridShape, StripPartition};
    use nsc_arch::HypercubeConfig;

    #[test]
    fn ecube_paths_match_the_arch_router() {
        let cube = HypercubeConfig::new(6);
        for (from, to) in [(0u16, 0u16), (0b000111, 0b101010), (5, 2), (63, 0)] {
            let arch: Vec<u64> = cube
                .ecube_route(nsc_arch::NodeId(from), nsc_arch::NodeId(to))
                .into_iter()
                .map(|n| n.0 as u64)
                .collect();
            assert_eq!(ecube_path(from as u64, to as u64), arch, "{from} -> {to}");
        }
    }

    #[test]
    fn strip_routes_pair_every_interior_boundary_both_ways() {
        let cube = HypercubeConfig::new(2);
        let strips = StripPartition::new(GridShape::volume3d(4, 4, 12), cube).expect("decomposes");
        let routes = halo_routes(&strips, &HaloSpec::stencil());
        // 3 interior boundaries, one message each way.
        assert_eq!(routes.len(), 6);
        for r in &routes {
            assert_eq!(r.path.len(), 2, "Gray-adjacent strips are one hop apart");
            assert_eq!(r.path.first(), Some(&r.from));
            assert_eq!(r.path.last(), Some(&r.to));
            assert_eq!(r.words, 4 * 4, "one xy-face per layer");
        }
        // A one-sided spec halves the message count.
        assert_eq!(halo_routes(&strips, &HaloSpec::face(2, false)).len(), 3);
    }

    #[test]
    fn block_routes_cover_both_split_axes() {
        let torus = HypercubeConfig::new(2).torus2d(2, 2);
        let blocks = BlockPartition::new(GridShape::plane2d(9, 11), torus).expect("decomposes");
        let routes = halo_routes(&blocks, &HaloSpec::stencil());
        // 2 row boundaries + 2 column boundaries, both directions.
        assert_eq!(routes.len(), 8);
        for r in &routes {
            assert_eq!(r.path.len(), 2, "torus-adjacent blocks are one hop apart");
        }
    }

    #[test]
    fn coverage_tiles_the_owned_layers() {
        let cube = HypercubeConfig::new(2);
        let strips = StripPartition::new(GridShape::volume3d(4, 4, 12), cube).expect("decomposes");
        let axis = strips.shape().overlap_axis();
        let spec = HaloSpec::stencil();
        let splits: Vec<SweepSplit> =
            strips.parts().iter().map(|p| p.overlap_split(axis, &spec)).collect();
        let coverage = window_coverage(&strips, &splits);
        assert_eq!(coverage.len(), 4);
        for c in &coverage {
            let mut spans: Vec<(u64, u64)> = c.windows.iter().map(|w| (w.start, w.len)).collect();
            spans.sort_unstable();
            let mut next = c.owned_start;
            for (s, l) in spans {
                assert_eq!(s, next, "gapless from the owned start");
                next = s + l;
            }
            assert_eq!(next, c.owned_start + c.owned_len, "ends at the owned end");
        }
    }
}
