//! Host reference solvers.
//!
//! [`jacobi_sweep_host`] mirrors the NSC pipeline *operation for
//! operation*: same addition tree, same constant multiply, same masked
//! update, same running maximum — and works on the same padded arrays with
//! their zero halos. IEEE double arithmetic is deterministic, so simulator
//! output can be compared **bit for bit** against this mirror; any
//! divergence is a bug in the generator or the simulator, not "numerical
//! noise". [`sor_sweep_host`] provides the conventional stronger baseline.

use crate::grid::{Grid2, Grid3, PaddedField};

/// Paper Equation 1, as the pipeline computes it. `center` is the old
/// value, `g = h^2 * f`, neighbours in the fixed pairing order of the
/// diagram's addition tree.
#[inline]
#[allow(clippy::too_many_arguments)] // one argument per stencil stream, mirroring the diagram
pub fn jacobi_update_tree(
    up: f64,
    down: f64,
    north: f64,
    south: f64,
    east: f64,
    west: f64,
    center: f64,
    g: f64,
    mask: f64,
) -> (f64, f64) {
    let s1 = up + down;
    let s2 = north + south;
    let s3 = east + west;
    let s4 = s1 + s2;
    let s5 = s4 + s3;
    let t = s5 - g;
    let uj = t * (1.0 / 6.0);
    let d = uj - center;
    let dm = d * mask;
    let unew = center + dm;
    (unew, dm)
}

/// The *damped* update, as the `build_damped_jacobi_sweep_document`
/// pipeline computes it: the plain tree's update scaled by `omega` before
/// the mask — the multigrid smoothing kernel. Returns `(unew, dm)` where
/// `dm` is the omega-scaled masked update the residual reduction sees.
#[inline]
#[allow(clippy::too_many_arguments)] // one argument per stencil stream, mirroring the diagram
pub fn damped_jacobi_update_tree(
    up: f64,
    down: f64,
    north: f64,
    south: f64,
    east: f64,
    west: f64,
    center: f64,
    g: f64,
    mask: f64,
    omega: f64,
) -> (f64, f64) {
    let s1 = up + down;
    let s2 = north + south;
    let s3 = east + west;
    let s4 = s1 + s2;
    let s5 = s4 + s3;
    let t = s5 - g;
    let uj = t * (1.0 / 6.0);
    let d = uj - center;
    let dw = d * omega;
    let dm = dw * mask;
    let unew = center + dm;
    (unew, dm)
}

/// Ping-pong state of the host Jacobi iteration on padded arrays.
#[derive(Debug, Clone)]
pub struct JacobiHostState {
    /// Grid extents.
    pub nx: usize,
    /// Grid extents.
    pub ny: usize,
    /// Grid extents.
    pub nz: usize,
    /// Current solution, stencil-padded.
    pub u: PaddedField,
    /// Scratch for the next iterate, stencil-padded.
    pub u_next: PaddedField,
    /// `h^2 * f`, aligned-padded.
    pub g: PaddedField,
    /// Interior mask, aligned-padded.
    pub mask: PaddedField,
}

impl JacobiHostState {
    /// Set up from unpadded problem data (`f` is the raw right-hand side;
    /// it is scaled by `h^2` here).
    pub fn new(u0: &Grid3, f: &Grid3) -> Self {
        let mut g_grid = f.clone();
        let h2 = f.h * f.h;
        for v in &mut g_grid.data {
            *v *= h2;
        }
        // Match Poisson sign convention: -∇²u = f  =>
        // u = (sum(neighbours) + h²f)/6; the pipeline computes
        // (sum - g)/6, so store g = -h²f.
        for v in &mut g_grid.data {
            *v = -*v;
        }
        let mask = u0.interior_mask();
        JacobiHostState {
            nx: u0.nx,
            ny: u0.ny,
            nz: u0.nz,
            u: PaddedField::stencil(u0),
            u_next: PaddedField::stencil(u0),
            g: PaddedField::aligned(&g_grid),
            mask: PaddedField::aligned(&mask),
        }
    }

    /// Current iterate as a grid.
    pub fn current(&self) -> Grid3 {
        self.u.to_grid(self.nx, self.ny, self.nz)
    }
}

/// One point-Jacobi sweep in exact NSC stream order. Returns the residual
/// measure the pipeline computes: `max |masked update|`.
pub fn jacobi_sweep_host(state: &mut JacobiHostState) -> f64 {
    let h = state.nx * state.ny; // one xy-plane
    let n = state.nx * state.ny * state.nz;
    let u = &state.u.words;
    let g = &state.g.words;
    let mask = &state.mask.words;
    let out = &mut state.u_next.words;
    let mut res = 0.0f64;
    for q in 0..n {
        // Stream index of output q is q + 2h; taps reference u_pad:
        let up = u[q + 2 * h];
        let down = u[q];
        let north = u[q + h + state.nx];
        let south = u[q + h - state.nx];
        let east = u[q + h + 1];
        let west = u[q + h - 1];
        let center = u[q + h];
        let (unew, dm) = jacobi_update_tree(
            up,
            down,
            north,
            south,
            east,
            west,
            center,
            g[q + 2 * h],
            mask[q + 2 * h],
        );
        out[q + h] = unew;
        res = dm.abs().max(res);
    }
    std::mem::swap(&mut state.u, &mut state.u_next);
    res
}

/// The 2-D five-point update, as the `build_jacobi2d_sweep_document`
/// pipeline computes it: `((n+s) + (e+w) - g)/4`, masked, added back onto
/// the centre. Same fixed pairing order as the diagram's addition tree.
#[inline]
pub fn jacobi2d_update_tree(
    north: f64,
    south: f64,
    east: f64,
    west: f64,
    center: f64,
    g: f64,
    mask: f64,
) -> (f64, f64) {
    let s1 = north + south;
    let s2 = east + west;
    let s3 = s1 + s2;
    let t = s3 - g;
    let uj = t * (1.0 / 4.0);
    let d = uj - center;
    let dm = d * mask;
    let unew = center + dm;
    (unew, dm)
}

/// Ping-pong state of the host 2-D Jacobi iteration on padded arrays.
#[derive(Debug, Clone)]
pub struct Jacobi2dHostState {
    /// Grid extents.
    pub nx: usize,
    /// Grid extents.
    pub ny: usize,
    /// Current solution, stencil-padded (one row each end).
    pub u: PaddedField,
    /// Scratch for the next iterate, stencil-padded.
    pub u_next: PaddedField,
    /// Scaled right-hand side `-h^2 * f`, aligned-padded.
    pub g: PaddedField,
    /// Interior mask, aligned-padded.
    pub mask: PaddedField,
}

impl Jacobi2dHostState {
    /// Set up from unpadded problem data for `∇²u = -f` (the cavity's
    /// stream-function equation with `f = ω`): the pipeline computes
    /// `(sum - g)/4`, so store `g = -h²f`.
    pub fn new(u0: &Grid2, f: &Grid2) -> Self {
        let mut g_grid = f.clone();
        let h2 = f.h * f.h;
        for v in &mut g_grid.data {
            *v *= -h2;
        }
        let mask = u0.interior_mask();
        Jacobi2dHostState {
            nx: u0.nx,
            ny: u0.ny,
            u: PaddedField::stencil2d(u0),
            u_next: PaddedField::stencil2d(u0),
            g: PaddedField::aligned2d(&g_grid),
            mask: PaddedField::aligned2d(&mask),
        }
    }

    /// Current iterate as a grid.
    pub fn current(&self) -> Grid2 {
        self.u.to_grid2(self.nx, self.ny)
    }
}

/// One 2-D point-Jacobi sweep in exact NSC stream order. Returns the
/// residual measure the pipeline computes: `max |masked update|`.
pub fn jacobi2d_sweep_host(state: &mut Jacobi2dHostState) -> f64 {
    let h = state.nx; // one row
    let n = state.nx * state.ny;
    let u = &state.u.words;
    let g = &state.g.words;
    let mask = &state.mask.words;
    let out = &mut state.u_next.words;
    let mut res = 0.0f64;
    for q in 0..n {
        let north = u[q + 2 * h];
        let south = u[q];
        let east = u[q + h + 1];
        let west = u[q + h - 1];
        let center = u[q + h];
        let (unew, dm) =
            jacobi2d_update_tree(north, south, east, west, center, g[q + 2 * h], mask[q + 2 * h]);
        out[q + h] = unew;
        res = dm.abs().max(res);
    }
    std::mem::swap(&mut state.u, &mut state.u_next);
    res
}

/// The constants folded into the cavity's FTCS vorticity-transport
/// pipeline, computed in one place so the host mirror and the document
/// builder share the exact same values (a division folded differently
/// would shift the last ulp).
#[derive(Debug, Clone, Copy)]
pub struct FtcsCoeffs {
    /// Central-difference factor `1 / (2h)`.
    pub c1: f64,
    /// Diffusion factor `1 / (h² Re)`.
    pub c2: f64,
    /// Time step.
    pub dt: f64,
}

impl FtcsCoeffs {
    /// Coefficients for mesh spacing `h`, Reynolds number `re`, step `dt`.
    pub fn new(h: f64, re: f64, dt: f64) -> Self {
        FtcsCoeffs { c1: 1.0 / (2.0 * h), c2: 1.0 / (h * h * re), dt }
    }
}

/// One FTCS vorticity-transport update, as the
/// `build_ftcs_transport_document` pipeline computes it:
/// `ω' = ω + mask · dt · (∇²ω/Re − u ω_x − v ω_y)` with `u = ψ_y`,
/// `v = −ψ_x` by central differences, in the diagram's fixed operation
/// order.
#[inline]
#[allow(clippy::too_many_arguments)] // one argument per stencil stream, mirroring the diagram
pub fn ftcs_update_tree(
    psi_n: f64,
    psi_s: f64,
    psi_e: f64,
    psi_w: f64,
    w_n: f64,
    w_s: f64,
    w_e: f64,
    w_w: f64,
    w_c: f64,
    mask: f64,
    coeffs: &FtcsCoeffs,
) -> f64 {
    let u = (psi_n - psi_s) * coeffs.c1;
    let v = (psi_w - psi_e) * coeffs.c1;
    let wx = (w_e - w_w) * coeffs.c1;
    let wy = (w_n - w_s) * coeffs.c1;
    let s1 = w_e + w_w;
    let s2 = w_n + w_s;
    let s4 = s1 + s2;
    let m4 = w_c * 4.0;
    let ld = s4 - m4;
    let dif = ld * coeffs.c2;
    let a1 = u * wx;
    let a2 = v * wy;
    let adv = a1 + a2;
    let rhs = dif - adv;
    let upd = rhs * coeffs.dt;
    let um = upd * mask;
    w_c + um
}

/// Max-norm residual of `-∇²u - f` over interior points (the conventional
/// measure, for convergence comparisons across methods). Point for point
/// this is the shared `lap_at` kernel, so a decomposed residual check
/// that reduces per-block maxima reproduces the same value exactly (max
/// is order-independent).
pub fn residual_linf(u: &Grid3, f: &Grid3) -> f64 {
    let h2 = u.h * u.h;
    let mut r = 0.0f64;
    for k in 1..u.nz - 1 {
        for j in 1..u.ny - 1 {
            for i in 1..u.nx - 1 {
                let lap = crate::multigrid::lap_at(
                    u.at(i + 1, j, k),
                    u.at(i - 1, j, k),
                    u.at(i, j + 1, k),
                    u.at(i, j - 1, k),
                    u.at(i, j, k + 1),
                    u.at(i, j, k - 1),
                    u.at(i, j, k),
                    h2,
                );
                r = r.max((-lap - f.at(i, j, k)).abs());
            }
        }
    }
    r
}

/// One Gauss-Seidel/SOR sweep (relaxation factor `omega`); the baseline
/// iterative method the NSC example would be compared against. Returns
/// `max |update|`.
pub fn sor_sweep_host(u: &mut Grid3, f: &Grid3, omega: f64) -> f64 {
    sor_sweep_host_layers(u, f, omega, 0..u.nz)
}

/// [`sor_sweep_host`] restricted to a run of z-layers (clipped to the
/// grid interior) — the unit the overlapped sweep engine phases a block
/// relaxation by. Sweeping disjoint layer runs in ascending order is the
/// full sweep, update for update.
pub fn sor_sweep_host_layers(
    u: &mut Grid3,
    f: &Grid3,
    omega: f64,
    layers: std::ops::Range<usize>,
) -> f64 {
    let h2 = u.h * u.h;
    let mut res = 0.0f64;
    for k in layers.start.max(1)..layers.end.min(u.nz - 1) {
        for j in 1..u.ny - 1 {
            for i in 1..u.nx - 1 {
                let sum = u.at(i + 1, j, k)
                    + u.at(i - 1, j, k)
                    + u.at(i, j + 1, k)
                    + u.at(i, j - 1, k)
                    + u.at(i, j, k + 1)
                    + u.at(i, j, k - 1);
                let gs = (sum + h2 * f.at(i, j, k)) / 6.0;
                let old = u.at(i, j, k);
                let new = old + omega * (gs - old);
                *u.at_mut(i, j, k) = new;
                res = res.max((new - old).abs());
            }
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::manufactured_problem;

    #[test]
    fn jacobi_converges_on_the_manufactured_problem() {
        let (u0, f, exact) = manufactured_problem(10);
        let mut state = JacobiHostState::new(&u0, &f);
        let mut res = f64::INFINITY;
        for _ in 0..2000 {
            res = jacobi_sweep_host(&mut state);
            if res < 1e-10 {
                break;
            }
        }
        assert!(res < 1e-10, "did not converge: residual {res}");
        let u = state.current();
        // Discretization error on a 10^3 grid is O(h^2) ~ 1e-2.
        assert!(u.linf_diff(&exact) < 0.05, "error {}", u.linf_diff(&exact));
    }

    #[test]
    fn boundary_stays_fixed_under_jacobi() {
        let (mut u0, f, _) = manufactured_problem(8);
        // Nonzero boundary data to make the test meaningful.
        for k in 0..8 {
            for j in 0..8 {
                for i in 0..8 {
                    if u0.is_boundary(i, j, k) {
                        *u0.at_mut(i, j, k) = 7.0;
                    }
                }
            }
        }
        let mut state = JacobiHostState::new(&u0, &f);
        for _ in 0..5 {
            jacobi_sweep_host(&mut state);
        }
        let u = state.current();
        for k in 0..8 {
            for j in 0..8 {
                for i in 0..8 {
                    if u.is_boundary(i, j, k) {
                        assert_eq!(u.at(i, j, k), 7.0, "boundary moved at ({i},{j},{k})");
                    }
                }
            }
        }
    }

    #[test]
    fn residual_decreases_monotonically_early() {
        let (u0, f, _) = manufactured_problem(8);
        let mut state = JacobiHostState::new(&u0, &f);
        let r1 = jacobi_sweep_host(&mut state);
        let r5 = {
            let mut last = r1;
            for _ in 0..4 {
                last = jacobi_sweep_host(&mut state);
            }
            last
        };
        assert!(r5 < r1, "Jacobi update magnitude should shrink: {r1} -> {r5}");
    }

    #[test]
    fn sor_beats_jacobi_in_sweeps() {
        let (u0, f, _) = manufactured_problem(10);
        let tol = 1e-8;
        let mut state = JacobiHostState::new(&u0, &f);
        let mut jacobi_sweeps = 0;
        for _ in 0..20_000 {
            jacobi_sweeps += 1;
            if jacobi_sweep_host(&mut state) < tol {
                break;
            }
        }
        let mut u = u0.clone();
        let omega = 1.6; // a reasonable SOR factor for this grid
        let mut sor_sweeps = 0;
        for _ in 0..20_000 {
            sor_sweeps += 1;
            if sor_sweep_host(&mut u, &f, omega) < tol {
                break;
            }
        }
        assert!(
            sor_sweeps * 2 < jacobi_sweeps,
            "SOR({omega}) should need far fewer sweeps: {sor_sweeps} vs {jacobi_sweeps}"
        );
    }

    #[test]
    fn conventional_residual_agrees_with_solution_quality() {
        let (u0, f, _) = manufactured_problem(8);
        let r0 = residual_linf(&u0, &f);
        let mut state = JacobiHostState::new(&u0, &f);
        for _ in 0..500 {
            jacobi_sweep_host(&mut state);
        }
        let r_converged = residual_linf(&state.current(), &f);
        assert!(r_converged < r0 / 100.0, "{r0} -> {r_converged}");
    }

    #[test]
    fn jacobi2d_converges_on_a_manufactured_problem() {
        // -∇²u = f with u_exact = sin(πx) sin(πy), f = 2π² u_exact.
        let pi = std::f64::consts::PI;
        let n = 17;
        let u0 = Grid2::new(n, n);
        let mut f = Grid2::new(n, n);
        let mut exact = Grid2::new(n, n);
        for j in 0..n {
            for i in 0..n {
                let (x, y) = (i as f64 * f.h, j as f64 * f.h);
                let e = (pi * x).sin() * (pi * y).sin();
                *exact.at_mut(i, j) = e;
                *f.at_mut(i, j) = 2.0 * pi * pi * e;
            }
        }
        let mut state = Jacobi2dHostState::new(&u0, &f);
        let mut res = f64::INFINITY;
        for _ in 0..4000 {
            res = jacobi2d_sweep_host(&mut state);
            if res < 1e-11 {
                break;
            }
        }
        assert!(res < 1e-11, "did not converge: residual {res}");
        let u = state.current();
        assert!(u.linf_diff(&exact) < 0.01, "error {}", u.linf_diff(&exact));
        // Boundaries never move.
        for i in 0..n {
            assert_eq!(u.at(i, 0), 0.0);
            assert_eq!(u.at(i, n - 1), 0.0);
        }
    }

    #[test]
    fn update_tree_matches_a_naive_formula() {
        // Same values, different association order can differ in the last
        // ulp; the tree itself must match its own definition though.
        let (unew, dm) = jacobi_update_tree(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.5, 0.25, 1.0);
        let s5 = ((1.0 + 2.0) + (3.0 + 4.0)) + (5.0 + 6.0);
        let uj = (s5 - 0.25) * (1.0 / 6.0);
        assert_eq!(dm, uj - 0.5);
        assert_eq!(unew, 0.5 + (uj - 0.5));
        // Masked points never move.
        let (unew0, dm0) = jacobi_update_tree(9.0, 9.0, 9.0, 9.0, 9.0, 9.0, 0.5, 0.25, 0.0);
        assert_eq!(unew0, 0.5);
        assert_eq!(dm0, 0.0);
    }
}
