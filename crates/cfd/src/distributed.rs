//! Domain-decomposed solvers that spread one problem across the cube.
//!
//! [`DistributedJacobiWorkload`] is the paper's running example scaled out:
//! the grid is strip-partitioned along z ([`DecomposedGrid`]), each node
//! compiles the *same* Jacobi sweep pipeline on its own slab geometry, the
//! sweeps run concurrently on real node threads, and ghost planes are
//! refreshed through [`NscSystem::exchange`] between sweeps. Because the
//! ghost planes sit exactly where the serial stencil layout keeps its halo
//! pad, every distributed sweep is **bit-identical** to the serial sweep on
//! the points a node owns; the convergence decision is a global
//! max-reduction of the per-node residuals, evaluated once per ping-pong
//! pair exactly as the serial document's sequencer does.
//!
//! [`DistributedSorWorkload`] is the block-SOR counterpart of the host
//! baseline: each node relaxes its slab with the updated-in-place sweep,
//! halos still travel through the router (charging the same communication
//! model), and the blocks converge to the same discrete solution.

use crate::decomp::DecomposedGrid;
use crate::diagrams::{
    build_jacobi_sweep_document, JacobiGeometry, JacobiVariant, PLANE_U0, PLANE_U1, RESIDUAL_CACHE,
};
use crate::grid::Grid3;
use crate::host::{sor_sweep_host, JacobiHostState};
use crate::nsc_run::load_problem;
use nsc_core::{run_compiled_batch, CompiledProgram, NscError, Session, Workload};
use nsc_sim::{NscSystem, PerfCounters, RunOptions};

/// Cut the strip's local slab (owned planes plus ghosts) out of a global
/// grid, keeping the global mesh spacing.
fn local_slab(decomp: &DecomposedGrid, ring_pos: usize, global: &Grid3) -> Grid3 {
    let s = decomp.strips[ring_pos];
    let pw = decomp.plane_words;
    let lo = s.local_start() * pw;
    let hi = lo + s.local_planes() * pw;
    Grid3 {
        nx: global.nx,
        ny: global.ny,
        nz: s.local_planes(),
        h: global.h,
        data: global.data[lo..hi].to_vec(),
    }
}

/// Refuse a session/system pair describing different machines.
pub(crate) fn check_same_machine(session: &Session, system: &NscSystem) -> Result<(), NscError> {
    let node_cfg = system.node(nsc_arch::NodeId(0)).kb.config();
    if session.kb().config() != node_cfg {
        return Err(NscError::Workload(format!(
            "session machine '{}' and system machine '{}' differ",
            session.kb().config().name,
            node_cfg.name
        )));
    }
    Ok(())
}

/// Compile one (even, odd) sweep-program pair per strip, each program
/// indexed by the node hosting the strip; `build` constructs the document
/// for a strip and a parity (`true` = even, reading u0).
///
/// The document must depend on the strip only through its slab height
/// (`local_planes()`) — true of both sweep builders — so a balanced
/// decomposition with at most two distinct heights compiles at most two
/// pairs and shares them across nodes.
pub(crate) fn compile_pair_per_strip(
    session: &Session,
    decomp: &DecomposedGrid,
    build: impl Fn(&crate::decomp::Strip, bool) -> nsc_diagram::Document,
) -> Result<(Vec<CompiledProgram>, Vec<CompiledProgram>), NscError> {
    let nodes = decomp.strips.len();
    let mut by_height: std::collections::HashMap<usize, (CompiledProgram, CompiledProgram)> =
        std::collections::HashMap::new();
    let mut even = vec![None; nodes];
    let mut odd = vec![None; nodes];
    for s in &decomp.strips {
        let pair = match by_height.entry(s.local_planes()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let compile = |parity| {
                    session
                        .compile(&mut build(s, parity))
                        .map_err(|err| NscError::on_node(s.node, err))
                };
                e.insert((compile(true)?, compile(false)?))
            }
        };
        even[s.node.index()] = Some(pair.0.clone());
        odd[s.node.index()] = Some(pair.1.clone());
    }
    let unwrap = |v: Vec<Option<CompiledProgram>>| {
        v.into_iter().map(|p| p.expect("one strip per node")).collect()
    };
    Ok((unwrap(even), unwrap(odd)))
}

/// Per-run system metrics derived from a counter snapshot taken before
/// the run: per-node deltas, their overlap-aware aggregate, and the
/// achieved rate.
#[derive(Debug, Clone)]
pub(crate) struct SystemRunMetrics {
    pub per_node: Vec<PerfCounters>,
    pub total: PerfCounters,
    pub simulated_seconds: f64,
    pub aggregate_mflops: f64,
}

pub(crate) fn measure_system_run(system: &NscSystem, before: &[PerfCounters]) -> SystemRunMetrics {
    let clock = system.node(nsc_arch::NodeId(0)).kb.config().clock_hz;
    let per_node: Vec<PerfCounters> =
        system.nodes().iter().zip(before).map(|(n, b)| n.counters.since(b)).collect();
    let mut total = PerfCounters::default();
    for c in &per_node {
        total.absorb(c);
    }
    let simulated_seconds = per_node.iter().map(|c| c.seconds_with_comm(clock)).fold(0.0, f64::max);
    let aggregate_mflops =
        if simulated_seconds > 0.0 { total.flops as f64 / simulated_seconds / 1e6 } else { 0.0 };
    SystemRunMetrics { per_node, total, simulated_seconds, aggregate_mflops }
}

/// Re-attribute a round-robin batch failure to the hypercube node it
/// happened on (program `i` of a distributed step runs on node `i`).
pub(crate) fn attribute_node(e: NscError) -> NscError {
    match e {
        NscError::Batch { doc, source } => NscError::on_node(nsc_arch::NodeId(doc as u16), *source),
        other => other,
    }
}

/// Outcome of a distributed Jacobi solve.
#[derive(Debug, Clone)]
pub struct DistributedJacobiRun {
    /// The reassembled final iterate.
    pub u: Grid3,
    /// The global residual (max over nodes of `max |masked update|`).
    pub residual: f64,
    /// Full sweeps executed across the system (each sweep touches every
    /// node once).
    pub sweeps: u64,
    /// Whether the tolerance (not the pair cap) ended it.
    pub converged: bool,
    /// Per-node counter deltas for this run, indexed by node.
    pub per_node: Vec<PerfCounters>,
    /// System aggregate of this run: work summed, elapsed overlapped.
    pub total: PerfCounters,
    /// Simulated seconds of this run: the slowest node's compute plus its
    /// own communication time.
    pub simulated_seconds: f64,
    /// Aggregate achieved MFLOPS of this run across the system.
    pub aggregate_mflops: f64,
}

/// Point Jacobi for the 3-D Poisson problem, strip-decomposed across a
/// simulated hypercube with halo exchange.
#[derive(Debug, Clone)]
pub struct DistributedJacobiWorkload {
    /// Initial iterate (also fixes the grid size).
    pub u0: Grid3,
    /// Right-hand side.
    pub f: Grid3,
    /// Residual convergence tolerance.
    pub tol: f64,
    /// Cap on ping-pong sweep pairs (the convergence test runs once per
    /// pair, as in the serial document).
    pub max_pairs: u32,
}

impl Workload<NscSystem> for DistributedJacobiWorkload {
    type Report = DistributedJacobiRun;

    fn name(&self) -> String {
        format!("distributed-jacobi {}x{}x{}", self.u0.nx, self.u0.ny, self.u0.nz)
    }

    fn execute(
        &self,
        session: &Session,
        system: &mut NscSystem,
    ) -> Result<DistributedJacobiRun, NscError> {
        check_same_machine(session, system)?;
        if (self.u0.nx, self.u0.ny, self.u0.nz) != (self.f.nx, self.f.ny, self.f.nz) {
            return Err(NscError::Workload("iterate and right-hand side grids differ".into()));
        }
        let decomp = DecomposedGrid::strip_1d(self.u0.nx * self.u0.ny, self.u0.nz, system.cube)?;

        // Load every node's slab problem (ghosts included, so the first
        // sweep needs no exchange) and compile its sweep pair.
        for s in &decomp.strips {
            let lu0 = local_slab(&decomp, s.ring_pos, &self.u0);
            let lf = local_slab(&decomp, s.ring_pos, &self.f);
            let state = JacobiHostState::new(&lu0, &lf);
            load_problem(system.node_mut(s.node), &state, JacobiVariant::Full);
        }
        let (even, odd) = compile_pair_per_strip(session, &decomp, |s, parity| {
            build_jacobi_sweep_document(
                JacobiGeometry::slab(self.u0.nx, self.u0.ny, s.local_planes()),
                parity,
            )
        })?;
        let even_refs: Vec<&CompiledProgram> = even.iter().collect();
        let odd_refs: Vec<&CompiledProgram> = odd.iter().collect();

        let before: Vec<PerfCounters> = system.nodes().iter().map(|n| n.counters).collect();
        let opts = RunOptions::default();
        let mut pairs = 0u64;
        let mut residual = f64::INFINITY;
        let mut converged = false;
        while pairs < u64::from(self.max_pairs) && !converged {
            // Even sweep (u0 -> u1) on every node concurrently, then push
            // the new boundary planes into the neighbours' ghosts.
            run_compiled_batch(&even_refs, system.nodes_mut(), &opts).map_err(attribute_node)?;
            decomp.halo_exchange(system, PLANE_U1, 1);
            // Odd sweep (u1 -> u0), exchange again.
            run_compiled_batch(&odd_refs, system.nodes_mut(), &opts).map_err(attribute_node)?;
            decomp.halo_exchange(system, PLANE_U0, 1);
            // The pair's convergence test: a butterfly max-reduction of
            // the per-node residual scalars (the odd sweep's).
            let (r, _) = system.global_max_cache_scalar(RESIDUAL_CACHE, 0);
            residual = r;
            pairs += 1;
            converged = residual < self.tol;
        }

        // Reassemble the iterate from the u0 planes (pairs always end on
        // the odd sweep, exactly like the serial document's loop body).
        let pw = decomp.plane_words;
        let locals: Vec<Vec<f64>> = decomp
            .strips
            .iter()
            .map(|s| {
                system
                    .node(s.node)
                    .mem
                    .plane(PLANE_U0)
                    .read_vec(pw as u64, (s.local_planes() * pw) as u64)
            })
            .collect();
        let mut u = Grid3::new(self.u0.nx, self.u0.ny, self.u0.nz);
        u.h = self.u0.h;
        u.data = decomp.gather(&locals);

        let m = measure_system_run(system, &before);
        Ok(DistributedJacobiRun {
            u,
            residual,
            sweeps: pairs * 2,
            converged,
            per_node: m.per_node,
            total: m.total,
            simulated_seconds: m.simulated_seconds,
            aggregate_mflops: m.aggregate_mflops,
        })
    }
}

/// Outcome of a distributed block-SOR solve.
#[derive(Debug, Clone)]
pub struct DistributedSorRun {
    /// The reassembled final iterate.
    pub u: Grid3,
    /// The global residual (max over blocks of `max |update|`).
    pub residual: f64,
    /// Sweeps executed.
    pub sweeps: usize,
    /// Whether the tolerance (not the sweep cap) ended it.
    pub converged: bool,
    /// Router nanoseconds this run spent on halos and reductions
    /// (system-serialized view).
    pub comm_ns: u64,
}

/// Block successive over-relaxation: each node runs the host SOR sweep on
/// its own slab, halos and the convergence reduction travel through the
/// simulated router. Converges to the same discrete solution as the serial
/// [`crate::SorWorkload`] (the blocks' fixed point is the global one),
/// with block-boundary values lagging one sweep.
#[derive(Debug, Clone)]
pub struct DistributedSorWorkload {
    /// Initial iterate.
    pub u0: Grid3,
    /// Right-hand side.
    pub f: Grid3,
    /// Relaxation factor, in `(0, 2)` for convergence.
    pub omega: f64,
    /// Residual convergence tolerance.
    pub tol: f64,
    /// Cap on sweeps.
    pub max_sweeps: usize,
}

impl Workload<NscSystem> for DistributedSorWorkload {
    type Report = DistributedSorRun;

    fn name(&self) -> String {
        format!("distributed-sor {}x{}x{} omega={}", self.u0.nx, self.u0.ny, self.u0.nz, self.omega)
    }

    fn execute(
        &self,
        _session: &Session,
        system: &mut NscSystem,
    ) -> Result<DistributedSorRun, NscError> {
        if !(0.0..2.0).contains(&self.omega) || self.omega == 0.0 {
            return Err(NscError::Workload(format!(
                "SOR diverges outside 0 < omega < 2 (got {})",
                self.omega
            )));
        }
        if (self.u0.nx, self.u0.ny, self.u0.nz) != (self.f.nx, self.f.ny, self.f.nz) {
            return Err(NscError::Workload("iterate and right-hand side grids differ".into()));
        }
        let pw = self.u0.nx * self.u0.ny;
        let decomp = DecomposedGrid::strip_1d(pw, self.u0.nz, system.cube)?;
        let mut locals: Vec<Grid3> =
            (0..decomp.strips.len()).map(|i| local_slab(&decomp, i, &self.u0)).collect();
        let fs: Vec<Grid3> =
            (0..decomp.strips.len()).map(|i| local_slab(&decomp, i, &self.f)).collect();

        let comm_before = system.comm_ns;
        let omega = self.omega;
        let mut sweeps = 0;
        let mut residual = f64::INFINITY;
        let mut converged = false;
        while sweeps < self.max_sweeps && !converged {
            // Every block relaxes concurrently (host compute; the slab
            // interior excludes ghost planes, which hold until exchanged).
            let mut block_res = vec![0.0f64; locals.len()];
            let _ = crossbeam::thread::scope(|scope| {
                for ((u, f), res) in locals.iter_mut().zip(&fs).zip(block_res.iter_mut()) {
                    scope.spawn(move |_| {
                        *res = sor_sweep_host(u, f, omega);
                    });
                }
            });
            // Halos travel through the router: stage each block's boundary
            // planes in its node's u0 plane, exchange, read ghosts back.
            for s in &decomp.strips {
                let u = &locals[s.ring_pos];
                let node = system.node_mut(s.node);
                for z in [s.start, s.start + s.len - 1] {
                    let lo = s.local_index(z) * pw;
                    node.mem
                        .plane_mut(PLANE_U0)
                        .write_slice(decomp.word_offset(1, s.local_index(z)), &u.data[lo..lo + pw]);
                }
            }
            decomp.halo_exchange(system, PLANE_U0, 1);
            for s in &decomp.strips {
                let u = &mut locals[s.ring_pos];
                let mem = system.node(s.node).mem.plane(PLANE_U0);
                let mut pull = |local_plane: usize| {
                    let ghost = mem.read_vec(decomp.word_offset(1, local_plane), pw as u64);
                    u.data[local_plane * pw..(local_plane + 1) * pw].copy_from_slice(&ghost);
                };
                if s.lo_ghost {
                    pull(0);
                }
                if s.hi_ghost {
                    pull(s.local_planes() - 1);
                }
            }
            // Global convergence test through the butterfly reduction.
            for (s, r) in decomp.strips.iter().zip(&block_res) {
                system.node_mut(s.node).mem.cache_mut(RESIDUAL_CACHE).write(0, 0, *r);
            }
            let (r, _) = system.global_max_cache_scalar(RESIDUAL_CACHE, 0);
            residual = r;
            sweeps += 1;
            converged = residual < self.tol;
        }

        let flat: Vec<Vec<f64>> = locals.into_iter().map(|g| g.data).collect();
        let mut u = Grid3::new(self.u0.nx, self.u0.ny, self.u0.nz);
        u.h = self.u0.h;
        u.data = decomp.gather(&flat);
        Ok(DistributedSorRun {
            u,
            residual,
            sweeps,
            converged,
            comm_ns: system.comm_ns - comm_before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::manufactured_problem;
    use crate::host::jacobi_sweep_host;
    use crate::workloads::SorWorkload;
    use nsc_arch::HypercubeConfig;

    fn system(dim: u32, session: &Session) -> NscSystem {
        NscSystem::new(HypercubeConfig::new(dim), session.kb())
    }

    #[test]
    fn distributed_sweeps_match_the_serial_host_mirror_bit_for_bit() {
        let n = 8;
        let (u0, f, _) = manufactured_problem(n);
        let session = Session::nsc_1988();
        let mut sys = system(2, &session); // 4 nodes, strips of 2 planes
        let w = DistributedJacobiWorkload { u0: u0.clone(), f: f.clone(), tol: 0.0, max_pairs: 3 };
        let run = w.execute(&session, &mut sys).expect("runs");
        assert_eq!(run.sweeps, 6);
        assert!(!run.converged);

        let mut host = JacobiHostState::new(&u0, &f);
        let mut host_res = 0.0;
        for _ in 0..6 {
            host_res = jacobi_sweep_host(&mut host);
        }
        let host_u = host.current();
        for (a, b) in run.u.data.iter().zip(&host_u.data) {
            assert_eq!(a.to_bits(), b.to_bits(), "distributed and serial sweeps must agree");
        }
        assert_eq!(run.residual.to_bits(), host_res.to_bits(), "global max matches");
        // Communication happened and was charged per node.
        assert!(run.per_node.iter().all(|c| c.comm_ns > 0));
        assert!(run.aggregate_mflops > 0.0);
    }

    #[test]
    fn distributed_jacobi_converges_like_the_serial_solver() {
        let n = 9;
        let (u0, f, exact) = manufactured_problem(n);
        let session = Session::nsc_1988();
        let mut sys = system(1, &session);
        let w = DistributedJacobiWorkload { u0, f, tol: 1e-9, max_pairs: 2000 };
        let run = w.execute(&session, &mut sys).expect("runs");
        assert!(run.converged, "residual {}", run.residual);
        assert!(run.u.linf_diff(&exact) < 0.1, "err {}", run.u.linf_diff(&exact));
        assert!(w.name().contains("distributed-jacobi"));
    }

    #[test]
    fn distributed_jacobi_rejects_mismatched_machines_and_thin_grids() {
        let (u0, f, _) = manufactured_problem(6);
        let session = Session::nsc_1988();
        let mut revised = nsc_arch::MachineConfig::nsc_1988();
        revised.name = "revised".into();
        let mut alien =
            NscSystem::new(HypercubeConfig::new(1), nsc_core::Session::new(revised).kb());
        let w = DistributedJacobiWorkload { u0, f, tol: 0.0, max_pairs: 1 };
        assert!(matches!(w.execute(&session, &mut alien), Err(NscError::Workload(_))));

        // 6 planes across 8 nodes cannot give every node 3 local planes.
        let mut small = system(3, &session);
        assert!(matches!(w.execute(&session, &mut small), Err(NscError::Workload(_))));
    }

    #[test]
    fn distributed_sor_finds_the_serial_fixed_point() {
        let n = 10;
        let (u0, f, exact) = manufactured_problem(n);
        let session = Session::nsc_1988();
        let mut sys = system(2, &session);
        let w = DistributedSorWorkload {
            u0: u0.clone(),
            f: f.clone(),
            omega: 1.5,
            tol: 1e-10,
            max_sweeps: 20_000,
        };
        let run = w.execute(&session, &mut sys).expect("runs");
        assert!(run.converged, "residual {}", run.residual);
        assert!(run.u.linf_diff(&exact) < 0.1);
        assert!(run.comm_ns > 0, "halos and reductions cost router time");

        // Same fixed point as the serial SOR baseline.
        let serial = SorWorkload { u0, f, omega: 1.5, tol: 1e-10, max_sweeps: 20_000 };
        let mut node = session.node();
        let sref = serial.execute(&session, &mut node).expect("serial runs");
        assert!(sref.converged);
        assert!(
            run.u.linf_diff(&sref.u) < 1e-6,
            "block and serial SOR disagree by {}",
            run.u.linf_diff(&sref.u)
        );
    }

    #[test]
    fn distributed_sor_rejects_divergent_omega() {
        let (u0, f, _) = manufactured_problem(8);
        let session = Session::nsc_1988();
        let mut sys = system(1, &session);
        let w = DistributedSorWorkload { u0, f, omega: 2.5, tol: 1e-8, max_sweeps: 5 };
        assert!(matches!(w.execute(&session, &mut sys), Err(NscError::Workload(_))));
    }
}
