//! Domain-decomposed solvers that spread one problem across the cube.
//!
//! [`DistributedJacobiWorkload`] is the paper's running example scaled out:
//! the grid is partitioned onto the cube through the [`Partition`] trait
//! (strips on the Gray ring or 2-D blocks on a Gray torus — the workload
//! is decomposition-agnostic), each node compiles the *same* Jacobi sweep
//! pipeline on its own slab geometry, the sweeps run concurrently on real
//! node threads, and ghost layers are refreshed through the hyperspace
//! router between sweeps. Because ghost cells sit exactly where the serial
//! stencil layout keeps its halo pad, every distributed sweep is
//! **bit-identical** to the serial sweep on the points a node owns; the
//! convergence decision is a max-reduction of the per-node residuals over
//! the partition's node pool, evaluated once per ping-pong pair exactly as
//! the serial document's sequencer does.
//!
//! [`DistributedSorWorkload`] is the block-SOR counterpart of the host
//! baseline: each node relaxes its slab with the updated-in-place sweep,
//! halos still travel through the router (charging the same communication
//! model), and the blocks converge to the same discrete solution.
//!
//! Both workloads execute through the shared
//! [`SweepEngine`]: their `overlap` knob
//! switches between the legacy synchronized choreography (compute, then
//! exchange) and the latency-hidden one (interior pipelines concurrent
//! with the halo sendrecvs, boundary shells after).

use crate::diagrams::{
    build_jacobi_sweep_document_windows, JacobiGeometry, JacobiVariant, PLANE_U0, PLANE_U1,
    RESIDUAL_CACHE,
};
use crate::grid::Grid3;
use crate::host::{sor_sweep_host_layers, JacobiHostState};
use crate::nsc_run::load_problem;
use crate::overlap::{SweepEngine, SweepIo};
use crate::partition::{read_slabs, GridShape, HaloSpec, Part, Partition, PartitionSpec};
use nsc_core::{CompiledProgram, NscError, Session, Workload};
use nsc_sim::{NscSystem, PerfCounters, RunOptions};

/// Wrap each part's slab words (ghosts included) as a [`Grid3`] on the
/// part's local shape, keeping the global mesh spacing.
pub(crate) fn local_grids3(partition: &dyn Partition, global: &Grid3) -> Vec<Grid3> {
    partition
        .scatter(&global.data)
        .into_iter()
        .zip(partition.parts())
        .map(|(data, p)| {
            let (nx, ny, nz) = p.local_shape();
            Grid3 { nx, ny, nz, h: global.h, data }
        })
        .collect()
}

/// Refuse a session/system pair describing different machines.
pub(crate) fn check_same_machine(session: &Session, system: &NscSystem) -> Result<(), NscError> {
    let node_cfg = system.node(nsc_arch::NodeId(0)).kb.config();
    if session.kb().config() != node_cfg {
        return Err(NscError::Workload(format!(
            "session machine '{}' and system machine '{}' differ",
            session.kb().config().name,
            node_cfg.name
        )));
    }
    Ok(())
}

/// Compile one program per part, indexed in part order; `build`
/// constructs the document for a part.
///
/// The document must depend on the part only through its local shape —
/// true of every sweep builder — so a balanced decomposition with a
/// handful of distinct shapes compiles a handful of programs and shares
/// them across nodes. Compile failures are attributed to the part's node.
pub(crate) fn compile_per_part(
    session: &Session,
    partition: &dyn Partition,
    build: impl Fn(&Part) -> nsc_diagram::Document,
) -> Result<Vec<CompiledProgram>, NscError> {
    let mut by_shape: std::collections::HashMap<(usize, usize, usize), CompiledProgram> =
        std::collections::HashMap::new();
    let mut programs = Vec::with_capacity(partition.parts().len());
    for p in partition.parts() {
        let prog = match by_shape.entry(p.local_shape()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(
                session.compile(&mut build(p)).map_err(|err| NscError::on_node(p.node, err))?,
            ),
        };
        programs.push(prog.clone());
    }
    Ok(programs)
}

/// Per-run system metrics derived from a counter snapshot taken before
/// the run: per-node deltas, their overlap-aware aggregate, and the
/// achieved rate.
#[derive(Debug, Clone)]
pub(crate) struct SystemRunMetrics {
    pub per_node: Vec<PerfCounters>,
    pub total: PerfCounters,
    pub simulated_seconds: f64,
    pub aggregate_mflops: f64,
}

pub(crate) fn measure_system_run(system: &NscSystem, before: &[PerfCounters]) -> SystemRunMetrics {
    let clock = system.node(nsc_arch::NodeId(0)).kb.config().clock_hz;
    let per_node: Vec<PerfCounters> =
        system.nodes().iter().zip(before).map(|(n, b)| n.counters.since(b)).collect();
    let mut total = PerfCounters::default();
    for c in &per_node {
        total.absorb(c);
    }
    let simulated_seconds = per_node.iter().map(|c| c.seconds_with_comm(clock)).fold(0.0, f64::max);
    let aggregate_mflops =
        if simulated_seconds > 0.0 { total.flops as f64 / simulated_seconds / 1e6 } else { 0.0 };
    SystemRunMetrics { per_node, total, simulated_seconds, aggregate_mflops }
}

/// Re-attribute a pool batch failure to the hypercube node it happened on
/// (program `i` of a distributed step runs on part `i`'s node).
pub(crate) fn attribute_part(parts: &[Part], e: NscError) -> NscError {
    match e {
        NscError::Batch { doc, source } => NscError::on_node(parts[doc].node, *source),
        other => other,
    }
}

/// Outcome of a distributed Jacobi solve.
#[derive(Debug, Clone)]
pub struct DistributedJacobiRun {
    /// The reassembled final iterate.
    pub u: Grid3,
    /// The global residual (max over nodes of `max |masked update|`).
    pub residual: f64,
    /// Full sweeps executed across the system (each sweep touches every
    /// node once).
    pub sweeps: u64,
    /// Whether the tolerance (not the pair cap) ended it.
    pub converged: bool,
    /// The global residual after each sweep pair, in order — the
    /// convergence trace ensemble reports aggregate.
    pub residual_history: Vec<f64>,
    /// Per-node counter deltas for this run, indexed by node.
    pub per_node: Vec<PerfCounters>,
    /// System aggregate of this run: work summed, elapsed overlapped.
    pub total: PerfCounters,
    /// Simulated seconds of this run: the slowest node's compute plus its
    /// own communication time.
    pub simulated_seconds: f64,
    /// Aggregate achieved MFLOPS of this run across the system.
    pub aggregate_mflops: f64,
}

/// Point Jacobi for the 3-D Poisson problem, domain-decomposed across a
/// simulated hypercube with halo exchange.
#[derive(Debug, Clone)]
pub struct DistributedJacobiWorkload {
    /// Initial iterate (also fixes the grid size).
    pub u0: Grid3,
    /// Right-hand side.
    pub f: Grid3,
    /// Residual convergence tolerance.
    pub tol: f64,
    /// Cap on ping-pong sweep pairs (the convergence test runs once per
    /// pair, as in the serial document).
    pub max_pairs: u32,
    /// How to cut the grid (`Auto` resolves to strips: a tall iteration
    /// grid has the lowest surface-to-volume along its slowest axis).
    pub partition: PartitionSpec,
    /// Hide halo latency: split every sweep into interior and
    /// boundary-shell pipelines and exchange ghosts concurrently with the
    /// interior phase (see [`SweepEngine`]). Bit-identical to the
    /// synchronized mode; strictly faster whenever parts have interiors.
    pub overlap: bool,
}

impl Workload<NscSystem> for DistributedJacobiWorkload {
    type Report = DistributedJacobiRun;

    fn name(&self) -> String {
        format!("distributed-jacobi {}x{}x{}", self.u0.nx, self.u0.ny, self.u0.nz)
    }

    fn execute(
        &self,
        session: &Session,
        system: &mut NscSystem,
    ) -> Result<DistributedJacobiRun, NscError> {
        check_same_machine(session, system)?;
        if (self.u0.nx, self.u0.ny, self.u0.nz) != (self.f.nx, self.f.ny, self.f.nz) {
            return Err(NscError::Workload("iterate and right-hand side grids differ".into()));
        }
        let shape = GridShape::volume3d(self.u0.nx, self.u0.ny, self.u0.nz);
        let partition = self.partition.build(shape, system.cube, false)?;
        let parts = partition.parts();
        let members = partition.member_nodes();

        // Load every node's slab problem (ghosts included, so the first
        // sweep needs no exchange) and compile its sweep pair.
        let u_slabs = local_grids3(partition.as_ref(), &self.u0);
        let f_slabs = local_grids3(partition.as_ref(), &self.f);
        for (p, (lu0, lf)) in parts.iter().zip(u_slabs.iter().zip(&f_slabs)) {
            let state = JacobiHostState::new(lu0, lf);
            load_problem(system.node_mut(p.node), &state, JacobiVariant::Full);
        }
        let engine = SweepEngine::new(partition.as_ref(), HaloSpec::stencil(), self.overlap);
        let build = |even: bool| {
            move |p: &Part, windows: &[crate::partition::SweepWindow]| {
                let (lnx, lny, lnz) = p.local_shape();
                build_jacobi_sweep_document_windows(
                    JacobiGeometry::slab(lnx, lny, lnz),
                    even,
                    windows,
                )
            }
        };
        let even = engine.compile(session, build(true))?;
        let odd = engine.compile(session, build(false))?;

        let before: Vec<PerfCounters> = system.nodes().iter().map(|n| n.counters).collect();
        let opts = RunOptions::default();
        let mut pairs = 0u64;
        let mut residual = f64::INFINITY;
        let mut residual_history = Vec::new();
        let mut converged = false;
        while pairs < u64::from(self.max_pairs) && !converged {
            // Even sweep (u0 -> u1): the scatter loaded fresh ghosts, so
            // the very first sweep exchanges nothing; later pairs refresh
            // u0's ghosts (written by the previous odd sweep) during —
            // or, synchronized, after — the sweep.
            let even_io = if pairs == 0 {
                SweepIo::first(PLANE_U0, PLANE_U1)
            } else {
                SweepIo::steady(PLANE_U0, PLANE_U1)
            };
            engine.sweep(system, &even, even_io, &opts)?;
            // Odd sweep (u1 -> u0).
            engine.sweep(system, &odd, SweepIo::steady(PLANE_U1, PLANE_U0), &opts)?;
            // The pair's convergence test: a butterfly max-reduction of
            // the per-node residual scalars (the odd sweep's).
            let (r, _) = system.pool_max_cache_scalar(&members, RESIDUAL_CACHE, 0);
            residual = r;
            residual_history.push(residual);
            pairs += 1;
            converged = residual < self.tol;
        }

        // Reassemble the iterate from the u0 planes (pairs always end on
        // the odd sweep, exactly like the serial document's loop body).
        let locals = read_slabs(partition.as_ref(), system, PLANE_U0);
        let mut u = Grid3::new(self.u0.nx, self.u0.ny, self.u0.nz);
        u.h = self.u0.h;
        u.data = partition.gather(&locals);

        let m = measure_system_run(system, &before);
        Ok(DistributedJacobiRun {
            u,
            residual,
            sweeps: pairs * 2,
            converged,
            residual_history,
            per_node: m.per_node,
            total: m.total,
            simulated_seconds: m.simulated_seconds,
            aggregate_mflops: m.aggregate_mflops,
        })
    }
}

/// Outcome of a distributed block-SOR solve.
#[derive(Debug, Clone)]
pub struct DistributedSorRun {
    /// The reassembled final iterate.
    pub u: Grid3,
    /// The global residual (max over blocks of `max |update|`).
    pub residual: f64,
    /// Sweeps executed.
    pub sweeps: usize,
    /// Whether the tolerance (not the sweep cap) ended it.
    pub converged: bool,
    /// The global residual after each sweep, in order.
    pub residual_history: Vec<f64>,
    /// Router nanoseconds this run spent on halos and reductions
    /// (system-serialized view).
    pub comm_ns: u64,
}

/// Block successive over-relaxation: each node runs the host SOR sweep on
/// its own slab, halos and the convergence reduction travel through the
/// simulated router. Converges to the same discrete solution as the serial
/// [`crate::SorWorkload`] (the blocks' fixed point is the global one),
/// with block-boundary values lagging one sweep.
#[derive(Debug, Clone)]
pub struct DistributedSorWorkload {
    /// Initial iterate.
    pub u0: Grid3,
    /// Right-hand side.
    pub f: Grid3,
    /// Relaxation factor, in `(0, 2)` for convergence.
    pub omega: f64,
    /// Residual convergence tolerance.
    pub tol: f64,
    /// Cap on sweeps.
    pub max_sweeps: usize,
    /// How to cut the grid.
    pub partition: PartitionSpec,
    /// Phase each sweep through the overlapped engine (interior first,
    /// then boundary shells against fresh ghosts). Host compute spends no
    /// simulated node time, so nothing hides; the phase split reorders
    /// the in-place updates — a different Gauss-Seidel ordering with
    /// different iterates and convergence history, converging to the
    /// same fixed point — and the written faces travel one exchange
    /// later.
    pub overlap: bool,
}

impl DistributedSorWorkload {
    /// The manufactured `sin·sin·sin` Poisson problem on an `n³` grid at a
    /// given relaxation factor — the sweepable constructor an ω-ensemble
    /// fans out over. `omega` is deliberately *not* validated here: a
    /// sweep is allowed to include diverging members and read the verdict
    /// off the stability map.
    pub fn manufactured(n: usize, omega: f64, tol: f64, max_sweeps: usize) -> Self {
        let (u0, f, _) = crate::grid::manufactured_problem(n);
        DistributedSorWorkload {
            u0,
            f,
            omega,
            tol,
            max_sweeps,
            partition: PartitionSpec::Auto,
            overlap: false,
        }
    }
}

impl Workload<NscSystem> for DistributedSorWorkload {
    type Report = DistributedSorRun;

    fn name(&self) -> String {
        format!("distributed-sor {}x{}x{} omega={}", self.u0.nx, self.u0.ny, self.u0.nz, self.omega)
    }

    fn execute(
        &self,
        _session: &Session,
        system: &mut NscSystem,
    ) -> Result<DistributedSorRun, NscError> {
        if !(0.0..2.0).contains(&self.omega) || self.omega == 0.0 {
            return Err(NscError::Workload(format!(
                "SOR diverges outside 0 < omega < 2 (got {})",
                self.omega
            )));
        }
        if (self.u0.nx, self.u0.ny, self.u0.nz) != (self.f.nx, self.f.ny, self.f.nz) {
            return Err(NscError::Workload("iterate and right-hand side grids differ".into()));
        }
        let shape = GridShape::volume3d(self.u0.nx, self.u0.ny, self.u0.nz);
        let partition = self.partition.build(shape, system.cube, false)?;
        let members = partition.member_nodes();
        let parts = partition.parts();
        let fs = local_grids3(partition.as_ref(), &self.f);
        let mut slabs = partition.scatter(&self.u0.data);
        let engine = SweepEngine::new(partition.as_ref(), HaloSpec::stencil(), self.overlap);

        let comm_before = system.comm_ns;
        let omega = self.omega;
        let h = self.u0.h;
        // Every block relaxes its listed layers in place (host compute;
        // ghost faces hold whatever the last exchange delivered).
        let relax = |pi: usize, layers: std::ops::Range<usize>, slab: &mut Vec<f64>| -> f64 {
            let (lnx, lny, lnz) = parts[pi].local_shape();
            let mut g = Grid3 { nx: lnx, ny: lny, nz: lnz, h, data: std::mem::take(slab) };
            let r = sor_sweep_host_layers(&mut g, &fs[pi], omega, layers);
            *slab = g.data;
            r
        };
        let mut sweeps = 0;
        let mut residual = f64::INFINITY;
        let mut residual_history = Vec::new();
        let mut converged = false;
        while sweeps < self.max_sweeps && !converged {
            // One phased sweep: halos travel through the router between
            // the engine's phases (staged from and pulled back into the
            // host slabs).
            let block_res = engine.host_sweep(system, PLANE_U0, &mut slabs, sweeps == 0, relax);
            // Global convergence test through the butterfly reduction.
            for (p, r) in parts.iter().zip(&block_res) {
                system.node_mut(p.node).mem.cache_mut(RESIDUAL_CACHE).write(0, 0, *r);
            }
            let (r, _) = system.pool_max_cache_scalar(&members, RESIDUAL_CACHE, 0);
            residual = r;
            residual_history.push(residual);
            sweeps += 1;
            converged = residual < self.tol;
        }

        let mut u = Grid3::new(self.u0.nx, self.u0.ny, self.u0.nz);
        u.h = self.u0.h;
        u.data = partition.gather(&slabs);
        Ok(DistributedSorRun {
            u,
            residual,
            sweeps,
            converged,
            residual_history,
            comm_ns: system.comm_ns - comm_before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::manufactured_problem;
    use crate::host::jacobi_sweep_host;
    use crate::workloads::SorWorkload;
    use nsc_arch::HypercubeConfig;

    fn system(dim: u32, session: &Session) -> NscSystem {
        NscSystem::new(HypercubeConfig::new(dim), session.kb())
    }

    #[test]
    fn distributed_sweeps_match_the_serial_host_mirror_bit_for_bit() {
        let n = 8;
        let (u0, f, _) = manufactured_problem(n);
        let session = Session::nsc_1988();
        let mut host = JacobiHostState::new(&u0, &f);
        let mut host_res = 0.0;
        for _ in 0..6 {
            host_res = jacobi_sweep_host(&mut host);
        }
        let host_u = host.current();
        let mut sync_seconds = None;

        // Strips on a 4-node ring AND blocks on a 2x2 torus, synchronized
        // AND latency-hidden: all four must reproduce the serial bits
        // exactly.
        for (spec, overlap) in [
            (PartitionSpec::Strip, false),
            (PartitionSpec::Strip, true),
            (PartitionSpec::Block, false),
            (PartitionSpec::Block, true),
        ] {
            let mut sys = system(2, &session);
            let w = DistributedJacobiWorkload {
                u0: u0.clone(),
                f: f.clone(),
                tol: 0.0,
                max_pairs: 3,
                partition: spec,
                overlap,
            };
            let run = w.execute(&session, &mut sys).expect("runs");
            assert_eq!(run.sweeps, 6);
            assert!(!run.converged);
            for (a, b) in run.u.data.iter().zip(&host_u.data) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{spec:?} (overlap {overlap}) and serial sweeps must agree"
                );
            }
            assert_eq!(
                run.residual.to_bits(),
                host_res.to_bits(),
                "global max matches {spec:?} (overlap {overlap})"
            );
            // Communication happened and was charged per node.
            assert!(run.per_node.iter().all(|c| c.comm_ns > 0), "{spec:?}");
            assert!(run.aggregate_mflops > 0.0);
            if overlap {
                assert!(
                    run.per_node.iter().any(|c| c.comm_hidden_ns > 0),
                    "{spec:?}: overlapped halos must hide some time"
                );
                assert!(
                    run.simulated_seconds < sync_seconds.unwrap(),
                    "{spec:?}: hidden latency must shorten the run"
                );
            } else {
                assert!(run.per_node.iter().all(|c| c.comm_hidden_ns == 0), "{spec:?}");
                sync_seconds = Some(run.simulated_seconds);
            }
        }
    }

    #[test]
    fn distributed_jacobi_converges_like_the_serial_solver() {
        let n = 9;
        let (u0, f, exact) = manufactured_problem(n);
        let session = Session::nsc_1988();
        let mut sys = system(1, &session);
        let w = DistributedJacobiWorkload {
            u0,
            f,
            tol: 1e-9,
            max_pairs: 2000,
            partition: PartitionSpec::Auto,
            overlap: true,
        };
        let run = w.execute(&session, &mut sys).expect("runs");
        assert!(run.converged, "residual {}", run.residual);
        assert!(run.u.linf_diff(&exact) < 0.1, "err {}", run.u.linf_diff(&exact));
        assert!(w.name().contains("distributed-jacobi"));
    }

    #[test]
    fn distributed_jacobi_rejects_mismatched_machines_and_thin_grids() {
        let (u0, f, _) = manufactured_problem(6);
        let session = Session::nsc_1988();
        let mut revised = nsc_arch::MachineConfig::nsc_1988();
        revised.name = "revised".into();
        let mut alien =
            NscSystem::new(HypercubeConfig::new(1), nsc_core::Session::new(revised).kb());
        let w = DistributedJacobiWorkload {
            u0,
            f,
            tol: 0.0,
            max_pairs: 1,
            partition: PartitionSpec::Auto,
            overlap: false,
        };
        assert!(matches!(w.execute(&session, &mut alien), Err(NscError::Workload(_))));

        // 6 planes across 8 nodes cannot give every node 3 local planes.
        let mut small = system(3, &session);
        assert!(matches!(w.execute(&session, &mut small), Err(NscError::Workload(_))));
    }

    #[test]
    fn distributed_sor_finds_the_serial_fixed_point() {
        let n = 10;
        let (u0, f, exact) = manufactured_problem(n);
        let session = Session::nsc_1988();
        // Serial SOR baseline.
        let serial = SorWorkload {
            u0: u0.clone(),
            f: f.clone(),
            omega: 1.5,
            tol: 1e-10,
            max_sweeps: 20_000,
        };
        let mut node = session.node();
        let sref = serial.execute(&session, &mut node).expect("serial runs");
        assert!(sref.converged);

        for (spec, overlap) in [
            (PartitionSpec::Strip, false),
            (PartitionSpec::Strip, true),
            (PartitionSpec::Block, true),
        ] {
            let mut sys = system(2, &session);
            let w = DistributedSorWorkload {
                u0: u0.clone(),
                f: f.clone(),
                omega: 1.5,
                tol: 1e-10,
                max_sweeps: 20_000,
                partition: spec,
                overlap,
            };
            let run = w.execute(&session, &mut sys).expect("runs");
            assert!(run.converged, "{spec:?} residual {}", run.residual);
            assert!(run.u.linf_diff(&exact) < 0.1);
            assert!(run.comm_ns > 0, "halos and reductions cost router time");
            assert!(
                run.u.linf_diff(&sref.u) < 1e-6,
                "{spec:?} block and serial SOR disagree by {}",
                run.u.linf_diff(&sref.u)
            );
        }
    }

    #[test]
    fn distributed_sor_rejects_divergent_omega() {
        let (u0, f, _) = manufactured_problem(8);
        let session = Session::nsc_1988();
        let mut sys = system(1, &session);
        let w = DistributedSorWorkload {
            u0,
            f,
            omega: 2.5,
            tol: 1e-8,
            max_sweeps: 5,
            partition: PartitionSpec::Auto,
            overlap: false,
        };
        assert!(matches!(w.execute(&session, &mut sys), Err(NscError::Workload(_))));
    }
}
