//! The overlapped sweep engine: one shared driver for every distributed
//! stencil solver, hiding halo latency under interior compute.
//!
//! The Navier-Stokes Computer's premise is keeping 640 MFLOPS of
//! pipelines busy while the hypercube moves data, yet a naive distributed
//! sweep synchronizes: compute everything, then exchange, with the
//! routers idle during compute and the pipelines idle during exchange.
//! The engine performs the classic latency-hiding split instead. Each
//! part's sweep is cut along the *overlap axis* (the stream-outermost
//! axis — xy-planes in 3-D, rows in 2-D) into
//!
//! * an **interior** window whose stencils read no ghost layer, and
//! * **boundary-shell** windows against each ghost face
//!
//! (see [`Part::overlap_split`]); the windowed document builders
//! ([`crate::diagrams::build_jacobi_sweep_document_windows`] and
//! friends) turn each window into its own pipeline instruction over the
//! *same* operation tree, so the split is bit-identical to the fused
//! sweep on every owned point. A sweep step then runs as
//!
//! 1. synchronously exchange the faces the stream layout cannot overlap
//!    (the block decomposition's column axis);
//! 2. launch the interior pipelines on the pool **while** the overlap
//!    axis's halo sendrecvs travel — [`nsc_core::run_compiled_phased`]
//!    opens an overlappable communication window
//!    ([`nsc_sim::NscSystem::open_comm_window`]) whose per-node budget is
//!    the interior phase's elapsed time, so the exchange charges each
//!    node only the *non-overlapped remainder*;
//! 3. finish the boundary shells, which read the freshly exchanged
//!    ghosts.
//!
//! With `overlap` off the engine reproduces the legacy synchronized
//! choreography (fused sweep, then exchange) cycle for cycle, so the two
//! modes are directly comparable — the perf gate asserts the overlapped
//! 8-node figures are strictly faster.
//!
//! Host-resident block solvers (block SOR) run the same choreography
//! through [`SweepEngine::host_sweep`], with the compute phases as host
//! closures over the same window split.
//!
//! ```
//! use nsc_arch::HypercubeConfig;
//! use nsc_cfd::diagrams::{build_jacobi_sweep_document_windows, JacobiGeometry, PLANE_U0, PLANE_U1};
//! use nsc_cfd::nsc_run::load_problem;
//! use nsc_cfd::host::JacobiHostState;
//! use nsc_cfd::grid::manufactured_problem;
//! use nsc_cfd::{GridShape, HaloSpec, JacobiVariant, Partition, StripPartition, SweepEngine, SweepIo};
//! use nsc_core::Session;
//! use nsc_sim::{NscSystem, RunOptions};
//!
//! // An 8^3 Poisson problem striped across a 2-node cube.
//! let session = Session::nsc_1988();
//! let mut system = NscSystem::new(HypercubeConfig::new(1), session.kb());
//! let strips = StripPartition::new(GridShape::volume3d(8, 8, 8), system.cube)?;
//! let (u0, f, _) = manufactured_problem(8);
//! for (p, (lu, lf)) in strips.parts().iter().zip(
//!     strips.scatter(&u0.data).iter().zip(strips.scatter(&f.data)),
//! ) {
//!     let (nx, ny, nz) = p.local_shape();
//!     let wrap = |d: &[f64]| nsc_cfd::Grid3 { nx, ny, nz, h: u0.h, data: d.to_vec() };
//!     load_problem(
//!         system.node_mut(p.node),
//!         &JacobiHostState::new(&wrap(lu), &wrap(&lf)),
//!         JacobiVariant::Full,
//!     );
//! }
//!
//! // Compile the even sweep split into interior + boundary shells, then
//! // run it with the u1-halo exchange hidden under the interior phase.
//! let engine = SweepEngine::new(&strips, HaloSpec::stencil(), true);
//! let even = engine.compile(&session, |p, windows| {
//!     let (nx, ny, nz) = p.local_shape();
//!     build_jacobi_sweep_document_windows(JacobiGeometry::slab(nx, ny, nz), true, windows)
//! })?;
//! let opts = RunOptions::default();
//! engine.sweep(&mut system, &even, SweepIo::first(PLANE_U0, PLANE_U1), &opts)?;
//! let odd = engine.compile(&session, |p, windows| {
//!     let (nx, ny, nz) = p.local_shape();
//!     build_jacobi_sweep_document_windows(JacobiGeometry::slab(nx, ny, nz), false, windows)
//! })?;
//! let hidden = engine.sweep(&mut system, &odd, SweepIo::steady(PLANE_U1, PLANE_U0), &opts)?;
//! assert!(hidden > 0, "the odd sweep's halo exchange overlapped its interior");
//! # Ok::<(), nsc_core::NscError>(())
//! ```

use crate::certify::{halo_routes, window_coverage};
use crate::diagrams::RESIDUAL_CACHE;
use crate::distributed::attribute_part;
use crate::partition::{host_halo_exchange, HaloSpec, Part, Partition, SweepSplit, SweepWindow};
use nsc_arch::PlaneId;
use nsc_core::{run_compiled_on_pool, run_compiled_phased, CompiledProgram, NscError, Session};
use nsc_diagram::Document;
use nsc_sim::{NscSystem, RunOptions};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

/// The plane roles of one sweep step: which plane it reads (whose ghosts
/// the overlapped exchange refreshes mid-step) and which it writes (what
/// the synchronized mode exchanges afterwards).
#[derive(Debug, Clone, Copy)]
pub struct SweepIo {
    /// The plane the sweep reads.
    pub read: PlaneId,
    /// The plane the sweep writes.
    pub write: PlaneId,
    /// Whether the read plane's ghost layers are already fresh (true for
    /// the first sweep after a scatter, which loads ghosts host-side) —
    /// the overlapped mode then skips the exchange entirely.
    pub fresh_ghosts: bool,
}

impl SweepIo {
    /// The first sweep after a scatter: read ghosts are already fresh.
    pub fn first(read: PlaneId, write: PlaneId) -> Self {
        SweepIo { read, write, fresh_ghosts: true }
    }

    /// A steady-state sweep: the read plane's ghosts are stale remnants
    /// of the sweep-before-last and must be refreshed.
    pub fn steady(read: PlaneId, write: PlaneId) -> Self {
        SweepIo { read, write, fresh_ghosts: false }
    }
}

/// A sweep compiled for one engine: either the fused program per part
/// (synchronized mode) or the interior/boundary-shell pair per part
/// (overlapped mode). Build one with [`SweepEngine::compile`]; a sweep
/// only runs on the engine (same partition, same mode) that compiled it.
#[derive(Debug)]
pub struct CompiledSweep {
    /// Synchronized mode: the whole-slab program, one per part.
    fused: Vec<CompiledProgram>,
    /// Overlapped mode: the interior window program per part (`None` for
    /// slabs too thin to have one).
    interior: Vec<Option<CompiledProgram>>,
    /// Overlapped mode: the boundary-shell program per part (`None` for
    /// parts with no ghost faces along the overlap axis).
    shell: Vec<Option<CompiledProgram>>,
}

/// The shared overlapped sweep engine (see the module docs).
///
/// An engine binds a [`Partition`], a [`HaloSpec`] and an `overlap`
/// mode; [`SweepEngine::compile`] turns a windowed document builder into
/// a [`CompiledSweep`] (deduplicating identical local shapes), and
/// [`SweepEngine::sweep`] runs one latency-hidden (or legacy
/// synchronized) sweep step.
#[derive(Debug)]
pub struct SweepEngine<'p> {
    partition: &'p dyn Partition,
    halo: HaloSpec,
    overlap: bool,
    /// The window split per part (overlap mode).
    splits: Vec<SweepSplit>,
    /// The part nodes, in partition order.
    pool: Vec<usize>,
    /// The halo faces the engine can hide (the overlap axis's).
    overlap_spec: HaloSpec,
    /// The faces that must still exchange synchronously.
    sync_spec: HaloSpec,
}

impl<'p> SweepEngine<'p> {
    /// An engine over `partition` refreshing the ghosts `halo` describes.
    /// With `overlap` false every sweep runs the legacy synchronized
    /// choreography bit- and cycle-identically.
    pub fn new(partition: &'p dyn Partition, halo: HaloSpec, overlap: bool) -> Self {
        let axis = partition.shape().overlap_axis();
        let splits = partition.parts().iter().map(|p| p.overlap_split(axis, &halo)).collect();
        SweepEngine {
            partition,
            halo,
            overlap,
            splits,
            pool: partition.node_pool(),
            overlap_spec: halo.only_axis(axis),
            sync_spec: halo.without_axis(axis),
        }
    }

    /// Whether this engine overlaps communication with compute.
    pub fn overlap(&self) -> bool {
        self.overlap
    }

    /// The partition the engine drives.
    pub fn partition(&self) -> &dyn Partition {
        self.partition
    }

    /// Compile one sweep for this engine's mode. `build` constructs the
    /// windowed document for a part — typically one of the
    /// `*_document_windows` builders on the part's local geometry.
    /// Deduplication is by [`Document::digest`]: parts whose builders
    /// produce identical documents (a balanced decomposition produces a
    /// handful of distinct shapes) share one compile — and through the
    /// session's digest-keyed `KernelCache`, repeated `compile` calls on
    /// the same engine (the even/odd sweeps of every V-cycle level, or a
    /// re-run) skip codegen entirely. Compile failures are attributed to
    /// the part's node.
    pub fn compile(
        &self,
        session: &Session,
        build: impl Fn(&Part, &[SweepWindow]) -> Document,
    ) -> Result<CompiledSweep, NscError> {
        let mut cache: HashMap<u128, CompiledProgram> = HashMap::new();
        let mut compile_windows =
            |p: &Part, windows: &[SweepWindow]| -> Result<CompiledProgram, NscError> {
                let mut doc = build(p, windows);
                let key = doc.digest();
                if let Some(prog) = cache.get(&key) {
                    return Ok(prog.clone());
                }
                let prog = session.compile(&mut doc).map_err(|e| NscError::on_node(p.node, e))?;
                cache.insert(key, prog.clone());
                Ok(prog)
            };

        let mut fused = Vec::new();
        let mut interior = Vec::new();
        let mut shell = Vec::new();
        let axis = self.partition.shape().overlap_axis();
        for (p, split) in self.partition.parts().iter().zip(&self.splits) {
            if self.overlap {
                interior.push(match split.interior {
                    Some(w) => Some(compile_windows(p, &[w])?),
                    None => None,
                });
                let shells = split.shell_windows();
                shell.push(if shells.is_empty() {
                    None
                } else {
                    Some(compile_windows(p, &shells)?)
                });
            } else {
                let whole = SweepWindow::whole(p.spans[axis].local_len());
                fused.push(compile_windows(p, &[whole])?);
            }
        }
        // Staple the engine's topology claims — every halo route and the
        // window tiling of each part's owned layers — onto the sweep's
        // base compile certificate and record it for auditing. One
        // certificate per compile call describes the whole sweep: the
        // per-part programs share machine limits and the topology is a
        // property of the partition, not of any one part.
        let base = if self.overlap {
            interior.iter().flatten().chain(shell.iter().flatten()).next()
        } else {
            fused.first()
        };
        if let Some(prog) = base {
            let cert = prog.certificate().with_topology(
                halo_routes(self.partition, &self.halo),
                window_coverage(self.partition, &self.splits),
            );
            session.record_certificate(Arc::new(cert));
        }
        Ok(CompiledSweep { fused, interior, shell })
    }

    /// Run one sweep step.
    ///
    /// Synchronized mode: run the fused programs concurrently across the
    /// pool, then exchange the *written* plane's halo faces — exactly the
    /// legacy "run pool, then halo_exchange" loop body.
    ///
    /// Overlapped mode: exchange the non-overlappable faces of the *read*
    /// plane, launch the interior pipelines while the overlap axis's
    /// faces travel (charging each node only the non-overlapped
    /// remainder), finish the boundary shells against the fresh ghosts,
    /// and fold the per-window residual scalars into cache slot 0 (a
    /// sequencer-local combine; the value is bit-identical to the fused
    /// reduction because `max` is associative). The written plane's
    /// ghosts stay stale until the *next* step's overlapped exchange — or
    /// [`SweepEngine::refresh`], for the final sweep of a run whose slabs
    /// are read back with ghosts.
    ///
    /// Returns the message nanoseconds hidden under the interior phase
    /// (always 0 in synchronized mode).
    pub fn sweep(
        &self,
        system: &mut NscSystem,
        sweep: &CompiledSweep,
        io: SweepIo,
        opts: &RunOptions,
    ) -> Result<u64, NscError> {
        let parts = self.partition.parts();
        if !self.overlap {
            let refs: Vec<&CompiledProgram> = sweep.fused.iter().collect();
            run_compiled_on_pool(&refs, system.nodes_mut(), &self.pool, opts)
                .map_err(|e| attribute_part(parts, e))?;
            self.partition.halo_exchange(system, io.write, 1, &self.halo);
            return Ok(0);
        }

        if !io.fresh_ghosts && self.sync_spec.wants_any() {
            self.partition.halo_exchange(system, io.read, 1, &self.sync_spec);
        }
        let interior: Vec<Option<&CompiledProgram>> =
            sweep.interior.iter().map(Option::as_ref).collect();
        let shell: Vec<Option<&CompiledProgram>> = sweep.shell.iter().map(Option::as_ref).collect();
        let hidden = run_compiled_phased(system, &self.pool, &interior, &shell, opts, |sys| {
            if !io.fresh_ghosts {
                self.partition.halo_exchange(sys, io.read, 1, &self.overlap_spec);
            }
        })
        .map_err(|e| attribute_part(parts, e))?;
        self.combine_residuals(system);
        Ok(hidden)
    }

    /// Synchronously refresh all of `plane`'s halo faces — the tail
    /// exchange an overlapped run needs before host code reads slabs back
    /// with their ghost layers (the multigrid smoother's contract).
    /// Returns the slowest per-node communication time in nanoseconds.
    pub fn refresh(&self, system: &mut NscSystem, plane: PlaneId) -> u64 {
        self.partition.halo_exchange(system, plane, 1, &self.halo)
    }

    /// One sweep step whose compute runs on the *host* (block SOR and
    /// other host-resident kernels), phased over the same window split:
    /// `compute(part, layers, slab)` updates the slab's given local
    /// layers in place and returns its residual contribution.
    ///
    /// Synchronized mode sweeps every part's full slab concurrently and
    /// then host-exchanges the halo faces (the legacy choreography, bit
    /// for bit). Overlapped mode exchanges the non-overlappable faces,
    /// computes the interiors, exchanges the overlap axis's faces, then
    /// computes the shells — the same phase order as the compiled path.
    /// Host compute spends no simulated node time, so nothing hides; the
    /// value of the overlapped mode here is the shared choreography (and
    /// one fewer exchange per run, since the written faces travel lazily).
    /// Note the phase split reorders a Gauss-Seidel sweep's updates
    /// (interior before shells), which is a genuinely different update
    /// ordering — shell cells read current-sweep interior values instead
    /// of previous-sweep ones — so iterates and convergence histories
    /// differ between modes; only the fixed point (the discrete
    /// solution) is shared. Returns the per-part residuals (max over
    /// phases — order-independent, so the synchronized value is exact).
    pub fn host_sweep(
        &self,
        system: &mut NscSystem,
        plane: PlaneId,
        slabs: &mut [Vec<f64>],
        fresh_ghosts: bool,
        compute: impl Fn(usize, Range<usize>, &mut Vec<f64>) -> f64 + Send + Sync,
    ) -> Vec<f64> {
        let parts = self.partition.parts();
        assert_eq!(slabs.len(), parts.len(), "one slab per part");
        let mut res = vec![0.0f64; parts.len()];
        let axis = self.partition.shape().overlap_axis();
        let splits = &self.splits;
        let compute = &compute;

        // Run one compute phase concurrently across parts; each part
        // covers the listed windows of its split.
        let phase = |slabs: &mut [Vec<f64>], res: &mut [f64], shell: bool| {
            let _ = crossbeam::thread::scope(|scope| {
                for ((pi, slab), r) in slabs.iter_mut().enumerate().zip(res.iter_mut()) {
                    scope.spawn(move |_| {
                        let windows: Vec<SweepWindow> = if shell {
                            splits[pi].shell_windows()
                        } else {
                            splits[pi].interior.into_iter().collect()
                        };
                        for w in windows {
                            *r = r.max(compute(pi, w.start..w.start + w.len, slab));
                        }
                    });
                }
            });
        };

        if !self.overlap {
            // Legacy: full sweeps concurrently, then one full exchange.
            let _ = crossbeam::thread::scope(|scope| {
                for ((pi, slab), r) in slabs.iter_mut().enumerate().zip(res.iter_mut()) {
                    let layers = 0..parts[pi].spans[axis].local_len();
                    scope.spawn(move |_| {
                        *r = compute(pi, layers, slab);
                    });
                }
            });
            host_halo_exchange(self.partition, system, plane, slabs, &self.halo);
            return res;
        }

        if !fresh_ghosts && self.sync_spec.wants_any() {
            host_halo_exchange(self.partition, system, plane, slabs, &self.sync_spec);
        }
        phase(slabs, &mut res, false);
        if !fresh_ghosts {
            host_halo_exchange(self.partition, system, plane, slabs, &self.overlap_spec);
        }
        phase(slabs, &mut res, true);
        res
    }

    /// Fold each part's per-window residual scalars into cache slot 0 —
    /// what the convergence butterfly reads. A node-local sequencer
    /// combine: no router time is charged. Bit-identical to the fused
    /// reduction (a max of maxes over the same values).
    fn combine_residuals(&self, system: &mut NscSystem) {
        for (p, split) in self.partition.parts().iter().zip(&self.splits) {
            let mut windows = split.windows();
            let single_slot0 = {
                let first = windows.next();
                windows.next().is_none() && first.is_some_and(|w| w.slot == 0)
            };
            if single_slot0 {
                continue; // the one window already wrote slot 0
            }
            let node = system.node_mut(p.node);
            let r = split
                .windows()
                .map(|w| node.mem.cache(RESIDUAL_CACHE).read(0, w.slot))
                .fold(f64::NEG_INFINITY, f64::max);
            node.mem.cache_mut(RESIDUAL_CACHE).write(0, 0, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagrams::{
        build_jacobi_sweep_document_windows, JacobiGeometry, JacobiVariant, PLANE_U0, PLANE_U1,
    };
    use crate::grid::{manufactured_problem, Grid3};
    use crate::host::JacobiHostState;
    use crate::nsc_run::load_problem;
    use crate::partition::{GridShape, StripPartition};
    use nsc_arch::HypercubeConfig;
    use nsc_core::Session;

    fn load_strips(strips: &StripPartition, system: &mut NscSystem, u0: &Grid3, f: &Grid3) {
        let us = strips.scatter(&u0.data);
        let fs = strips.scatter(&f.data);
        for (p, (lu, lf)) in strips.parts().iter().zip(us.iter().zip(&fs)) {
            let (nx, ny, nz) = p.local_shape();
            let wrap = |d: &[f64]| Grid3 { nx, ny, nz, h: u0.h, data: d.to_vec() };
            let state = JacobiHostState::new(&wrap(lu), &wrap(lf));
            load_problem(system.node_mut(p.node), &state, JacobiVariant::Full);
        }
    }

    #[test]
    fn overlapped_and_synchronized_sweeps_agree_bit_for_bit_and_hide_time() {
        let (u0, f, _) = manufactured_problem(9);
        let session = Session::nsc_1988();
        let shape = GridShape::volume3d(9, 9, 9);
        let opts = RunOptions::default();
        let build = |even: bool| {
            move |p: &Part, windows: &[SweepWindow]| {
                let (nx, ny, nz) = p.local_shape();
                build_jacobi_sweep_document_windows(JacobiGeometry::slab(nx, ny, nz), even, windows)
            }
        };

        let mut runs = Vec::new();
        for overlap in [false, true] {
            let mut system = NscSystem::new(HypercubeConfig::new(2), session.kb());
            let strips = StripPartition::new(shape, system.cube).expect("decomposes");
            load_strips(&strips, &mut system, &u0, &f);
            let engine = SweepEngine::new(&strips, HaloSpec::stencil(), overlap);
            let even = engine.compile(&session, build(true)).expect("compiles");
            let odd = engine.compile(&session, build(false)).expect("compiles");
            let mut hidden = 0;
            hidden += engine
                .sweep(&mut system, &even, SweepIo::first(PLANE_U0, PLANE_U1), &opts)
                .expect("even");
            hidden += engine
                .sweep(&mut system, &odd, SweepIo::steady(PLANE_U1, PLANE_U0), &opts)
                .expect("odd");
            let residual = system.node(strips.parts()[1].node).mem.cache(RESIDUAL_CACHE).read(0, 0);
            // Gather the owned points and the per-node residual slot 0.
            let slabs = crate::partition::read_slabs(&strips, &system, PLANE_U0);
            runs.push((strips.gather(&slabs), residual, hidden, system.simulated_seconds()));
        }
        let (sync_u, sync_r, sync_hidden, sync_secs) = &runs[0];
        let (over_u, over_r, over_hidden, over_secs) = &runs[1];
        for (a, b) in sync_u.iter().zip(over_u) {
            assert_eq!(a.to_bits(), b.to_bits(), "split sweep diverged from fused");
        }
        assert_eq!(sync_r.to_bits(), over_r.to_bits(), "combined residual differs");
        assert_eq!(*sync_hidden, 0, "synchronized mode hides nothing");
        assert!(*over_hidden > 0, "the odd sweep's exchange must hide under its interior");
        assert!(over_secs < sync_secs, "hidden latency must shorten the simulated run");
    }
}
