//! Running the Jacobi document on the simulated NSC and checking it
//! against the host mirror.
//!
//! Every entry point is fallible: bind, check, generation and execution
//! failures propagate as [`NscError`] instead of panicking, so solver
//! drivers can be batched, retried and reported on.

use crate::diagrams::{
    build_jacobi_document, JacobiGeometry, JacobiVariant, PLANE_COPY0, PLANE_G, PLANE_MASK,
    PLANE_U0, RESIDUAL_CACHE,
};
use crate::grid::Grid3;
use crate::host::JacobiHostState;
use nsc_codegen::GenOutput;
use nsc_core::{NscError, Session};
use nsc_diagram::Document;
use nsc_sim::{NodeSim, PerfCounters, RunOptions};

/// Outcome of a simulated Jacobi solve.
#[derive(Debug, Clone)]
pub struct JacobiRun {
    /// The final iterate (extracted from the node's planes).
    pub u: Grid3,
    /// The final residual scalar from the data cache.
    pub residual: f64,
    /// Full sweeps executed (ping-pong pairs x 2).
    pub sweeps: u64,
    /// Whether the convergence branch (not the iteration cap) ended it.
    pub converged: bool,
    /// The node's performance counters for the run.
    pub counters: PerfCounters,
    /// Achieved MFLOPS at the node clock.
    pub mflops: f64,
}

/// Load a Jacobi problem into the node's planes.
pub fn load_problem(node: &mut NodeSim, state: &JacobiHostState, variant: JacobiVariant) {
    node.mem.plane_mut(PLANE_U0).write_slice(0, &state.u.words);
    node.mem.plane_mut(PLANE_MASK).write_slice(0, &state.mask.words);
    node.mem.plane_mut(PLANE_G).write_slice(0, &state.g.words);
    // The pong plane starts zero; every point is written each sweep.
    if variant == JacobiVariant::NoSdu {
        // §3: "maintain multiple copies of arrays" — the initial copies.
        for i in 0..6u8 {
            node.mem.plane_mut(nsc_arch::PlaneId(PLANE_COPY0 + i)).write_slice(0, &state.u.words);
        }
    }
}

/// Bind, check and generate microcode for a document on this node's
/// machine.
pub fn prepare(node: &NodeSim, doc: &mut Document) -> Result<GenOutput, NscError> {
    Session::from_kb(node.kb.clone()).compile(doc).map(|c| c.output)
}

/// Solve the `n^3` manufactured problem on a simulated node, compiling
/// against the node's own machine description.
pub fn run_jacobi_on_node(
    node: &mut NodeSim,
    u0: &Grid3,
    f: &Grid3,
    tol: f64,
    max_pairs: u32,
    variant: JacobiVariant,
) -> Result<JacobiRun, NscError> {
    run_jacobi(&Session::from_kb(node.kb.clone()), node, u0, f, tol, max_pairs, variant)
}

/// Solve the `n^3` manufactured problem: compile the Jacobi document
/// through `session`, execute it on `node`.
pub fn run_jacobi(
    session: &Session,
    node: &mut NodeSim,
    u0: &Grid3,
    f: &Grid3,
    tol: f64,
    max_pairs: u32,
    variant: JacobiVariant,
) -> Result<JacobiRun, NscError> {
    if u0.nx != u0.ny || u0.nx != u0.nz {
        return Err(NscError::Workload(format!(
            "the Jacobi document wants a cubic grid, got {}x{}x{}",
            u0.nx, u0.ny, u0.nz
        )));
    }
    if (u0.nx, u0.ny, u0.nz) != (f.nx, f.ny, f.nz) {
        return Err(NscError::Workload(format!(
            "iterate is {}x{}x{} but the right-hand side is {}x{}x{}",
            u0.nx, u0.ny, u0.nz, f.nx, f.ny, f.nz
        )));
    }
    let n = u0.nx;
    let state = JacobiHostState::new(u0, f);
    load_problem(node, &state, variant);
    let mut doc = build_jacobi_document(n, tol, max_pairs, variant);
    let compiled = session.compile(&mut doc)?;
    // A convergence loop that outruns this budget is a runaway: the
    // document's own max_pairs counter should always halt it first, so
    // CompiledProgram::run reporting NscError::MaxInstructions is the
    // wanted behaviour.
    let opts = RunOptions { max_instructions: 10_000_000, ..Default::default() };
    let report = compiled.run(node, &opts)?;

    let instrs_per_pair = match variant {
        JacobiVariant::NoSdu => 6,
        _ => 2,
    };
    let pairs = (report.stats.executed - 1) / instrs_per_pair; // minus loop header
    let residual = node.mem.cache(RESIDUAL_CACHE).read(0, 0);
    let geo = JacobiGeometry::cube(n);
    // The loop body ends on the odd sweep, so the result is in plane u0.
    let words = node.mem.plane(PLANE_U0).read_vec(0, geo.padded as u64);
    let padded = crate::grid::PaddedField { front: geo.plane, back: geo.plane, words };
    let u = padded.to_grid(n, n, n);
    Ok(JacobiRun {
        u,
        residual,
        sweeps: pairs * 2,
        converged: residual < tol,
        counters: report.counters,
        mflops: report.mflops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::manufactured_problem;
    use crate::host::jacobi_sweep_host;
    use nsc_arch::{KnowledgeBase, MachineConfig, SubsetModel};

    #[test]
    fn simulated_jacobi_matches_the_host_mirror_bit_for_bit() {
        let n = 6;
        let (u0, f, _) = manufactured_problem(n);
        // Run exactly 3 pairs on the NSC (tolerance 0 never converges).
        let mut node = NodeSim::nsc_1988();
        let run =
            run_jacobi_on_node(&mut node, &u0, &f, 0.0, 3, JacobiVariant::Full).expect("runs");
        assert_eq!(run.sweeps, 6);
        assert!(!run.converged);
        // Host mirror: 6 sweeps.
        let mut host = JacobiHostState::new(&u0, &f);
        let mut host_res = 0.0;
        for _ in 0..6 {
            host_res = jacobi_sweep_host(&mut host);
        }
        let host_u = host.current();
        for (a, b) in run.u.data.iter().zip(&host_u.data) {
            assert_eq!(a.to_bits(), b.to_bits(), "simulator and host mirror must agree exactly");
        }
        assert_eq!(run.residual.to_bits(), host_res.to_bits(), "residual reduction matches");
    }

    #[test]
    fn simulated_jacobi_converges_via_the_interrupt_condition() {
        let n = 6;
        let (u0, f, exact) = manufactured_problem(n);
        let mut node = NodeSim::nsc_1988();
        let run =
            run_jacobi_on_node(&mut node, &u0, &f, 1e-9, 2000, JacobiVariant::Full).expect("runs");
        assert!(run.converged, "residual {}", run.residual);
        assert!(run.residual < 1e-9);
        // Converged answer is within discretization error of the exact
        // solution.
        assert!(run.u.linf_diff(&exact) < 0.1, "err {}", run.u.linf_diff(&exact));
        assert!(run.mflops > 0.0);
    }

    #[test]
    fn no_sdu_variant_computes_the_same_answer_more_slowly() {
        let n = 6;
        let (u0, f, _) = manufactured_problem(n);
        let mut full_node = NodeSim::nsc_1988();
        let full =
            run_jacobi_on_node(&mut full_node, &u0, &f, 0.0, 2, JacobiVariant::Full).expect("runs");
        let kb = KnowledgeBase::new(MachineConfig::nsc_1988().subset(SubsetModel::NoSdu));
        let mut nosdu_node = NodeSim::new(kb);
        let nosdu = run_jacobi_on_node(&mut nosdu_node, &u0, &f, 0.0, 2, JacobiVariant::NoSdu)
            .expect("runs");
        for (a, b) in full.u.data.iter().zip(&nosdu.u.data) {
            assert_eq!(a.to_bits(), b.to_bits(), "same arithmetic, same results");
        }
        assert!(
            nosdu.counters.cycles > full.counters.cycles * 3 / 2,
            "copies must cost cycles: {} vs {}",
            nosdu.counters.cycles,
            full.counters.cycles
        );
    }

    #[test]
    fn singlets_only_variant_matches_too() {
        let n = 6;
        let (u0, f, _) = manufactured_problem(n);
        let kb = KnowledgeBase::new(MachineConfig::nsc_1988().subset(SubsetModel::SingletsOnly));
        let mut node = NodeSim::new(kb);
        let run = run_jacobi_on_node(&mut node, &u0, &f, 0.0, 2, JacobiVariant::SingletsOnly)
            .expect("runs");
        let mut host = JacobiHostState::new(&u0, &f);
        for _ in 0..4 {
            jacobi_sweep_host(&mut host);
        }
        let host_u = host.current();
        for (a, b) in run.u.data.iter().zip(&host_u.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn flop_accounting_matches_the_operation_count() {
        // Per point per sweep: 5 adds + 2 subs + 2 muls + 1 add + 1 maxabs
        // = 11 flops (copies are not flops).
        let n = 6;
        let (u0, f, _) = manufactured_problem(n);
        let mut node = NodeSim::nsc_1988();
        let run =
            run_jacobi_on_node(&mut node, &u0, &f, 0.0, 1, JacobiVariant::Full).expect("runs");
        let geo = JacobiGeometry::cube(n);
        // Streams run over the padded length; invalid slots produce no
        // flops for units fed by warm-up, but units fed by always-valid
        // storage streams (mask, g) fire on every slot they see. Bound it:
        let per_sweep_min = 11 * geo.points as u64;
        let per_sweep_max = 11 * geo.padded as u64;
        assert!(
            run.counters.flops >= 2 * per_sweep_min && run.counters.flops <= 2 * per_sweep_max,
            "flops {} outside [{}, {}]",
            run.counters.flops,
            2 * per_sweep_min,
            2 * per_sweep_max
        );
    }
}
