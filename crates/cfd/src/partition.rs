//! Topology-aware domain decomposition of solver grids onto the hypercube.
//!
//! A [`Partition`] cuts a [`GridShape`] into one [`Part`] per node and
//! gives every distributed workload the same four-verb surface:
//! [`Partition::scatter`] / [`Partition::gather`] move whole fields
//! between a host array and the per-node slabs, [`Partition::word_offset`]
//! addresses a point inside a node's padded plane layout, and
//! [`Partition::halo_exchange`] refreshes the ghost layers described by a
//! [`HaloSpec`] through the hyperspace router.
//!
//! Two decompositions implement the trait:
//!
//! * [`StripPartition`] — 1-D strips of "planes" along the slowest axis
//!   (xy-planes of a 3-D grid, rows of a 2-D one), laid on the Gray ring
//!   so adjacent strips are physical neighbours. Lowest surface-to-volume
//!   for tall grids; coarse grids go thinner than one plane per node long
//!   before a block decomposition runs out.
//! * [`BlockPartition`] — 2-D blocks over a Gray-embedded
//!   [`TorusEmbedding`]: the two slowest axes are split across the torus
//!   rows and columns, so every face exchange still crosses exactly one
//!   link. This is what lets multigrid's coarse levels stay distributed.
//!
//! Ghost cells always live *inside* the local slab (its outermost layers),
//! exactly where the NSC's stencil-padded memory layout expects halo data,
//! so a decomposed sweep is the same pipeline diagram as the serial one on
//! local geometry — and bit-identical to the serial sweep on the points a
//! node owns.

use nsc_arch::{HypercubeConfig, NodeId, PlaneId, TorusEmbedding};
use nsc_core::NscError;
use nsc_sim::NscSystem;

/// The global index space a partition decomposes: `nx * ny * nz` points in
/// x-fastest order. Plane problems use `nz = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridShape {
    /// Points along x (the fastest axis).
    pub nx: usize,
    /// Points along y.
    pub ny: usize,
    /// Points along z (the slowest axis; 1 for 2-D grids).
    pub nz: usize,
}

impl GridShape {
    /// A 2-D plane problem.
    pub fn plane2d(nx: usize, ny: usize) -> Self {
        GridShape { nx, ny, nz: 1 }
    }

    /// A 3-D volume problem.
    pub fn volume3d(nx: usize, ny: usize, nz: usize) -> Self {
        GridShape { nx, ny, nz }
    }

    /// Total points.
    pub fn words(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Whether this is a plane problem.
    pub fn is_2d(&self) -> bool {
        self.nz == 1
    }

    /// Flat global index of `(i, j, k)`.
    pub fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// The slowest (stream-outermost) axis — the only axis along which a
    /// sweep pipeline can be *windowed* into contiguous layer ranges, and
    /// therefore the axis whose halo exchange the overlapped sweep engine
    /// can hide under interior compute (2 for volume grids, 1 for plane
    /// grids).
    pub fn overlap_axis(&self) -> usize {
        if self.is_2d() {
            1
        } else {
            2
        }
    }
}

/// One axis of one part: the owned global range plus the ghost layers
/// carried on each side (ghosts are part of the local slab).
#[derive(Debug, Clone, Copy)]
pub struct AxisSpan {
    /// First owned global index.
    pub start: usize,
    /// Owned points.
    pub len: usize,
    /// Ghost layers below `start` (0 on a domain boundary or unsplit axis).
    pub lo_ghost: usize,
    /// Ghost layers above `start + len - 1`.
    pub hi_ghost: usize,
}

impl AxisSpan {
    /// An unsplit axis: the part sees all of it, no ghosts.
    pub fn whole(len: usize) -> Self {
        AxisSpan { start: 0, len, lo_ghost: 0, hi_ghost: 0 }
    }

    /// Local extent: owned plus ghosts.
    pub fn local_len(&self) -> usize {
        self.len + self.lo_ghost + self.hi_ghost
    }

    /// Global index of local position 0.
    pub fn local_start(&self) -> usize {
        self.start - self.lo_ghost
    }

    /// Local position of global index `g`.
    pub fn local_of(&self, g: usize) -> usize {
        debug_assert!(g >= self.local_start() && g < self.local_start() + self.local_len());
        g - self.local_start()
    }
}

/// One node's piece of a partition.
#[derive(Debug, Clone, Copy)]
pub struct Part {
    /// The hypercube node hosting this part.
    pub node: NodeId,
    /// Per-axis spans, in `[x, y, z]` order.
    pub spans: [AxisSpan; 3],
}

impl Part {
    /// Local slab extents `(lnx, lny, lnz)`, ghosts included.
    pub fn local_shape(&self) -> (usize, usize, usize) {
        (self.spans[0].local_len(), self.spans[1].local_len(), self.spans[2].local_len())
    }

    /// Local slab size in words.
    pub fn local_words(&self) -> usize {
        let (a, b, c) = self.local_shape();
        a * b * c
    }

    /// Flat local index of local coordinates `(lx, ly, lz)`.
    pub fn local_index(&self, lx: usize, ly: usize, lz: usize) -> usize {
        let (lnx, lny, _) = self.local_shape();
        debug_assert!(lx < lnx && ly < lny && lz < self.spans[2].local_len());
        lx + lnx * (ly + lny * lz)
    }

    /// Flat local index of *global* coordinates `(i, j, k)` (which must
    /// fall inside the local slab, ghosts included).
    pub fn local_flat_of_global(&self, i: usize, j: usize, k: usize) -> usize {
        self.local_index(
            self.spans[0].local_of(i),
            self.spans[1].local_of(j),
            self.spans[2].local_of(k),
        )
    }

    /// The owned global range along `axis`, clipped to the grid interior
    /// `[1, extent - 1)` — the points a stencil updates.
    pub fn owned_interior(&self, axis: usize, extent: usize) -> std::ops::Range<usize> {
        let sp = &self.spans[axis];
        sp.start.max(1)..(sp.start + sp.len).min(extent - 1)
    }

    /// Iterate the x-contiguous runs covering one layer of this part — the
    /// cells with global index `g` along `axis`, over the part's full
    /// local extent of the other axes — as `(flat local start, run
    /// length)` pairs. This is the shared face walk behind both the
    /// router-resident face exchange and the host-side halo staging.
    pub fn face_runs(&self, axis: usize, g: usize, mut f: impl FnMut(usize, usize)) {
        let (lnx, lny, lnz) = self.local_shape();
        let a = self.spans[axis].local_of(g);
        match axis {
            0 => {
                for lz in 0..lnz {
                    for ly in 0..lny {
                        f(self.local_index(a, ly, lz), 1);
                    }
                }
            }
            1 => {
                for lz in 0..lnz {
                    f(self.local_index(0, a, lz), lnx);
                }
            }
            _ => f(self.local_index(0, 0, a), lnx * lny),
        }
    }

    /// Split this part's sweep along `axis` into latency-hiding phases:
    /// an *interior* window whose stencils (of reach `spec.layers`) read
    /// no ghost layer, plus up to one *boundary-shell* window per ghost
    /// face. Windows cover exactly the part's **owned** layers, each once
    /// — pure ghost layers are computed by their owning neighbour, and
    /// their stale copies are overwritten by the next halo exchange
    /// before anything reads them. When the shells would overlap (a slab
    /// too thin to have an interior), the whole owned range folds into a
    /// single shell-phase window.
    pub fn overlap_split(&self, axis: usize, spec: &HaloSpec) -> SweepSplit {
        let sp = &self.spans[axis];
        let reach = spec.layers;
        let lo_len = if sp.lo_ghost > 0 { reach } else { 0 };
        let hi_len = if sp.hi_ghost > 0 { reach } else { 0 };
        let owned = sp.lo_ghost..sp.lo_ghost + sp.len;
        if lo_len + hi_len == 0 {
            return SweepSplit {
                interior: Some(SweepWindow { start: owned.start, len: sp.len, slot: 0 }),
                lo: None,
                hi: None,
            };
        }
        if lo_len + hi_len >= sp.len {
            // No interior to hide behind: the whole owned range is one
            // merged shell-phase window (it reads ghosts on both sides).
            // One instruction beats two adjacent shells — each window
            // pays its own warm-up and setup.
            return SweepSplit {
                interior: None,
                lo: Some(SweepWindow { start: owned.start, len: sp.len, slot: 0 }),
                hi: None,
            };
        }
        let lo = (lo_len > 0).then_some(SweepWindow {
            start: owned.start,
            len: lo_len,
            slot: SweepWindow::LO_SLOT,
        });
        let hi = (hi_len > 0).then_some(SweepWindow {
            start: owned.end - hi_len,
            len: hi_len,
            slot: SweepWindow::HI_SLOT,
        });
        let interior_len = sp.len - lo_len - hi_len;
        let interior = (interior_len > 0).then_some(SweepWindow {
            start: owned.start + lo_len,
            len: interior_len,
            slot: 0,
        });
        SweepSplit { interior, lo, hi }
    }
}

/// One output window of a split sweep: a contiguous run of *layers* along
/// the overlap axis (xy-planes of a 3-D slab, rows of a 2-D one), in
/// local layer coordinates (ghost layers count in the numbering). The
/// windowed sweep builders turn one of these into one pipeline
/// instruction streaming only the layers the window needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepWindow {
    /// First local layer of the window.
    pub start: usize,
    /// Layers in the window.
    pub len: usize,
    /// Cache slot receiving this window's residual scalar.
    pub slot: u64,
}

impl SweepWindow {
    /// Residual slot of the low boundary shell.
    pub const LO_SLOT: u64 = 1;
    /// Residual slot of the high boundary shell.
    pub const HI_SLOT: u64 = 2;

    /// The window covering all `layers` of a slab (the fused sweep).
    pub fn whole(layers: usize) -> Self {
        SweepWindow { start: 0, len: layers, slot: 0 }
    }
}

/// How one part's sweep splits into latency-hiding phases along the
/// overlap axis (see [`Part::overlap_split`]). The windows are disjoint
/// and cover the part's owned layers exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepSplit {
    /// The ghost-independent interior (`None` when the slab is too thin).
    pub interior: Option<SweepWindow>,
    /// The shell against the low ghost face — or, when the slab has no
    /// interior, the single merged shell-phase window.
    pub lo: Option<SweepWindow>,
    /// The shell against the high ghost face.
    pub hi: Option<SweepWindow>,
}

impl SweepSplit {
    /// All windows, ascending by start layer.
    pub fn windows(&self) -> impl Iterator<Item = SweepWindow> + '_ {
        [self.lo, self.interior, self.hi].into_iter().flatten()
    }

    /// The shell-phase windows (everything that reads ghost layers).
    pub fn shell_windows(&self) -> Vec<SweepWindow> {
        [self.lo, self.hi].into_iter().flatten().collect()
    }
}

/// Which ghost faces a halo exchange refreshes, and how many layers deep.
///
/// Faces on axes a partition does not split are ignored, so one spec (the
/// default [`HaloSpec::stencil`]) serves strips and blocks alike.
#[derive(Debug, Clone, Copy)]
pub struct HaloSpec {
    /// Ghost layers to refresh per face (the parts must carry at least
    /// this many).
    pub layers: usize,
    /// `faces[axis] = [lo, hi]`: refresh the ghosts on that side of every
    /// interior part boundary along that axis.
    pub faces: [[bool; 2]; 3],
}

impl HaloSpec {
    /// The five/seven-point stencil halo: one layer, every face.
    pub fn stencil() -> Self {
        HaloSpec { layers: 1, faces: [[true; 2]; 3] }
    }

    /// One layer on both faces of a single axis.
    pub fn axis(axis: usize) -> Self {
        let mut faces = [[false; 2]; 3];
        faces[axis] = [true; 2];
        HaloSpec { layers: 1, faces }
    }

    /// One layer on a single face of a single axis (`hi = false` is the
    /// low face).
    pub fn face(axis: usize, hi: bool) -> Self {
        let mut faces = [[false; 2]; 3];
        faces[axis][usize::from(hi)] = true;
        HaloSpec { layers: 1, faces }
    }

    /// This spec restricted to the faces of a single axis (the portion of
    /// an exchange the overlapped engine hides under interior compute).
    pub fn only_axis(&self, axis: usize) -> Self {
        let mut faces = [[false; 2]; 3];
        faces[axis] = self.faces[axis];
        HaloSpec { layers: self.layers, faces }
    }

    /// This spec with the faces of `axis` removed (the portion an
    /// overlapped sweep must still exchange synchronously).
    pub fn without_axis(&self, axis: usize) -> Self {
        let mut faces = self.faces;
        faces[axis] = [false; 2];
        HaloSpec { layers: self.layers, faces }
    }

    /// Whether any face is selected at all.
    pub fn wants_any(&self) -> bool {
        self.faces.iter().any(|f| f[0] || f[1])
    }
}

impl Default for HaloSpec {
    fn default() -> Self {
        Self::stencil()
    }
}

/// The uniform surface of a domain decomposition.
///
/// Implementations choose *how* to cut the grid ([`StripPartition`],
/// [`BlockPartition`]); workloads program against this trait and stay
/// decomposition-agnostic.
pub trait Partition: std::fmt::Debug + Send + Sync {
    /// The global grid.
    fn shape(&self) -> GridShape;

    /// The parts, one per participating node, in partition order (the
    /// order `scatter`/`gather` and compiled-program pools use).
    fn parts(&self) -> &[Part];

    /// Refresh the ghost layers described by `spec` on every interior part
    /// boundary: each boundary swaps its faces as full-duplex sendrecvs
    /// through the router, reading and writing the field stored in `plane`
    /// with `front_pad` pad units before the slab data. Returns the
    /// slowest per-node communication time of the step in nanoseconds
    /// (messages between disjoint node pairs overlap).
    fn halo_exchange(
        &self,
        system: &mut NscSystem,
        plane: PlaneId,
        front_pad: usize,
        spec: &HaloSpec,
    ) -> u64;

    /// The *pad unit* of a part: the warm-up block size of its stencil
    /// stream — one local xy-plane for volume grids, one local row for
    /// plane grids. Memory layouts place `front_pad` of these before the
    /// slab data.
    fn pad_unit(&self, part: usize) -> usize {
        let p = &self.parts()[part];
        let (lnx, lny, _) = p.local_shape();
        if self.shape().is_2d() {
            lnx
        } else {
            lnx * lny
        }
    }

    /// Word offset of flat local index `word` of a part inside a plane
    /// laid out with `front_pad` pad units before the slab data (1 for the
    /// stencil layout, 2 for the aligned layout).
    fn word_offset(&self, part: usize, front_pad: usize, word: usize) -> u64 {
        (front_pad * self.pad_unit(part) + word) as u64
    }

    /// Split a flat global field (x-fastest, `shape().words()` words) into
    /// per-part local slabs, ghost cells included.
    fn scatter(&self, words: &[f64]) -> Vec<Vec<f64>> {
        let s = self.shape();
        assert_eq!(words.len(), s.words(), "global field size");
        self.parts()
            .iter()
            .map(|p| {
                let (lnx, lny, lnz) = p.local_shape();
                let mut out = Vec::with_capacity(lnx * lny * lnz);
                let gx0 = p.spans[0].local_start();
                for lz in 0..lnz {
                    let gz = p.spans[2].local_start() + lz;
                    for ly in 0..lny {
                        let gy = p.spans[1].local_start() + ly;
                        let base = s.index(gx0, gy, gz);
                        out.extend_from_slice(&words[base..base + lnx]);
                    }
                }
                out
            })
            .collect()
    }

    /// Reassemble a global field from per-part local slabs, taking only
    /// the points each part owns (ghosts are dropped).
    fn gather(&self, locals: &[Vec<f64>]) -> Vec<f64> {
        let s = self.shape();
        let parts = self.parts();
        assert_eq!(locals.len(), parts.len(), "one slab per part");
        let mut out = vec![0.0; s.words()];
        for (p, local) in parts.iter().zip(locals) {
            assert_eq!(local.len(), p.local_words(), "slab size of part on {}", p.node);
            let [sx, sy, sz] = p.spans;
            for gz in sz.start..sz.start + sz.len {
                for gy in sy.start..sy.start + sy.len {
                    let from =
                        p.local_index(sx.local_of(sx.start), sy.local_of(gy), sz.local_of(gz));
                    let to = s.index(sx.start, gy, gz);
                    out[to..to + sx.len].copy_from_slice(&local[from..from + sx.len]);
                }
            }
        }
        out
    }

    /// Node indices of the parts, in partition order — the pool handed to
    /// [`nsc_core::run_compiled_on_pool`] so part `i`'s program runs on
    /// part `i`'s node.
    fn node_pool(&self) -> Vec<usize> {
        self.parts().iter().map(|p| p.node.index()).collect()
    }

    /// The part nodes, in partition order (the member list for pool-wide
    /// reductions).
    fn member_nodes(&self) -> Vec<NodeId> {
        self.parts().iter().map(|p| p.node).collect()
    }
}

/// Read every part's full local slab (ghost layers included) back from
/// `plane`, in partition order — the common readback step of every
/// distributed driver (front pad 1, the stencil layout).
pub fn read_slabs(partition: &dyn Partition, system: &NscSystem, plane: PlaneId) -> Vec<Vec<f64>> {
    partition
        .parts()
        .iter()
        .enumerate()
        .map(|(pi, p)| {
            system
                .node(p.node)
                .mem
                .plane(plane)
                .read_vec(partition.word_offset(pi, 1, 0), p.local_words() as u64)
        })
        .collect()
}

/// Host-resident halo exchange: stage each slab's owned boundary faces
/// into `plane`, swap them through the router, and pull the refreshed
/// ghost faces back into the host-side slabs. This is how host-computed
/// block solvers (block SOR, multigrid transfer operators) pay the same
/// communication model as the machine-resident sweeps. Returns the
/// slowest per-node communication time in nanoseconds.
pub fn host_halo_exchange(
    partition: &dyn Partition,
    system: &mut NscSystem,
    plane: PlaneId,
    slabs: &mut [Vec<f64>],
    spec: &HaloSpec,
) -> u64 {
    for (pi, p) in partition.parts().iter().enumerate() {
        for axis in 0..3 {
            let sp = p.spans[axis];
            for l in 0..spec.layers {
                // A part's bottom owned layers travel *down* (they fill
                // the lower neighbour's high ghosts), its top owned layers
                // travel *up*: stage only what the spec will send.
                if sp.lo_ghost > 0 && spec.faces[axis][1] {
                    stage_layer(partition, system, plane, slabs, pi, axis, sp.start + l);
                }
                if sp.hi_ghost > 0 && spec.faces[axis][0] {
                    stage_layer(
                        partition,
                        system,
                        plane,
                        slabs,
                        pi,
                        axis,
                        sp.start + sp.len - 1 - l,
                    );
                }
            }
        }
    }
    let ns = partition.halo_exchange(system, plane, 1, spec);
    for (pi, p) in partition.parts().iter().enumerate() {
        for axis in 0..3 {
            let sp = p.spans[axis];
            for l in 0..spec.layers {
                if sp.lo_ghost > 0 && spec.faces[axis][0] {
                    pull_layer(partition, system, plane, slabs, pi, axis, sp.start - 1 - l);
                }
                if sp.hi_ghost > 0 && spec.faces[axis][1] {
                    pull_layer(partition, system, plane, slabs, pi, axis, sp.start + sp.len + l);
                }
            }
        }
    }
    ns
}

/// Copy one host-slab layer into the staged plane image.
fn stage_layer(
    partition: &dyn Partition,
    system: &mut NscSystem,
    plane: PlaneId,
    slabs: &[Vec<f64>],
    pi: usize,
    axis: usize,
    g: usize,
) {
    let p = &partition.parts()[pi];
    p.face_runs(axis, g, |start, len| {
        let off = partition.word_offset(pi, 1, start);
        system
            .node_mut(p.node)
            .mem
            .plane_mut(plane)
            .write_slice(off, &slabs[pi][start..start + len]);
    });
}

/// Copy one refreshed plane layer back into the host slab.
fn pull_layer(
    partition: &dyn Partition,
    system: &mut NscSystem,
    plane: PlaneId,
    slabs: &mut [Vec<f64>],
    pi: usize,
    axis: usize,
    g: usize,
) {
    let p = &partition.parts()[pi];
    p.face_runs(axis, g, |start, len| {
        let off = partition.word_offset(pi, 1, start);
        let words = system.node(p.node).mem.plane(plane).read_vec(off, len as u64);
        slabs[pi][start..start + len].copy_from_slice(&words);
    });
}

/// Split `items` points along one axis into `parts` balanced owned
/// ranges, then donate points toward the edges so every part's local slab
/// (owned + ghosts) can hold the three layers a stencil sweep needs: the
/// edge parts carry a ghost on one side only, so they need two owned
/// layers where an interior part gets by with one.
fn split_axis(items: usize, parts: usize) -> Vec<usize> {
    let base = items / parts;
    let rem = items % parts;
    let mut sizes: Vec<usize> = (0..parts).map(|i| base + usize::from(i < rem)).collect();
    let last = parts - 1;
    for edge in [last, 0] {
        if last > 0 && sizes[edge] < 2 {
            let donor = (0..sizes.len())
                .filter(|&i| i != edge)
                .filter(|&i| sizes[i] > if i == 0 || i == last { 2 } else { 1 })
                .max_by_key(|&i| sizes[i]);
            if let Some(d) = donor {
                sizes[d] -= 1;
                sizes[edge] += 1;
            }
        }
    }
    sizes
}

/// Sizes to `(start, len, lo_ghost, hi_ghost)` spans with `layers` ghost
/// layers on every interior side.
fn spans_from_sizes(sizes: &[usize], layers: usize) -> Vec<AxisSpan> {
    let last = sizes.len() - 1;
    let mut start = 0;
    sizes
        .iter()
        .enumerate()
        .map(|(i, &len)| {
            let s = AxisSpan {
                start,
                len,
                lo_ghost: if i > 0 { layers } else { 0 },
                hi_ghost: if i < last { layers } else { 0 },
            };
            start += len;
            s
        })
        .collect()
}

/// Validate that every span of a split axis is stencil-sweepable.
fn check_sweepable(
    what: &str,
    spans: &[AxisSpan],
    nodes: impl Fn(usize) -> NodeId,
) -> Result<(), NscError> {
    if let Some((i, thin)) = spans.iter().enumerate().find(|(_, s)| s.local_len() < 3 || s.len == 0)
    {
        return Err(NscError::Workload(format!(
            "{what} too thin: {} parts leave node {} with a {}-layer slab (a stencil sweep \
             needs 3)",
            spans.len(),
            nodes(i),
            thin.local_len(),
        )));
    }
    Ok(())
}

/// 1-D strips of planes along the slowest axis, Gray-ring embedded: strip
/// `i` lives on [`HypercubeConfig::ring_node`]`(i)`, so adjacent strips
/// are physical neighbours and every halo message crosses one link.
#[derive(Debug, Clone)]
pub struct StripPartition {
    shape: GridShape,
    /// The cube the strips live on.
    pub cube: HypercubeConfig,
    parts: Vec<Part>,
    /// The split axis (2 for volume grids, 1 for plane grids).
    axis: usize,
}

impl StripPartition {
    /// Partition `shape` into one strip per node of `cube`, balanced to
    /// within one plane, with one ghost layer per interior side. Fails
    /// when the grid is too thin for every strip to be sweepable.
    pub fn new(shape: GridShape, cube: HypercubeConfig) -> Result<Self, NscError> {
        let axis = if shape.is_2d() { 1 } else { 2 };
        let planes = [shape.nx, shape.ny, shape.nz][axis];
        let sizes = split_axis(planes, cube.nodes());
        let spans = spans_from_sizes(&sizes, 1);
        check_sweepable("strip decomposition", &spans, |i| cube.ring_node(i))?;
        let parts = spans
            .into_iter()
            .enumerate()
            .map(|(i, span)| {
                let mut spans = [
                    AxisSpan::whole(shape.nx),
                    AxisSpan::whole(shape.ny),
                    AxisSpan::whole(shape.nz),
                ];
                spans[axis] = span;
                Part { node: cube.ring_node(i), spans }
            })
            .collect();
        Ok(StripPartition { shape, cube, parts, axis })
    }

    /// The split axis (2 for volume grids, 1 for plane grids).
    pub fn split_axis(&self) -> usize {
        self.axis
    }
}

impl Partition for StripPartition {
    fn shape(&self) -> GridShape {
        self.shape
    }

    fn parts(&self) -> &[Part] {
        &self.parts
    }

    fn halo_exchange(
        &self,
        system: &mut NscSystem,
        plane: PlaneId,
        front_pad: usize,
        spec: &HaloSpec,
    ) -> u64 {
        let [want_lo, want_hi] = spec.faces[self.axis];
        if !(want_lo || want_hi) {
            return 0;
        }
        let mut per_node = vec![0u64; self.parts.len()];
        let pw = self.pad_unit(0);
        for i in 0..self.parts.len().saturating_sub(1) {
            let (a, b) = (&self.parts[i], &self.parts[i + 1]);
            let (sa, sb) = (&a.spans[self.axis], &b.spans[self.axis]);
            assert!(
                spec.layers <= sa.hi_ghost && spec.layers <= sb.lo_ghost,
                "halo spec wants {} layers; the parts carry fewer",
                spec.layers
            );
            // a's top owned layers fill b's low ghosts (the hi->lo flow
            // refreshes b's lo face) and vice versa, as one full-duplex
            // sendrecv per boundary.
            let a_send: Vec<u64> = (0..if want_lo { spec.layers } else { 0 })
                .map(|l| {
                    self.word_offset(i, front_pad, (sa.lo_ghost + sa.len - spec.layers + l) * pw)
                })
                .collect();
            let b_recv: Vec<u64> = (0..if want_lo { spec.layers } else { 0 })
                .map(|l| self.word_offset(i + 1, front_pad, l * pw))
                .collect();
            let b_send: Vec<u64> = (0..if want_hi { spec.layers } else { 0 })
                .map(|l| self.word_offset(i + 1, front_pad, (sb.lo_ghost + l) * pw))
                .collect();
            let a_recv: Vec<u64> = (0..if want_hi { spec.layers } else { 0 })
                .map(|l| self.word_offset(i, front_pad, (sa.local_len() - spec.layers + l) * pw))
                .collect();
            let ns = system.exchange_face_bidirectional(
                a.node, plane, &a_send, &a_recv, b.node, plane, &b_send, &b_recv, pw as u64,
            );
            per_node[i] += ns;
            per_node[i + 1] += ns;
        }
        per_node.into_iter().max().unwrap_or(0)
    }
}

/// 2-D blocks over a Gray-embedded torus: the slowest axis is split across
/// the torus *rows*, the second-slowest across its *columns* (`(y, x)` for
/// plane grids, `(z, y)` for volume grids; x stays whole in 3-D so every
/// local row streams contiguously). Torus-adjacent blocks are hypercube
/// neighbours, so every face exchange crosses exactly one link.
///
/// ```
/// use nsc_arch::HypercubeConfig;
/// use nsc_cfd::{BlockPartition, GridShape, HaloSpec, Partition};
///
/// // A 17x17 plane cut into 2x2 blocks on a 4-node cube.
/// let cube = HypercubeConfig::new(2);
/// let blocks = BlockPartition::new(GridShape::plane2d(17, 17), cube.torus2d(2, 2))?;
///
/// // Every part owns a block plus one ghost layer per interior face, and
/// // torus-adjacent blocks sit one router hop apart.
/// assert_eq!(blocks.parts().len(), 4);
/// let p = blocks.part_at(0, 0);
/// assert_eq!((p.spans[0].len, p.spans[1].len), (9, 9));
/// assert_eq!(cube.hops(p.node, blocks.part_at(0, 1).node), 1);
///
/// // scatter splits a global field into local slabs (ghosts included);
/// // gather reassembles it from the owned points.
/// let field: Vec<f64> = (0..17 * 17).map(|w| w as f64).collect();
/// let slabs = blocks.scatter(&field);
/// assert_eq!(slabs[0].len(), p.local_words());
/// assert_eq!(blocks.gather(&slabs), field);
///
/// // Between solver sweeps, HaloSpec::stencil() refreshes one ghost
/// // layer on every interior face through the hyperspace router:
/// // `blocks.halo_exchange(&mut system, plane, 1, &HaloSpec::stencil())`.
/// let _ = HaloSpec::stencil();
/// # Ok::<(), nsc_core::NscError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BlockPartition {
    shape: GridShape,
    /// The torus hosting the blocks.
    pub torus: TorusEmbedding,
    parts: Vec<Part>,
    /// The axis split across torus rows (2 for 3-D, 1 for 2-D).
    row_axis: usize,
    /// The axis split across torus columns (1 for 3-D, 0 for 2-D).
    col_axis: usize,
}

impl BlockPartition {
    /// Partition `shape` into one block per torus position, each axis
    /// balanced to within one layer, with one ghost layer per interior
    /// face. Part order is row-major over the torus. Fails when any block
    /// would be too thin to sweep.
    pub fn new(shape: GridShape, torus: TorusEmbedding) -> Result<Self, NscError> {
        let row_sizes = split_axis(if shape.is_2d() { shape.ny } else { shape.nz }, torus.rows());
        let col_sizes = split_axis(if shape.is_2d() { shape.nx } else { shape.ny }, torus.cols());
        Self::from_sizes(shape, torus, &row_sizes, &col_sizes)
    }

    /// Partition with explicit per-axis owned sizes — the hook multigrid
    /// uses to *derive* a coarse level's partition from the fine level's,
    /// so restriction and prolongation reach no further than one ghost
    /// layer across block boundaries.
    pub fn from_sizes(
        shape: GridShape,
        torus: TorusEmbedding,
        row_sizes: &[usize],
        col_sizes: &[usize],
    ) -> Result<Self, NscError> {
        assert_eq!(row_sizes.len(), torus.rows(), "one row size per torus row");
        assert_eq!(col_sizes.len(), torus.cols(), "one column size per torus column");
        let (row_axis, col_axis) = if shape.is_2d() { (1, 0) } else { (2, 1) };
        let row_spans = spans_from_sizes(row_sizes, 1);
        let col_spans = spans_from_sizes(col_sizes, 1);
        if torus.rows() > 1 {
            check_sweepable("block decomposition (row axis)", &row_spans, |r| torus.node(r, 0))?;
        }
        if torus.cols() > 1 {
            check_sweepable("block decomposition (column axis)", &col_spans, |c| torus.node(0, c))?;
        }
        let mut parts = Vec::with_capacity(torus.len());
        for (r, &row_span) in row_spans.iter().enumerate() {
            for (c, &col_span) in col_spans.iter().enumerate() {
                let mut spans = [
                    AxisSpan::whole(shape.nx),
                    AxisSpan::whole(shape.ny),
                    AxisSpan::whole(shape.nz),
                ];
                spans[row_axis] = row_span;
                spans[col_axis] = col_span;
                parts.push(Part { node: torus.node(r, c), spans });
            }
        }
        Ok(BlockPartition { shape, torus, parts, row_axis, col_axis })
    }

    /// The part at torus position `(r, c)` (row-major order).
    pub fn part_at(&self, r: usize, c: usize) -> &Part {
        &self.parts[r * self.torus.cols() + c]
    }

    /// The two split axes as `(row_axis, col_axis)`.
    pub fn split_axes(&self) -> (usize, usize) {
        (self.row_axis, self.col_axis)
    }

    /// The owned sizes along the row-split axis, in torus-row order.
    pub fn row_sizes(&self) -> Vec<usize> {
        (0..self.torus.rows()).map(|r| self.part_at(r, 0).spans[self.row_axis].len).collect()
    }

    /// The owned sizes along the column-split axis, in torus-column order.
    pub fn col_sizes(&self) -> Vec<usize> {
        (0..self.torus.cols()).map(|c| self.part_at(0, c).spans[self.col_axis].len).collect()
    }

    /// The word chunks of one face of a part: local offsets (under
    /// `front_pad`) of `chunk_len`-word runs covering the layer at
    /// *global* index `g` along `axis`. The face spans the part's full
    /// local extent along the other axes (extents match across a boundary
    /// because the split is a tensor grid, so the sender's face and the
    /// receiver's ghost face pair up chunk for chunk).
    fn face_chunks(&self, part: usize, front_pad: usize, axis: usize, g: usize) -> (Vec<u64>, u64) {
        let p = &self.parts[part];
        let mut offs = Vec::new();
        let mut chunk_len = 1u64;
        p.face_runs(axis, g, |start, len| {
            chunk_len = len as u64;
            offs.push(self.word_offset(part, front_pad, start));
        });
        (offs, chunk_len)
    }

    /// Exchange every interior boundary along one split axis as one
    /// full-duplex face sendrecv per block pair.
    fn exchange_axis(
        &self,
        system: &mut NscSystem,
        plane: PlaneId,
        front_pad: usize,
        spec: &HaloSpec,
        axis: usize,
        per_node: &mut [u64],
    ) {
        let [want_lo, want_hi] = spec.faces[axis];
        if !(want_lo || want_hi) {
            return;
        }
        let (rows, cols) = (self.torus.rows(), self.torus.cols());
        // Interior boundaries as (lower part, upper part) pairs along axis.
        let mut pairs = Vec::new();
        if axis == self.row_axis {
            for r in 0..rows.saturating_sub(1) {
                for c in 0..cols {
                    pairs.push((r * cols + c, (r + 1) * cols + c));
                }
            }
        } else {
            for r in 0..rows {
                for c in 0..cols.saturating_sub(1) {
                    pairs.push((r * cols + c, r * cols + c + 1));
                }
            }
        }
        for (lo, hi) in pairs {
            let (sp, sq) = (self.parts[lo].spans[axis], self.parts[hi].spans[axis]);
            assert!(
                spec.layers <= sp.hi_ghost && spec.layers <= sq.lo_ghost,
                "halo spec wants {} layers; the parts carry fewer",
                spec.layers
            );
            let (mut lo_send, mut lo_recv) = (Vec::new(), Vec::new());
            let (mut hi_send, mut hi_recv) = (Vec::new(), Vec::new());
            let mut chunk_len = 0u64;
            for l in 0..spec.layers {
                if want_lo {
                    // The lower block's top owned layer fills the upper
                    // block's low ghost at the same global index.
                    let g = sp.start + sp.len - 1 - l;
                    let (s, cl) = self.face_chunks(lo, front_pad, axis, g);
                    let (r, _) = self.face_chunks(hi, front_pad, axis, g);
                    chunk_len = cl;
                    lo_send.extend(s);
                    hi_recv.extend(r);
                }
                if want_hi {
                    let g = sq.start + l;
                    let (s, cl) = self.face_chunks(hi, front_pad, axis, g);
                    let (r, _) = self.face_chunks(lo, front_pad, axis, g);
                    chunk_len = cl;
                    hi_send.extend(s);
                    lo_recv.extend(r);
                }
            }
            let ns = system.exchange_face_bidirectional(
                self.parts[lo].node,
                plane,
                &lo_send,
                &lo_recv,
                self.parts[hi].node,
                plane,
                &hi_send,
                &hi_recv,
                chunk_len,
            );
            per_node[lo] += ns;
            per_node[hi] += ns;
        }
    }
}

impl Partition for BlockPartition {
    fn shape(&self) -> GridShape {
        self.shape
    }

    fn parts(&self) -> &[Part] {
        &self.parts
    }

    fn halo_exchange(
        &self,
        system: &mut NscSystem,
        plane: PlaneId,
        front_pad: usize,
        spec: &HaloSpec,
    ) -> u64 {
        let mut per_node = vec![0u64; self.parts.len()];
        self.exchange_axis(system, plane, front_pad, spec, self.row_axis, &mut per_node);
        self.exchange_axis(system, plane, front_pad, spec, self.col_axis, &mut per_node);
        per_node.into_iter().max().unwrap_or(0)
    }
}

/// Which decomposition a distributed workload should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionSpec {
    /// Pick per workload: strips for tall 3-D iteration grids (lowest
    /// surface-to-volume), blocks when the cube has both torus axes to
    /// offer (dimension >= 2) and the grid is plane-shaped or coarsens.
    #[default]
    Auto,
    /// Force [`StripPartition`].
    Strip,
    /// Force [`BlockPartition`] on the near-square torus of the cube.
    Block,
}

impl PartitionSpec {
    /// Build the partition for `shape` on `cube`. `Auto` resolves to the
    /// workload's preference (`prefer_block`) when the cube can host it.
    pub fn build(
        self,
        shape: GridShape,
        cube: HypercubeConfig,
        prefer_block: bool,
    ) -> Result<Box<dyn Partition>, NscError> {
        let block = |cube: HypercubeConfig| -> Result<Box<dyn Partition>, NscError> {
            Ok(Box::new(BlockPartition::new(shape, cube.torus2d_near_square())?))
        };
        match self {
            PartitionSpec::Strip => Ok(Box::new(StripPartition::new(shape, cube)?)),
            PartitionSpec::Block => block(cube),
            PartitionSpec::Auto => {
                if prefer_block && cube.dimension >= 2 {
                    block(cube)
                } else {
                    Ok(Box::new(StripPartition::new(shape, cube)?))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{KnowledgeBase, MachineConfig};

    fn system(dim: u32) -> NscSystem {
        let kb = KnowledgeBase::new(MachineConfig::test_small());
        NscSystem::new(HypercubeConfig::new(dim), &kb)
    }

    #[test]
    fn strips_cover_the_grid_contiguously_on_adjacent_nodes() {
        let cube = HypercubeConfig::new(3);
        let d = StripPartition::new(GridShape::volume3d(5, 5, 21), cube).expect("decomposes");
        assert_eq!(d.parts().len(), 8);
        assert_eq!(d.split_axis(), 2);
        assert_eq!(d.parts().iter().map(|p| p.spans[2].len).sum::<usize>(), 21);
        for w in d.parts().windows(2) {
            assert_eq!(cube.hops(w[0].node, w[1].node), 1, "adjacent strips, adjacent nodes");
        }
        let mut next = 0;
        for (i, p) in d.parts().iter().enumerate() {
            let s = p.spans[2];
            assert_eq!(s.start, next);
            next += s.len;
            assert!(s.local_len() >= 3);
            assert_eq!(s.lo_ghost, usize::from(i > 0));
            assert_eq!(s.hi_ghost, usize::from(i < 7));
            assert_eq!(p.spans[0].local_len(), 5, "x stays whole");
            assert_eq!(p.spans[1].local_len(), 5, "y stays whole");
        }
    }

    #[test]
    fn edge_strips_borrow_planes_to_stay_sweepable() {
        // 11 planes, 8 nodes: the balanced split leaves the last strip one
        // plane; an interior strip donates so both edges own two.
        let cube = HypercubeConfig::new(3);
        for planes in [10, 11, 12] {
            let d = StripPartition::new(GridShape::volume3d(4, 1, planes), cube).expect("splits");
            assert_eq!(d.parts().iter().map(|p| p.spans[2].len).sum::<usize>(), planes);
            assert!(d.parts().iter().all(|p| p.spans[2].local_len() >= 3), "{planes} planes");
        }
    }

    #[test]
    fn too_thin_grids_are_rejected_with_the_node_named() {
        let cube = HypercubeConfig::new(3);
        let err =
            StripPartition::new(GridShape::volume3d(4, 4, 8), cube).expect_err("1-plane edges");
        assert!(matches!(err, NscError::Workload(_)), "{err}");
        assert!(err.to_string().contains("3"), "{err}");

        let torus = HypercubeConfig::new(4).torus2d(4, 4);
        let err = BlockPartition::new(GridShape::plane2d(5, 30), torus)
            .expect_err("5 columns across 4 can't sweep");
        assert!(matches!(err, NscError::Workload(_)), "{err}");
    }

    #[test]
    fn strip_scatter_gather_round_trips_and_overlaps_ghosts() {
        let cube = HypercubeConfig::new(2);
        let d = StripPartition::new(GridShape::plane2d(3, 10), cube).expect("decomposes");
        let global: Vec<f64> = (0..30).map(|x| x as f64).collect();
        let locals = d.scatter(&global);
        // Middle strips see one ghost row on each side.
        let s1 = d.parts()[1].spans[1];
        assert_eq!(locals[1].len(), s1.local_len() * 3);
        assert_eq!(locals[1][0], (s1.local_start() * 3) as f64, "low ghost holds the neighbour");
        assert_eq!(d.gather(&locals), global);
    }

    #[test]
    fn block_scatter_gather_round_trips() {
        let torus = HypercubeConfig::new(2).torus2d(2, 2);
        for shape in [GridShape::plane2d(11, 9), GridShape::volume3d(4, 9, 11)] {
            let d = BlockPartition::new(shape, torus).expect("decomposes");
            let global: Vec<f64> = (0..shape.words()).map(|x| x as f64 * 0.5).collect();
            let locals = d.scatter(&global);
            for (p, local) in d.parts().iter().zip(&locals) {
                assert_eq!(local.len(), p.local_words());
                // Spot-check: the first local word is the global value at
                // the part's local origin (ghosts included).
                let g = shape.index(
                    p.spans[0].local_start(),
                    p.spans[1].local_start(),
                    p.spans[2].local_start(),
                );
                assert_eq!(local[0], global[g]);
            }
            assert_eq!(d.gather(&locals), global, "{shape:?}");
        }
    }

    #[test]
    fn block_parts_sit_on_torus_neighbours() {
        let cube = HypercubeConfig::new(4);
        let torus = cube.torus2d(4, 4);
        let d = BlockPartition::new(GridShape::plane2d(17, 17), torus).expect("decomposes");
        assert_eq!(d.parts().len(), 16);
        let (rows, cols) = (4, 4);
        for r in 0..rows {
            for c in 0..cols {
                let here = d.part_at(r, c).node;
                if r + 1 < rows {
                    assert_eq!(cube.hops(here, d.part_at(r + 1, c).node), 1);
                }
                if c + 1 < cols {
                    assert_eq!(cube.hops(here, d.part_at(r, c + 1).node), 1);
                }
            }
        }
        // Owned ranges tile the grid.
        let mut seen = vec![false; 17 * 17];
        for p in d.parts() {
            for j in p.spans[1].start..p.spans[1].start + p.spans[1].len {
                for i in p.spans[0].start..p.spans[0].start + p.spans[0].len {
                    assert!(!seen[i + 17 * j], "({i},{j}) owned twice");
                    seen[i + 17 * j] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every point owned");
    }

    /// Write each part's slab with a function of global coordinates, with
    /// ghosts set to a sentinel; after halo exchange every ghost cell that
    /// has an owner must hold the owner's value.
    fn check_ghosts_after_exchange(d: &dyn Partition, sys: &mut NscSystem, spec: &HaloSpec) {
        let s = d.shape();
        let plane = PlaneId(0);
        let value = |i: usize, j: usize, k: usize| (s.index(i, j, k)) as f64 + 0.25;
        for (pi, p) in d.parts().iter().enumerate() {
            let (lnx, lny, lnz) = p.local_shape();
            for lz in 0..lnz {
                for ly in 0..lny {
                    for lx in 0..lnx {
                        let owned = |a: usize, sp: &AxisSpan| {
                            let g = sp.local_start() + a;
                            g >= sp.start && g < sp.start + sp.len
                        };
                        if owned(lx, &p.spans[0])
                            && owned(ly, &p.spans[1])
                            && owned(lz, &p.spans[2])
                        {
                            let off = d.word_offset(pi, 1, p.local_index(lx, ly, lz));
                            sys.node_mut(p.node).mem.plane_mut(plane).write_slice(
                                off,
                                &[value(
                                    p.spans[0].local_start() + lx,
                                    p.spans[1].local_start() + ly,
                                    p.spans[2].local_start() + lz,
                                )],
                            );
                        }
                    }
                }
            }
        }
        d.halo_exchange(sys, plane, 1, spec);
        let mut ghosts_checked = 0;
        for (pi, p) in d.parts().iter().enumerate() {
            let (lnx, lny, lnz) = p.local_shape();
            for lz in 0..lnz {
                for ly in 0..lny {
                    for lx in 0..lnx {
                        let (gi, gj, gk) = (
                            p.spans[0].local_start() + lx,
                            p.spans[1].local_start() + ly,
                            p.spans[2].local_start() + lz,
                        );
                        // A ghost cell on exactly one axis (faces, not
                        // corners) must now hold its owner's value.
                        let ghost_axes = (0..3)
                            .filter(|&a| {
                                let g = [gi, gj, gk][a];
                                let sp = &p.spans[a];
                                g < sp.start || g >= sp.start + sp.len
                            })
                            .count();
                        if ghost_axes != 1 {
                            continue;
                        }
                        let got = sys
                            .node(p.node)
                            .mem
                            .plane(plane)
                            .read_vec(d.word_offset(pi, 1, p.local_index(lx, ly, lz)), 1)[0];
                        assert_eq!(
                            got.to_bits(),
                            value(gi, gj, gk).to_bits(),
                            "ghost ({gi},{gj},{gk}) of part {pi}"
                        );
                        ghosts_checked += 1;
                    }
                }
            }
        }
        assert!(ghosts_checked > 0, "the partition had interior boundaries");
    }

    #[test]
    fn strip_halo_exchange_fills_ghost_planes_and_charges_the_router() {
        let mut sys = system(2); // 4 nodes
        let d = StripPartition::new(GridShape::volume3d(2, 2, 9), sys.cube).expect("decomposes");
        let before = sys.comm_ns;
        check_ghosts_after_exchange(&d, &mut sys, &HaloSpec::stencil());
        // 3 interior boundaries x 2 messages of one plane over 1 hop each.
        let msg = sys.cube.router.message_ns(1, 4);
        assert_eq!(sys.comm_ns - before, 6 * msg, "serialized view counts every message");
        assert_eq!(sys.node(d.parts()[0].node).counters.comm_ns, msg, "edge strip: one partner");
        assert_eq!(sys.node(d.parts()[1].node).counters.comm_ns, 2 * msg, "middle: two");
    }

    #[test]
    fn block_halo_exchange_fills_row_and_column_ghosts() {
        for shape in [GridShape::plane2d(9, 11), GridShape::volume3d(3, 9, 11)] {
            let mut sys = system(2);
            let d = BlockPartition::new(shape, sys.cube.torus2d(2, 2)).expect("decomposes");
            check_ghosts_after_exchange(&d, &mut sys, &HaloSpec::stencil());
            assert!(sys.comm_ns > 0);
        }
    }

    #[test]
    fn halo_spec_selects_faces() {
        // Only the hi faces of the row axis: low ghosts stay stale.
        let mut sys = system(2);
        let shape = GridShape::plane2d(6, 12);
        let d = BlockPartition::new(shape, sys.cube.torus2d(2, 2)).expect("decomposes");
        let plane = PlaneId(0);
        for (pi, p) in d.parts().iter().enumerate() {
            let words = vec![pi as f64 + 1.0; p.local_words()];
            let off = d.word_offset(pi, 1, 0);
            sys.node_mut(p.node).mem.plane_mut(plane).write_slice(off, &words);
        }
        // Refresh only the *hi*-side ghosts along y (data flows upward
        // from each block's first owned row? No: hi face of the lower
        // boundary partner — the ghosts above the owned range).
        d.halo_exchange(&mut sys, plane, 1, &HaloSpec::face(1, true));
        let p0 = &d.parts()[0]; // row 0: has a hi ghost along y, no lo
        let (lnx, lny, _) = p0.local_shape();
        let hi_ghost = sys
            .node(p0.node)
            .mem
            .plane(plane)
            .read_vec(d.word_offset(0, 1, p0.local_index(0, lny - 1, 0)), lnx as u64);
        // Filled from the part below it in the same torus column = part
        // index cols (row 1, col 0) -> value 3.0 on a 2x2 torus.
        assert!(hi_ghost.iter().all(|&v| v == 3.0), "{hi_ghost:?}");
        // The upper row's lo ghosts were NOT refreshed.
        let p2 = &d.parts()[2];
        let lo_ghost = sys
            .node(p2.node)
            .mem
            .plane(plane)
            .read_vec(d.word_offset(2, 1, p2.local_index(0, 0, 0)), lnx as u64);
        assert!(lo_ghost.iter().all(|&v| v == 3.0), "stale own value: {lo_ghost:?}");
    }

    #[test]
    fn overlap_split_tiles_the_owned_layers_exactly_once() {
        let spec = HaloSpec::stencil();
        // A middle strip: ghosts both sides, room for an interior.
        let p = Part {
            node: NodeId(0),
            spans: [
                AxisSpan::whole(5),
                AxisSpan::whole(5),
                AxisSpan { start: 8, len: 8, lo_ghost: 1, hi_ghost: 1 },
            ],
        };
        let s = p.overlap_split(2, &spec);
        assert_eq!(s.lo, Some(SweepWindow { start: 1, len: 1, slot: SweepWindow::LO_SLOT }));
        assert_eq!(s.interior, Some(SweepWindow { start: 2, len: 6, slot: 0 }));
        assert_eq!(s.hi, Some(SweepWindow { start: 8, len: 1, slot: SweepWindow::HI_SLOT }));
        let covered: Vec<usize> = s.windows().flat_map(|w| w.start..w.start + w.len).collect();
        assert_eq!(covered, (1..9).collect::<Vec<_>>(), "owned layers, each once");

        // An edge strip: one ghost side only, the interior reaches the wall.
        let edge = Part {
            node: NodeId(1),
            spans: [
                AxisSpan::whole(5),
                AxisSpan::whole(5),
                AxisSpan { start: 0, len: 8, lo_ghost: 0, hi_ghost: 1 },
            ],
        };
        let s = edge.overlap_split(2, &spec);
        assert_eq!(s.lo, None);
        assert_eq!(s.interior, Some(SweepWindow { start: 0, len: 7, slot: 0 }));
        assert_eq!(s.hi, Some(SweepWindow { start: 7, len: 1, slot: SweepWindow::HI_SLOT }));

        // Too thin for an interior: one merged shell-phase window.
        let thin = Part {
            node: NodeId(2),
            spans: [
                AxisSpan::whole(5),
                AxisSpan::whole(5),
                AxisSpan { start: 4, len: 1, lo_ghost: 1, hi_ghost: 1 },
            ],
        };
        let s = thin.overlap_split(2, &spec);
        assert_eq!(s.interior, None);
        assert_eq!(s.lo, Some(SweepWindow { start: 1, len: 1, slot: 0 }));
        assert_eq!(s.hi, None);
        assert_eq!(s.shell_windows().len(), 1);

        // An unsplit axis: everything is interior.
        let s = edge.overlap_split(1, &spec);
        assert_eq!(s.interior, Some(SweepWindow { start: 0, len: 5, slot: 0 }));
        assert!(s.lo.is_none() && s.hi.is_none());
    }

    #[test]
    fn halo_spec_axis_filters() {
        let spec = HaloSpec::stencil();
        let only = spec.only_axis(2);
        assert_eq!(only.faces, [[false; 2], [false; 2], [true; 2]]);
        let rest = spec.without_axis(2);
        assert_eq!(rest.faces, [[true; 2], [true; 2], [false; 2]]);
        assert!(only.wants_any() && rest.wants_any());
        assert!(!spec.without_axis(0).without_axis(1).without_axis(2).wants_any());
    }

    #[test]
    fn partition_spec_builds_the_requested_decomposition() {
        let cube = HypercubeConfig::new(2);
        let shape = GridShape::plane2d(9, 9);
        let strip = PartitionSpec::Strip.build(shape, cube, true).expect("strips");
        assert_eq!(strip.parts().iter().filter(|p| p.spans[0].lo_ghost > 0).count(), 0);
        let block = PartitionSpec::Block.build(shape, cube, false).expect("blocks");
        assert!(block.parts().iter().any(|p| p.spans[0].lo_ghost > 0), "x is split");
        let auto = PartitionSpec::Auto.build(shape, cube, true).expect("auto");
        assert!(auto.parts().iter().any(|p| p.spans[0].lo_ghost > 0), "auto prefers blocks");
        let auto1 = PartitionSpec::Auto.build(shape, HypercubeConfig::new(1), true).expect("auto");
        assert_eq!(auto1.parts().len(), 2);
        assert!(auto1.parts().iter().all(|p| p.spans[0].lo_ghost == 0), "1-D cube: strips");
    }
}
