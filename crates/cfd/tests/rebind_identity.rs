//! The rebind fast path must be invisible. A document whose *shape*
//! matches a cached compile — same pipelines, same wiring, different
//! constant icons — is served by patching preloads onto the cached
//! program instead of re-running check + codegen. These tests pin the
//! correctness spine of that path: the patched program, and everything
//! it computes, must be bit-identical to a from-scratch compile of the
//! same document.

use nsc_cfd::diagrams::{JacobiGeometry, PLANE_U0, PLANE_U1, RESIDUAL_CACHE};
use nsc_cfd::{
    build_damped_jacobi_sweep_document, build_jacobi_sweep_document, load_problem, Grid3,
    JacobiHostState, JacobiVariant,
};
use nsc_core::{CompiledProgram, NscError, Session};
use nsc_sim::{PerfCounters, RunOptions};
use proptest::prelude::*;

/// A deterministic, interesting test problem (no two words alike).
fn problem(nx: usize, ny: usize, nz: usize) -> JacobiHostState {
    let mut u0 = Grid3::new(nx, ny, nz);
    let mut f = Grid3::new(nx, ny, nz);
    for (i, v) in u0.data.iter_mut().enumerate() {
        *v = ((i.wrapping_mul(2_654_435_761) % 1999) as f64 - 999.0) / 31.0;
    }
    for (i, v) in f.data.iter_mut().enumerate() {
        *v = ((i.wrapping_mul(40_503) % 911) as f64 - 455.0) / 7.0;
    }
    JacobiHostState::new(&u0, &f)
}

/// Run an already-compiled damped-Jacobi sweep and collect everything
/// it leaves behind for bit-comparison.
fn run_collect(
    session: &Session,
    compiled: &CompiledProgram,
    geo: JacobiGeometry,
    even: bool,
    state: &JacobiHostState,
) -> (Vec<f64>, Vec<f64>, PerfCounters) {
    let mut node = session.node();
    load_problem(&mut node, state, JacobiVariant::Full);
    compiled.run(&mut node, &RunOptions::default()).expect("sweep runs");
    let dst = if even { PLANE_U1 } else { PLANE_U0 };
    (
        node.mem.plane(dst).read_vec(0, geo.padded as u64),
        (0..4).map(|s| node.mem.cache(RESIDUAL_CACHE).read(0, s)).collect(),
        node.counters,
    )
}

fn assert_same_program(a: &CompiledProgram, b: &CompiledProgram, what: &str) {
    assert_eq!(a.program(), b.program(), "{what}: microprograms differ");
    assert_eq!(a.shape_digest(), b.shape_digest(), "{what}: shapes differ");
    assert_eq!(a.kernel().is_some(), b.kernel().is_some(), "{what}: kernel presence differs");
}

/// `Session::compile` with a warm shape cache must hand back the exact
/// program a cold session would build for the same document.
#[test]
fn cached_shape_compile_equals_from_scratch_compile() {
    let geo = JacobiGeometry::slab(5, 4, 4);
    let (omega_base, omega_target) = (0.7, 1.3);

    // Reference: a cold session compiles the target directly.
    let cold = Session::nsc_1988();
    let reference =
        cold.compile(&mut build_damped_jacobi_sweep_document(geo, true, omega_target)).unwrap();
    assert_eq!(cold.cache_stats().misses, 1);

    // Warm session: the base omega misses, the target omega rebinds.
    let warm = Session::nsc_1988();
    warm.compile(&mut build_damped_jacobi_sweep_document(geo, true, omega_base)).unwrap();
    let patched =
        warm.compile(&mut build_damped_jacobi_sweep_document(geo, true, omega_target)).unwrap();
    let stats = warm.cache_stats();
    assert_eq!(
        (stats.misses, stats.rebinds, stats.hits),
        (1, 1, 0),
        "the second omega must take the rebind path: {stats:?}"
    );
    assert_eq!((stats.entries, stats.shapes), (2, 1), "two programs, one shape");

    assert_same_program(&patched, &reference, "compile-level rebind");

    // And the programs genuinely differ from the base compile — the
    // patch really rebound the constant.
    let base =
        warm.compile(&mut build_damped_jacobi_sweep_document(geo, true, omega_base)).unwrap();
    assert_ne!(base.program(), patched.program(), "omega must land in the program");

    // Run-level identity on top of program-level identity.
    let state = problem(5, 4, 4);
    let (dst_a, res_a, ctr_a) = run_collect(&cold, &reference, geo, true, &state);
    let (dst_b, res_b, ctr_b) = run_collect(&warm, &patched, geo, true, &state);
    for (i, (x, y)) in dst_a.iter().zip(&dst_b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "destination word {i} ({x} vs {y})");
    }
    for (s, (x, y)) in res_a.iter().zip(&res_b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "residual slot {s}");
    }
    assert_eq!(ctr_a, ctr_b, "counters");
}

/// The explicit rebind API: patch a compiled program to a new
/// document's constants without touching the cache.
#[test]
fn explicit_rebind_equals_from_scratch_compile() {
    let geo = JacobiGeometry::slab(6, 4, 5);
    let session = Session::nsc_1988();
    let base = session.compile(&mut build_damped_jacobi_sweep_document(geo, false, 0.9)).unwrap();

    let mut target = build_damped_jacobi_sweep_document(geo, false, 1.7);
    let rebound = session.rebind(&base, &mut target).expect("same shape rebinds");

    let cold = Session::nsc_1988();
    let reference = cold.compile(&mut build_damped_jacobi_sweep_document(geo, false, 1.7)).unwrap();
    assert_same_program(&rebound, &reference, "explicit rebind");

    // rebind() itself is cache-free: still exactly one entry, no hits.
    let stats = session.cache_stats();
    assert_eq!((stats.misses, stats.rebinds, stats.hits, stats.entries), (1, 0, 0, 1));
}

/// Rebinding against a structurally different document must refuse
/// loudly, not mis-patch.
#[test]
fn rebind_refuses_a_different_shape() {
    let session = Session::nsc_1988();
    let geo = JacobiGeometry::slab(5, 4, 4);
    let base = session.compile(&mut build_damped_jacobi_sweep_document(geo, true, 0.8)).unwrap();

    // Different geometry: different wiring, different shape.
    let other_geo = JacobiGeometry::slab(6, 4, 4);
    let mut other = build_damped_jacobi_sweep_document(other_geo, true, 0.8);
    match session.rebind(&base, &mut other) {
        Err(NscError::ShapeMismatch { expected, got }) => {
            assert_eq!(expected, base.shape_digest());
            assert_ne!(expected, got);
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // An undamped sweep is also a different shape (no omega constant).
    let mut undamped = build_jacobi_sweep_document(geo, true);
    assert!(matches!(session.rebind(&base, &mut undamped), Err(NscError::ShapeMismatch { .. })));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The rebind contract over *arbitrary* swept constants: for any
    /// base/target omega pair (any finite sign/magnitude mix, equal
    /// values included) and any slab geometry, compiling the target on
    /// a session warmed with the base produces bit-for-bit the program
    /// and the run results of a cold compile.
    #[test]
    fn rebind_is_bit_identical_for_arbitrary_constants(
        nx in 3usize..=6,
        ny in 3usize..=5,
        nz in 3usize..=6,
        even in any::<bool>(),
        omega_base in prop_oneof![-4.0..4.0f64, Just(0.0), Just(1.0)],
        omega_target in prop_oneof![-4.0..4.0f64, Just(0.0), Just(1.0), Just(-0.0)],
    ) {
        let geo = JacobiGeometry::slab(nx, ny, nz);
        let state = problem(nx, ny, nz);

        let cold = Session::nsc_1988();
        let reference =
            cold.compile(&mut build_damped_jacobi_sweep_document(geo, even, omega_target)).unwrap();

        let warm = Session::nsc_1988();
        let base = warm.compile(&mut build_damped_jacobi_sweep_document(geo, even, omega_base)).unwrap();
        let patched =
            warm.compile(&mut build_damped_jacobi_sweep_document(geo, even, omega_target)).unwrap();
        let stats = warm.cache_stats();
        prop_assert_eq!(stats.misses, 1, "base compile is the only full compile");
        prop_assert_eq!(stats.hits + stats.rebinds, 1, "target is served from the shape cache");

        prop_assert_eq!(patched.program(), reference.program());

        // The explicit API agrees with the implicit path.
        let mut target = build_damped_jacobi_sweep_document(geo, even, omega_target);
        let rebound = warm.rebind(&base, &mut target).expect("same shape rebinds");
        prop_assert_eq!(rebound.program(), reference.program());

        let (dst_a, res_a, ctr_a) = run_collect(&cold, &reference, geo, even, &state);
        let (dst_b, res_b, ctr_b) = run_collect(&warm, &patched, geo, even, &state);
        for (x, y) in dst_a.iter().zip(&dst_b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in res_a.iter().zip(&res_b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert_eq!(ctr_a, ctr_b);
    }
}
