//! Behavior of the digest-keyed kernel cache, exercised through the
//! workloads' own sweep documents: recompiles hit, distinct documents
//! never collide, and — property-tested over arbitrary output windows —
//! the specialized kernels agree with the interpreter to the last bit.

use nsc_cfd::diagrams::{JacobiGeometry, PLANE_U0, PLANE_U1, RESIDUAL_CACHE};
use nsc_cfd::{
    build_jacobi_sweep_document_windows, load_problem, Grid3, JacobiHostState, JacobiVariant,
    SweepWindow,
};
use nsc_core::Session;
use nsc_sim::{PerfCounters, RunOptions};
use proptest::prelude::*;

/// A deterministic, interesting test problem (no two words alike, signs
/// and magnitudes mixed) on an `nx * ny * nz` grid.
fn problem(nx: usize, ny: usize, nz: usize) -> JacobiHostState {
    let mut u0 = Grid3::new(nx, ny, nz);
    let mut f = Grid3::new(nx, ny, nz);
    for (i, v) in u0.data.iter_mut().enumerate() {
        *v = ((i.wrapping_mul(2_654_435_761) % 1999) as f64 - 999.0) / 31.0;
    }
    for (i, v) in f.data.iter_mut().enumerate() {
        *v = ((i.wrapping_mul(40_503) % 911) as f64 - 455.0) / 7.0;
    }
    JacobiHostState::new(&u0, &f)
}

/// Everything one sweep run leaves behind, collected for bit-comparison.
struct SweepResult {
    dst: Vec<f64>,
    residuals: Vec<f64>,
    counters: PerfCounters,
}

/// Compile `doc` under `session`, run it on a freshly loaded node, and
/// collect the destination plane, residual slots and counters.
fn run_sweep(
    session: &Session,
    geo: JacobiGeometry,
    even: bool,
    windows: &[SweepWindow],
    state: &JacobiHostState,
    expect_kernel: bool,
) -> SweepResult {
    let mut doc = build_jacobi_sweep_document_windows(geo, even, windows);
    let compiled = session.compile(&mut doc).expect("sweep document compiles");
    match compiled.kernel() {
        Some(k) => {
            assert!(expect_kernel, "interpreter session must not attach kernels");
            assert_eq!(
                k.specialized(),
                k.instructions(),
                "every sweep instruction must specialize (no silent fallback)"
            );
        }
        None => assert!(!expect_kernel, "fast session must attach a kernel"),
    }
    let mut node = session.node();
    load_problem(&mut node, state, JacobiVariant::Full);
    compiled.run(&mut node, &RunOptions::default()).expect("sweep runs");
    let dst = if even { PLANE_U1 } else { PLANE_U0 };
    SweepResult {
        dst: node.mem.plane(dst).read_vec(0, geo.padded as u64),
        residuals: (0..4).map(|s| node.mem.cache(RESIDUAL_CACHE).read(0, s)).collect(),
        counters: node.counters,
    }
}

fn assert_bit_equal(a: &SweepResult, b: &SweepResult, what: &str) {
    for (i, (x, y)) in a.dst.iter().zip(&b.dst).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: destination word {i} ({x} vs {y})");
    }
    for (s, (x, y)) in a.residuals.iter().zip(&b.residuals).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: residual slot {s} ({x} vs {y})");
    }
    assert_eq!(a.counters, b.counters, "{what}: counters");
}

#[test]
fn recompiling_an_identical_document_hits_the_cache() {
    let session = Session::nsc_1988();
    let geo = JacobiGeometry::slab(5, 4, 4);
    let state = problem(5, 4, 4);
    let whole = [SweepWindow::whole(4)];
    let first = run_sweep(&session, geo, true, &whole, &state, true);
    assert_eq!(session.kernel_cache().misses(), 1);
    assert_eq!(session.kernel_cache().hits(), 0);
    // A second, independently built copy of the same document: same
    // digest, so the cached kernel and generated program are reused —
    // and reproduce the first run exactly.
    let second = run_sweep(&session, geo, true, &whole, &state, true);
    assert_eq!(session.kernel_cache().misses(), 1, "recompile must not rebuild");
    assert_eq!(session.kernel_cache().hits(), 1, "recompile must hit");
    assert_eq!(session.kernel_cache().len(), 1);
    assert_bit_equal(&first, &second, "cached recompile");
}

#[test]
fn distinct_documents_get_distinct_cache_entries() {
    // Collision safety: semantically different documents — even vs odd
    // sweeps, whole vs windowed — must land in different entries, keyed
    // by different digests, each reproducing its own interpreter result.
    let geo = JacobiGeometry::slab(5, 4, 4);
    let whole = [SweepWindow::whole(4)];
    let split = [
        SweepWindow { start: 0, len: 1, slot: SweepWindow::LO_SLOT },
        SweepWindow { start: 1, len: 2, slot: 0 },
        SweepWindow { start: 3, len: 1, slot: SweepWindow::HI_SLOT },
    ];
    let docs: Vec<_> = [
        build_jacobi_sweep_document_windows(geo, true, &whole),
        build_jacobi_sweep_document_windows(geo, false, &whole),
        build_jacobi_sweep_document_windows(geo, true, &split),
    ]
    .into_iter()
    .collect();
    for (i, a) in docs.iter().enumerate() {
        for b in &docs[i + 1..] {
            assert_ne!(a.digest(), b.digest(), "distinct documents must digest apart");
        }
    }

    let session = Session::nsc_1988();
    let state = problem(5, 4, 4);
    let whole_run = run_sweep(&session, geo, true, &whole, &state, true);
    let odd_run = run_sweep(&session, geo, false, &whole, &state, true);
    let split_run = run_sweep(&session, geo, true, &split, &state, true);
    assert_eq!(session.kernel_cache().len(), 3, "three documents, three entries");
    assert_eq!(session.kernel_cache().misses(), 3);
    assert_eq!(session.kernel_cache().hits(), 0);

    // The windowed even sweep covers the same layers as the fused one:
    // identical plane bits prove the cache did not cross-serve kernels
    // (a collision would run the wrong plan and corrupt the output).
    for (i, (x, y)) in whole_run.dst.iter().zip(&split_run.dst).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "windowing changed word {i}");
    }
    // The odd sweep reads the other plane, so it must differ from the
    // even run somewhere — they are genuinely different programs.
    assert!(
        whole_run.dst.iter().zip(&odd_run.dst).any(|(x, y)| x.to_bits() != y.to_bits()),
        "even and odd sweeps must not produce identical planes"
    );

    // Recompiling each now hits its own entry.
    run_sweep(&session, geo, true, &whole, &state, true);
    run_sweep(&session, geo, false, &whole, &state, true);
    assert_eq!(session.kernel_cache().len(), 3);
    assert_eq!(session.kernel_cache().hits(), 2);
}

/// An arbitrary slab geometry with a non-empty list of arbitrary (even
/// overlapping) output windows inside it: the raw draws are reduced into
/// the geometry so every window satisfies `start + len <= nz`, `len >= 1`.
fn arb_case() -> impl Strategy<Value = (usize, usize, usize, bool, Vec<SweepWindow>)> {
    (
        3usize..=6,
        3usize..=5,
        (3usize..=7, any::<bool>()),
        prop::collection::vec((0usize..64, 0usize..64, 0u64..4), 1..=3),
    )
        .prop_map(|(nx, ny, (nz, even), raw)| {
            let windows = raw
                .into_iter()
                .map(|(s, l, slot)| {
                    let start = s % nz;
                    SweepWindow { start, len: 1 + l % (nz - start), slot }
                })
                .collect();
            (nx, ny, nz, even, windows)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The heart of the fast path's contract: for *any* sweep windowing
    /// the partition layer could ask for, the specialized kernel and the
    /// cycle-accurate interpreter agree on every destination word, every
    /// residual slot and every counter — bit for bit.
    #[test]
    fn kernel_and_interpreter_agree_on_arbitrary_sweep_windows(
        (nx, ny, nz, even, windows) in arb_case(),
    ) {
        let geo = JacobiGeometry::slab(nx, ny, nz);
        let state = problem(nx, ny, nz);
        let fast = Session::nsc_1988();
        let interp = Session::nsc_1988().with_fast_path(false);
        let a = run_sweep(&fast, geo, even, &windows, &state, true);
        let b = run_sweep(&interp, geo, even, &windows, &state, false);
        for (x, y) in a.dst.iter().zip(&b.dst) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.residuals.iter().zip(&b.residuals) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        prop_assert_eq!(a.counters, b.counters);
    }
}
