//! The kernel fast path must be invisible. Every distributed workload, at
//! every cube size from 1 to 8 nodes, must produce bit-identical grids,
//! residuals, counters and simulated time whether the session specializes
//! native kernels (the default) or forces the cycle-accurate interpreter
//! (`Session::with_fast_path(false)`).
//!
//! These are the acceptance tests for the fast-path executor: the kernels
//! may only change *host* wall-clock, never a single simulated bit.

use nsc_arch::HypercubeConfig;
use nsc_cfd::grid::manufactured_problem;
use nsc_cfd::{
    CavityWorkload, DistributedJacobiWorkload, DistributedMultigridWorkload,
    DistributedSorWorkload, MgOptions, PartitionSpec,
};
use nsc_core::{Session, Workload};
use nsc_sim::NscSystem;

/// A kernel-compiling session and its interpreter-only reference twin.
fn session_pair() -> (Session, Session) {
    let fast = Session::nsc_1988();
    let interp = Session::nsc_1988().with_fast_path(false);
    assert!(fast.fast_path());
    assert!(!interp.fast_path());
    (fast, interp)
}

fn system(dim: u32, session: &Session) -> NscSystem {
    NscSystem::new(HypercubeConfig::new(dim), session.kb())
}

fn assert_grids_bit_equal(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: grid sizes differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: word {i} differs ({x} vs {y})");
    }
}

#[test]
fn distributed_jacobi_is_bit_identical_with_and_without_kernels() {
    let (fast, interp) = session_pair();
    for dim in 0..=3u32 {
        for overlap in [false, true] {
            let (u0, f, _) = manufactured_problem(12);
            let w = DistributedJacobiWorkload {
                u0,
                f,
                tol: 0.0,
                max_pairs: 2,
                partition: PartitionSpec::Auto,
                overlap,
            };
            let a = w.execute(&fast, &mut system(dim, &fast)).expect("kernel run");
            let b = w.execute(&interp, &mut system(dim, &interp)).expect("interpreted run");
            let tag = format!("jacobi dim {dim} overlap {overlap}");
            assert_grids_bit_equal(&a.u.data, &b.u.data, &tag);
            assert_eq!(a.residual.to_bits(), b.residual.to_bits(), "{tag}: residual");
            assert_eq!(a.sweeps, b.sweeps, "{tag}: sweeps");
            assert_eq!(a.converged, b.converged, "{tag}: converged");
            assert_eq!(a.per_node, b.per_node, "{tag}: per-node counters");
            assert_eq!(a.total, b.total, "{tag}: aggregate counters");
            assert_eq!(
                a.simulated_seconds.to_bits(),
                b.simulated_seconds.to_bits(),
                "{tag}: simulated time"
            );
            assert_eq!(
                a.aggregate_mflops.to_bits(),
                b.aggregate_mflops.to_bits(),
                "{tag}: simulated MFLOPS"
            );
        }
    }
    // The fast twin really compiled kernels; the reference twin never did.
    assert!(fast.kernel_cache().misses() > 0, "the fast session must have built kernels");
    assert!(!fast.kernel_cache().is_empty());
    assert!(interp.kernel_cache().is_empty(), "the interpreter session must stay kernel-free");
}

#[test]
fn distributed_sor_is_bit_identical_with_and_without_kernels() {
    let (fast, interp) = session_pair();
    for dim in 0..=3u32 {
        let (u0, f, _) = manufactured_problem(12);
        let w = DistributedSorWorkload {
            u0,
            f,
            omega: 1.5,
            tol: 0.0,
            max_sweeps: 3,
            partition: PartitionSpec::Auto,
            overlap: dim % 2 == 1,
        };
        let a = w.execute(&fast, &mut system(dim, &fast)).expect("kernel run");
        let b = w.execute(&interp, &mut system(dim, &interp)).expect("interpreted run");
        let tag = format!("sor dim {dim}");
        assert_grids_bit_equal(&a.u.data, &b.u.data, &tag);
        assert_eq!(a.residual.to_bits(), b.residual.to_bits(), "{tag}: residual");
        assert_eq!(a.sweeps, b.sweeps, "{tag}: sweeps");
        assert_eq!(a.converged, b.converged, "{tag}: converged");
        assert_eq!(a.comm_ns, b.comm_ns, "{tag}: router time");
    }
}

#[test]
fn distributed_multigrid_is_bit_identical_with_and_without_kernels() {
    let (fast, interp) = session_pair();
    for dim in 0..=3u32 {
        // Multigrid wants a cubic 2^m + 1 grid; 9^3 descends 9 -> 5 -> 3.
        let (u0, f, _) = manufactured_problem(9);
        let w = DistributedMultigridWorkload {
            u0,
            f,
            tol: 0.0,
            max_cycles: 2,
            opts: MgOptions::default(),
            overlap: true,
        };
        let a = w.execute(&fast, &mut system(dim, &fast)).expect("kernel run");
        let b = w.execute(&interp, &mut system(dim, &interp)).expect("interpreted run");
        let tag = format!("multigrid dim {dim}");
        assert_grids_bit_equal(&a.u.data, &b.u.data, &tag);
        assert_eq!(a.residual.to_bits(), b.residual.to_bits(), "{tag}: residual");
        assert_eq!(a.stats.cycles, b.stats.cycles, "{tag}: cycles");
        for (x, y) in a.stats.residual_history.iter().zip(&b.stats.residual_history) {
            assert_eq!(x.to_bits(), y.to_bits(), "{tag}: residual history");
        }
        assert_eq!(a.per_node, b.per_node, "{tag}: per-node counters");
        assert_eq!(a.total, b.total, "{tag}: aggregate counters");
        assert_eq!(
            a.simulated_seconds.to_bits(),
            b.simulated_seconds.to_bits(),
            "{tag}: simulated time"
        );
    }
    assert!(fast.kernel_cache().misses() > 0);
}

#[test]
fn cavity_is_bit_identical_with_and_without_kernels() {
    let (fast, interp) = session_pair();
    for dim in 0..=3u32 {
        let mut w = CavityWorkload::new(9, 10.0, 2);
        w.psi_tol = 1e-6;
        w.overlap = true;
        let a = w.execute(&fast, &mut system(dim, &fast)).expect("kernel run");
        let b = w.execute(&interp, &mut system(dim, &interp)).expect("interpreted run");
        let tag = format!("cavity dim {dim}");
        assert_grids_bit_equal(&a.psi.data, &b.psi.data, &format!("{tag}: psi"));
        assert_grids_bit_equal(&a.omega.data, &b.omega.data, &format!("{tag}: omega"));
        assert_grids_bit_equal(&a.u.data, &b.u.data, &format!("{tag}: u"));
        assert_grids_bit_equal(&a.v.data, &b.v.data, &format!("{tag}: v"));
        assert_eq!(a.psi_pairs, b.psi_pairs, "{tag}: solve pairs");
        assert_eq!(a.last_residual.to_bits(), b.last_residual.to_bits(), "{tag}: residual");
        assert_eq!(a.per_node, b.per_node, "{tag}: per-node counters");
        assert_eq!(a.total, b.total, "{tag}: aggregate counters");
        assert_eq!(
            a.simulated_seconds.to_bits(),
            b.simulated_seconds.to_bits(),
            "{tag}: simulated time"
        );
    }
    assert!(fast.kernel_cache().misses() > 0);
}
