//! Renderers: every editor state draws to ASCII (tests, terminals) and
//! SVG (figure artifacts). The geometry is shared with hit-testing, so
//! what is drawn is exactly what the mouse addresses.

use crate::editor::{Editor, Mode};
use crate::events::{Button, PaletteEntry};
use crate::geometry::{self, WindowLayout, DRAW_Y0, LEFT_W, MSG_H, PANEL_W, WIN_H, WIN_W};
use nsc_diagram::{IconKind, Point};

/// Render the full window as ASCII art (one string, `WIN_H` lines).
pub fn render_ascii(ed: &Editor) -> String {
    let mut c = Canvas::new();
    chrome(&mut c, ed);
    panel(&mut c);
    left_region(&mut c, ed);
    diagram(&mut c, ed);
    overlays(&mut c, ed);
    c.to_string()
}

struct Canvas {
    cells: Vec<Vec<char>>,
}

impl Canvas {
    fn new() -> Self {
        Canvas { cells: vec![vec![' '; WIN_W as usize]; WIN_H as usize] }
    }

    fn put(&mut self, x: i32, y: i32, ch: char) {
        if (0..WIN_W).contains(&x) && (0..WIN_H).contains(&y) {
            self.cells[y as usize][x as usize] = ch;
        }
    }

    /// Write only onto blank cells (wires must not cut through boxes).
    fn put_soft(&mut self, x: i32, y: i32, ch: char) {
        if (0..WIN_W).contains(&x) && (0..WIN_H).contains(&y) {
            let cell = &mut self.cells[y as usize][x as usize];
            if *cell == ' ' {
                *cell = ch;
            }
        }
    }

    fn text(&mut self, x: i32, y: i32, s: &str) {
        for (i, ch) in s.chars().enumerate() {
            self.put(x + i as i32, y, ch);
        }
    }
}

impl std::fmt::Display for Canvas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for row in &self.cells {
            writeln!(f, "{}", row.iter().collect::<String>().trim_end())?;
        }
        Ok(())
    }
}

fn chrome(c: &mut Canvas, ed: &Editor) {
    let title = format!(" NSC visual environment | {}", ed.message);
    c.text(0, 0, &title[..title.len().min(WIN_W as usize)]);
    for x in 0..WIN_W {
        c.put(x, MSG_H - 1, '=');
    }
    for y in MSG_H..WIN_H {
        c.put(LEFT_W - 1, y, '|');
        c.put(WIN_W - PANEL_W, y, '|');
    }
}

fn panel(c: &mut Canvas) {
    for (i, entry) in PaletteEntry::ALL.iter().enumerate() {
        let p = WindowLayout::panel_row(i);
        c.text(p.x, p.y, &format!("[{:<10}]", entry.label()));
    }
    let base = PaletteEntry::ALL.len();
    for (i, b) in Button::ALL.iter().enumerate() {
        let p = WindowLayout::panel_row(base + i);
        c.text(p.x, p.y, &format!("<{:^9}>", b.label()));
    }
}

fn left_region(c: &mut Canvas, ed: &Editor) {
    c.text(1, DRAW_Y0, "DECLARATIONS");
    for (i, v) in ed.doc.decls.vars.iter().take(10).enumerate() {
        c.text(1, DRAW_Y0 + 1 + i as i32, &format!("{} {}", v.name, v.plane));
    }
    let ord = ed.doc.ordinal_of(ed.current).unwrap_or(0);
    c.text(1, WIN_H - 2, &format!("pipe {}/{}", ord + 1, ed.doc.pipeline_count()));
    if ed.doc.control.is_some() {
        c.text(1, WIN_H - 3, "ctl: defined");
    }
}

fn unit_border(kind: &IconKind, pos: u8) -> char {
    if let IconKind::Als { kind, .. } = kind {
        let caps = kind.unit_caps(pos as usize);
        if caps.int_logic {
            return '='; // the Figure 4 "double box"
        }
        if caps.min_max {
            return '~';
        }
    }
    '-'
}

fn diagram(c: &mut Canvas, ed: &Editor) {
    let Some(d) = ed.doc.pipeline(ed.current) else { return };
    let Some(layout) = ed.doc.layout(ed.current) else { return };

    // Icons.
    for icon in d.icons() {
        let Some(at) = layout.position(icon.id) else { continue };
        match icon.kind {
            IconKind::Als { kind, mode, .. } => {
                for (slot, pos) in geometry::active_positions(kind, mode).iter().enumerate() {
                    let y0 = at.y + slot as i32 * 4;
                    let b = unit_border(&icon.kind, *pos);
                    let border: String = std::iter::repeat_n(b, 7).collect();
                    c.text(at.x + 1, y0, &format!("+{border}+"));
                    let label = d
                        .fu_assign(icon.id, *pos)
                        .map(|a| a.op.mnemonic().to_string())
                        .unwrap_or_else(|| format!("u{pos}?"));
                    c.text(at.x + 1, y0 + 1, &format!("|{label:^7}|"));
                    c.text(at.x + 1, y0 + 2, &format!("+{border}+"));
                }
            }
            IconKind::Memory { plane } => {
                let label = plane.map(|p| p.to_string()).unwrap_or_else(|| "MEM ?".to_string());
                storage_box(c, at, &label);
            }
            IconKind::Cache { cache } => {
                let label = cache.map(|x| x.to_string()).unwrap_or_else(|| "DC ?".to_string());
                storage_box(c, at, &label);
            }
            IconKind::Sdu { sdu } => {
                let label = sdu.map(|s| s.to_string()).unwrap_or_else(|| "SDU?".to_string());
                let m = geometry::metrics(&icon.kind);
                for y in at.y..at.y + m.h {
                    c.put(at.x + 1, y, '|');
                    c.put(at.x + 9, y, '|');
                }
                c.text(at.x + 1, at.y, "+-------+");
                c.text(at.x + 1, at.y + m.h - 1, "+-------+");
                c.text(at.x + 2, at.y + 1, &format!("{label:^7}"));
                let taps = d.sdu_taps(icon.id);
                for (t, delay) in taps.iter().take(4).enumerate() {
                    c.text(at.x + 2, at.y + 2 + t as i32, &format!("t{t}:{delay:<4}"));
                }
            }
        }
        // Pads: 'o', or '*' when a wire lands/leaves there.
        for (pad, off) in geometry::pads_with_offsets(&icon.kind) {
            let loc = nsc_diagram::PadLoc::new(icon.id, pad);
            let used = !d.incoming(loc).is_empty() || !d.outgoing(loc).is_empty();
            c.put(at.x + off.x, at.y + off.y, if used { '*' } else { 'o' });
        }
    }

    // Wires, as Manhattan paths that never overwrite box art.
    for conn in d.connections() {
        let (Some(a), Some(b)) = (pad_abs(ed, conn.from), pad_abs(ed, conn.to)) else {
            continue;
        };
        manhattan(c, a, b, '-', '|');
    }

    // Rubber band.
    if let Mode::RubberBand { from, to } = &ed.mode {
        if let Some(a) = pad_abs(ed, *from) {
            manhattan(c, a, *to, '*', '*');
        }
    }
}

fn storage_box(c: &mut Canvas, at: Point, label: &str) {
    c.text(at.x + 1, at.y, "+=======+");
    c.text(at.x + 1, at.y + 1, &format!("|{label:^7}|"));
    c.text(at.x + 1, at.y + 2, "+=======+");
}

fn pad_abs(ed: &Editor, loc: nsc_diagram::PadLoc) -> Option<Point> {
    let d = ed.doc.pipeline(ed.current)?;
    let layout = ed.doc.layout(ed.current)?;
    let icon = d.icon(loc.icon)?;
    let at = layout.position(loc.icon)?;
    let off = geometry::pad_offset(&icon.kind, loc.pad)?;
    Some(Point::new(at.x + off.x, at.y + off.y))
}

fn manhattan(c: &mut Canvas, a: Point, b: Point, h: char, v: char) {
    let mx = (a.x + b.x) / 2;
    for x in range(a.x + 1, mx) {
        c.put_soft(x, a.y, h);
    }
    for y in range(a.y, b.y) {
        c.put_soft(mx, y, v);
    }
    for x in range(mx, b.x - 1) {
        c.put_soft(x, b.y, h);
    }
}

fn range(from: i32, to: i32) -> Box<dyn Iterator<Item = i32>> {
    if from <= to {
        Box::new(from..=to)
    } else {
        Box::new(to..=from)
    }
}

fn overlays(c: &mut Canvas, ed: &Editor) {
    let (title, entries): (String, Vec<String>) = match &ed.mode {
        Mode::ConnMenu { from, targets } => (
            format!("connect {from} to:"),
            targets.iter().take(12).enumerate().map(|(i, t)| format!("{i}) {t}")).collect(),
        ),
        Mode::OpMenu { icon, pos, ops } => (
            format!("operation for {icon}.u{pos}:"),
            ops.iter()
                .take(14)
                .enumerate()
                .map(|(i, o)| format!("{i}) {}", o.mnemonic()))
                .collect(),
        ),
        Mode::DmaForm { fields, active, .. } => (
            "DMA parameters".to_string(),
            ["plane/cache", "variable", "offset", "stride", "count"]
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let marker = if i == *active { '>' } else { ' ' };
                    format!("{marker}{name}: {}", fields[i])
                })
                .collect(),
        ),
        _ => return,
    };
    let x0 = LEFT_W + 3;
    let y0 = DRAW_Y0 + 1;
    let w = entries.iter().map(String::len).chain(std::iter::once(title.len())).max().unwrap_or(10)
        as i32
        + 2;
    for (row, line) in std::iter::once(&title).chain(entries.iter()).enumerate() {
        let y = y0 + row as i32;
        for dx in 0..w {
            c.put(x0 + dx, y, ' ');
        }
        c.put(x0 - 1, y, '#');
        c.put(x0 + w, y, '#');
        c.text(x0 + 1, y, line);
    }
    for dx in -1..=w {
        c.put(x0 + dx, y0 - 1, '#');
        c.put(x0 + dx, y0 + 1 + entries.len() as i32, '#');
    }
}

/// Render the window as a standalone SVG document.
pub fn render_svg(ed: &Editor) -> String {
    let ascii = render_ascii(ed);
    let (cw, chh) = (8, 16);
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         font-family=\"monospace\" font-size=\"14\">\n",
        WIN_W * cw,
        WIN_H * chh
    ));
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    for (row, line) in ascii.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let escaped = line.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;");
        out.push_str(&format!(
            "<text x=\"0\" y=\"{}\" xml:space=\"preserve\">{}</text>\n",
            (row + 1) * chh as usize,
            escaped
        ));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{AlsKind, FuOp, PlaneId};
    use nsc_checker::Checker;
    use nsc_diagram::{FuAssign, PadRef};

    fn editor_with_icons() -> Editor {
        let mut ed = Editor::new(Checker::nsc_1988(), "render-test");
        let mem = ed.place_icon(IconKind::Memory { plane: Some(PlaneId(2)) }, Point::new(22, 6));
        let als = ed.place_icon(IconKind::als(AlsKind::Triplet), Point::new(45, 4));
        ed.assign_fu(als, 0, FuAssign::binary(FuOp::Add));
        ed.connect(
            nsc_diagram::PadLoc::new(mem, PadRef::Io),
            nsc_diagram::PadLoc::new(als, PadRef::FuIn { pos: 0, port: nsc_arch::InPort::A }),
        );
        ed
    }

    #[test]
    fn window_shows_all_figure_5_regions() {
        let ed = Editor::new(Checker::nsc_1988(), "layout");
        let art = render_ascii(&ed);
        assert!(art.contains("NSC visual environment"));
        assert!(art.contains("DECLARATIONS"));
        assert!(art.contains("[SINGLET"));
        assert!(art.contains("[TRIPLET"));
        assert!(art.contains("INSERT"));
        assert!(art.contains("pipe 1/1"));
    }

    #[test]
    fn icons_and_wires_are_drawn() {
        let ed = editor_with_icons();
        let art = render_ascii(&ed);
        assert!(art.contains("MP2"), "memory label");
        assert!(art.contains("ADD"), "assigned op label");
        assert!(art.contains("u1?"), "unassigned unit placeholder");
        assert!(art.contains('*'), "connected pads marked");
        assert!(art.contains('='), "integer-capable unit double box");
        assert!(art.contains('~'), "min/max unit border");
    }

    #[test]
    fn menus_overlay_when_open() {
        let mut ed = editor_with_icons();
        ed.handle(crate::events::Event::MouseDown { x: 48, y: 9 }); // unit 1 box
        let art = render_ascii(&ed);
        assert!(art.contains("operation for"), "{art}");
        assert!(art.contains("0) ADD"));
    }

    #[test]
    fn svg_wraps_the_same_content() {
        let ed = editor_with_icons();
        let svg = render_svg(&ed);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("MP2"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn render_is_stable_for_identical_state() {
        let ed = editor_with_icons();
        assert_eq!(render_ascii(&ed), render_ascii(&ed));
    }
}
