//! Input events: the mouse-and-keyboard vocabulary of the editor.
//!
//! Paper §5: "Interaction is provided primarily with a 'mouse', augmented
//! with a keyboard for some operations." Every gesture in Figures 6-10 is
//! expressible as a sequence of these events.

use nsc_arch::{AlsKind, DoubletMode};
use nsc_diagram::IconKind;

/// Entries of the control panel's icon palette (Figure 4's icons plus the
/// storage icons this reproduction implements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaletteEntry {
    /// Single-unit ALS.
    Singlet,
    /// Two-unit ALS.
    Doublet,
    /// Doublet configured as a singlet (second representation in Fig. 4).
    DoubletBypass,
    /// Three-unit ALS.
    Triplet,
    /// Memory plane.
    Memory,
    /// Data cache.
    Cache,
    /// Shift/delay unit.
    Sdu,
}

impl PaletteEntry {
    /// Palette order, top to bottom, in the control panel.
    pub const ALL: [PaletteEntry; 7] = [
        PaletteEntry::Singlet,
        PaletteEntry::Doublet,
        PaletteEntry::DoubletBypass,
        PaletteEntry::Triplet,
        PaletteEntry::Memory,
        PaletteEntry::Cache,
        PaletteEntry::Sdu,
    ];

    /// The icon this palette entry stamps out.
    pub fn kind(self) -> IconKind {
        match self {
            PaletteEntry::Singlet => IconKind::als(AlsKind::Singlet),
            PaletteEntry::Doublet => IconKind::als(AlsKind::Doublet),
            PaletteEntry::DoubletBypass => {
                IconKind::Als { kind: AlsKind::Doublet, mode: DoubletMode::BypassSecond, als: None }
            }
            PaletteEntry::Triplet => IconKind::als(AlsKind::Triplet),
            PaletteEntry::Memory => IconKind::memory(),
            PaletteEntry::Cache => IconKind::cache(),
            PaletteEntry::Sdu => IconKind::sdu(),
        }
    }

    /// Panel label.
    pub fn label(self) -> &'static str {
        match self {
            PaletteEntry::DoubletBypass => "DOUBLET/1",
            other => other.kind().palette_label(),
        }
    }
}

/// Control-panel buttons: "the usual editor operations to insert, delete,
/// copy, and renumber pipelines, as well as to scroll forward or backward
/// or jump to a specific pipeline" (§5), plus CHECK and SAVE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Button {
    /// Insert a new pipeline after the current one.
    InsertPipe,
    /// Delete the current pipeline.
    DeletePipe,
    /// Copy the current pipeline.
    CopyPipe,
    /// Move the current pipeline one slot earlier (renumber).
    Renumber,
    /// Scroll to the next pipeline.
    Next,
    /// Scroll to the previous pipeline.
    Prev,
    /// Run the checker on the current pipeline.
    Check,
    /// Save the document (JSON + pseudo-code).
    Save,
    /// Undo the last edit.
    Undo,
    /// Redo the last undone edit.
    Redo,
}

impl Button {
    /// Panel order, placed below the palette.
    pub const ALL: [Button; 10] = [
        Button::InsertPipe,
        Button::DeletePipe,
        Button::CopyPipe,
        Button::Renumber,
        Button::Next,
        Button::Prev,
        Button::Check,
        Button::Save,
        Button::Undo,
        Button::Redo,
    ];

    /// Panel label.
    pub fn label(self) -> &'static str {
        match self {
            Button::InsertPipe => "INSERT",
            Button::DeletePipe => "DELETE",
            Button::CopyPipe => "COPY",
            Button::Renumber => "RENUM",
            Button::Next => "NEXT >",
            Button::Prev => "< PREV",
            Button::Check => "CHECK",
            Button::Save => "SAVE",
            Button::Undo => "UNDO",
            Button::Redo => "REDO",
        }
    }
}

/// One input event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Mouse button pressed at a cell.
    MouseDown {
        /// Column.
        x: i32,
        /// Row.
        y: i32,
    },
    /// Mouse moved (with the button held, during drags/rubber-banding).
    MouseMove {
        /// Column.
        x: i32,
        /// Row.
        y: i32,
    },
    /// Mouse button released at a cell.
    MouseUp {
        /// Column.
        x: i32,
        /// Row.
        y: i32,
    },
    /// An entry of the active pop-up menu was chosen.
    MenuPick(usize),
    /// The active pop-up was dismissed.
    MenuCancel,
    /// Keyboard text into the active sub-window field.
    Text(String),
    /// Advance to the next sub-window field.
    NextField,
    /// Commit the active sub-window.
    SubmitForm,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palette_covers_figure_4_and_storage() {
        assert_eq!(PaletteEntry::ALL.len(), 7);
        let labels: std::collections::HashSet<_> =
            PaletteEntry::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 7, "labels unique");
        assert!(labels.contains("DOUBLET/1"), "both doublet representations");
    }

    #[test]
    fn bypass_entry_stamps_a_bypassed_doublet() {
        match PaletteEntry::DoubletBypass.kind() {
            IconKind::Als { kind: AlsKind::Doublet, mode: DoubletMode::BypassSecond, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn buttons_cover_the_papers_list() {
        let labels: Vec<_> = Button::ALL.iter().map(|b| b.label()).collect();
        for needed in ["INSERT", "DELETE", "COPY", "RENUM"] {
            assert!(labels.contains(&needed), "missing {needed}");
        }
    }
}
