//! Scripted interaction sessions: the reproducible form of the paper's
//! Figures 6-11 walkthrough.
//!
//! A [`Session`] feeds recorded events to an editor, captures labelled
//! ASCII/SVG snapshots at chosen moments, and carries the effort meter
//! used by experiment T3 (user actions vs. microcode bits).

use crate::editor::Editor;
use crate::events::Event;
use crate::render::{render_ascii, render_svg};
use std::io::Write as _;
use std::path::Path;

/// One captured frame.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Caption (e.g. "fig6: dragging a triplet from the palette").
    pub label: String,
    /// ASCII rendering at capture time.
    pub ascii: String,
    /// SVG rendering at capture time.
    pub svg: String,
}

/// A scripted editor session.
#[derive(Debug)]
pub struct Session {
    /// The editor being driven.
    pub editor: Editor,
    /// Captured frames, in order.
    pub snapshots: Vec<Snapshot>,
    /// Events fed so far.
    pub events_fed: usize,
}

impl Session {
    /// Start a session over an editor.
    pub fn new(editor: Editor) -> Self {
        Session { editor, snapshots: Vec::new(), events_fed: 0 }
    }

    /// Feed a batch of events.
    pub fn feed(&mut self, events: impl IntoIterator<Item = Event>) -> &mut Self {
        for ev in events {
            self.editor.handle(ev);
            self.events_fed += 1;
        }
        self
    }

    /// Capture the current screen.
    pub fn snap(&mut self, label: impl Into<String>) -> &mut Self {
        self.snapshots.push(Snapshot {
            label: label.into(),
            ascii: render_ascii(&self.editor),
            svg: render_svg(&self.editor),
        });
        self
    }

    /// Write every snapshot to `dir` as `.txt` and `.svg` files named by a
    /// slug of their labels. Returns the file stems written.
    pub fn save_all(&self, dir: &Path) -> std::io::Result<Vec<String>> {
        std::fs::create_dir_all(dir)?;
        let mut stems = Vec::new();
        for (i, snap) in self.snapshots.iter().enumerate() {
            let slug: String = snap
                .label
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect::<String>()
                .to_lowercase();
            let stem = format!("{i:02}_{}", &slug[..slug.len().min(40)]);
            let mut txt = std::fs::File::create(dir.join(format!("{stem}.txt")))?;
            writeln!(txt, "{}\n{}", snap.label, snap.ascii)?;
            std::fs::write(dir.join(format!("{stem}.svg")), &snap.svg)?;
            stems.push(stem);
        }
        Ok(stems)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{MSG_H, WIN_W};
    use nsc_checker::Checker;

    #[test]
    fn sessions_replay_and_snapshot() {
        let ed = Editor::new(Checker::nsc_1988(), "session-test");
        let mut s = Session::new(ed);
        // Drag a memory icon out of the palette (row 4 = MEMORY).
        let py = MSG_H + 1 + 2 * 4;
        s.feed([Event::MouseDown { x: WIN_W - 8, y: py }, Event::MouseMove { x: 30, y: 8 }])
            .snap("dragging")
            .feed([Event::MouseUp { x: 30, y: 8 }])
            .snap("placed");
        assert_eq!(s.snapshots.len(), 2);
        assert_eq!(s.events_fed, 3);
        assert!(s.snapshots[1].ascii.contains("MEM ?"));
        assert!(s.editor.effort.mouse_actions >= 2);
    }

    #[test]
    fn snapshots_save_to_disk() {
        let ed = Editor::new(Checker::nsc_1988(), "save-test");
        let mut s = Session::new(ed);
        s.snap("empty window");
        let dir = std::env::temp_dir().join("nsc_session_test");
        let stems = s.save_all(&dir).expect("writes");
        assert_eq!(stems.len(), 1);
        let txt = std::fs::read_to_string(dir.join(format!("{}.txt", stems[0]))).unwrap();
        assert!(txt.contains("empty window"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
