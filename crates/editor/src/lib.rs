//! # nsc-editor — the graphical editor
//!
//! Paper §4-5: the graphical editor is the user's interface to the whole
//! environment. "The user manipulates these icons interactively to
//! construct a program ... A high-resolution bit-mapped display is used as
//! the drawing surface. Interaction is provided primarily with a 'mouse',
//! augmented with a keyboard for some operations."
//!
//! The 1988 prototype ran on a Sun-3 under SunView; this reproduction
//! models the same editor as an **event-driven core**: mouse and keyboard
//! input arrive as explicit [`Event`]s, every screen state renders to
//! ASCII (and SVG) through [`render`], and all of the paper's Figure 5-11
//! interactions — selecting an icon from the control panel, dragging its
//! outline into the drawing area, rubber-banding a connection between I/O
//! pads, filling the Figure 9 DMA sub-window, picking an operation from
//! the Figure 10 menu — are reproducible as scripted [`session`]s whose
//! snapshots regenerate the figures.
//!
//! The editor enforces nothing itself: every gesture consults the checker
//! ("the graphical editor calls on the checker at appropriate points
//! during interaction with the user"), pop-up menus are *populated by* the
//! checker's legal-target queries, and errors land in the message strip
//! the moment they are detected.

pub mod editor;
pub mod events;
pub mod geometry;
pub mod render;
pub mod session;

pub use self::editor::{Editor, EffortMeter, Mode};
pub use self::events::{Button, Event, PaletteEntry};
pub use self::geometry::{IconMetrics, WindowLayout, DRAW_X0, DRAW_Y0, WIN_H, WIN_W};
pub use self::render::{render_ascii, render_svg};
pub use self::session::{Session, Snapshot};
