//! The editor state machine.
//!
//! Each [`Event`] drives the mode machine below; every mutation goes
//! through the same methods a programmatic caller would use, and every
//! machine-level question is delegated to the checker — the editor itself
//! knows no architecture facts (paper §4's division of labour).

use crate::events::{Button, Event, PaletteEntry};
use crate::geometry::{self, region_at, Region, DRAW_Y0};
use nsc_arch::FuOp;
use nsc_checker::{Checker, Severity, Stage};
use nsc_diagram::{
    ConnId, DmaAttrs, Document, FuAssign, IconId, IconKind, PadLoc, PadRef, PipelineId, Point,
};

/// What the editor is in the middle of.
#[derive(Debug, Clone, PartialEq)]
pub enum Mode {
    /// Nothing in progress.
    Idle,
    /// Dragging a new icon's outline out of the palette (Figure 6).
    DraggingNew {
        /// The palette entry being placed.
        entry: PaletteEntry,
        /// Current outline position.
        at: Point,
    },
    /// Dragging an existing icon.
    DraggingIcon {
        /// The icon being moved.
        icon: IconId,
        /// Cursor offset within the icon when grabbed.
        grab: Point,
    },
    /// Rubber-banding a wire from a source pad (Figure 8).
    RubberBand {
        /// Anchor pad.
        from: PadLoc,
        /// Current free end.
        to: Point,
    },
    /// The Figure 8 pop-up menu of legal connection targets.
    ConnMenu {
        /// Anchor pad.
        from: PadLoc,
        /// Legal destinations, as reported by the checker.
        targets: Vec<PadLoc>,
    },
    /// The Figure 10 pop-up menu of legal operations for one unit.
    OpMenu {
        /// ALS icon.
        icon: IconId,
        /// Unit position within it.
        pos: u8,
        /// Menu contents (capability-filtered).
        ops: Vec<FuOp>,
    },
    /// The Figure 9 DMA sub-window for a memory/cache connection.
    DmaForm {
        /// The connection being parameterized.
        conn: ConnId,
        /// Field values: number, variable, offset, stride, count.
        fields: [String; 5],
        /// Which field has keyboard focus.
        active: usize,
    },
}

/// Interaction-effort accounting (experiment T3: visual environment vs
/// hand-written microcode).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffortMeter {
    /// Mouse presses and releases.
    pub mouse_actions: u32,
    /// Pop-up menu selections.
    pub menu_picks: u32,
    /// Characters typed into sub-window fields.
    pub text_chars: u32,
    /// Control-panel button presses.
    pub button_presses: u32,
}

impl EffortMeter {
    /// Total elementary user actions.
    pub fn total_actions(&self) -> u32 {
        self.mouse_actions + self.menu_picks + self.text_chars + self.button_presses
    }
}

/// What a point in the drawing area hits.
#[derive(Debug, Clone, PartialEq)]
enum Hit {
    Pad(PadLoc),
    Unit(IconId, u8),
    Icon(IconId),
    Empty,
}

/// The editor.
#[derive(Debug, Clone)]
pub struct Editor {
    checker: Checker,
    /// The document being edited.
    pub doc: Document,
    /// The pipeline currently displayed.
    pub current: PipelineId,
    /// Interaction mode.
    pub mode: Mode,
    /// Message-strip contents.
    pub message: String,
    /// Interaction effort so far.
    pub effort: EffortMeter,
    undo: Vec<Document>,
    redo: Vec<Document>,
}

impl Editor {
    /// A fresh editor with one empty pipeline.
    pub fn new(checker: Checker, name: impl Into<String>) -> Self {
        let mut doc = Document::new(name);
        let current = doc.add_pipeline("pipeline 1");
        Editor {
            checker,
            doc,
            current,
            mode: Mode::Idle,
            message: "ready".to_string(),
            effort: EffortMeter::default(),
            undo: Vec::new(),
            redo: Vec::new(),
        }
    }

    /// An editor over an existing document (e.g. for re-editing a saved
    /// program).
    pub fn open(checker: Checker, doc: Document) -> Self {
        let current = doc.pipelines().first().map(|p| p.id).unwrap_or(PipelineId(0));
        Editor {
            checker,
            doc,
            current,
            mode: Mode::Idle,
            message: "opened".to_string(),
            effort: EffortMeter::default(),
            undo: Vec::new(),
            redo: Vec::new(),
        }
    }

    /// The checker in use.
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    fn snapshot(&mut self) {
        self.undo.push(self.doc.clone());
        if self.undo.len() > 64 {
            self.undo.remove(0);
        }
        self.redo.clear();
    }

    /// Undo the last edit.
    pub fn undo(&mut self) -> bool {
        match self.undo.pop() {
            Some(prev) => {
                self.redo.push(std::mem::replace(&mut self.doc, prev));
                self.ensure_current();
                self.message = "undone".into();
                true
            }
            None => {
                self.message = "nothing to undo".into();
                false
            }
        }
    }

    /// Redo the last undone edit.
    pub fn redo(&mut self) -> bool {
        match self.redo.pop() {
            Some(next) => {
                self.undo.push(std::mem::replace(&mut self.doc, next));
                self.ensure_current();
                self.message = "redone".into();
                true
            }
            None => {
                self.message = "nothing to redo".into();
                false
            }
        }
    }

    fn ensure_current(&mut self) {
        if self.doc.pipeline(self.current).is_none() {
            self.current = self
                .doc
                .pipelines()
                .first()
                .map(|p| p.id)
                .unwrap_or_else(|| self.doc.add_pipeline("pipeline 1"));
        }
    }

    // ------------------------------------------------------------------
    // programmatic command API (also used by the event handlers)
    // ------------------------------------------------------------------

    /// Place a new icon at a drawing-area position.
    pub fn place_icon(&mut self, kind: IconKind, at: Point) -> IconId {
        self.snapshot();
        let pid = self.current;
        let p = self.doc.pipeline_mut(pid).expect("current pipeline");
        let id = p.add_icon(kind);
        self.doc.layout_mut(pid).expect("layout").place(id, at);
        self.after_edit(&format!("placed {} at {at}", kind.palette_label()));
        id
    }

    /// Move an icon.
    pub fn move_icon(&mut self, icon: IconId, to: Point) {
        self.snapshot();
        let pid = self.current;
        self.doc.layout_mut(pid).expect("layout").place(icon, to);
        self.after_edit(&format!("moved {icon}"));
    }

    /// Wire two pads, consulting the checker first; a refused wire leaves
    /// the document untouched and the reason in the message strip.
    pub fn connect(&mut self, from: PadLoc, to: PadLoc) -> Option<ConnId> {
        let pid = self.current;
        let diagram = self.doc.pipeline(pid).expect("current pipeline");
        let diags = self.checker.validate_connection(diagram, from, to);
        if let Some(err) = diags.first() {
            self.message = format!("refused: {err}");
            return None;
        }
        self.snapshot();
        let conn = self
            .doc
            .pipeline_mut(pid)
            .expect("pipeline")
            .connect(from, to, None)
            .expect("validated connection");
        self.after_edit(&format!("connected {from} -> {to}"));
        Some(conn)
    }

    /// Legal destinations for a wire from `from` (the Figure 8 menu).
    pub fn legal_targets(&self, from: PadLoc) -> Vec<PadLoc> {
        let diagram = self.doc.pipeline(self.current).expect("pipeline");
        self.checker.legal_targets(diagram, from)
    }

    /// Program a functional unit (the Figure 10 action).
    pub fn assign_fu(&mut self, icon: IconId, pos: u8, assign: FuAssign) -> bool {
        // Capability check through the checker's knowledge base.
        let diagram = self.doc.pipeline(self.current).expect("pipeline");
        let Some(ic) = diagram.icon(icon) else {
            self.message = format!("no icon {icon}");
            return false;
        };
        if let IconKind::Als { kind, .. } = ic.kind {
            let caps = kind.unit_caps(pos as usize);
            if !caps.supports(assign.op) {
                self.message = format!(
                    "refused: {} needs {:?} circuitry (unit has {caps})",
                    assign.op.mnemonic(),
                    assign.op.class()
                );
                return false;
            }
        }
        self.snapshot();
        match self.doc.pipeline_mut(self.current).expect("pipeline").assign_fu(icon, pos, assign) {
            Ok(()) => {
                self.after_edit(&format!("programmed {icon}.u{pos}: {}", assign.op.mnemonic()));
                true
            }
            Err(e) => {
                self.undo.pop();
                self.message = format!("refused: {e}");
                false
            }
        }
    }

    /// Set shift/delay tap delays.
    pub fn set_sdu_taps(&mut self, icon: IconId, delays: Vec<u16>) -> bool {
        self.snapshot();
        match self.doc.pipeline_mut(self.current).expect("pipeline").set_sdu_taps(icon, delays) {
            Ok(()) => {
                self.after_edit(&format!("programmed taps of {icon}"));
                true
            }
            Err(e) => {
                self.undo.pop();
                self.message = format!("refused: {e}");
                false
            }
        }
    }

    /// Attach DMA attributes to a connection (the Figure 9 sub-window's
    /// effect).
    pub fn set_dma(&mut self, conn: ConnId, attrs: DmaAttrs) -> bool {
        self.snapshot();
        match self.doc.pipeline_mut(self.current).expect("pipeline").connection_mut(conn) {
            Some(c) => {
                c.dma = Some(attrs);
                self.after_edit(&format!("DMA parameters set on {conn}"));
                true
            }
            None => {
                self.undo.pop();
                self.message = format!("no connection {conn}");
                false
            }
        }
    }

    /// Set the stream length of the current pipeline.
    pub fn set_stream_len(&mut self, len: u64) {
        self.snapshot();
        self.doc.pipeline_mut(self.current).expect("pipeline").stream_len = len;
        self.after_edit(&format!("stream length {len}"));
    }

    /// Run the incremental check and surface the verdict (CHECK button).
    pub fn check_now(&mut self) -> Vec<nsc_checker::Diagnostic> {
        let diagram = self.doc.pipeline(self.current).expect("pipeline");
        let diags = self.checker.check_pipeline(diagram, Stage::Incremental);
        let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
        let warnings = diags.len() - errors;
        self.message = match diags.first() {
            None => "check: clean".to_string(),
            Some(first) => format!("check: {errors} error(s), {warnings} warning(s) — {first}"),
        };
        diags
    }

    /// Serialize the document (SAVE button): full JSON plus the semantic
    /// pseudo-code view's JSON.
    pub fn save(&self) -> (String, String) {
        (self.doc.to_json(), self.doc.semantic_json())
    }

    fn after_edit(&mut self, what: &str) {
        // "Any errors are flagged as soon as they are detected."
        let diagram = self.doc.pipeline(self.current).expect("pipeline");
        let diags = self.checker.check_pipeline(diagram, Stage::Incremental);
        let first_err = diags.iter().find(|d| d.severity == Severity::Error);
        self.message = match first_err {
            Some(e) => format!("{what}; {e}"),
            None => what.to_string(),
        };
    }

    // ------------------------------------------------------------------
    // hit testing
    // ------------------------------------------------------------------

    fn hit(&self, x: i32, y: i32) -> Hit {
        let pid = self.current;
        let Some(diagram) = self.doc.pipeline(pid) else { return Hit::Empty };
        let Some(layout) = self.doc.layout(pid) else { return Hit::Empty };
        for icon in diagram.icons() {
            let Some(pos) = layout.position(icon.id) else { continue };
            let m = geometry::metrics(&icon.kind);
            // Pads first (exact cells).
            for (pad, off) in geometry::pads_with_offsets(&icon.kind) {
                if pos.x + off.x == x && pos.y + off.y == y {
                    return Hit::Pad(PadLoc::new(icon.id, pad));
                }
            }
            // Then unit boxes and icon bodies.
            if x >= pos.x && x < pos.x + m.w && y >= pos.y && y < pos.y + m.h {
                if let IconKind::Als { kind, mode, .. } = icon.kind {
                    for p in geometry::active_positions(kind, mode) {
                        if let Some(off) =
                            geometry::pad_offset(&icon.kind, PadRef::FuOut { pos: p })
                        {
                            let row0 = pos.y + off.y - 1;
                            if y >= row0 && y < row0 + 3 {
                                return Hit::Unit(icon.id, p);
                            }
                        }
                    }
                }
                return Hit::Icon(icon.id);
            }
        }
        Hit::Empty
    }

    // ------------------------------------------------------------------
    // the event loop
    // ------------------------------------------------------------------

    /// Feed one input event through the mode machine.
    pub fn handle(&mut self, ev: Event) {
        match ev {
            Event::MouseDown { x, y } => {
                self.effort.mouse_actions += 1;
                self.mouse_down(x, y);
            }
            Event::MouseMove { x, y } => self.mouse_move(x, y),
            Event::MouseUp { x, y } => {
                self.effort.mouse_actions += 1;
                self.mouse_up(x, y);
            }
            Event::MenuPick(i) => {
                self.effort.menu_picks += 1;
                self.menu_pick(i);
            }
            Event::MenuCancel => {
                self.mode = Mode::Idle;
                self.message = "cancelled".into();
            }
            Event::Text(s) => {
                if let Mode::DmaForm { fields, active, .. } = &mut self.mode {
                    self.effort.text_chars += s.chars().count() as u32;
                    fields[*active].push_str(&s);
                }
            }
            Event::NextField => {
                if let Mode::DmaForm { active, .. } = &mut self.mode {
                    *active = (*active + 1) % 5;
                }
            }
            Event::SubmitForm => self.submit_form(),
        }
    }

    fn mouse_down(&mut self, x: i32, y: i32) {
        match region_at(x, y) {
            Region::ControlPanel => {
                let row = (y - DRAW_Y0 - 1) / 2;
                let n_palette = PaletteEntry::ALL.len() as i32;
                if (0..n_palette).contains(&row) {
                    let entry = PaletteEntry::ALL[row as usize];
                    self.mode = Mode::DraggingNew { entry, at: Point::new(x, y) };
                    self.message = format!("drag {} into the drawing area", entry.label());
                } else if ((n_palette)..(n_palette + Button::ALL.len() as i32)).contains(&row) {
                    self.effort.button_presses += 1;
                    self.press(Button::ALL[(row - n_palette) as usize]);
                }
            }
            Region::Drawing => match self.hit(x, y) {
                Hit::Pad(pad) if pad.pad.can_source() => {
                    // Paper Figure 8: mousing on a pad pops the menu of
                    // available (legal) choices; dragging rubber-bands.
                    let targets = self.legal_targets(pad);
                    self.message = format!("{} legal target(s) for {pad}", targets.len());
                    self.mode = Mode::RubberBand { from: pad, to: Point::new(x, y) };
                    let _ = targets;
                }
                Hit::Pad(pad) => {
                    self.message = format!("{pad} accepts incoming wires only");
                }
                Hit::Unit(icon, pos) => {
                    // Figure 10: the operation menu, capability-filtered.
                    let diagram = self.doc.pipeline(self.current).expect("pipeline");
                    let ops = match diagram.icon(icon).map(|i| i.kind) {
                        Some(IconKind::Als { kind, .. }) => {
                            kind.unit_caps(pos as usize).legal_ops()
                        }
                        _ => Vec::new(),
                    };
                    self.message = format!("select operation for {icon}.u{pos}");
                    self.mode = Mode::OpMenu { icon, pos, ops };
                }
                Hit::Icon(icon) => {
                    let layout = self.doc.layout(self.current).expect("layout");
                    let pos = layout.position(icon).unwrap_or_default();
                    self.mode = Mode::DraggingIcon { icon, grab: Point::new(x - pos.x, y - pos.y) };
                }
                Hit::Empty => {}
            },
            _ => {}
        }
    }

    fn mouse_move(&mut self, x: i32, y: i32) {
        match &mut self.mode {
            Mode::DraggingNew { at, .. } => *at = Point::new(x, y),
            Mode::RubberBand { to, .. } => *to = Point::new(x, y),
            Mode::DraggingIcon { icon, grab } => {
                let (icon, grab) = (*icon, *grab);
                let pid = self.current;
                self.doc
                    .layout_mut(pid)
                    .expect("layout")
                    .place(icon, Point::new(x - grab.x, y - grab.y));
            }
            _ => {}
        }
    }

    fn mouse_up(&mut self, x: i32, y: i32) {
        match std::mem::replace(&mut self.mode, Mode::Idle) {
            Mode::DraggingNew { entry, .. } => {
                if region_at(x, y) == Region::Drawing {
                    self.place_icon(entry.kind(), Point::new(x, y));
                } else {
                    self.message = "drop cancelled (outside drawing area)".into();
                }
            }
            Mode::DraggingIcon { icon, .. } => {
                self.message = format!("moved {icon}");
            }
            Mode::RubberBand { from, .. } => {
                match self.hit(x, y) {
                    Hit::Pad(to) if to != from => {
                        if let Some(conn) = self.connect(from, to) {
                            self.maybe_open_dma_form(conn);
                        }
                    }
                    _ => {
                        // Released on empty space: offer the menu instead
                        // (the paper's primary flow).
                        let targets = self.legal_targets(from);
                        if targets.is_empty() {
                            self.message = format!("no legal destinations for {from}");
                        } else {
                            self.mode = Mode::ConnMenu { from, targets };
                        }
                    }
                }
            }
            other => self.mode = other,
        }
    }

    fn menu_pick(&mut self, i: usize) {
        match std::mem::replace(&mut self.mode, Mode::Idle) {
            Mode::ConnMenu { from, targets } => {
                if let Some(&to) = targets.get(i) {
                    if let Some(conn) = self.connect(from, to) {
                        self.maybe_open_dma_form(conn);
                    }
                } else {
                    self.message = "no such menu entry".into();
                }
            }
            Mode::OpMenu { icon, pos, ops } => {
                if let Some(&op) = ops.get(i) {
                    let assign =
                        if op.arity() == 1 { FuAssign::unary(op) } else { FuAssign::binary(op) };
                    self.assign_fu(icon, pos, assign);
                } else {
                    self.message = "no such menu entry".into();
                }
            }
            other => self.mode = other,
        }
    }

    /// After wiring to/from storage, pop the Figure 9 sub-window.
    fn maybe_open_dma_form(&mut self, conn: ConnId) {
        let diagram = self.doc.pipeline(self.current).expect("pipeline");
        let Some(c) = diagram.connection(conn) else { return };
        let touches_storage = [c.from.icon, c.to.icon].iter().any(|&i| {
            matches!(
                diagram.icon(i).map(|ic| ic.kind),
                Some(IconKind::Memory { .. }) | Some(IconKind::Cache { .. })
            )
        });
        if touches_storage {
            self.mode = Mode::DmaForm { conn, fields: Default::default(), active: 0 };
            self.message = "DMA sub-window: plane/cache, variable, offset, stride, count".into();
        }
    }

    fn submit_form(&mut self) {
        if let Mode::DmaForm { conn, fields, .. } = std::mem::replace(&mut self.mode, Mode::Idle) {
            // Fields: number, variable, offset, stride, count.
            let number: Option<u8> = fields[0].trim().parse().ok();
            let variable = (!fields[1].trim().is_empty()).then(|| fields[1].trim().to_string());
            let offset: u64 = fields[2].trim().parse().unwrap_or(0);
            let stride: i64 = fields[3].trim().parse().unwrap_or(1);
            let count: Option<u64> = fields[4].trim().parse().ok();
            let mut attrs = DmaAttrs {
                variable,
                offset,
                stride,
                count,
                mode: nsc_diagram::CaptureMode::Stream,
            };
            if attrs.stride == 0 {
                attrs.stride = 1;
            }
            // Bind the storage icon if a number was given.
            if let Some(nr) = number {
                let pid = self.current;
                let diagram = self.doc.pipeline_mut(pid).expect("pipeline");
                let endpoints = diagram
                    .connection(conn)
                    .map(|c| [c.from.icon, c.to.icon])
                    .unwrap_or([IconId(u32::MAX); 2]);
                for id in endpoints {
                    if let Some(icon) = diagram.icon_mut(id) {
                        match &mut icon.kind {
                            IconKind::Memory { plane } if plane.is_none() => {
                                *plane = Some(nsc_arch::PlaneId(nr));
                            }
                            IconKind::Cache { cache } if cache.is_none() => {
                                *cache = Some(nsc_arch::CacheId(nr));
                            }
                            _ => {}
                        }
                    }
                }
            }
            self.set_dma(conn, attrs);
        }
    }

    fn press(&mut self, b: Button) {
        match b {
            Button::InsertPipe => {
                self.snapshot();
                let at = self.doc.ordinal_of(self.current).map(|o| o + 1).unwrap_or(0);
                let n = self.doc.pipeline_count() + 1;
                self.current = self.doc.insert_pipeline(at, format!("pipeline {n}"));
                self.message = format!("inserted pipeline at {at}");
            }
            Button::DeletePipe => {
                self.snapshot();
                self.doc.delete_pipeline(self.current);
                self.ensure_current();
                self.message = "deleted pipeline".into();
            }
            Button::CopyPipe => {
                self.snapshot();
                if let Some(id) = self.doc.copy_pipeline(self.current) {
                    self.current = id;
                    self.message = "copied pipeline".into();
                }
            }
            Button::Renumber => {
                self.snapshot();
                if let Some(ord) = self.doc.ordinal_of(self.current) {
                    if ord > 0 && self.doc.renumber(ord, ord - 1) {
                        self.message = format!("pipeline moved to slot {}", ord - 1);
                    } else {
                        self.message = "already first".into();
                    }
                }
            }
            Button::Next | Button::Prev => {
                let ord = self.doc.ordinal_of(self.current).unwrap_or(0);
                let n = self.doc.pipeline_count();
                let next = if b == Button::Next {
                    (ord + 1).min(n.saturating_sub(1))
                } else {
                    ord.saturating_sub(1)
                };
                if let Some(p) = self.doc.by_ordinal(next) {
                    self.current = p.id;
                    self.message = format!("viewing pipeline {next}: {}", p.name);
                }
            }
            Button::Check => {
                self.check_now();
            }
            Button::Save => {
                let (_full, _semantic) = self.save();
                self.message = "saved (JSON + semantic data structures)".into();
            }
            Button::Undo => {
                self.undo();
            }
            Button::Redo => {
                self.redo();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{MSG_H, WIN_W};
    use nsc_arch::{AlsKind, InPort, PlaneId};

    fn editor() -> Editor {
        Editor::new(Checker::nsc_1988(), "test")
    }

    fn place(ed: &mut Editor, kind: IconKind, at: Point) -> IconId {
        ed.place_icon(kind, at)
    }

    #[test]
    fn palette_drag_places_an_icon() {
        let mut ed = editor();
        // Palette row 3 = TRIPLET; rows start at DRAW_Y0+1, two cells each.
        let py = MSG_H + 1 + 2 * 3;
        ed.handle(Event::MouseDown { x: WIN_W - 8, y: py });
        assert!(matches!(ed.mode, Mode::DraggingNew { entry: PaletteEntry::Triplet, .. }));
        ed.handle(Event::MouseMove { x: 40, y: 10 });
        ed.handle(Event::MouseUp { x: 40, y: 10 });
        assert_eq!(ed.mode, Mode::Idle);
        let d = ed.doc.pipeline(ed.current).unwrap();
        assert_eq!(d.icon_count(), 1);
        let icon = d.icons().next().unwrap();
        assert!(matches!(icon.kind, IconKind::Als { kind: AlsKind::Triplet, .. }));
        assert_eq!(ed.doc.layout(ed.current).unwrap().position(icon.id), Some(Point::new(40, 10)));
        assert_eq!(ed.effort.mouse_actions, 2);
    }

    #[test]
    fn dropping_outside_the_drawing_area_cancels() {
        let mut ed = editor();
        let py = MSG_H + 1;
        ed.handle(Event::MouseDown { x: WIN_W - 8, y: py });
        ed.handle(Event::MouseUp { x: 2, y: 10 }); // left region
        assert_eq!(ed.doc.pipeline(ed.current).unwrap().icon_count(), 0);
        assert!(ed.message.contains("cancelled"));
    }

    #[test]
    fn rubber_band_connects_pads() {
        let mut ed = editor();
        let mem = place(&mut ed, IconKind::Memory { plane: Some(PlaneId(0)) }, Point::new(22, 6));
        let als = place(&mut ed, IconKind::als(AlsKind::Singlet), Point::new(45, 6));
        // Memory Io pad at (22, 7); singlet inA pad at (45, 6).
        ed.handle(Event::MouseDown { x: 22, y: 7 });
        assert!(matches!(ed.mode, Mode::RubberBand { .. }));
        ed.handle(Event::MouseMove { x: 30, y: 6 });
        ed.handle(Event::MouseUp { x: 45, y: 6 });
        // Wire exists; the DMA sub-window popped (storage endpoint).
        let d = ed.doc.pipeline(ed.current).unwrap();
        assert_eq!(d.connection_count(), 1);
        let c = d.connections().next().unwrap();
        assert_eq!(c.from, PadLoc::new(mem, PadRef::Io));
        assert_eq!(c.to, PadLoc::new(als, PadRef::FuIn { pos: 0, port: InPort::A }));
        assert!(matches!(ed.mode, Mode::DmaForm { .. }));
    }

    #[test]
    fn dma_form_fills_attributes_and_binds_the_plane() {
        let mut ed = editor();
        let mem = place(&mut ed, IconKind::memory(), Point::new(22, 6));
        let _als = place(&mut ed, IconKind::als(AlsKind::Singlet), Point::new(45, 6));
        ed.handle(Event::MouseDown { x: 22, y: 7 });
        ed.handle(Event::MouseUp { x: 45, y: 6 });
        assert!(matches!(ed.mode, Mode::DmaForm { .. }));
        // Figure 9: plane 3, offset 10000, stride 1.
        ed.handle(Event::Text("3".into()));
        ed.handle(Event::NextField);
        ed.handle(Event::NextField); // skip variable
        ed.handle(Event::Text("10000".into()));
        ed.handle(Event::NextField);
        ed.handle(Event::Text("1".into()));
        ed.handle(Event::SubmitForm);
        let d = ed.doc.pipeline(ed.current).unwrap();
        let c = d.connections().next().unwrap();
        let attrs = c.dma.as_ref().expect("attrs set");
        assert_eq!(attrs.offset, 10000);
        assert_eq!(attrs.stride, 1);
        assert_eq!(d.icon(mem).unwrap().kind, IconKind::Memory { plane: Some(PlaneId(3)) });
        assert!(ed.effort.text_chars >= 7);
    }

    #[test]
    fn illegal_wires_are_refused_with_a_message() {
        let mut ed = editor();
        let m0 = place(&mut ed, IconKind::Memory { plane: Some(PlaneId(0)) }, Point::new(22, 4));
        let m1 = place(&mut ed, IconKind::Memory { plane: Some(PlaneId(1)) }, Point::new(22, 12));
        // storage -> storage is not routable
        let got = ed.connect(PadLoc::new(m0, PadRef::Io), PadLoc::new(m1, PadRef::Io));
        assert!(got.is_none());
        assert!(ed.message.contains("refused"), "{}", ed.message);
        assert_eq!(ed.doc.pipeline(ed.current).unwrap().connection_count(), 0);
    }

    #[test]
    fn op_menu_is_capability_filtered_and_assigns() {
        let mut ed = editor();
        let als = place(&mut ed, IconKind::als(AlsKind::Triplet), Point::new(30, 5));
        // Click unit 1's box interior (middle unit, plain float): unit rows
        // start at y=5 + 4*slot; the box row for pos 1 is 5+4=9..12; click
        // inside at (33, 10).
        ed.handle(Event::MouseDown { x: 33, y: 10 });
        let ops = match &ed.mode {
            Mode::OpMenu { pos: 1, ops, .. } => ops.clone(),
            other => panic!("expected op menu, got {other:?}"),
        };
        assert!(ops.contains(&FuOp::Add));
        assert!(!ops.contains(&FuOp::IAdd), "middle unit has no integer circuitry");
        assert!(!ops.contains(&FuOp::Max), "nor min/max");
        // Pick ADD.
        let add_idx = ops.iter().position(|&o| o == FuOp::Add).unwrap();
        ed.handle(Event::MenuPick(add_idx));
        let d = ed.doc.pipeline(ed.current).unwrap();
        assert_eq!(d.fu_assign(als, 1).unwrap().op, FuOp::Add);
        assert_eq!(ed.effort.menu_picks, 1);
    }

    #[test]
    fn direct_capability_violations_are_refused() {
        let mut ed = editor();
        let als = place(&mut ed, IconKind::als(AlsKind::Triplet), Point::new(30, 5));
        assert!(!ed.assign_fu(als, 1, FuAssign::binary(FuOp::Max)));
        assert!(ed.message.contains("refused"));
        assert!(ed.assign_fu(als, 2, FuAssign::binary(FuOp::Max)), "tail unit has min/max");
    }

    #[test]
    fn undo_redo_round_trip() {
        let mut ed = editor();
        let _ = place(&mut ed, IconKind::memory(), Point::new(25, 5));
        assert_eq!(ed.doc.pipeline(ed.current).unwrap().icon_count(), 1);
        assert!(ed.undo());
        assert_eq!(ed.doc.pipeline(ed.current).unwrap().icon_count(), 0);
        assert!(ed.redo());
        assert_eq!(ed.doc.pipeline(ed.current).unwrap().icon_count(), 1);
        assert!(!ed.redo(), "redo stack exhausted");
    }

    #[test]
    fn pipeline_buttons_work() {
        let mut ed = editor();
        let first = ed.current;
        ed.press(Button::InsertPipe);
        assert_eq!(ed.doc.pipeline_count(), 2);
        assert_ne!(ed.current, first);
        ed.press(Button::Prev);
        assert_eq!(ed.current, first);
        ed.press(Button::Next);
        assert_ne!(ed.current, first);
        ed.press(Button::CopyPipe);
        assert_eq!(ed.doc.pipeline_count(), 3);
        ed.press(Button::DeletePipe);
        assert_eq!(ed.doc.pipeline_count(), 2);
    }

    #[test]
    fn check_button_reports_problems() {
        let mut ed = editor();
        let als = place(&mut ed, IconKind::als(AlsKind::Singlet), Point::new(30, 5));
        ed.assign_fu(als, 0, FuAssign::binary(FuOp::Add));
        let diags = ed.check_now();
        assert!(!diags.is_empty(), "unbound icon + missing wires warn");
        assert!(ed.message.contains("check:"));
    }

    #[test]
    fn message_strip_flags_errors_as_soon_as_detected() {
        let mut ed = editor();
        // Bind two triplet icons to the same physical ALS.
        let k = IconKind::Als {
            kind: AlsKind::Triplet,
            mode: nsc_arch::DoubletMode::Full,
            als: Some(nsc_arch::AlsId(0)),
        };
        place(&mut ed, k, Point::new(22, 4));
        place(&mut ed, k, Point::new(40, 4));
        assert!(ed.message.contains("C002"), "duplicate binding flagged: {}", ed.message);
    }
}
