//! Window layout and icon geometry (paper Figures 4 and 5).
//!
//! "Figure 5 shows the basic display window used. The right hand side is a
//! 'control panel' area used to select icons and specify various editor
//! operations. The large area in the center is the drawing space in which
//! pipeline diagrams are constructed. Informational and error messages are
//! displayed in the narrow strip across the top. The region at the left is
//! reserved for control flow specifications and variable declarations."
//!
//! The prototype drew in Sun pixels; this core draws in character cells.

use nsc_arch::{AlsKind, DoubletMode, InPort};
use nsc_diagram::{IconKind, PadRef, Point};

/// Window width in cells.
pub const WIN_W: i32 = 104;
/// Window height in cells.
pub const WIN_H: i32 = 40;
/// Message strip rows `0..MSG_H`.
pub const MSG_H: i32 = 2;
/// Left (declarations / control flow) region width.
pub const LEFT_W: i32 = 18;
/// Control panel width on the right.
pub const PANEL_W: i32 = 16;
/// Drawing area origin.
pub const DRAW_X0: i32 = LEFT_W;
/// Drawing area top row.
pub const DRAW_Y0: i32 = MSG_H;
/// Drawing area width.
pub const DRAW_W: i32 = WIN_W - LEFT_W - PANEL_W;
/// Drawing area height.
pub const DRAW_H: i32 = WIN_H - MSG_H;

/// The five window regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Top message strip.
    MessageStrip,
    /// Left declarations / control-flow region.
    ControlFlow,
    /// Central drawing area.
    Drawing,
    /// Right control panel.
    ControlPanel,
}

/// Which region a point falls in.
pub fn region_at(x: i32, y: i32) -> Region {
    if y < MSG_H {
        Region::MessageStrip
    } else if x < LEFT_W {
        Region::ControlFlow
    } else if x >= WIN_W - PANEL_W {
        Region::ControlPanel
    } else {
        Region::Drawing
    }
}

/// Static window layout queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowLayout;

impl WindowLayout {
    /// Top-left of the `i`-th control-panel row (palette entries first,
    /// then buttons).
    pub fn panel_row(i: usize) -> Point {
        Point::new(WIN_W - PANEL_W + 1, MSG_H + 1 + 2 * i as i32)
    }
}

/// Pixel-level metrics of one icon kind.
#[derive(Debug, Clone, Copy)]
pub struct IconMetrics {
    /// Bounding-box width.
    pub w: i32,
    /// Bounding-box height.
    pub h: i32,
}

/// Height of one drawn functional-unit box.
const UNIT_H: i32 = 3;
/// Vertical gap between unit boxes in one ALS icon.
const UNIT_GAP: i32 = 1;
/// Width of icon boxes.
const ICON_W: i32 = 11;

/// Metrics of an icon kind.
pub fn metrics(kind: &IconKind) -> IconMetrics {
    match kind {
        IconKind::Als { kind, mode, .. } => {
            let units = active_positions(*kind, *mode).len() as i32;
            IconMetrics { w: ICON_W, h: units * UNIT_H + (units - 1) * UNIT_GAP }
        }
        IconKind::Memory { .. } | IconKind::Cache { .. } => IconMetrics { w: ICON_W, h: 3 },
        IconKind::Sdu { .. } => IconMetrics { w: ICON_W, h: 3 + 4 },
    }
}

/// Active chain positions (drawing order) of an ALS icon.
pub fn active_positions(kind: AlsKind, mode: DoubletMode) -> Vec<u8> {
    match kind {
        AlsKind::Doublet => mode.active_positions().iter().map(|&p| p as u8).collect(),
        k => (0..k.unit_count() as u8).collect(),
    }
}

/// Cell position of a pad relative to the icon's top-left corner.
///
/// ALS units stack vertically; each unit's `a` input pad sits at its top
/// left, `b` at its bottom left, the output at its right centre. Memory,
/// cache and SDU pads follow Figure 2's conventions.
pub fn pad_offset(kind: &IconKind, pad: PadRef) -> Option<Point> {
    match (kind, pad) {
        (IconKind::Als { kind, mode, .. }, PadRef::FuIn { pos, port }) => {
            let row = draw_row(*kind, *mode, pos)?;
            let dy = match port {
                InPort::A => 0,
                InPort::B => UNIT_H - 1,
            };
            Some(Point::new(0, row + dy))
        }
        (IconKind::Als { kind, mode, .. }, PadRef::FuOut { pos }) => {
            let row = draw_row(*kind, *mode, pos)?;
            Some(Point::new(ICON_W - 1, row + 1))
        }
        (IconKind::Memory { .. }, PadRef::Io) | (IconKind::Cache { .. }, PadRef::Io) => {
            Some(Point::new(0, 1))
        }
        (IconKind::Sdu { .. }, PadRef::SduIn) => Some(Point::new(0, 1)),
        (IconKind::Sdu { .. }, PadRef::SduTap { tap }) if tap < 4 => {
            Some(Point::new(ICON_W - 1, 1 + tap as i32))
        }
        _ => None,
    }
}

fn draw_row(kind: AlsKind, mode: DoubletMode, pos: u8) -> Option<i32> {
    let order = active_positions(kind, mode);
    let slot = order.iter().position(|&p| p == pos)? as i32;
    Some(slot * (UNIT_H + UNIT_GAP))
}

/// All pads of an icon with their offsets (for hit testing and drawing).
pub fn pads_with_offsets(kind: &IconKind) -> Vec<(PadRef, Point)> {
    kind.pads(4).into_iter().filter_map(|p| pad_offset(kind, p).map(|o| (p, o))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_match_figure_5() {
        assert_eq!(region_at(50, 0), Region::MessageStrip);
        assert_eq!(region_at(5, 10), Region::ControlFlow);
        assert_eq!(region_at(50, 10), Region::Drawing);
        assert_eq!(region_at(WIN_W - 5, 10), Region::ControlPanel);
    }

    #[test]
    fn triplet_metrics_stack_three_units() {
        let m = metrics(&IconKind::als(AlsKind::Triplet));
        assert_eq!(m.h, 3 * 3 + 2);
        let s = metrics(&IconKind::als(AlsKind::Singlet));
        assert_eq!(s.h, 3);
    }

    #[test]
    fn bypassed_doublet_draws_one_unit() {
        let k = IconKind::Als { kind: AlsKind::Doublet, mode: DoubletMode::BypassFirst, als: None };
        assert_eq!(metrics(&k).h, 3);
        // The single active unit (pos 1) draws at row 0.
        assert_eq!(
            pad_offset(&k, PadRef::FuIn { pos: 1, port: InPort::A }),
            Some(Point::new(0, 0))
        );
        assert_eq!(pad_offset(&k, PadRef::FuIn { pos: 0, port: InPort::A }), None);
    }

    #[test]
    fn pad_offsets_are_distinct_per_icon() {
        for kind in [
            IconKind::als(AlsKind::Triplet),
            IconKind::als(AlsKind::Doublet),
            IconKind::memory(),
            IconKind::sdu(),
        ] {
            let pads = pads_with_offsets(&kind);
            let set: std::collections::HashSet<_> = pads.iter().map(|(_, p)| (p.x, p.y)).collect();
            assert_eq!(set.len(), pads.len(), "overlapping pads on {kind:?}");
        }
    }

    #[test]
    fn output_pads_sit_on_the_right_edge() {
        let kind = IconKind::als(AlsKind::Triplet);
        for pos in 0..3u8 {
            let p = pad_offset(&kind, PadRef::FuOut { pos }).unwrap();
            assert_eq!(p.x, ICON_W - 1);
        }
        let sdu = IconKind::sdu();
        let p = pad_offset(&sdu, PadRef::SduTap { tap: 3 }).unwrap();
        assert_eq!(p.x, ICON_W - 1);
    }

    #[test]
    fn panel_rows_are_inside_the_panel() {
        for i in 0..12 {
            let p = WindowLayout::panel_row(i);
            assert_eq!(region_at(p.x, p.y.min(WIN_H - 1)), Region::ControlPanel);
        }
    }
}
