//! Memory planes and double-buffered caches.
//!
//! A plane is 16 Mi words (128 MB) in the published sizing; simulating 16
//! of them per node times 64 nodes eagerly would be 128 GB, so planes
//! allocate lazily in 64 Ki-word pages. Unwritten memory reads as zero
//! (the real machine's ECC-scrubbed initial state is unspecified; zero is
//! the conventional simulator choice).

use nsc_arch::{CacheId, CacheSpec, MachineConfig, MemorySpec, PlaneId};
use std::collections::HashMap;

const PAGE_WORDS: u64 = 65_536;

/// One lazily-paged memory plane.
#[derive(Debug, Clone, Default)]
pub struct MemoryPlane {
    words: u64,
    pages: HashMap<u64, Vec<f64>>,
}

impl MemoryPlane {
    /// A plane of the given capacity in words.
    pub fn new(words: u64) -> Self {
        MemoryPlane { words, pages: HashMap::new() }
    }

    /// Capacity in words.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Read one word (zero if never written).
    ///
    /// # Panics
    /// If `addr` is outside the plane.
    #[inline]
    pub fn read(&self, addr: u64) -> f64 {
        assert!(addr < self.words, "plane read at {addr} beyond {} words", self.words);
        match self.pages.get(&(addr / PAGE_WORDS)) {
            Some(page) => page[(addr % PAGE_WORDS) as usize],
            None => 0.0,
        }
    }

    /// Write one word.
    ///
    /// # Panics
    /// If `addr` is outside the plane.
    #[inline]
    pub fn write(&mut self, addr: u64, value: f64) {
        assert!(addr < self.words, "plane write at {addr} beyond {} words", self.words);
        let page =
            self.pages.entry(addr / PAGE_WORDS).or_insert_with(|| vec![0.0; PAGE_WORDS as usize]);
        page[(addr % PAGE_WORDS) as usize] = value;
    }

    /// Bulk store starting at `base`.
    pub fn write_slice(&mut self, base: u64, data: &[f64]) {
        for (i, &v) in data.iter().enumerate() {
            self.write(base + i as u64, v);
        }
    }

    /// Bulk load of `len` words starting at `base`.
    pub fn read_vec(&self, base: u64, len: u64) -> Vec<f64> {
        (0..len).map(|i| self.read(base + i)).collect()
    }

    /// Bulk strided load: append `count` words starting at `base` to
    /// `out`. Unit-stride transfers copy page-at-a-time; other strides
    /// fall back to per-word reads. Matches [`MemoryPlane::read`] exactly,
    /// including reading unwritten words as zero.
    ///
    /// # Panics
    /// If any addressed word is outside the plane.
    pub fn read_strided_into(&self, base: i64, stride: i64, count: usize, out: &mut Vec<f64>) {
        out.reserve(count);
        if stride == 1 && base >= 0 && count > 0 {
            let end = base as u64 + count as u64;
            assert!(end <= self.words, "plane read at {} beyond {} words", end - 1, self.words);
            let mut addr = base as u64;
            let mut left = count;
            while left > 0 {
                let off = (addr % PAGE_WORDS) as usize;
                let n = (PAGE_WORDS as usize - off).min(left);
                match self.pages.get(&(addr / PAGE_WORDS)) {
                    Some(page) => out.extend_from_slice(&page[off..off + n]),
                    None => out.resize(out.len() + n, 0.0),
                }
                addr += n as u64;
                left -= n;
            }
        } else {
            for k in 0..count {
                out.push(self.read((base + k as i64 * stride) as u64));
            }
        }
    }

    /// Bulk strided store of `vals` starting at `base`. Unit-stride
    /// transfers copy page-at-a-time; other strides fall back to per-word
    /// writes (stride 0 stores sequentially, so the last value wins, as a
    /// word-at-a-time DMA would behave).
    ///
    /// # Panics
    /// If any addressed word is outside the plane.
    pub fn write_strided(&mut self, base: i64, stride: i64, vals: &[f64]) {
        if stride == 1 && base >= 0 && !vals.is_empty() {
            let end = base as u64 + vals.len() as u64;
            assert!(end <= self.words, "plane write at {} beyond {} words", end - 1, self.words);
            let mut addr = base as u64;
            let mut rest = vals;
            while !rest.is_empty() {
                let page = self
                    .pages
                    .entry(addr / PAGE_WORDS)
                    .or_insert_with(|| vec![0.0; PAGE_WORDS as usize]);
                let off = (addr % PAGE_WORDS) as usize;
                let n = (PAGE_WORDS as usize - off).min(rest.len());
                page[off..off + n].copy_from_slice(&rest[..n]);
                addr += n as u64;
                rest = &rest[n..];
            }
        } else {
            for (k, &v) in vals.iter().enumerate() {
                self.write((base + k as i64 * stride) as u64, v);
            }
        }
    }

    /// Pages currently resident (for memory-footprint assertions).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

/// One double-buffered data cache.
#[derive(Debug, Clone)]
pub struct DataCache {
    buffers: [Vec<f64>; 2],
}

impl DataCache {
    /// A cache with two buffers of `words_per_buffer` words.
    pub fn new(words_per_buffer: u64) -> Self {
        DataCache {
            buffers: [vec![0.0; words_per_buffer as usize], vec![0.0; words_per_buffer as usize]],
        }
    }

    /// Words per buffer.
    pub fn buffer_words(&self) -> usize {
        self.buffers[0].len()
    }

    /// Read from one buffer.
    #[inline]
    pub fn read(&self, buffer: u8, offset: u64) -> f64 {
        self.buffers[buffer as usize & 1][offset as usize]
    }

    /// Write into one buffer.
    #[inline]
    pub fn write(&mut self, buffer: u8, offset: u64, value: f64) {
        self.buffers[buffer as usize & 1][offset as usize] = value;
    }

    /// Swap the two buffers (the double-buffer flip).
    pub fn swap(&mut self) {
        self.buffers.swap(0, 1);
    }
}

/// All storage of one node.
#[derive(Debug, Clone)]
pub struct NodeMemory {
    /// The memory planes.
    pub planes: Vec<MemoryPlane>,
    /// The data caches.
    pub caches: Vec<DataCache>,
}

impl NodeMemory {
    /// Storage sized for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        Self::from_specs(&cfg.memory, &cfg.cache)
    }

    /// Storage from raw specs.
    pub fn from_specs(mem: &MemorySpec, cache: &CacheSpec) -> Self {
        NodeMemory {
            planes: (0..mem.planes).map(|_| MemoryPlane::new(mem.words_per_plane)).collect(),
            caches: (0..cache.caches).map(|_| DataCache::new(cache.words_per_buffer)).collect(),
        }
    }

    /// A plane by id.
    pub fn plane(&self, p: PlaneId) -> &MemoryPlane {
        &self.planes[p.index()]
    }

    /// A mutable plane by id.
    pub fn plane_mut(&mut self, p: PlaneId) -> &mut MemoryPlane {
        &mut self.planes[p.index()]
    }

    /// A cache by id.
    pub fn cache(&self, c: CacheId) -> &DataCache {
        &self.caches[c.index()]
    }

    /// A mutable cache by id.
    pub fn cache_mut(&mut self, c: CacheId) -> &mut DataCache {
        &mut self.caches[c.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planes_read_zero_until_written() {
        let mut p = MemoryPlane::new(1 << 24);
        assert_eq!(p.read(12345), 0.0);
        p.write(12345, 3.5);
        assert_eq!(p.read(12345), 3.5);
        assert_eq!(p.read(12346), 0.0);
    }

    #[test]
    fn planes_allocate_lazily() {
        let mut p = MemoryPlane::new(16 * 1024 * 1024);
        assert_eq!(p.resident_pages(), 0);
        p.write(0, 1.0);
        p.write(15 * 1024 * 1024, 2.0);
        assert_eq!(p.resident_pages(), 2, "two touched pages, not 16M words");
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn plane_bounds_are_enforced() {
        MemoryPlane::new(100).read(100);
    }

    #[test]
    fn bulk_round_trip() {
        let mut p = MemoryPlane::new(1 << 20);
        let data: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        // Crossing a page boundary on purpose.
        p.write_slice(PAGE_WORDS - 500, &data);
        assert_eq!(p.read_vec(PAGE_WORDS - 500, 1000), data);
    }

    #[test]
    fn strided_helpers_match_per_word_access() {
        let mut p = MemoryPlane::new(1 << 20);
        // Unit stride across a page boundary, including unwritten words.
        let data: Vec<f64> = (0..2000).map(|i| i as f64 * 0.25).collect();
        p.write_strided(PAGE_WORDS as i64 - 1000, 1, &data);
        let mut out = Vec::new();
        p.read_strided_into(PAGE_WORDS as i64 - 1200, 1, 2400, &mut out);
        for (k, &v) in out.iter().enumerate() {
            assert_eq!(v, p.read((PAGE_WORDS - 1200) + k as u64));
        }
        // Negative and zero strides take the per-word path.
        p.write_strided(100, -2, &[1.0, 2.0, 3.0]);
        assert_eq!((p.read(100), p.read(98), p.read(96)), (1.0, 2.0, 3.0));
        p.write_strided(7, 0, &[4.0, 5.0]);
        assert_eq!(p.read(7), 5.0, "stride 0: last value wins");
        let mut rev = Vec::new();
        p.read_strided_into(100, -2, 3, &mut rev);
        assert_eq!(rev, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn cache_double_buffering() {
        let mut c = DataCache::new(64);
        c.write(0, 3, 1.0);
        c.write(1, 3, 2.0);
        assert_eq!(c.read(0, 3), 1.0);
        assert_eq!(c.read(1, 3), 2.0);
        c.swap();
        assert_eq!(c.read(0, 3), 2.0);
        assert_eq!(c.read(1, 3), 1.0);
    }

    #[test]
    fn node_memory_matches_config() {
        let cfg = MachineConfig::test_small();
        let m = NodeMemory::new(&cfg);
        assert_eq!(m.planes.len(), 4);
        assert_eq!(m.caches.len(), 4);
        assert_eq!(m.caches[0].buffer_words(), 256);
    }
}
