//! The instruction executor: a lockstep, cycle-level dataflow engine.
//!
//! An instruction configures the node into pipelines; execution then
//! proceeds in lockstep, one potential element per component per clock:
//!
//! * phase 1 (*sample*): every switch source presents its value for this
//!   cycle — plane/cache DMA reads present the next word, shift/delay taps
//!   present their delayed history, functional units present the result
//!   that entered their pipeline `latency` cycles ago;
//! * phase 2 (*commit*): write DMAs store, functional units latch operands
//!   and push results, delay queues and SDU rings advance, read DMAs move
//!   on.
//!
//! Every word on the datapath carries a *data-valid* line (modelled as
//! `Option<f64>`): slots are invalid before DMA start-up, during
//! shift/delay and queue warm-up, and after stream exhaustion. Write DMAs
//! store only valid elements, which is what keeps stencil outputs aligned
//! without explicit skip programming, and keeps warm-up garbage out of
//! feedback reductions. The instruction completes when every stream-mode
//! write has stored its quota and reductions have drained — the event the
//! paper's completion interrupt signals. Drain detection is precise: a
//! scalar capture is done the first cycle its data-valid line goes low
//! again after having carried data (source validity windows are contiguous
//! once streaming starts, so quiet means drained), with a conservative
//! ring-plus-pipeline bound kept only as a fallback for pipelines whose
//! capture is fed by always-valid (constant or feedback) operands.

use crate::counters::PerfCounters;
use crate::memory::NodeMemory;
use nsc_arch::{FuId, FuOp, InPort, KnowledgeBase, SinkRef, SourceRef};
use nsc_microcode::{FuInputSel, MicroInstruction, WriteMode};
use std::collections::VecDeque;
use std::fmt;

/// Fixed per-instruction overhead: decode, switch programming, DMA setup.
pub const SETUP_CYCLES: u64 = 32;

/// Execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The instruction never completed (an unrouted input starved a write).
    Hang {
        /// Human-readable description of what was still pending.
        detail: String,
    },
    /// The instruction is malformed (references outside the machine).
    BadProgram(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Hang { detail } => write!(f, "instruction hang: {detail}"),
            ExecError::BadProgram(msg) => write!(f, "bad program: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The last valid value observed on every switch source during an
/// instruction — the visual debugger's data feed (paper §6: "annotated to
/// show data values flowing through the pipeline").
#[derive(Debug, Clone, PartialEq)]
pub struct SourceTrace {
    /// Indexed by the knowledge base's source codes.
    pub last: Vec<Option<f64>>,
}

impl SourceTrace {
    /// Last value seen on a given source port.
    pub fn value_of(&self, kb: &KnowledgeBase, source: SourceRef) -> Option<f64> {
        self.last.get(kb.source_code(source)? as usize).copied().flatten()
    }
}

enum Operand {
    /// Value from the switch sink, optionally through a delay queue.
    Wire { queue: Option<VecDeque<Option<f64>>>, driver: Option<u16> },
    /// Register-file constant.
    Const(f64),
    /// Feedback accumulator.
    Feedback,
}

struct FuSim {
    src_code: u16,
    op: FuOp,
    pipe: VecDeque<Option<f64>>,
    a: Operand,
    b: Operand,
    const_val: f64,
    acc: f64,
}

struct SduSim {
    driver: Option<u16>,
    ring: Vec<Option<f64>>,
    pos: usize,
    transit: u16,
    taps: Vec<(u16, u16)>, // (source code, programmed delay)
}

struct ReadDma {
    src_code: u16,
    storage: Storage,
    base: i64,
    stride: i64,
    count: u64,
    emitted: u64,
}

struct WriteDma {
    driver: Option<u16>,
    storage: Storage,
    base: i64,
    stride: i64,
    count: u64,
    skip: u64,
    mode: WriteMode,
    skipped: u64,
    written: u64,
    last_val: Option<f64>,
    /// Whether the driving source presented a valid word *this* cycle
    /// (scalar captures complete when this goes low after data flowed).
    live: bool,
    label: String,
}

#[derive(Clone, Copy)]
enum Storage {
    Plane(usize),
    Cache(usize, u8),
}

impl Storage {
    fn read(self, mem: &NodeMemory, addr: i64) -> f64 {
        match self {
            Storage::Plane(p) => mem.planes[p].read(addr as u64),
            Storage::Cache(c, buf) => mem.caches[c].read(buf, addr as u64),
        }
    }

    fn write(self, mem: &mut NodeMemory, addr: i64, v: f64) {
        match self {
            Storage::Plane(p) => mem.planes[p].write(addr as u64, v),
            Storage::Cache(c, buf) => mem.caches[c].write(buf, addr as u64, v),
        }
    }
}

/// Execute one instruction against node memory, updating counters.
pub fn execute_instruction(
    kb: &KnowledgeBase,
    ins: &MicroInstruction,
    mem: &mut NodeMemory,
    counters: &mut PerfCounters,
) -> Result<SourceTrace, ExecError> {
    let n_sources = kb.sources().len();
    let mut trace = vec![None; n_sources];

    // ------------------------------------------------------------------
    // build the component network
    // ------------------------------------------------------------------
    let driver_code = |sink: SinkRef| -> Option<u16> {
        ins.switch.driver(kb, sink).and_then(|s| kb.source_code(s))
    };

    let mut fus: Vec<FuSim> = Vec::new();
    for (i, f) in ins.fus.iter().enumerate() {
        if !f.enabled {
            continue;
        }
        let fu = FuId(i as u8);
        let latency = kb.config().latency.latency(f.op) as usize;
        let mk_operand = |sel: FuInputSel, port: InPort| -> Operand {
            match sel {
                FuInputSel::Switch => {
                    Operand::Wire { queue: None, driver: driver_code(SinkRef::FuIn(fu, port)) }
                }
                FuInputSel::Queue(d) => Operand::Wire {
                    queue: Some(VecDeque::from(vec![None; d as usize])),
                    driver: driver_code(SinkRef::FuIn(fu, port)),
                },
                FuInputSel::Constant(_) => Operand::Const(f.preload.unwrap_or(0.0)),
                FuInputSel::Feedback(_) => Operand::Feedback,
            }
        };
        fus.push(FuSim {
            src_code: kb
                .source_code(SourceRef::Fu(fu))
                .ok_or_else(|| ExecError::BadProgram(format!("{fu} not on this machine")))?,
            op: f.op,
            pipe: VecDeque::from(vec![None; latency.max(1)]),
            a: mk_operand(f.in_a, InPort::A),
            b: mk_operand(f.in_b, InPort::B),
            const_val: f.preload.unwrap_or(0.0),
            acc: f.preload.unwrap_or(0.0),
        });
    }

    let transit = kb.config().latency.sdu_transit as u16;
    let mut sdus: Vec<SduSim> = Vec::new();
    for (i, s) in ins.sdus.iter().enumerate() {
        if !s.enabled {
            continue;
        }
        let sid = nsc_arch::SduId(i as u8);
        let taps: Vec<(u16, u16)> = s
            .taps
            .iter()
            .enumerate()
            .filter(|(_, t)| t.enabled)
            .filter_map(|(t, tap)| {
                kb.source_code(SourceRef::SduTap(sid, t as u8)).map(|c| (c, tap.delay))
            })
            .collect();
        let max_eff = taps.iter().map(|&(_, d)| d + transit).max().unwrap_or(transit) as usize;
        sdus.push(SduSim {
            driver: driver_code(SinkRef::SduIn(sid)),
            ring: vec![None; max_eff + 1],
            pos: 0,
            transit,
            taps,
        });
    }

    let mut reads: Vec<ReadDma> = Vec::new();
    let mut writes: Vec<WriteDma> = Vec::new();
    for (i, d) in ins.plane_rd.iter().enumerate() {
        if d.enabled {
            reads.push(ReadDma {
                src_code: kb
                    .source_code(SourceRef::PlaneRead(nsc_arch::PlaneId(i as u8)))
                    .ok_or_else(|| ExecError::BadProgram(format!("MP{i} read not on machine")))?,
                storage: Storage::Plane(i),
                base: d.base as i64,
                stride: d.stride as i64,
                count: d.count as u64,
                emitted: 0,
            });
        }
    }
    for (i, d) in ins.cache_rd.iter().enumerate() {
        if d.enabled {
            reads.push(ReadDma {
                src_code: kb
                    .source_code(SourceRef::CacheRead(nsc_arch::CacheId(i as u8)))
                    .ok_or_else(|| ExecError::BadProgram(format!("DC{i} read not on machine")))?,
                storage: Storage::Cache(i, d.buffer),
                base: d.offset as i64,
                stride: d.stride as i64,
                count: d.count as u64,
                emitted: 0,
            });
        }
    }
    for (i, d) in ins.plane_wr.iter().enumerate() {
        if d.enabled {
            writes.push(WriteDma {
                driver: driver_code(SinkRef::PlaneWrite(nsc_arch::PlaneId(i as u8))),
                storage: Storage::Plane(i),
                base: d.base as i64,
                stride: d.stride as i64,
                count: d.count as u64,
                skip: d.skip as u64,
                mode: d.mode,
                skipped: 0,
                written: 0,
                last_val: None,
                live: false,
                label: format!("MP{i}.wr"),
            });
        }
    }
    for (i, d) in ins.cache_wr.iter().enumerate() {
        if d.enabled {
            writes.push(WriteDma {
                driver: driver_code(SinkRef::CacheWrite(nsc_arch::CacheId(i as u8))),
                storage: Storage::Cache(i, d.buffer),
                base: d.offset as i64,
                stride: d.stride as i64,
                count: d.count as u64,
                skip: d.skip as u64,
                mode: d.mode,
                skipped: 0,
                written: 0,
                last_val: None,
                live: false,
                label: format!("DC{i}.wr"),
            });
        }
    }

    counters.cycles += SETUP_CYCLES;
    counters.instructions += 1;

    // Idle instructions (loop headers) finish after setup.
    if writes.is_empty() && reads.is_empty() && fus.is_empty() {
        counters.completion_interrupts += 1;
        return Ok(SourceTrace { last: trace });
    }

    // ------------------------------------------------------------------
    // the lockstep loop
    // ------------------------------------------------------------------
    let max_count = reads.iter().map(|r| r.count).max().unwrap_or(0);
    let drain_bound: u64 = sdus.iter().map(|s| s.ring.len() as u64).sum::<u64>()
        + fus.iter().map(|f| f.pipe.len() as u64 + 70).sum::<u64>()
        + 16;
    let hard_cap = max_count + drain_bound + 1024;

    let mut source_vals: Vec<Option<f64>> = vec![None; n_sources];
    let mut cycles_after_reads: u64 = 0;
    let mut completed = false;

    for _cycle in 0..hard_cap {
        // --- phase 1: sample ---
        source_vals.iter_mut().for_each(|v| *v = None);
        for r in &reads {
            if r.emitted < r.count {
                let addr = r.base + r.emitted as i64 * r.stride;
                source_vals[r.src_code as usize] = Some(r.storage.read(mem, addr));
            }
        }
        for s in &sdus {
            let len = s.ring.len();
            // Tap with programmed delay d presents the input from
            // (d + transit) cycles ago. `ring[pos]` holds the input of the
            // previous cycle (one cycle of transit is the ring write
            // itself), so the lookback is eff - 1 slots.
            for &(code, d) in &s.taps {
                let eff = (d + s.transit) as usize;
                debug_assert!(eff >= 1, "sdu_transit must be at least 1");
                let idx = (s.pos + len - (eff - 1)) % len;
                source_vals[code as usize] = s.ring[idx];
            }
        }
        for f in &fus {
            source_vals[f.src_code as usize] = *f.pipe.front().unwrap();
        }
        for (code, v) in source_vals.iter().enumerate() {
            if v.is_some() {
                trace[code] = *v;
            }
        }

        // --- phase 2: commit ---
        for w in &mut writes {
            let val = w.driver.and_then(|d| source_vals[d as usize]);
            w.live = val.is_some();
            if let Some(v) = val {
                match w.mode {
                    WriteMode::Stream => {
                        if w.skipped < w.skip {
                            w.skipped += 1;
                        } else if w.written < w.count {
                            let addr = w.base + w.written as i64 * w.stride;
                            w.storage.write(mem, addr, v);
                            w.written += 1;
                            counters.elements_stored += 1;
                        }
                    }
                    WriteMode::LastOnly => {
                        w.last_val = Some(v);
                    }
                }
            }
        }
        for s in &mut sdus {
            let input = s.driver.and_then(|d| source_vals[d as usize]);
            s.pos = (s.pos + 1) % s.ring.len();
            s.ring[s.pos] = input;
        }
        for f in &mut fus {
            let sample = |op: &mut Operand, acc: f64| -> Option<f64> {
                match op {
                    Operand::Wire { queue, driver } => {
                        let raw = driver.and_then(|d| source_vals[d as usize]);
                        match queue {
                            None => raw,
                            Some(q) => {
                                q.push_back(raw);
                                q.pop_front().flatten()
                            }
                        }
                    }
                    Operand::Const(v) => Some(*v),
                    Operand::Feedback => Some(acc),
                }
            };
            let acc = f.acc;
            let va = sample(&mut f.a, acc);
            let vb = sample(&mut f.b, acc);
            let needed_b = f.op.arity() == 2;
            let result = match (va, vb) {
                (Some(a), Some(b)) => Some(f.op.apply(a, b, f.const_val)),
                (Some(a), None) if !needed_b => Some(f.op.apply(a, 0.0, f.const_val)),
                _ => None,
            };
            if let Some(r) = result {
                if f.op.is_flop() {
                    counters.flops += 1;
                }
                if !r.is_finite() {
                    counters.exceptions += 1;
                }
                f.acc = r;
            }
            f.pipe.push_back(result);
            f.pipe.pop_front();
        }
        for r in &mut reads {
            if r.emitted < r.count {
                r.emitted += 1;
                counters.elements_streamed += 1;
            }
        }
        counters.cycles += 1;

        // --- completion ---
        let reads_done = reads.iter().all(|r| r.emitted >= r.count);
        if reads_done {
            cycles_after_reads += 1;
        }
        let streams_done =
            writes.iter().all(|w| w.mode != WriteMode::Stream || w.written >= w.count);
        let lastonly_present = writes.iter().any(|w| w.mode == WriteMode::LastOnly);
        // A scalar capture has drained once its data-valid line drops after
        // having carried data: source validity windows are contiguous, so
        // quiet can never be followed by more data. Captures that never saw
        // data (or are fed by always-valid constants) fall back to the
        // conservative ring-plus-pipeline drain bound.
        let lastonly_drained = writes
            .iter()
            .all(|w| w.mode != WriteMode::LastOnly || (w.last_val.is_some() && !w.live));
        if streams_done
            && reads_done
            && (!lastonly_present || lastonly_drained || cycles_after_reads > drain_bound)
        {
            completed = true;
            break;
        }
    }

    if !completed {
        let pending: Vec<String> = writes
            .iter()
            .filter(|w| w.mode == WriteMode::Stream && w.written < w.count)
            .map(|w| format!("{} stored {}/{}", w.label, w.written, w.count))
            .collect();
        return Err(ExecError::Hang {
            detail: if pending.is_empty() {
                "reductions never drained".to_string()
            } else {
                pending.join(", ")
            },
        });
    }

    // Finalize scalar captures.
    for w in &mut writes {
        if w.mode == WriteMode::LastOnly {
            if let Some(v) = w.last_val {
                w.storage.write(mem, w.base, v);
                counters.elements_stored += 1;
            }
        }
    }
    counters.completion_interrupts += 1;
    Ok(SourceTrace { last: trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{CacheId, MachineConfig, PlaneId};
    use nsc_microcode::{CacheDmaField, FuField, PlaneDmaField, SduField};

    fn kb() -> KnowledgeBase {
        KnowledgeBase::nsc_1988()
    }

    fn setup(kb: &KnowledgeBase) -> (NodeMemory, PerfCounters) {
        (NodeMemory::new(kb.config()), PerfCounters::default())
    }

    #[test]
    fn copy_pipeline_moves_data() {
        let kb = kb();
        let (mut mem, mut counters) = setup(&kb);
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        mem.planes[0].write_slice(0, &data);

        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Copy);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 100);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(500, 100);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));

        execute_instruction(&kb, &ins, &mut mem, &mut counters).expect("runs");
        assert_eq!(mem.planes[1].read_vec(500, 100), data);
        assert_eq!(counters.elements_streamed, 100);
        assert_eq!(counters.elements_stored, 100);
        assert_eq!(counters.completion_interrupts, 1);
        // copy is not a flop
        assert_eq!(counters.flops, 0);
    }

    #[test]
    fn add_pipeline_with_two_streams() {
        let kb = kb();
        let (mut mem, mut counters) = setup(&kb);
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| 2.0 * i as f64).collect();
        mem.planes[0].write_slice(0, &a);
        mem.caches[0].write(0, 0, 0.0);
        for (i, v) in b.iter().enumerate() {
            mem.caches[0].write(0, i as u64, *v);
        }

        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Add);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 50);
        *ins.cache_rd_mut(CacheId(0)) = CacheDmaField {
            enabled: true,
            offset: 0,
            stride: 1,
            count: 50,
            skip: 0,
            buffer: 0,
            mode: WriteMode::Stream,
        };
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 50);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::CacheRead(CacheId(0)), SinkRef::FuIn(FuId(0), InPort::B));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));

        execute_instruction(&kb, &ins, &mut mem, &mut counters).expect("runs");
        let out = mem.planes[1].read_vec(0, 50);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 3.0 * i as f64);
        }
        assert_eq!(counters.flops, 50);
    }

    #[test]
    fn constant_operand_and_preload() {
        let kb = kb();
        let (mut mem, mut counters) = setup(&kb);
        mem.planes[0].write_slice(0, &[6.0, 12.0, 18.0]);
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField {
            enabled: true,
            op: FuOp::Mul,
            in_a: FuInputSel::Switch,
            in_b: FuInputSel::Constant(0),
            const_slot: 0,
            preload: Some(1.0 / 6.0),
        };
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 3);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 3);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        execute_instruction(&kb, &ins, &mut mem, &mut counters).expect("runs");
        assert_eq!(mem.planes[1].read_vec(0, 3), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn feedback_reduction_captures_running_max() {
        let kb = kb();
        let (mut mem, mut counters) = setup(&kb);
        mem.planes[0].write_slice(0, &[1.0, -7.0, 3.0, 5.0, -2.0]);
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(2)) = FuField {
            enabled: true,
            op: FuOp::MaxAbs,
            in_a: FuInputSel::Switch,
            in_b: FuInputSel::Feedback(0),
            const_slot: 0,
            preload: Some(0.0),
        };
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 5);
        *ins.cache_wr_mut(CacheId(0)) = CacheDmaField::scalar_capture(7);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(2), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(2)), SinkRef::CacheWrite(CacheId(0)));
        execute_instruction(&kb, &ins, &mut mem, &mut counters).expect("runs");
        assert_eq!(mem.caches[0].read(0, 7), 7.0, "max |x| of the stream");
    }

    #[test]
    fn reductions_complete_when_the_datapath_quiesces() {
        // The completion interrupt follows the last element through the
        // pipeline (a handful of transport cycles), not the conservative
        // ring-plus-pipeline drain bound.
        let kb = kb();
        let (mut mem, mut counters) = setup(&kb);
        let data: Vec<f64> = (0..128).map(|i| (i as f64) - 64.0).collect();
        mem.planes[0].write_slice(0, &data);
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(2)) = FuField {
            enabled: true,
            op: FuOp::MaxAbs,
            in_a: FuInputSel::Switch,
            in_b: FuInputSel::Feedback(0),
            const_slot: 0,
            preload: Some(0.0),
        };
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 128);
        *ins.cache_wr_mut(CacheId(0)) = CacheDmaField::scalar_capture(0);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(2), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(2)), SinkRef::CacheWrite(CacheId(0)));
        execute_instruction(&kb, &ins, &mut mem, &mut counters).expect("runs");
        assert_eq!(mem.caches[0].read(0, 0), 64.0);
        assert!(
            counters.cycles < SETUP_CYCLES + 128 + 16,
            "drain should cost transport cycles, not a bound: {}",
            counters.cycles
        );
    }

    #[test]
    fn sdu_taps_give_shifted_streams() {
        // out[i] = u[i+3] - u[i] via taps {0, 3} and write skip 3.
        let kb = kb();
        let (mut mem, mut counters) = setup(&kb);
        let u: Vec<f64> = (0..10).map(|i| (i * i) as f64).collect();
        mem.planes[0].write_slice(0, &u);
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Sub);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 10);
        *ins.sdu_mut(nsc_arch::SduId(0)) = SduField::with_delays(&[0, 3]);
        // Warm-up slots carry an invalid data line; the write stores the
        // 7 valid elements with no explicit skip.
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 7);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::SduIn(nsc_arch::SduId(0)));
        ins.switch.route(
            &kb,
            SourceRef::SduTap(nsc_arch::SduId(0), 0),
            SinkRef::FuIn(FuId(0), InPort::A),
        );
        ins.switch.route(
            &kb,
            SourceRef::SduTap(nsc_arch::SduId(0), 1),
            SinkRef::FuIn(FuId(0), InPort::B),
        );
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        execute_instruction(&kb, &ins, &mut mem, &mut counters).expect("runs");
        let out = mem.planes[1].read_vec(0, 7);
        for i in 0..7usize {
            let expect = u[i + 3] - u[i];
            assert_eq!(out[i], expect, "at {i}");
        }
    }

    #[test]
    fn queue_delay_aligns_two_paths() {
        // out[i] = |u[i]| + u[i]: one path through an ABS unit (3 cycles),
        // one direct with a 3-deep compensation queue.
        let kb = kb();
        let (mut mem, mut counters) = setup(&kb);
        let u = [-1.0, 2.0, -3.0, 4.0, -5.0];
        mem.planes[0].write_slice(0, &u);
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Abs);
        *ins.fu_mut(FuId(3)) = FuField {
            enabled: true,
            op: FuOp::Add,
            in_a: FuInputSel::Switch,
            in_b: FuInputSel::Queue(3),
            const_slot: 0,
            preload: None,
        };
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 5);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 5);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::FuIn(FuId(3), InPort::A));
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(3), InPort::B));
        ins.switch.route(&kb, SourceRef::Fu(FuId(3)), SinkRef::PlaneWrite(PlaneId(1)));
        execute_instruction(&kb, &ins, &mut mem, &mut counters).expect("runs");
        let out = mem.planes[1].read_vec(0, 5);
        for i in 0..5usize {
            assert_eq!(out[i], u[i].abs() + u[i], "at {i}");
        }
    }

    #[test]
    fn unrouted_write_hangs_with_diagnosis() {
        let kb = kb();
        let (mut mem, mut counters) = setup(&kb);
        let mut ins = MicroInstruction::empty(&kb);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 4);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 4);
        // no switch routes at all: the write starves
        match execute_instruction(&kb, &ins, &mut mem, &mut counters) {
            Err(ExecError::Hang { detail }) => assert!(detail.contains("MP1.wr")),
            other => panic!("expected hang, got {other:?}"),
        }
    }

    #[test]
    fn idle_instruction_costs_only_setup() {
        let kb = kb();
        let (mut mem, mut counters) = setup(&kb);
        let ins = MicroInstruction::empty(&kb);
        execute_instruction(&kb, &ins, &mut mem, &mut counters).expect("runs");
        assert_eq!(counters.cycles, SETUP_CYCLES);
        assert_eq!(counters.instructions, 1);
    }

    #[test]
    fn exceptions_counted_for_nonfinite_results() {
        let kb = kb();
        let (mut mem, mut counters) = setup(&kb);
        mem.planes[0].write_slice(0, &[1.0, 0.0, 4.0]);
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Recip);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 3);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 3);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        execute_instruction(&kb, &ins, &mut mem, &mut counters).expect("runs");
        assert_eq!(counters.exceptions, 1, "1/0 trapped");
        assert_eq!(mem.planes[1].read(2), 0.25);
    }

    #[test]
    fn trace_records_last_source_values() {
        let kb = kb();
        let (mut mem, mut counters) = setup(&kb);
        mem.planes[0].write_slice(0, &[1.0, 2.0, 9.0]);
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Copy);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 3);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 3);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        let trace = execute_instruction(&kb, &ins, &mut mem, &mut counters).expect("runs");
        assert_eq!(trace.value_of(&kb, SourceRef::PlaneRead(PlaneId(0))), Some(9.0));
        assert_eq!(trace.value_of(&kb, SourceRef::Fu(FuId(0))), Some(9.0));
        assert_eq!(trace.value_of(&kb, SourceRef::Fu(FuId(5))), None);
    }

    #[test]
    fn small_machine_configs_also_execute() {
        let kb = KnowledgeBase::new(MachineConfig::test_small());
        let (mut mem, mut counters) = setup(&kb);
        mem.planes[0].write_slice(0, &[5.0; 8]);
        let mut ins = MicroInstruction::empty(&kb);
        *ins.fu_mut(FuId(0)) = FuField::active(FuOp::Neg);
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, 8);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, 8);
        ins.switch.route(&kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(&kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        execute_instruction(&kb, &ins, &mut mem, &mut counters).expect("runs");
        assert_eq!(mem.planes[1].read_vec(0, 8), vec![-5.0; 8]);
    }
}
