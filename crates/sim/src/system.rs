//! The hypercube system: many nodes plus the hyperspace router.
//!
//! Paper §1-2: nodes are "arranged in a hypercube configuration" with
//! inter-node communication "handled by means of a hyperspace router"; the
//! published system sizing is 64 nodes for 40 GFLOPS and 128 GB. The
//! system model runs per-node programs concurrently (crossbeam scoped
//! threads — real parallelism for simulation wall-clock) and accounts
//! simulated communication time with the e-cube router model.

use crate::exec::ExecError;
use crate::node::{NodeSim, RunOptions, RunStats};
use nsc_arch::{HypercubeConfig, KnowledgeBase, NodeId, PlaneId};
use nsc_microcode::MicroProgram;

/// A hypercube of simulated nodes.
#[derive(Debug)]
pub struct NscSystem {
    /// Cube topology and router model.
    pub cube: HypercubeConfig,
    nodes: Vec<NodeSim>,
    /// Simulated communication time accumulated so far, in nanoseconds.
    pub comm_ns: u64,
}

impl NscSystem {
    /// A system of `2^dimension` identical nodes.
    pub fn new(cube: HypercubeConfig, kb: &KnowledgeBase) -> Self {
        let nodes = (0..cube.nodes()).map(|_| NodeSim::new(kb.clone())).collect();
        NscSystem { cube, nodes, comm_ns: 0 }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// One node.
    pub fn node(&self, id: NodeId) -> &NodeSim {
        &self.nodes[id.index()]
    }

    /// One node, mutably.
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeSim {
        &mut self.nodes[id.index()]
    }

    /// Run one program on every node concurrently (each node gets the same
    /// program; per-node data lives in its own planes). Returns per-node
    /// stats in node order.
    pub fn run_on_all(
        &mut self,
        prog: &MicroProgram,
        opts: &RunOptions,
    ) -> Result<Vec<RunStats>, ExecError> {
        let mut results: Vec<Option<Result<RunStats, ExecError>>> =
            (0..self.nodes.len()).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            for (node, slot) in self.nodes.iter_mut().zip(results.iter_mut()) {
                scope.spawn(move |_| {
                    *slot = Some(node.run_program(prog, opts));
                });
            }
        })
        .expect("node thread panicked");
        results.into_iter().map(|r| r.expect("slot filled")).collect()
    }

    /// Transfer `len` words from a plane of one node to a plane of another,
    /// charging the e-cube route cost. Returns the message time in ns.
    #[allow(clippy::too_many_arguments)] // one argument per route endpoint coordinate
    pub fn exchange(
        &mut self,
        from: NodeId,
        from_plane: PlaneId,
        from_base: u64,
        to: NodeId,
        to_plane: PlaneId,
        to_base: u64,
        len: u64,
    ) -> u64 {
        let data = self.nodes[from.index()].mem.plane(from_plane).read_vec(from_base, len);
        self.nodes[to.index()].mem.plane_mut(to_plane).write_slice(to_base, &data);
        let ns = self.cube.message_ns(from, to, len);
        self.comm_ns += ns;
        ns
    }

    /// Global max-reduction of a cache scalar across all nodes, charged as
    /// a dimension-ordered butterfly (log2(n) exchange rounds of one word).
    /// Returns `(max value, reduction time in ns)`.
    pub fn global_max_cache_scalar(&mut self, cache: nsc_arch::CacheId, offset: u64) -> (f64, u64) {
        let value = self
            .nodes
            .iter()
            .map(|n| n.mem.cache(cache).read(0, offset))
            .fold(f64::NEG_INFINITY, f64::max);
        // Butterfly: every round crosses one cube dimension (distance-1
        // links), one word per message.
        let per_round = self.cube.router.message_ns(1, 1);
        let ns = per_round * self.cube.dimension as u64;
        self.comm_ns += ns;
        (value, ns)
    }

    /// Total simulated time: slowest node's compute plus communication.
    pub fn simulated_seconds(&self) -> f64 {
        let clock = self.nodes[0].kb.config().clock_hz;
        let compute =
            self.nodes.iter().map(|n| n.counters.cycles).max().unwrap_or(0) as f64 / clock as f64;
        compute + self.comm_ns as f64 * 1e-9
    }

    /// Aggregate counters (cycles = max across nodes, work summed).
    pub fn aggregate_counters(&self) -> crate::PerfCounters {
        let mut total = crate::PerfCounters::default();
        for n in &self.nodes {
            total.absorb(&n.counters);
        }
        total
    }

    /// Aggregate achieved MFLOPS across the system (total flops over the
    /// slowest node's elapsed time).
    pub fn aggregate_mflops(&self) -> f64 {
        let secs = self.simulated_seconds();
        if secs == 0.0 {
            return 0.0;
        }
        let flops: u64 = self.nodes.iter().map(|n| n.counters.flops).sum();
        flops as f64 / secs / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_arch::{FuId, FuOp, InPort, MachineConfig, SinkRef, SourceRef};
    use nsc_microcode::{FuField, MicroInstruction, PlaneDmaField, ProgramBuilder};

    fn small_system(dim: u32) -> NscSystem {
        let kb = KnowledgeBase::new(MachineConfig::test_small());
        NscSystem::new(HypercubeConfig::new(dim), &kb)
    }

    fn double_program(kb: &KnowledgeBase, count: u32) -> MicroProgram {
        let mut b = ProgramBuilder::new(kb, "double");
        let mut ins = MicroInstruction::empty(kb);
        *ins.fu_mut(FuId(0)) = FuField {
            enabled: true,
            op: FuOp::Mul,
            in_a: nsc_microcode::FuInputSel::Switch,
            in_b: nsc_microcode::FuInputSel::Constant(0),
            const_slot: 0,
            preload: Some(2.0),
        };
        *ins.plane_rd_mut(PlaneId(0)) = PlaneDmaField::contiguous(0, count);
        *ins.plane_wr_mut(PlaneId(1)) = PlaneDmaField::contiguous(0, count);
        ins.switch.route(kb, SourceRef::PlaneRead(PlaneId(0)), SinkRef::FuIn(FuId(0), InPort::A));
        ins.switch.route(kb, SourceRef::Fu(FuId(0)), SinkRef::PlaneWrite(PlaneId(1)));
        b.push(ins);
        b.finish()
    }

    #[test]
    fn nodes_run_concurrently_with_private_data() {
        let mut sys = small_system(2); // 4 nodes
        for i in 0..4u16 {
            sys.node_mut(NodeId(i)).mem.planes[0].write_slice(0, &[i as f64 + 1.0; 16]);
        }
        let kb = sys.node(NodeId(0)).kb.clone();
        let prog = double_program(&kb, 16);
        let stats = sys.run_on_all(&prog, &RunOptions::default()).expect("all nodes run");
        assert_eq!(stats.len(), 4);
        for i in 0..4u16 {
            assert_eq!(
                sys.node(NodeId(i)).mem.planes[1].read(7),
                2.0 * (i as f64 + 1.0),
                "node {i} doubled its own data"
            );
        }
    }

    #[test]
    fn exchange_moves_data_and_charges_the_router() {
        let mut sys = small_system(3);
        sys.node_mut(NodeId(0)).mem.planes[0].write_slice(100, &[1.0, 2.0, 3.0]);
        // 0 -> 7 is 3 hops in a 3-cube.
        let ns = sys.exchange(NodeId(0), PlaneId(0), 100, NodeId(7), PlaneId(2), 0, 3);
        assert_eq!(sys.node(NodeId(7)).mem.planes[2].read_vec(0, 3), vec![1.0, 2.0, 3.0]);
        let expect = sys.cube.router.message_ns(3, 3);
        assert_eq!(ns, expect);
        assert_eq!(sys.comm_ns, expect);
    }

    #[test]
    fn global_max_reduces_across_nodes() {
        let mut sys = small_system(2);
        for i in 0..4u16 {
            sys.node_mut(NodeId(i)).mem.caches[0].write(0, 0, i as f64 * 10.0);
        }
        let (v, ns) = sys.global_max_cache_scalar(nsc_arch::CacheId(0), 0);
        assert_eq!(v, 30.0);
        assert_eq!(ns, 2 * sys.cube.router.message_ns(1, 1), "log2(4) rounds");
    }

    #[test]
    fn simulated_time_is_max_compute_plus_comm() {
        let mut sys = small_system(1);
        let kb = sys.node(NodeId(0)).kb.clone();
        let prog = double_program(&kb, 64);
        sys.run_on_all(&prog, &RunOptions::default()).expect("runs");
        let compute_only = sys.simulated_seconds();
        assert!(compute_only > 0.0);
        sys.exchange(NodeId(0), PlaneId(0), 0, NodeId(1), PlaneId(0), 0, 1000);
        assert!(sys.simulated_seconds() > compute_only, "comm adds simulated time");
    }

    #[test]
    fn aggregate_mflops_scale_with_nodes() {
        // The same per-node work on 1 vs 4 nodes: ~4x the aggregate rate.
        let kb = KnowledgeBase::new(MachineConfig::test_small());
        let prog = double_program(&kb, 1024);
        let mut sys1 = small_system(0);
        sys1.run_on_all(&prog, &RunOptions::default()).expect("runs");
        let mut sys4 = small_system(2);
        sys4.run_on_all(&prog, &RunOptions::default()).expect("runs");
        let r1 = sys1.aggregate_mflops();
        let r4 = sys4.aggregate_mflops();
        assert!(r4 > 3.5 * r1, "expected ~4x: {r1} vs {r4}");
    }
}
